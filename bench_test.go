package avail

// Benchmark harness: one benchmark per table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// bench reports the reproduced headline metric alongside timing via
// b.ReportMetric, so `go test -bench .` regenerates the paper's rows.

import (
	"bytes"
	"os"
	"testing"
	"time"

	"repro/internal/assess"
	"repro/internal/ctmc"
	"repro/internal/des"
	"repro/internal/faultinject"
	"repro/internal/hier"
	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/reward"
	"repro/internal/sparse"
	"repro/internal/spec"
	"repro/internal/testbed"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// --- Table 2 ---

func benchmarkTable2(b *testing.B, cfg Config) {
	b.Helper()
	p := DefaultParams()
	var res *SystemResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = SolveJSAS(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.YearlyDowntimeMinutes, "YD-min/yr")
	b.ReportMetric(res.Availability*100, "avail-%")
}

func BenchmarkTable2Config1(b *testing.B) { benchmarkTable2(b, Config1) }
func BenchmarkTable2Config2(b *testing.B) { benchmarkTable2(b, Config2) }

// --- Table 3 ---

func BenchmarkTable3AllConfigurations(b *testing.B) {
	p := DefaultParams()
	configs := Table3Configs()
	var mtbf float64
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			res, err := SolveJSAS(cfg, p)
			if err != nil {
				b.Fatal(err)
			}
			if cfg.ASInstances == 4 {
				mtbf = res.MTBFHours
			}
		}
	}
	b.ReportMetric(mtbf, "optimal-MTBF-h")
}

// --- Figures 5 and 6 (Tstart_long sensitivity sweeps) ---

func benchmarkSweep(b *testing.B, cfg Config) {
	b.Helper()
	p := DefaultParams()
	var pts []SweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = SweepTstartLong(cfg, p, 0.5, 3.0, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((pts[0].Availability-pts[len(pts)-1].Availability)*1e6, "avail-drop-ppm")
}

func BenchmarkFigure5SweepConfig1(b *testing.B) { benchmarkSweep(b, Config1) }
func BenchmarkFigure6SweepConfig2(b *testing.B) { benchmarkSweep(b, Config2) }

// BenchmarkSweepParallel4Config1 drives the Figure 5 sweep through the
// parallel driver (compare with BenchmarkFigure5SweepConfig1; the outputs
// are identical at any parallelism).
func BenchmarkSweepParallel4Config1(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := SweepTstartLongWith(Config1, p, 0.5, 3.0, 10, SweepOptions{Parallelism: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 7 and 8 (uncertainty analysis, 1000 samples) ---

func benchmarkUncertainty(b *testing.B, cfg Config) {
	b.Helper()
	p := DefaultParams()
	var res *UncertaintyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunUncertainty(cfg, p, UncertaintyOptions{Samples: 1000, Seed: 2004})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Summary.Mean, "mean-YD-min/yr")
	b.ReportMetric(res.CIs[0.80].Low, "CI80-low")
	b.ReportMetric(res.CIs[0.80].High, "CI80-high")
}

func BenchmarkFigure7UncertaintyConfig1(b *testing.B) { benchmarkUncertainty(b, Config1) }
func BenchmarkFigure8UncertaintyConfig2(b *testing.B) { benchmarkUncertainty(b, Config2) }

// --- Section 3 measurements: longevity run and fault injection ---

// BenchmarkLongevityRun executes one simulated 7-day stability run
// (Table 1's environment, ~7M requests) per iteration.
func BenchmarkLongevityRun(b *testing.B) {
	var served float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(workload.RunOptions{
			Config:   Config1,
			Params:   DefaultParams(),
			Profile:  workload.Marketplace(),
			Duration: 7 * 24 * time.Hour,
			Seed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		served = res.RequestsServed
	}
	b.ReportMetric(served/1e6, "Mreq/run")
}

// BenchmarkFaultInjectionCampaign runs a 100-injection campaign per
// iteration (the paper's full 3,287-injection campaign is exercised in the
// test suite).
func BenchmarkFaultInjectionCampaign(b *testing.B) {
	p := DefaultParams()
	p.FIR = 0 // ground truth: the paper's testbed never failed to recover
	var rate float64
	for i := 0; i < b.N; i++ {
		rep, err := faultinject.Run(faultinject.Options{
			Config:     Config1,
			Params:     p,
			Seed:       int64(i),
			Injections: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = rep.SuccessRate()
	}
	b.ReportMetric(rate*100, "recovery-%")
}

// benchmarkCampaignReplicated runs a 2000-injection campaign sharded over
// the given replica count at the given worker count. Unsharded vs the
// replicated variants measures the wall-clock win of replicated
// measurement (sharding alone already wins: per-replica clusters keep the
// per-injection stats snapshots small); Serial vs Parallel4 isolates the
// multi-core speedup. The merged reports are identical by construction.
func benchmarkCampaignReplicated(b *testing.B, replicas, parallelism int) {
	b.Helper()
	p := DefaultParams()
	p.FIR = 0
	var rate float64
	for i := 0; i < b.N; i++ {
		rep, err := faultinject.RunReplicated(faultinject.ReplicatedOptions{
			Options: faultinject.Options{
				Config: Config1, Params: p, Seed: int64(i), Injections: 2000,
			},
			Replicas:    replicas,
			Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = rep.SuccessRate()
	}
	b.ReportMetric(rate*100, "recovery-%")
}

func BenchmarkCampaignUnsharded(b *testing.B)           { benchmarkCampaignReplicated(b, 1, 1) }
func BenchmarkCampaignReplicatedSerial(b *testing.B)    { benchmarkCampaignReplicated(b, 4, 1) }
func BenchmarkCampaignReplicatedParallel4(b *testing.B) { benchmarkCampaignReplicated(b, 4, 4) }

// benchmarkCampaignTelemetry measures the live-telemetry tax on the
// unsharded 2000-injection campaign. Off is the plain campaign; On
// attaches a progress tracker (with the recovered-fraction running
// statistic) and a windowed availability time series, exactly what the
// -progress and -timeseries CLI flags wire up. `make verify` gates the
// On/Off ns/op ratio, so the telemetry plane must stay within a few
// percent of free.
func benchmarkCampaignTelemetry(b *testing.B, telemetry bool) {
	b.Helper()
	p := DefaultParams()
	p.FIR = 0
	for i := 0; i < b.N; i++ {
		opts := faultinject.Options{
			Config: Config1, Params: p, Seed: int64(i), Injections: 2000,
		}
		if telemetry {
			opts.Progress = progress.New(2000,
				progress.WithStat("recovered"), progress.WithUnit("inj"))
			opts.TimeSeries = testbed.NewTimeSeries(time.Hour, 0)
		}
		if _, err := faultinject.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignTelemetryOff(b *testing.B) { benchmarkCampaignTelemetry(b, false) }
func BenchmarkCampaignTelemetryOn(b *testing.B)  { benchmarkCampaignTelemetry(b, true) }

// benchDomains covers Config1 with a two-rack site for the correlated
// campaign benchmarks (same shape the -domains CLI examples use).
func benchDomains() []testbed.Domain {
	return []testbed.Domain{
		{Name: "site"},
		{Name: "rack-a", Parent: "site", AS: []int{0},
			HADB: []testbed.NodeRef{{Pair: 0, Slot: 0}, {Pair: 1, Slot: 0}}},
		{Name: "rack-b", Parent: "site", AS: []int{1},
			HADB: []testbed.NodeRef{{Pair: 0, Slot: 1}, {Pair: 1, Slot: 1}}},
	}
}

// benchmarkCampaignCorrelated measures the correlated-injection tax on
// the unsharded 2000-injection campaign: the class-selector draw, domain
// burst/partition scheduling, and the per-cause accounting. `make verify`
// gates the Correlated/Unsharded ns/op ratio so the correlated path stays
// within MAX_CORRELATED_RATIO of the independent one.
func benchmarkCampaignCorrelated(b *testing.B, ccf, pf float64) {
	b.Helper()
	p := DefaultParams()
	p.FIR = 0
	var beta float64
	for i := 0; i < b.N; i++ {
		opts := faultinject.Options{
			Config: Config1, Params: p, Seed: int64(i), Injections: 2000,
			Domains: benchDomains(),
		}
		if ccf > 0 {
			opts.CommonCauseFraction = &ccf
		}
		if pf > 0 {
			opts.PartitionFraction = &pf
		}
		rep, err := faultinject.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		beta = rep.MeasuredCommonCauseFraction()
	}
	b.ReportMetric(beta, "measured-beta")
}

func BenchmarkCampaignCorrelated(b *testing.B) { benchmarkCampaignCorrelated(b, 0.15, 0.1) }
func BenchmarkCampaignPartition(b *testing.B)  { benchmarkCampaignCorrelated(b, 0, 0.25) }

// benchmarkLongevitySeries runs 4 × 7-day longevity runs at the given
// worker count (paper: "multiple 7-day duration runs", pooled).
func benchmarkLongevitySeries(b *testing.B, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunSeriesWith(workload.SeriesOptions{
			Run: workload.RunOptions{
				Config:          Config1,
				Params:          DefaultParams(),
				Profile:         workload.Marketplace(),
				Duration:        7 * 24 * time.Hour,
				Seed:            int64(i),
				OrganicFailures: true, // event-rich runs, so timing reflects simulation work
			},
			Runs:        4,
			Parallelism: parallelism,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongevitySeriesSerial(b *testing.B)    { benchmarkLongevitySeries(b, 1) }
func BenchmarkLongevitySeriesParallel4(b *testing.B) { benchmarkLongevitySeries(b, 4) }

// --- Ablation: dense LU vs iterative steady-state solvers ---

func randomChain(b *testing.B, n int) *ctmc.Model {
	b.Helper()
	bld := ctmc.NewBuilder()
	states := make([]ctmc.State, n)
	for i := 0; i < n; i++ {
		states[i] = bld.State(stateName(i))
	}
	// Sparse ring + shortcuts: irreducible, ~4 transitions per state.
	for i := 0; i < n; i++ {
		bld.Transition(states[i], states[(i+1)%n], 1+float64(i%7))
		bld.Transition(states[(i+1)%n], states[i], 2+float64(i%5))
		bld.Transition(states[i], states[(i*7+3)%n], 0.5)
	}
	m, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func stateName(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "s0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{digits[i%10]}, buf...)
		i /= 10
	}
	return "s" + string(buf)
}

func benchmarkSteadyState(b *testing.B, n int, method ctmc.Method) {
	b.Helper()
	m := randomChain(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(ctmc.SolveOptions{Method: method, Tol: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateDense50(b *testing.B)  { benchmarkSteadyState(b, 50, ctmc.MethodDense) }
func BenchmarkSteadyStateDense200(b *testing.B) { benchmarkSteadyState(b, 200, ctmc.MethodDense) }
func BenchmarkSteadyStateDense400(b *testing.B) { benchmarkSteadyState(b, 400, ctmc.MethodDense) }
func BenchmarkSteadyStateGS50(b *testing.B)     { benchmarkSteadyState(b, 50, ctmc.MethodGaussSeidel) }
func BenchmarkSteadyStateGS200(b *testing.B)    { benchmarkSteadyState(b, 200, ctmc.MethodGaussSeidel) }
func BenchmarkSteadyStateGS400(b *testing.B)    { benchmarkSteadyState(b, 400, ctmc.MethodGaussSeidel) }
func BenchmarkSteadyStatePower200(b *testing.B) { benchmarkSteadyState(b, 200, ctmc.MethodPower) }

// BenchmarkSteadyStateGSWarm200 measures the repeated-solve fast path: the
// same chain solved through one Solver, so every iteration after the first
// reuses the cached generator/transpose, the iteration workspace, and a
// warm start from the previous π (compare with BenchmarkSteadyStateGS200,
// which pays cold-start cost every iteration).
func BenchmarkSteadyStateGSWarm200(b *testing.B) {
	m := randomChain(b, 200)
	s := ctmc.NewSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SteadyState(m, ctmc.SolveOptions{Method: ctmc.MethodGaussSeidel, Tol: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Solves > 1 {
		b.ReportMetric(float64(st.WarmSweeps)/float64(st.Solves-1), "warm-sweeps/solve")
	}
}

// --- Ablation: hierarchical abstraction vs flat product model ---

func BenchmarkHierarchyConfig1(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := SolveJSAS(Config1, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatProductConfig1(b *testing.B) {
	p := DefaultParams()
	asS, err := jsas.BuildAppServer(p, 2)
	if err != nil {
		b.Fatal(err)
	}
	pairS, err := jsas.BuildHADBPair(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var availv float64
	for i := 0; i < b.N; i++ {
		flat, err := hier.Product(
			[]*reward.Structure{asS, pairS, pairS},
			func(up []bool) bool { return up[0] && up[1] && up[2] },
		)
		if err != nil {
			b.Fatal(err)
		}
		res, err := flat.Solve(ctmc.SolveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		availv = res.Availability
	}
	b.ReportMetric((1-availv)*reward.MinutesPerYear, "flat-YD-min/yr")
}

// --- Ablation: uniform vs Latin-hypercube sampling ---

func benchmarkSampler(b *testing.B, s uncertainty.Sampler) {
	b.Helper()
	ranges := PaperUncertaintyRanges()
	solver := jsas.UncertaintySolver(Config1, DefaultParams())
	for i := 0; i < b.N; i++ {
		if _, err := uncertainty.Run(ranges, solver, uncertainty.Options{
			Samples: 200, Seed: int64(i), Sampler: s,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplerUniform(b *testing.B) { benchmarkSampler(b, uncertainty.SamplerUniform) }
func BenchmarkSamplerLatinHypercube(b *testing.B) {
	benchmarkSampler(b, uncertainty.SamplerLatinHypercube)
}

// --- Substrate microbenches ---

func BenchmarkDESEventThroughput(b *testing.B) {
	sim := des.New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		_ = sim.Schedule(time.Second, tick)
	}
	if err := sim.Schedule(time.Second, tick); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := sim.Run(time.Duration(b.N) * time.Second); err != nil {
		b.Fatal(err)
	}
	if count < b.N-1 {
		b.Fatalf("processed %d events, want ≥ %d", count, b.N-1)
	}
}

func BenchmarkTestbedYearOfOperation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := testbed.New(testbed.Options{
			Config: Config1, Params: DefaultParams(), Seed: int64(i),
			OrganicFailures: true, Maintenance: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Run(8760 * time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseMatVec(b *testing.B) {
	const n = 10000
	entries := make([]sparse.Entry, 0, 3*n)
	for i := 0; i < n; i++ {
		entries = append(entries,
			sparse.Entry{Row: i, Col: (i + 1) % n, Val: 1},
			sparse.Entry{Row: i, Col: (i + n - 1) % n, Val: 2},
			sparse.Entry{Row: i, Col: i, Val: -3},
		)
	}
	m, err := sparse.NewCSR(n, n, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(x); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extended-analysis benches ---

func benchmarkIntervalAvailability(b *testing.B, mission time.Duration) {
	b.Helper()
	p := DefaultParams()
	var ia float64
	for i := 0; i < b.N; i++ {
		res, err := jsas.IntervalAvailability(Config1, p, mission)
		if err != nil {
			b.Fatal(err)
		}
		ia = res.IntervalAvailability
	}
	b.ReportMetric(ia*100, "interval-avail-%")
}

func BenchmarkIntervalAvailability24h(b *testing.B) {
	benchmarkIntervalAvailability(b, 24*time.Hour)
}

func BenchmarkIntervalAvailability1y(b *testing.B) {
	benchmarkIntervalAvailability(b, 365*24*time.Hour)
}

// BenchmarkHierDocumentSolve loads and solves the shipped JSON hierarchy.
func BenchmarkHierDocumentSolve(b *testing.B) {
	data, err := os.ReadFile("models/jsas-config1.json")
	if err != nil {
		b.Fatal(err)
	}
	doc, err := spec.ParseHier(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := doc.Solve(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLumpProduct reduces a 3-replica product model.
func BenchmarkLumpProduct(b *testing.B) {
	p := DefaultParams()
	pairS, err := jsas.BuildHADBPair(p)
	if err != nil {
		b.Fatal(err)
	}
	flat, err := hier.Product(
		[]*reward.Structure{pairS, pairS, pairS},
		func(up []bool) bool { return up[0] && up[1] && up[2] },
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		lumped, _, err := flat.Lumped()
		if err != nil {
			b.Fatal(err)
		}
		states = lumped.Model().NumStates()
	}
	b.ReportMetric(float64(flat.Model().NumStates()), "flat-states")
	b.ReportMetric(float64(states), "lumped-states")
}

// BenchmarkAssessmentReport generates the full Markdown assessment.
func BenchmarkAssessmentReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := assess.Run(assess.Request{
			Config: Config1, Params: DefaultParams(),
			UncertaintySamples: 200, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		var sink bytes.Buffer
		if err := rep.WriteMarkdown(&sink); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncertaintyParallel4 measures the worker-pool speedup of the
// Monte-Carlo analysis (compare with BenchmarkFigure7UncertaintyConfig1).
func BenchmarkUncertaintyParallel4(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := uncertainty.Run(
			PaperUncertaintyRanges(),
			jsas.UncertaintySolver(Config1, p),
			uncertainty.Options{Samples: 1000, Seed: 2004, Parallelism: 4},
		); err != nil {
			b.Fatal(err)
		}
	}
}
