package avail

// Job-engine benchmarks backing the `make verify` cache gate: a cache
// hit must be orders of magnitude cheaper than the computation it
// replaces (MIN_JOBCACHE_SPEEDUP, default 100×), and coalescing onto an
// in-flight job must stay in the same O(1) regime as a hit. The miss
// path runs a real 100-sample uncertainty analysis — the workload the
// async API exists to deduplicate — so the ratio measures the cache
// against genuine solver work, not a stub.

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/jobs"
	"repro/internal/progress"
)

// benchJobReq is the canonical request the bench jobs are keyed by.
type benchJobReq struct {
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed"`
}

// benchUncertaintyTask builds an engine task running a real uncertainty
// analysis, hashed over its canonicalized request like the HTTP API does.
func benchUncertaintyTask(b *testing.B, samples int, seed int64) jobs.Task {
	b.Helper()
	hash, err := jobs.CanonicalHash("uncertainty", benchJobReq{Samples: samples, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	return jobs.Task{
		Kind: "uncertainty",
		Hash: hash,
		Run: func(context.Context, *progress.Tracker) (json.RawMessage, error) {
			res, err := RunUncertainty(Config1, p, UncertaintyOptions{Samples: samples, Seed: seed})
			if err != nil {
				return nil, err
			}
			return json.Marshal(map[string]float64{"meanDowntimeMinutes": res.Summary.Mean})
		},
	}
}

// BenchmarkJobCacheMiss is the baseline: every iteration submits a
// never-seen request (unique seed) and waits for the full computation.
func BenchmarkJobCacheMiss(b *testing.B) {
	eng := jobs.New(jobs.Config{Workers: 1, KeepDone: 16})
	defer eng.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Submit(benchUncertaintyTask(b, 100, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if st.Cached {
			b.Fatal("miss benchmark hit the cache")
		}
		final, err := eng.Wait(ctx, st.ID)
		if err != nil {
			b.Fatal(err)
		}
		if final.State != jobs.StateDone {
			b.Fatalf("job failed: %s", final.Error)
		}
	}
}

// BenchmarkJobCacheHit resubmits one already-computed request per
// iteration: the whole submission resolves synchronously from the LRU.
func BenchmarkJobCacheHit(b *testing.B) {
	eng := jobs.New(jobs.Config{Workers: 1, KeepDone: 16})
	defer eng.Close()
	task := benchUncertaintyTask(b, 100, 2004)
	st, err := eng.Submit(task)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Wait(context.Background(), st.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := eng.Submit(task)
		if err != nil {
			b.Fatal(err)
		}
		if !hit.Cached {
			b.Fatal("hit benchmark missed the cache")
		}
	}
}

// BenchmarkJobCacheCoalesced submits against a deliberately in-flight
// identical job: every submission must join it without queueing work.
func BenchmarkJobCacheCoalesced(b *testing.B) {
	eng := jobs.New(jobs.Config{Workers: 1, KeepDone: 16})
	defer eng.Close()
	release := make(chan struct{})
	task := jobs.Task{
		Kind: "blocker",
		Hash: "bench-coalesce",
		Run: func(ctx context.Context, _ *progress.Tracker) (json.RawMessage, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return json.RawMessage(`1`), nil
		},
	}
	first, err := eng.Submit(task)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Submit(task)
		if err != nil {
			b.Fatal(err)
		}
		if st.ID != first.ID {
			b.Fatalf("submission %d did not coalesce onto job %d", i, first.ID)
		}
	}
	b.StopTimer()
	close(release)
	if _, err := eng.Wait(context.Background(), first.ID); err != nil {
		b.Fatal(err)
	}
	if st, _ := eng.Status(first.ID); st.Coalesced != int64(b.N) {
		b.Fatalf("coalesced = %d, want %d", st.Coalesced, b.N)
	}
}
