package avail

// Acceptance suite: every headline number of the paper asserted in one
// place against the public API. EXPERIMENTS.md references this file as the
// canonical verification entry point; the per-module tests under
// internal/ cover the same ground at finer grain.

import (
	"math"
	"testing"
	"time"

	"repro/internal/jsas"
)

func solveAccept(t *testing.T, cfg Config) *SystemResult {
	t.Helper()
	res, err := SolveJSAS(cfg, DefaultParams())
	if err != nil {
		t.Fatalf("SolveJSAS(%v): %v", cfg, err)
	}
	return res
}

func TestPaperTable2(t *testing.T) {
	t.Parallel()
	c1 := solveAccept(t, Config1)
	if math.Abs(c1.Availability-0.9999933) > 5e-7 {
		t.Errorf("Config 1 availability = %.7f, paper 0.9999933", c1.Availability)
	}
	if math.Abs(c1.YearlyDowntimeMinutes-3.5) > 0.15 {
		t.Errorf("Config 1 YD = %.2f, paper 3.5", c1.YearlyDowntimeMinutes)
	}
	if math.Abs(c1.DowntimeASMinutes-2.35) > 0.1 || math.Abs(c1.DowntimeHADBMinutes-1.15) > 0.1 {
		t.Errorf("Config 1 split = %.2f/%.2f, paper 2.35/1.15",
			c1.DowntimeASMinutes, c1.DowntimeHADBMinutes)
	}
	c2 := solveAccept(t, Config2)
	if math.Abs(c2.Availability-0.9999956) > 4e-7 {
		t.Errorf("Config 2 availability = %.7f, paper 0.9999956", c2.Availability)
	}
	if math.Abs(c2.YearlyDowntimeMinutes-2.3) > 0.12 {
		t.Errorf("Config 2 YD = %.2f, paper 2.3", c2.YearlyDowntimeMinutes)
	}
	if c2.DowntimeHADBMinutes/c2.YearlyDowntimeMinutes < 0.999 {
		t.Error("Config 2 should be HADB-dominated (paper: 99.99%)")
	}
}

func TestPaperTable3(t *testing.T) {
	t.Parallel()
	rows := []struct {
		cfg      Config
		availPct float64
		ydMin    float64
		mtbfH    float64
	}{
		{Config{ASInstances: 1}, 99.9629, 195, 168},
		{Config{ASInstances: 2, HADBPairs: 2, HADBSpares: 2}, 99.99933, 3.49, 89980},
		{Config{ASInstances: 4, HADBPairs: 4, HADBSpares: 2}, 99.99956, 2.29, 229326},
		{Config{ASInstances: 6, HADBPairs: 6, HADBSpares: 2}, 99.99934, 3.44, 152889},
		{Config{ASInstances: 8, HADBPairs: 8, HADBSpares: 2}, 99.99912, 4.58, 114669},
		{Config{ASInstances: 10, HADBPairs: 10, HADBSpares: 2}, 99.99891, 5.73, 91736},
	}
	for _, row := range rows {
		row := row
		res := solveAccept(t, row.cfg)
		if math.Abs(res.Availability*100-row.availPct) > 5e-5*row.availPct {
			t.Errorf("%v: availability %.5f%%, paper %.5f%%",
				row.cfg, res.Availability*100, row.availPct)
		}
		if math.Abs(res.YearlyDowntimeMinutes-row.ydMin) > 0.05*row.ydMin+0.05 {
			t.Errorf("%v: YD %.2f, paper %.2f", row.cfg, res.YearlyDowntimeMinutes, row.ydMin)
		}
		if math.Abs(res.MTBFHours-row.mtbfH) > 0.04*row.mtbfH {
			t.Errorf("%v: MTBF %.0f, paper %.0f", row.cfg, res.MTBFHours, row.mtbfH)
		}
	}
}

func TestPaperFigure5and6(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// Figure 5: Config 1 loses five nines between 2 and 3 hours.
	pts1, err := SweepTstartLong(Config1, p, 0.5, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	lost := false
	for _, pt := range pts1 {
		if pt.Value <= 2 && pt.Availability < 0.99999 {
			t.Errorf("Config 1 lost five nines too early, at %.2f h", pt.Value)
		}
		if pt.Availability < 0.99999 {
			lost = true
		}
	}
	if !lost {
		t.Error("Config 1 never lost five nines by 3 h (paper: lost at ~2.5 h)")
	}
	// Figure 6: Config 2 keeps 99.9995% throughout.
	pts2, err := SweepTstartLong(Config2, p, 0.5, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts2 {
		if pt.Availability < 0.999995 {
			t.Errorf("Config 2 below 99.9995%% at %.2f h", pt.Value)
		}
	}
}

func TestPaperFigures7and8(t *testing.T) {
	t.Parallel()
	run := func(cfg Config) *UncertaintyResult {
		res, err := RunUncertainty(cfg, DefaultParams(), UncertaintyOptions{Samples: 1000, Seed: 2004})
		if err != nil {
			t.Fatalf("RunUncertainty: %v", err)
		}
		return res
	}
	f7 := run(Config1)
	if math.Abs(f7.Summary.Mean-3.78) > 0.45 {
		t.Errorf("Figure 7 mean = %.2f, paper 3.78", f7.Summary.Mean)
	}
	if frac := f7.FractionBelow(5.25); frac < 0.78 {
		t.Errorf("Figure 7 five-nines fraction = %.2f, paper > 0.80", frac)
	}
	f8 := run(Config2)
	if math.Abs(f8.Summary.Mean-2.99) > 0.4 {
		t.Errorf("Figure 8 mean = %.2f, paper 2.99", f8.Summary.Mean)
	}
	if frac := f8.FractionBelow(5.25); frac < 0.85 {
		t.Errorf("Figure 8 five-nines fraction = %.2f, paper > 0.90", frac)
	}
}

func TestPaperEquations(t *testing.T) {
	t.Parallel()
	// Equation (1): 3287 clean injections.
	c95, err := CoverageLowerBound(3287, 3287, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if c95.FIR > 0.001 {
		t.Errorf("Eq1 FIR@95%% = %.5f, paper < 0.001", c95.FIR)
	}
	c995, err := CoverageLowerBound(3287, 3287, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	if c995.FIR > 0.002 {
		t.Errorf("Eq1 FIR@99.5%% = %.5f, paper < 0.002", c995.FIR)
	}
	// Equation (2): 48 instance-days, zero failures.
	exposure := 48 * 24 * time.Hour
	r95, err := FailureRateUpperBound(exposure, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(1/(r95.PerHour*24)-16) > 0.1 {
		t.Errorf("Eq2 @95%% = 1/%.1f d, paper 1/16", 1/(r95.PerHour*24))
	}
	r995, err := FailureRateUpperBound(exposure, 0, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(1/(r995.PerHour*24)-9) > 0.15 {
		t.Errorf("Eq2 @99.5%% = 1/%.1f d, paper 1/9", 1/(r995.PerHour*24))
	}
}

func TestPaperConclusions(t *testing.T) {
	t.Parallel()
	// "Availability is significantly improved from a 1-instance
	// configuration to a 2-instance configuration ... by two 9's."
	one := solveAccept(t, Config{ASInstances: 1})
	two := solveAccept(t, Config1)
	if (1-two.Availability)*50 > (1 - one.Availability) {
		t.Errorf("redundancy gain < two nines: %v → %v", one.Availability, two.Availability)
	}
	// "The configuration with 4 AS instances and 4 HADB node pairs is the
	// optimal configuration."
	best := Config{}
	bestAvail := 0.0
	for _, cfg := range Table3Configs() {
		res := solveAccept(t, cfg)
		if res.Availability > bestAvail {
			bestAvail, best = res.Availability, cfg
		}
	}
	if best.ASInstances != 4 || best.HADBPairs != 4 {
		t.Errorf("optimal = %v, paper: 4 instances + 4 pairs", best)
	}
	// "The 99.999% availability level can no longer hold when the number
	// of HADB node pairs reaches 10."
	ten := solveAccept(t, Config{ASInstances: 10, HADBPairs: 10, HADBSpares: 2})
	if ten.Availability >= 0.99999 {
		t.Errorf("10 pairs kept five nines: %v", ten.Availability)
	}
	// "When the number of AS instances is 4 or above, the AS submodel's
	// yearly downtime is at the millisecond level."
	four, err := jsas.BuildAppServer(DefaultParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := four.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.YearlyDowntimeMinutes*60*1000 > 100 {
		t.Errorf("AS4 downtime = %.1f ms/yr, paper: millisecond level",
			res.YearlyDowntimeMinutes*60*1000)
	}
}
