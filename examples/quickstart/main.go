// Quickstart: build a small Markov reward model with the public API and
// read availability, yearly downtime, and MTBF off it.
//
// The model is a repairable component with a standby: the primary fails at
// 2/year; failover to the standby takes 30 seconds (a degraded but working
// state); the failed unit is repaired in 4 hours, during which a standby
// failure (also 2/year) takes the service down until repair completes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	avail "repro"
)

func main() {
	const (
		failuresPerHour = 2.0 / 8760 // 2 per year
		failoverPerHour = 120.0      // 30 s
		repairPerHour   = 0.25       // 4 h
	)

	b := avail.NewModelBuilder()
	ok := b.State("Ok")
	failover := b.State("Failover")
	degraded := b.State("Degraded")
	down := b.State("Down")

	b.Transition(ok, failover, failuresPerHour)       // primary fails
	b.Transition(failover, degraded, failoverPerHour) // standby takes over
	b.Transition(degraded, ok, repairPerHour)         // failed unit repaired
	b.Transition(degraded, down, failuresPerHour)     // standby fails too
	b.Transition(down, ok, repairPerHour)             // full repair

	m, err := b.Build()
	if err != nil {
		log.Fatalf("build model: %v", err)
	}

	// Reward 1 = working, 0 = failed. Failover and Degraded still serve.
	s, err := avail.BinaryReward(m, "Down")
	if err != nil {
		log.Fatalf("attach rewards: %v", err)
	}
	res, err := s.Solve(avail.SolveOptions{})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Printf("States: %d, transitions: %d\n", m.NumStates(), m.NumTransitions())
	fmt.Printf("Availability:    %.7f%%\n", res.Availability*100)
	fmt.Printf("Yearly downtime: %.3f minutes\n", res.YearlyDowntimeMinutes)
	fmt.Printf("MTBF:            %.0f hours\n", res.MTBFHours)
	fmt.Printf("Equivalent rates: lambda=%.3g/h mu=%.3g/h\n", res.LambdaEq, res.MuEq)

	for _, st := range m.States() {
		fmt.Printf("  pi[%-8s] = %.9f\n", m.Name(st), res.Pi[st])
	}
}
