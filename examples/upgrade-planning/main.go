// upgrade-planning studies the deployment question the paper's §4 raises
// but leaves out of its model: how should online upgrades be orchestrated?
// It compares a single cluster (which absorbs every upgrade window as
// planned downtime) against a dual-cluster deployment upgraded one side at
// a time, across upgrade cadences — and adds finite-mission availability
// for a holiday sale window.
//
// Run with:
//
//	go run ./examples/upgrade-planning
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/jsas"
)

func main() {
	p := jsas.DefaultParams()
	cfg := jsas.Config2 // the paper's optimal 4+4 configuration

	fmt.Println("Upgrade strategy comparison (Config 2, 1-hour windows):")
	fmt.Printf("%-22s %-26s %-26s\n", "upgrades/year", "single cluster (min/yr)", "dual cluster (min/yr)")
	for _, perYear := range []float64{0, 4, 12, 26, 52} {
		policy := jsas.UpgradePolicy{PerYear: perYear}
		if perYear > 0 {
			policy.Window = time.Hour
		}
		res, err := jsas.SolveDualCluster(cfg, p, policy)
		if err != nil {
			log.Fatalf("solve: %v", err)
		}
		fmt.Printf("%-22.0f %-26.2f %-26.4f\n",
			perYear, res.SingleClusterDowntimeMinutes, res.DualClusterDowntimeMinutes)
	}
	fmt.Println("\nA dual-cluster deployment keeps weekly upgrades invisible; a single")
	fmt.Println("cluster pays every window as downtime.")

	// Finite-mission view: availability over a 5-day sale starting healthy.
	mission := 5 * 24 * time.Hour
	ir, err := jsas.IntervalAvailability(cfg, p, mission)
	if err != nil {
		log.Fatalf("interval availability: %v", err)
	}
	fmt.Printf("\nMission view: over a healthy-start %v window, expected availability\n", mission)
	fmt.Printf("is %.7f%% (steady state %.7f%%), i.e. %v expected downtime.\n",
		ir.IntervalAvailability*100, ir.SteadyStateAvailability*100,
		ir.ExpectedDowntime.Round(time.Second))
}
