// custom-hierarchy models a system the paper does not cover — a three-tier
// web service (CDN edge, API cluster, replicated database) — to show that
// the hierarchical engine is a general tool, not a JSAS-only harness.
//
// Each tier is a submodel solved independently; the top-level model binds
// the tiers' equivalent (λ, μ) rates into a series system, exactly the
// RAScad workflow of the paper's Figure 2.
//
// Run with:
//
//	go run ./examples/custom-hierarchy
package main

import (
	"fmt"
	"log"

	avail "repro"
)

// tier builds an n-way active-active pool: the tier is down only when all
// members are down. Members fail at la/hour and restart at mu/hour.
func tier(n int, la, mu float64) func(avail.HierParams) (*avail.RewardStructure, error) {
	return func(avail.HierParams) (*avail.RewardStructure, error) {
		b := avail.NewModelBuilder()
		states := make([]avail.State, n+1)
		for i := 0; i <= n; i++ {
			states[i] = b.State(fmt.Sprintf("down%d", i))
		}
		for i := 0; i < n; i++ {
			b.Transition(states[i], states[i+1], float64(n-i)*la) // one more member fails
		}
		for i := 1; i <= n; i++ {
			b.Transition(states[i], states[i-1], float64(i)*mu) // one member restored
		}
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return avail.BinaryReward(m, fmt.Sprintf("down%d", n))
	}
}

func main() {
	edge := avail.NewComponent("CDN edge", tier(4, 8.0/8760, 12))    // 4 PoPs, 8 failures/yr, 5-min recovery
	api := avail.NewComponent("API cluster", tier(3, 26.0/8760, 40)) // 3 replicas, biweekly failures, 90-s restart
	db := avail.NewComponent("database", tier(2, 4.0/8760, 2))       // primary+replica, 30-min failover-repair

	top := avail.NewComponent("service", func(p avail.HierParams) (*avail.RewardStructure, error) {
		b := avail.NewModelBuilder()
		ok := b.State("Ok")
		for _, t := range []string{"edge", "api", "db"} {
			fail := b.State(t + "_fail")
			b.Transition(ok, fail, p["La_"+t])
			b.Transition(fail, ok, p["Mu_"+t])
		}
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return avail.BinaryReward(m, "edge_fail", "api_fail", "db_fail")
	})
	top.Use(edge, "La_edge", "Mu_edge")
	top.Use(api, "La_api", "Mu_api")
	top.Use(db, "La_db", "Mu_db")

	ev, err := avail.EvaluateHierarchy(top, nil)
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Printf("Three-tier service availability: %.7f%% (%.3f min downtime/yr, MTBF %.0f h)\n\n",
		ev.Result.Availability*100, ev.Result.YearlyDowntimeMinutes, ev.Result.MTBFHours)
	for _, child := range ev.Children {
		fmt.Printf("%-12s availability %.9f  lambda_eq %.3g/h  mu_eq %.3g/h\n",
			child.Name, child.Result.Availability, child.Result.LambdaEq, child.Result.MuEq)
	}

	// Which tier dominates downtime? Attribute it by failure cause.
	shares, err := ev.Structure.DowntimeShare(ev.Result.Pi, map[string][]string{
		"edge": {"edge_fail"}, "api": {"api_fail"}, "db": {"db_fail"},
	})
	if err != nil {
		log.Fatalf("downtime share: %v", err)
	}
	fmt.Println("\nYearly downtime by cause:")
	for _, tierName := range []string{"edge", "api", "db"} {
		fmt.Printf("  %-5s %.4f min/yr\n", tierName, shares[tierName])
	}
}
