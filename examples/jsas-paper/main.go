// jsas-paper reproduces every quantitative result of the DSN 2004 paper
// "Availability Measurement and Modeling for An Application Server" in one
// run: Table 2, Table 3, the Figure 5/6 sensitivity sweeps, the Figure 7/8
// uncertainty analyses, and the Equation (1)/(2) estimates from simulated
// measurements.
//
// Run with:
//
//	go run ./examples/jsas-paper
package main

import (
	"fmt"
	"log"
	"time"

	avail "repro"
	"repro/internal/jsas"
)

func main() {
	p := avail.DefaultParams()

	fmt.Println("=== Table 2: system results ===")
	for i, cfg := range []avail.Config{avail.Config1, avail.Config2} {
		res, err := avail.SolveJSAS(cfg, p)
		if err != nil {
			log.Fatalf("solve config %d: %v", i+1, err)
		}
		fmt.Printf("Config %d (%s):\n", i+1, cfg)
		fmt.Printf("  availability %.5f%%  downtime %.2f min/yr (AS %.2f, HADB %.2f)\n",
			res.Availability*100, res.YearlyDowntimeMinutes,
			res.DowntimeASMinutes, res.DowntimeHADBMinutes)
	}

	fmt.Println("\n=== Table 3: configuration comparison ===")
	fmt.Printf("%-10s %-12s %-14s %-10s\n", "instances", "availability", "downtime(min)", "MTBF(h)")
	for _, cfg := range avail.Table3Configs() {
		res, err := avail.SolveJSAS(cfg, p)
		if err != nil {
			log.Fatalf("solve %v: %v", cfg, err)
		}
		fmt.Printf("%-10d %-12.5f %-14.2f %-10.0f\n",
			cfg.ASInstances, res.Availability*100, res.YearlyDowntimeMinutes, res.MTBFHours)
	}

	fmt.Println("\n=== Figures 5/6: sensitivity to Tstart_long (0.5–3 h) ===")
	for i, cfg := range []avail.Config{avail.Config1, avail.Config2} {
		pts, err := avail.SweepTstartLong(cfg, p, 0.5, 3, 5)
		if err != nil {
			log.Fatalf("sweep config %d: %v", i+1, err)
		}
		fmt.Printf("Config %d:", i+1)
		for _, pt := range pts {
			fmt.Printf("  %.1fh→%.6f%%", pt.Value, pt.Availability*100)
		}
		fmt.Println()
	}

	fmt.Println("\n=== Figures 7/8: uncertainty analysis (1000 samples) ===")
	for i, cfg := range []avail.Config{avail.Config1, avail.Config2} {
		res, err := avail.RunUncertainty(cfg, p, avail.UncertaintyOptions{Samples: 1000, Seed: 2004})
		if err != nil {
			log.Fatalf("uncertainty config %d: %v", i+1, err)
		}
		ci80 := res.CIs[0.80]
		ci90 := res.CIs[0.90]
		fmt.Printf("Config %d: mean %.2f min/yr, 80%% CI (%.2f, %.2f), 90%% CI (%.2f, %.2f), %.0f%% above 5 nines\n",
			i+1, res.Summary.Mean, ci80.Low, ci80.High, ci90.Low, ci90.High,
			res.FractionBelow(5.25)*100)
	}

	fmt.Println("\n=== Equation (1): FIR bound from 3287 clean injections ===")
	for _, conf := range []float64{0.95, 0.995} {
		b, err := avail.CoverageLowerBound(3287, 3287, conf)
		if err != nil {
			log.Fatalf("coverage bound: %v", err)
		}
		fmt.Printf("  %.1f%% confidence: FIR ≤ %.4f%%\n", conf*100, b.FIR*100)
	}

	fmt.Println("\n=== Equation (2): failure-rate bound from the 24-day run ===")
	exposure := 2 * 24 * 24 * time.Hour // 2 instances × 24 days
	for _, conf := range []float64{0.95, 0.995} {
		b, err := avail.FailureRateUpperBound(exposure, 0, conf)
		if err != nil {
			log.Fatalf("rate bound: %v", err)
		}
		fmt.Printf("  %.1f%% confidence: λ ≤ 1 per %.1f days\n", conf*100, 1/(b.PerHour*24))
	}

	fmt.Println("\n=== Beyond the paper: extended analyses ===")
	ir, err := jsas.IntervalAvailability(avail.Config1, p, 24*time.Hour)
	if err != nil {
		log.Fatalf("interval availability: %v", err)
	}
	fmt.Printf("Interval availability, Config 1 over 24h from healthy: %.9f%%\n",
		ir.IntervalAvailability*100)
	perf, err := jsas.SolveAppServerPerformability(p, 2)
	if err != nil {
		log.Fatalf("performability: %v", err)
	}
	fmt.Printf("Delivered capacity of the 2-instance AS cluster: %.7f%% (hidden loss %.1f min/yr)\n",
		perf.ExpectedCapacity*100, perf.CapacityLossMinutesPerYear)
	dual, err := jsas.SolveDualCluster(avail.Config2, p, jsas.UpgradePolicy{PerYear: 12, Window: time.Hour})
	if err != nil {
		log.Fatalf("dual cluster: %v", err)
	}
	fmt.Printf("Monthly 1h upgrades: single cluster %.0f min/yr vs dual cluster %.2f min/yr\n",
		dual.SingleClusterDowntimeMinutes, dual.DualClusterDowntimeMinutes)
}
