// document-driven runs the complete paper workflow from the shipped JSON
// model documents alone — no Go model code. It loads the Figure 2/3/4
// hierarchy from models/jsas-config1.json, solves it, rescales it to
// Config 2 with a parameter override, and runs the §7 uncertainty analysis
// over the ranges declared inside the document.
//
// Run from the repository root with:
//
//	go run ./examples/document-driven
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/spec"
	"repro/internal/uncertainty"
)

func main() {
	f, err := os.Open("models/jsas-config1.json")
	if err != nil {
		log.Fatalf("open document (run from the repository root): %v", err)
	}
	defer f.Close()
	doc, err := spec.ParseHier(f)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	// Point solve: the paper's Config 1.
	ev, err := doc.Solve(nil)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Printf("%s: availability %.5f%%, downtime %.2f min/yr\n",
		doc.Name, ev.Result.Availability*100, ev.Result.YearlyDowntimeMinutes)
	for _, child := range ev.Children {
		fmt.Printf("  %-16s lambda_eq %.3g/h  mu_eq %.3g/h\n",
			child.Name, child.Result.LambdaEq, child.Result.MuEq)
	}

	// Same document, rescaled toward Config 2 by overriding N_pair.
	ev4, err := doc.Solve(map[string]float64{"N_pair": 4})
	if err != nil {
		log.Fatalf("solve N_pair=4: %v", err)
	}
	fmt.Printf("\nwith N_pair=4: availability %.5f%%, downtime %.2f min/yr\n",
		ev4.Result.Availability*100, ev4.Result.YearlyDowntimeMinutes)

	// Uncertainty analysis over the ranges declared in the document
	// itself (the paper's §7 parameter table travels with the model).
	res, err := doc.RunUncertainty(uncertainty.Options{Samples: 1000, Seed: 2004, Parallelism: 4})
	if err != nil {
		log.Fatalf("uncertainty: %v", err)
	}
	ci := res.CIs[0.80]
	fmt.Printf("\nuncertainty (%d samples): mean %.2f min/yr, 80%% CI (%.2f, %.2f)\n",
		res.Summary.N, res.Summary.Mean, ci.Low, ci.High)
	fmt.Println("variance drivers:")
	for name, rho := range res.Correlations() {
		fmt.Printf("  %-16s %+.3f\n", name, rho)
	}
}
