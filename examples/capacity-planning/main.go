// capacity-planning uses the model the way the paper's conclusions suggest
// ("useful in planning data centers and web services deployments"): given
// an availability target and a per-node cost, find the cheapest JSAS
// deployment that meets the target — under both the default parameters and
// pessimistic (uncertainty-range upper bound) failure rates.
//
// Run with:
//
//	go run ./examples/capacity-planning
package main

import (
	"fmt"
	"log"

	avail "repro"
)

const (
	target      = 0.99999 // five nines
	asNodeCost  = 4       // relative cost units per AS node
	dbNodeCost  = 3       // per HADB node (2 per pair + spares)
	maxInstance = 12
)

func cost(cfg avail.Config) int {
	return cfg.ASInstances*asNodeCost + (2*cfg.HADBPairs+cfg.HADBSpares)*dbNodeCost
}

func main() {
	defaults := avail.DefaultParams()

	// Pessimistic parameters: every uncertain rate at the top of its
	// uncertainty range, FIR at its 99.5%-confidence bound.
	pessimistic := defaults
	pessimistic.HADBFailuresPerYear = 4
	pessimistic.ASOSFailuresPerYear = 2
	pessimistic.HADBOSFailuresPerYear = 2
	pessimistic.ASHWFailuresPerYear = 2
	pessimistic.HADBHWFailuresPerYear = 2
	pessimistic.FIR = 0.002

	for _, scenario := range []struct {
		name   string
		params avail.Params
	}{
		{"default (paper §5) parameters", defaults},
		{"pessimistic (uncertainty upper-bound) parameters", pessimistic},
	} {
		fmt.Printf("=== %s ===\n", scenario.name)
		fmt.Printf("%-34s %-13s %-14s %s\n", "configuration", "availability", "downtime(min)", "cost")
		best := avail.Config{}
		bestCost := 1 << 30
		for n := 2; n <= maxInstance; n += 2 {
			// Stateful failover needs session persistence: at least one
			// HADB pair, scaled up to one pair per instance.
			for pairs := max(1, n/2); pairs <= n; pairs += max(1, n/2) {
				cfg := avail.Config{ASInstances: n, HADBPairs: pairs, HADBSpares: spares(pairs)}
				res, err := avail.SolveJSAS(cfg, scenario.params)
				if err != nil {
					log.Fatalf("solve %v: %v", cfg, err)
				}
				marker := " "
				if res.Availability >= target {
					marker = "*"
					if cost(cfg) < bestCost {
						best, bestCost = cfg, cost(cfg)
					}
				}
				fmt.Printf("%s %-46s %-13.5f %-14.3f %d\n",
					marker, cfg, res.Availability*100, res.YearlyDowntimeMinutes, cost(cfg))
			}
		}
		if bestCost < 1<<30 {
			fmt.Printf("cheapest five-nines deployment: %s (cost %d)\n\n", best, bestCost)
		} else {
			fmt.Printf("no deployment up to %d instances meets %.3f%%\n\n", maxInstance, target*100)
		}
	}
}

// spares follows the paper's sizing: 2 spares once there is any HADB tier.
func spares(pairs int) int {
	if pairs == 0 {
		return 0
	}
	return 2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
