// fault-injection drives the simulated testbed directly: it provokes the
// exact failure scenarios of the paper's §3 manual fault-injection list
// (process kills, cable pulls, power pulls on AS and HADB nodes) and
// prints a narrative of what the cluster did about each.
//
// Run with:
//
//	go run ./examples/fault-injection
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/jsas"
	"repro/internal/testbed"
)

func main() {
	params := jsas.DefaultParams()
	params.FIR = 0 // the demo testbed recovers perfectly, as the lab did
	cluster, err := testbed.New(testbed.Options{
		Config:              jsas.Config1,
		Params:              params,
		Seed:                42,
		SessionsPerInstance: 10000,
	})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}

	scenarios := []struct {
		describe string
		inject   func() error
	}{
		{"HADB node brought down by killing all related processes",
			func() error { return cluster.InjectHADB(0, 0, testbed.FaultProcessKill) }},
		{"HADB node communication disrupted by unplugging network cable",
			func() error { return cluster.InjectHADB(1, 0, testbed.FaultNetworkCut) }},
		{"HADB node hardware power unplugged",
			func() error { return cluster.InjectHADB(0, 1, testbed.FaultPowerOff) }},
		{"Application Server node brought down by killing processes",
			func() error { return cluster.InjectAS(0, testbed.FaultProcessKill) }},
		{"Application Server host network cable unplugged",
			func() error { return cluster.InjectAS(1, testbed.FaultNetworkCut) }},
	}

	for i, sc := range scenarios {
		// Let the cluster settle back to full health first.
		if err := settle(cluster); err != nil {
			log.Fatalf("scenario %d: %v", i+1, err)
		}
		start := cluster.Now()
		fmt.Printf("[%8s] INJECT: %s\n", fmtT(start), sc.describe)
		if err := sc.inject(); err != nil {
			log.Fatalf("scenario %d: %v", i+1, err)
		}
		snap := cluster.Snapshot()
		fmt.Printf("[%8s]   system up: %v (AS up: %v, pair nodes: %v)\n",
			fmtT(cluster.Now()), snap.SystemUp, snap.ASUp, snap.PairActiveNodes)
		if err := settle(cluster); err != nil {
			log.Fatalf("scenario %d: %v", i+1, err)
		}
		fmt.Printf("[%8s]   recovered after %s\n", fmtT(cluster.Now()),
			(cluster.Now() - start).Round(time.Second))
	}

	stats := cluster.Stats()
	fmt.Printf("\nTotals: %d recoveries, %d session failovers, downtime %s\n",
		len(stats.Recoveries), stats.SessionFailovers, stats.DownTime)
	fmt.Println("Per-recovery measurements:")
	for _, r := range stats.Recoveries {
		fmt.Printf("  %-4s %-7s recovered in %8s (injected=%v)\n",
			r.Component, r.Kind, r.Duration.Round(time.Second), r.Injected)
	}
}

// settle advances the simulation until every component is healthy again.
func settle(c *testbed.Cluster) error {
	for deadline := c.Now() + 6*time.Hour; c.Now() < deadline; {
		snap := c.Snapshot()
		healthy := snap.SystemUp
		for _, up := range snap.ASUp {
			healthy = healthy && up
		}
		for i, n := range snap.PairActiveNodes {
			healthy = healthy && n == 2 && !snap.PairDown[i]
		}
		if healthy {
			return nil
		}
		if err := c.Run(c.Now() + 10*time.Second); err != nil {
			return err
		}
	}
	return fmt.Errorf("cluster did not settle within 6 hours")
}

func fmtT(d time.Duration) string { return d.Round(time.Second).String() }
