package avail

// Benchmarks for the Bayesian-network backend (PR 9): BN solve cost at
// the replication scales the backend exists for, against the flat-CTMC
// cross-product at the scales it can still reach. The contrast is the
// point — ClusterProduct cost grows as 3^n and dies near n = 12, the BN
// counter-chain grows as n·k² and solves a 100-instance quorum in
// milliseconds.

import (
	"context"
	"testing"

	"repro/internal/backend"
	"repro/internal/ctmc"
	"repro/internal/jsas"
)

// benchmarkBayesCluster measures the end-to-end k-of-n solve on the BN
// backend: per-instance CTMC sub-solve, network construction, and exact
// variable-elimination inference — the same work `jsas-sweep
// -replication -backend bayes` does per sweep point.
func benchmarkBayesCluster(b *testing.B, n int) {
	b.Helper()
	p := DefaultParams()
	q := jsas.ClusterQuorum{Instances: n, Quorum: (n*9 + 9) / 10}
	var avail float64
	var size int
	for i := 0; i < b.N; i++ {
		net, err := jsas.ClusterBayes(p, q)
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.Solve(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		avail, size = res.Availability, res.Size
	}
	b.ReportMetric(avail, "availability")
	b.ReportMetric(float64(size), "BN-vars")
}

func BenchmarkBayesSolveCluster10(b *testing.B)  { benchmarkBayesCluster(b, 10) }
func BenchmarkBayesSolveCluster50(b *testing.B)  { benchmarkBayesCluster(b, 50) }
func BenchmarkBayesSolveCluster100(b *testing.B) { benchmarkBayesCluster(b, 100) }

// benchmarkCTMCCluster is the flat cross-product baseline at the sizes
// it remains tractable (3^n states; n = 10 is ~59k states, already three
// orders past the BN solve, and n = 13 trips hier.MaxProductStates).
func benchmarkCTMCCluster(b *testing.B, n int) {
	b.Helper()
	p := DefaultParams()
	q := jsas.ClusterQuorum{Instances: n, Quorum: (n*9 + 9) / 10}
	var avail float64
	for i := 0; i < b.N; i++ {
		s, err := jsas.ClusterProduct(p, q)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Solve(ctmc.SolveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		avail = res.Availability
	}
	b.ReportMetric(avail, "availability")
}

func BenchmarkCTMCSolveCluster4(b *testing.B) { benchmarkCTMCCluster(b, 4) }
func BenchmarkCTMCSolveCluster8(b *testing.B) { benchmarkCTMCCluster(b, 8) }

// BenchmarkBayesSolveJSASConfig1 measures the hybrid composition on the
// paper's Config 1 — the cross-validated twin of BenchmarkTable2Config1.
func BenchmarkBayesSolveJSASConfig1(b *testing.B) {
	p := DefaultParams()
	var avail float64
	for i := 0; i < b.N; i++ {
		res, err := jsas.SolveBackend(context.Background(), Config1, p, backend.KindBayes)
		if err != nil {
			b.Fatal(err)
		}
		avail = res.Availability
	}
	b.ReportMetric(avail, "availability")
}
