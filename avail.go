// Package avail is an availability modeling and measurement toolkit — an
// open reimplementation of the methodology in "Availability Measurement
// and Modeling for An Application Server" (Tang, Kumar, Duvur,
// Torbjornsen; DSN 2004).
//
// The package is a facade over the repository's internal engines:
//
//   - Markov reward models: build CTMCs with Builder, attach rewards, and
//     solve for availability, yearly downtime, MTBF, and equivalent
//     (λ, μ) abstractions (internal/ctmc, internal/reward).
//   - Hierarchical composition in the style of Sun's RAScad tool:
//     submodels are solved bottom-up and bound into parent models
//     (internal/hier).
//   - The paper's concrete JSAS EE7 models and parameters: the HADB
//     node-pair model, the N-instance Application Server model, and the
//     top-level system model (internal/jsas).
//   - Parametric sensitivity sweeps and Monte-Carlo uncertainty analysis
//     (internal/sensitivity, internal/uncertainty).
//   - Measurement-to-parameter estimators: χ² failure-rate upper bounds
//     and binomial/F coverage bounds (internal/estimate, internal/stats).
//   - A discrete-event simulated testbed of the JSAS cluster with fault
//     injection and longevity-run drivers (internal/testbed,
//     internal/faultinject, internal/workload).
//   - A declarative JSON model format (internal/spec).
//
// # Quick start
//
// Solve the paper's Config 1 (2 AS instances, 2 HADB pairs):
//
//	res, err := avail.SolveJSAS(avail.Config1, avail.DefaultParams())
//	if err != nil { ... }
//	fmt.Printf("availability %.5f%%, downtime %.2f min/yr\n",
//	    res.Availability*100, res.YearlyDowntimeMinutes)
//
// Build a custom two-state model:
//
//	b := avail.NewModelBuilder()
//	up, down := b.State("Up"), b.State("Down")
//	b.Transition(up, down, 0.001) // per hour
//	b.Transition(down, up, 4)
//	m, err := b.Build()
//	s, err := avail.BinaryReward(m, "Down")
//	res, err := s.Solve(avail.SolveOptions{})
package avail

import (
	"time"

	"repro/internal/ctmc"
	"repro/internal/estimate"
	"repro/internal/hier"
	"repro/internal/jsas"
	"repro/internal/reward"
	"repro/internal/sensitivity"
	"repro/internal/spec"
	"repro/internal/uncertainty"
)

// Core CTMC types.
type (
	// Model is an immutable continuous-time Markov chain.
	Model = ctmc.Model
	// ModelBuilder accumulates states and transitions.
	ModelBuilder = ctmc.Builder
	// State is a state handle within a Model.
	State = ctmc.State
	// SolveOptions selects and tunes the steady-state solver.
	SolveOptions = ctmc.SolveOptions
	// SolveDiagnostics records how a steady-state solve actually ran
	// (method used, sweeps, residual, dense fallback, wall time); point
	// SolveOptions.Diag at one to collect it.
	SolveDiagnostics = ctmc.Diagnostics
	// Solver is a reusable solve context (scratch storage + warm-start
	// cache) for repeated solves. Not safe for concurrent use: keep one
	// per goroutine. Set SolveOptions.Solver to thread it through solves.
	Solver = ctmc.Solver
)

// NewSolver returns an empty reusable solve context.
func NewSolver() *Solver { return ctmc.NewSolver() }

// Reward layer types.
type (
	// RewardStructure attaches reward rates to a model's states.
	RewardStructure = reward.Structure
	// Result carries availability, downtime, MTBF, and equivalent rates.
	Result = reward.Result
)

// Hierarchical modeling types.
type (
	// Component is a node in a hierarchical model tree.
	Component = hier.Component
	// HierParams is the parameter environment for hierarchy evaluation.
	HierParams = hier.Params
	// Evaluation is the solved hierarchy result tree.
	Evaluation = hier.Evaluation
)

// JSAS (paper) model types.
type (
	// Params is the paper's Section 5 parameter set.
	Params = jsas.Params
	// Config is a JSAS deployment shape.
	Config = jsas.Config
	// SystemResult is one solved configuration (a Table 2/3 row).
	SystemResult = jsas.SystemResult
)

// Analysis types.
type (
	// UncertaintyRange is a sampled parameter interval.
	UncertaintyRange = uncertainty.Range
	// UncertaintyOptions configures a Monte-Carlo analysis.
	UncertaintyOptions = uncertainty.Options
	// UncertaintyResult summarizes a Monte-Carlo analysis.
	UncertaintyResult = uncertainty.Result
	// SweepPoint is one sample of a parametric sweep.
	SweepPoint = sensitivity.Point
	// SweepOptions tunes how a sweep is driven (worker parallelism).
	SweepOptions = sensitivity.SweepOptions
	// ModelDocument is the declarative JSON model format.
	ModelDocument = spec.Document
)

// Paper configuration presets.
var (
	// Config1 is the paper's Config 1: 2 AS instances, 2 HADB pairs.
	Config1 = jsas.Config1
	// Config2 is the paper's Config 2: 4 AS instances, 4 HADB pairs.
	Config2 = jsas.Config2
)

// NewModelBuilder returns an empty CTMC builder.
func NewModelBuilder() *ModelBuilder { return ctmc.NewBuilder() }

// NewReward attaches per-state reward rates to a model.
func NewReward(m *Model, rates []float64) (*RewardStructure, error) {
	return reward.New(m, rates)
}

// BinaryReward builds a 0/1 reward structure from the named down states.
func BinaryReward(m *Model, downStates ...string) (*RewardStructure, error) {
	return reward.Binary(m, downStates...)
}

// NewComponent creates a hierarchy node from a build function.
func NewComponent(name string, build func(HierParams) (*RewardStructure, error)) *Component {
	return hier.NewComponent(name, build)
}

// EvaluateHierarchy solves a hierarchy bottom-up.
func EvaluateHierarchy(c *Component, params HierParams) (*Evaluation, error) {
	return hier.Evaluate(c, params, hier.Options{})
}

// DefaultParams returns the paper's Section 5 parameters.
func DefaultParams() Params { return jsas.DefaultParams() }

// Table3Configs returns the six configurations of the paper's Table 3.
func Table3Configs() []Config { return jsas.Table3Configs() }

// SolveJSAS evaluates the full JSAS hierarchy for a configuration.
func SolveJSAS(cfg Config, p Params) (*SystemResult, error) {
	return jsas.Solve(cfg, p)
}

// BuildHADBPair constructs the paper's Figure 3 HADB node-pair model.
func BuildHADBPair(p Params) (*RewardStructure, error) {
	return jsas.BuildHADBPair(p)
}

// BuildAppServer constructs the paper's Figure 4 Application Server model
// generalized to n instances.
func BuildAppServer(p Params, n int) (*RewardStructure, error) {
	return jsas.BuildAppServer(p, n)
}

// PaperUncertaintyRanges returns the six sampled parameter ranges of the
// paper's uncertainty analysis.
func PaperUncertaintyRanges() []UncertaintyRange { return jsas.PaperUncertaintyRanges() }

// RunUncertainty performs the Monte-Carlo uncertainty analysis of yearly
// downtime for a JSAS configuration (the paper's Figures 7/8).
func RunUncertainty(cfg Config, p Params, opts UncertaintyOptions) (*UncertaintyResult, error) {
	return uncertainty.Run(jsas.PaperUncertaintyRanges(), jsas.UncertaintySolver(cfg, p), opts)
}

// SweepTstartLong sweeps the AS HW/OS recovery time across [fromHours,
// toHours] (the paper's Figures 5/6).
func SweepTstartLong(cfg Config, p Params, fromHours, toHours float64, steps int) ([]SweepPoint, error) {
	return sensitivity.Sweep(fromHours, toHours, steps, jsas.TstartLongSweepSolver(cfg, p))
}

// SweepTstartLongWith is SweepTstartLong with driver options (parallel
// point evaluation; results are identical at any parallelism).
func SweepTstartLongWith(cfg Config, p Params, fromHours, toHours float64, steps int, opts SweepOptions) ([]SweepPoint, error) {
	return sensitivity.SweepWith(fromHours, toHours, steps, jsas.TstartLongSweepSolver(cfg, p), opts)
}

// FailureRateBound is a one-sided upper confidence bound on a failure rate.
type FailureRateBound = estimate.FailureRateBound

// CoverageBound is a one-sided lower confidence bound on recovery coverage.
type CoverageBound = estimate.CoverageBound

// FailureRateUpperBound applies the paper's Equation (2) χ² bound: given
// total exposure and an observed failure count, it bounds the failure rate
// from above at the stated confidence.
func FailureRateUpperBound(exposure time.Duration, failures int, confidence float64) (FailureRateBound, error) {
	return estimate.FailureRateUpperBound(exposure, failures, confidence)
}

// CoverageLowerBound applies the paper's Equation (1) bound: given a fault
// injection campaign's trial and success counts, it bounds the coverage
// (1 − FIR) from below at the stated confidence.
func CoverageLowerBound(trials, successes int, confidence float64) (CoverageBound, error) {
	return estimate.CoverageLowerBound(trials, successes, confidence)
}
