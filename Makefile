# Standard developer entry points. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race cover bench reproduce tables figures verify fmt-check trace-demo drain-smoke clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt cleanliness: fail listing any file that needs formatting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; fi

# Pre-merge verification: formatting, build, vet, the full test suite,
# a race-detector pass over the packages with concurrent hot paths (the
# DES kernel, the metrics registry, the flight recorder, the shared
# worker pool, the solver workspaces, the sweep/Monte-Carlo drivers, the
# replicated measurement campaigns, the DES testbed, the HTTP handlers,
# the BN inference engine), an explicit CTMC-vs-Bayes cross-validation
# pass (the two backends must agree on the paper's configurations within
# tolerance — the multi-backend contract), a benchmark smoke run (1
# iteration each) to catch bit-rot in the bench
# harness, and an allocation smoke check: one iteration of the unsharded
# campaign must stay under MAX_CAMPAIGN_ALLOCS allocations (the pooled
# kernel runs a 400-injection campaign in ~9.2k allocs; losing the Sim,
# cluster, or event free-list reuse multiplies that, and this gate
# catches the regression before it erodes the interactive-campaign
# latency budget).
#
# A second gate keeps the live-telemetry plane effectively free: the
# 2000-injection campaign with a progress tracker and availability time
# series attached (BenchmarkCampaignTelemetryOn) must stay within
# MAX_TELEMETRY_RATIO of the plain campaign. On/Off are measured
# back-to-back within each round and the gate takes the best ratio of
# three rounds — a load spike inflates both sides of a round roughly
# equally, so the paired ratio stays meaningful on a busy single-CPU
# host where raw ns/op swings ±30%.
#
# A third gate protects the async job engine's reason to exist: a result
# served from the LRU cache must be at least MIN_JOBCACHE_SPEEDUP times
# faster than computing it (the miss path runs a real 100-sample
# uncertainty analysis, so the ratio is measured against genuine solver
# work — it sits around 1000× on an idle host, and 100× leaves room for
# load noise without ever passing on a broken cache).
# A fourth gate bounds the correlated-injection tax: the 2000-injection
# campaign with fault domains, a common-cause fraction, and a partition
# fraction (BenchmarkCampaignCorrelated) must stay within
# MAX_CORRELATED_RATIO of the independent campaign. The correlated path
# genuinely does more simulation work (multi-component bursts, partition
# heal events, per-cause accounting), so the bound is looser than the
# telemetry gate, but it still catches accidental per-injection overhead
# leaking into the independent-dominated mix. Measured back-to-back,
# best-of-3, same as the telemetry gate.
MAX_CAMPAIGN_ALLOCS ?= 12000
MAX_TELEMETRY_RATIO ?= 1.10
MIN_JOBCACHE_SPEEDUP ?= 100
MAX_CORRELATED_RATIO ?= 1.25

verify: fmt-check
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/des/... ./internal/obs/... ./internal/progress/... ./internal/trace/... ./internal/ctmc/... ./internal/jsas/... ./internal/pool/... ./internal/sensitivity/... ./internal/testbed/... ./internal/uncertainty/... ./internal/faultinject/... ./internal/workload/... ./internal/httpapi/... ./internal/jobs/... ./internal/bayes/...
	@echo "verify: cross-validating the bayes backend against the CTMC engine"
	$(GO) test -run 'TestBayesCTMCCrossValidation|TestClusterBackendsAgree|TestRedundancyBackendsAgree' -count=1 ./internal/jsas ./internal/spec
	$(GO) run ./cmd/bench-record -bench 'Table2|SteadyStateGS200|SweepParallel' -benchtime 1x -out /tmp/bench-smoke.json
	@$(GO) run ./cmd/bench-record -bench 'CampaignUnsharded' -benchtime 1x -benchmem -out /tmp/bench-allocs.json; \
	allocs="$$($(GO) run ./cmd/bench-record -print-metric allocs/op -in /tmp/bench-allocs.json)"; \
	echo "verify: BenchmarkCampaignUnsharded allocs/op = $$allocs (max $(MAX_CAMPAIGN_ALLOCS))"; \
	[ "$${allocs%.*}" -le "$(MAX_CAMPAIGN_ALLOCS)" ] || { echo "verify: allocation regression in BenchmarkCampaignUnsharded"; exit 1; }
	@best=""; for i in 1 2 3; do \
		$(GO) run ./cmd/bench-record -bench 'CampaignTelemetry(On|Off)$$' -benchtime 300ms -out /tmp/bench-telemetry.json 2>/dev/null; \
		off="$$($(GO) run ./cmd/bench-record -print-metric ns/op -select 'TelemetryOff' -in /tmp/bench-telemetry.json)"; \
		on="$$($(GO) run ./cmd/bench-record -print-metric ns/op -select 'TelemetryOn' -in /tmp/bench-telemetry.json)"; \
		r="$$(awk -v on="$$on" -v off="$$off" 'BEGIN { printf "%.4f", on/off }')"; \
		echo "verify: telemetry round $$i: on=$$on off=$$off ratio=$$r"; \
		if [ -z "$$best" ] || awk -v a="$$r" -v b="$$best" 'BEGIN { exit !(a < b) }'; then best="$$r"; fi; \
	done; \
	echo "verify: campaign telemetry overhead: best-of-3 ratio $$best (max $(MAX_TELEMETRY_RATIO))"; \
	awk -v r="$$best" -v max="$(MAX_TELEMETRY_RATIO)" \
		'BEGIN { if (r > max) { printf "verify: telemetry overhead ratio %s exceeds %s\n", r, max; exit 1 } }'
	@$(GO) run ./cmd/bench-record -bench 'JobCache(Hit|Miss)$$' -benchtime 200ms -out /tmp/bench-jobcache.json 2>/dev/null; \
	miss="$$($(GO) run ./cmd/bench-record -print-metric ns/op -select 'JobCacheMiss' -in /tmp/bench-jobcache.json)"; \
	hit="$$($(GO) run ./cmd/bench-record -print-metric ns/op -select 'JobCacheHit' -in /tmp/bench-jobcache.json)"; \
	speedup="$$(awk -v m="$$miss" -v h="$$hit" 'BEGIN { printf "%.0f", m/h }')"; \
	echo "verify: job cache: miss=$$miss ns/op hit=$$hit ns/op speedup=$${speedup}x (min $(MIN_JOBCACHE_SPEEDUP)x)"; \
	awk -v s="$$speedup" -v min="$(MIN_JOBCACHE_SPEEDUP)" \
		'BEGIN { if (s < min) { printf "verify: job cache hit only %sx faster than miss (min %sx)\n", s, min; exit 1 } }'
	@best=""; for i in 1 2 3; do \
		$(GO) run ./cmd/bench-record -bench 'Campaign(Unsharded|Correlated)$$' -benchtime 300ms -out /tmp/bench-correlated.json 2>/dev/null; \
		ind="$$($(GO) run ./cmd/bench-record -print-metric ns/op -select 'CampaignUnsharded' -in /tmp/bench-correlated.json)"; \
		cor="$$($(GO) run ./cmd/bench-record -print-metric ns/op -select 'CampaignCorrelated' -in /tmp/bench-correlated.json)"; \
		r="$$(awk -v c="$$cor" -v i="$$ind" 'BEGIN { printf "%.4f", c/i }')"; \
		echo "verify: correlated round $$i: correlated=$$cor independent=$$ind ratio=$$r"; \
		if [ -z "$$best" ] || awk -v a="$$r" -v b="$$best" 'BEGIN { exit !(a < b) }'; then best="$$r"; fi; \
	done; \
	echo "verify: correlated campaign overhead: best-of-3 ratio $$best (max $(MAX_CORRELATED_RATIO))"; \
	awk -v r="$$best" -v max="$(MAX_CORRELATED_RATIO)" \
		'BEGIN { if (r > max) { printf "verify: correlated overhead ratio %s exceeds %s\n", r, max; exit 1 } }'

# Short traced fault-injection campaign: writes /tmp/jsas-trace.jsonl and
# prints the reconstructed outage timeline and downtime decomposition.
trace-demo:
	$(GO) run ./cmd/jsas-faultinject -n 150 -seed 1 -fir 0.2 -trace /tmp/jsas-trace.jsonl

# Graceful-shutdown smoke test: boot avail-server, put a Monte-Carlo
# request in flight, SIGTERM the server mid-request, and require both a
# clean (drained) exit and a completed response.
drain-smoke:
	@$(GO) build -o /tmp/avail-server-smoke ./cmd/avail-server
	@set -e; \
	/tmp/avail-server-smoke -addr 127.0.0.1:18080 -shutdown-timeout 15s & pid=$$!; \
	sleep 1; \
	curl -s "http://127.0.0.1:18080/v1/jsas/uncertainty?samples=5000" > /tmp/drain-smoke.json & req=$$!; \
	sleep 0.2; \
	kill -TERM $$pid; \
	wait $$pid || { echo "drain-smoke: server exited non-zero"; exit 1; }; \
	wait $$req || { echo "drain-smoke: in-flight request failed"; exit 1; }; \
	grep -q meanDowntimeMinutes /tmp/drain-smoke.json || { echo "drain-smoke: in-flight response truncated"; exit 1; }; \
	echo "drain-smoke: ok (server drained; in-flight request completed)"

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One benchmark iteration per table/figure: regenerates the paper's rows
# as b.ReportMetric values, then records the solver and measurement
# benchmarks as a machine-readable performance snapshot for THIS PR.
# Snapshots are per-PR — `make bench PR=6` writes BENCH_PR6.json and
# leaves every earlier BENCH_PR*.json untouched, so speedups stay
# auditable across the whole PR sequence (BENCH_PR3.json and
# BENCH_PR4.json are the pre-rebuild baselines).
PR ?= 10

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/bench-record -bench 'Sweep|Uncertainty|Table|Campaign(Unsharded|Replicated|Telemetry|Correlated|Partition)|LongevitySeries|JobCache(Hit|Miss|Coalesced)|BayesSolve|CTMCSolveCluster' -benchtime 500ms -benchmem -out BENCH_PR$(PR).json

# Full paper reproduction to stdout.
reproduce:
	$(GO) run ./examples/jsas-paper

tables:
	$(GO) run ./cmd/jsas-tables

figures:
	$(GO) run ./cmd/jsas-sweep -config 1
	$(GO) run ./cmd/jsas-sweep -config 2
	$(GO) run ./cmd/jsas-uncertainty -config 1
	$(GO) run ./cmd/jsas-uncertainty -config 2

clean:
	rm -f cover.out
