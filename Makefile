# Standard developer entry points. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race cover bench reproduce tables figures verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Pre-merge verification: build, vet, the full test suite, and a
# race-detector pass over the packages with concurrent hot paths (the
# metrics registry, the Monte-Carlo worker pool, the HTTP handlers).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/... ./internal/uncertainty/... ./internal/httpapi/...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One benchmark iteration per table/figure: regenerates the paper's rows
# as b.ReportMetric values.
bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper reproduction to stdout.
reproduce:
	$(GO) run ./examples/jsas-paper

tables:
	$(GO) run ./cmd/jsas-tables

figures:
	$(GO) run ./cmd/jsas-sweep -config 1
	$(GO) run ./cmd/jsas-sweep -config 2
	$(GO) run ./cmd/jsas-uncertainty -config 1
	$(GO) run ./cmd/jsas-uncertainty -config 2

clean:
	rm -f cover.out
