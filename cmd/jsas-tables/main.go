// Command jsas-tables solves the paper's JSAS availability models and
// prints Table 2 (Config 1/2 results with downtime split by submodel) and
// Table 3 (configuration comparison).
//
// Usage:
//
//	jsas-tables [-table3] [-csv] [-beta 0]
//
// With -beta > 0 the solve includes the beta-factor common-cause failure
// mode (e.g. the measured fraction from a correlated jsas-faultinject
// campaign) and Table 2 gains a "YD due to CC" column; with the default
// -beta 0 the output is exactly the paper's tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/jsas"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-tables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsas-tables", flag.ContinueOnError)
	table3Only := fs.Bool("table3", false, "print only Table 3")
	table2Only := fs.Bool("table2", false, "print only Table 2")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	beta := fs.Float64("beta", 0, "beta-factor common-cause fraction in [0,1) (0 = paper model)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := jsas.DefaultParams()
	p.Beta = *beta
	if !*table3Only {
		t, err := table2(p)
		if err != nil {
			return err
		}
		if err := emit(t, *csv); err != nil {
			return err
		}
		fmt.Println()
	}
	if !*table2Only {
		t, err := table3(p)
		if err != nil {
			return err
		}
		if err := emit(t, *csv); err != nil {
			return err
		}
	}
	return nil
}

func emit(t *report.Table, csv bool) error {
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}

func table2(p jsas.Params) (*report.Table, error) {
	cols := []string{"Configuration", "Availability", "Yearly Downtime", "YD due to AS", "YD due to HADB"}
	if p.Beta > 0 {
		cols = append(cols, "YD due to CC")
	}
	t := report.NewTable("Table 2. System Results", cols...)
	for i, cfg := range []jsas.Config{jsas.Config1, jsas.Config2} {
		res, err := jsas.Solve(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("solve config %d: %w", i+1, err)
		}
		asShare := res.DowntimeASMinutes / res.YearlyDowntimeMinutes * 100
		hadbShare := res.DowntimeHADBMinutes / res.YearlyDowntimeMinutes * 100
		row := []string{
			fmt.Sprintf("Config %d (%s)", i+1, cfg),
			report.Availability(res.Availability),
			report.Minutes(res.YearlyDowntimeMinutes),
			fmt.Sprintf("%s (%.2f%%)", report.Minutes(res.DowntimeASMinutes), asShare),
			fmt.Sprintf("%s (%.2f%%)", report.Minutes(res.DowntimeHADBMinutes), hadbShare),
		}
		if p.Beta > 0 {
			ccShare := res.DowntimeCommonCauseMinutes / res.YearlyDowntimeMinutes * 100
			row = append(row, fmt.Sprintf("%s (%.2f%%)", report.Minutes(res.DowntimeCommonCauseMinutes), ccShare))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func table3(p jsas.Params) (*report.Table, error) {
	t := report.NewTable(
		"Table 3. Comparison of Configurations",
		"# of Instances", "# of HADB Pairs", "Availability", "Yearly Downtime", "MTBF (hr.)",
	)
	for _, cfg := range jsas.Table3Configs() {
		res, err := jsas.Solve(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("solve %v: %w", cfg, err)
		}
		pairs := "N/A"
		if cfg.HADBPairs > 0 {
			pairs = fmt.Sprintf("%d", cfg.HADBPairs)
		}
		t.AddRow(
			fmt.Sprintf("%d", cfg.ASInstances),
			pairs,
			report.Availability(res.Availability),
			report.Minutes(res.YearlyDowntimeMinutes),
			fmt.Sprintf("%.0f", res.MTBFHours),
		)
	}
	return t, nil
}
