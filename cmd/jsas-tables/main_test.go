package main

import (
	"testing"

	"repro/internal/jsas"
)

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTable3Only(t *testing.T) {
	if err := run([]string{"-table3"}); err != nil {
		t.Fatalf("run -table3: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-table2", "-csv"}); err != nil {
		t.Fatalf("run -csv: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTables(t *testing.T) {
	// The table builders are exercised directly for their row counts.
	p := jsas.DefaultParams()
	t2, err := table2(p)
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if len(t2.Rows) != 2 {
		t.Errorf("table2 rows = %d, want 2", len(t2.Rows))
	}
	t3, err := table3(p)
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	if len(t3.Rows) != 6 {
		t.Errorf("table3 rows = %d, want 6", len(t3.Rows))
	}
	// The 1-instance row reports no HADB tier.
	if t3.Rows[0][1] != "N/A" {
		t.Errorf("row 1 pairs = %q, want N/A", t3.Rows[0][1])
	}
}
