// Command jsas-uncertainty reproduces the paper's Figures 7 and 8: the
// Monte-Carlo uncertainty analysis of yearly downtime over the six
// parameter ranges of Section 7, reporting the mean, 80%/90% confidence
// intervals, and the fraction of sampled systems above five nines.
//
// Usage:
//
//	jsas-uncertainty [-config 1|2] [-samples 1000] [-seed 2004]
//	                 [-sampler uniform|lhs] [-scatter] [-parallel N]
//	                 [-stats] [-progress]
//
// With -progress a live status line (samples completed, rate, ETA, and
// the running mean yearly downtime ± its 95% CI half-width) is printed
// to stderr once per second; stdout stays byte-identical to a run
// without the flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/jsas"
	"repro/internal/obs"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/uncertainty"
)

func main() {
	// Ctrl-C / SIGTERM cancels the Monte-Carlo run at pool-task
	// granularity instead of leaving workers running.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-uncertainty:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jsas-uncertainty", flag.ContinueOnError)
	configNo := fs.Int("config", 1, "paper configuration to analyze (1 or 2)")
	samples := fs.Int("samples", 1000, "number of Monte-Carlo samples")
	seed := fs.Int64("seed", 2004, "random seed")
	samplerName := fs.String("sampler", "uniform", "sampling scheme: uniform or lhs")
	scatter := fs.Bool("scatter", false, "emit the raw (snapshot, downtime) scatter series as CSV")
	parallel := fs.Int("parallel", 1, "worker goroutines for the per-sample solves")
	statsFlag := fs.Bool("stats", false, "print run diagnostics (per-sample latency, worker utilization, solver metrics) to stderr")
	showProgress := fs.Bool("progress", false, "print a live status line (rate, ETA, running mean downtime ± CI) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg jsas.Config
	switch *configNo {
	case 1:
		cfg = jsas.Config1
	case 2:
		cfg = jsas.Config2
	default:
		return fmt.Errorf("config %d: want 1 or 2", *configNo)
	}
	var sampler uncertainty.Sampler
	switch *samplerName {
	case "uniform":
		sampler = uncertainty.SamplerUniform
	case "lhs":
		sampler = uncertainty.SamplerLatinHypercube
	default:
		return fmt.Errorf("sampler %q: want uniform or lhs", *samplerName)
	}
	var tracker *progress.Tracker
	if *showProgress {
		tracker = progress.New(int64(*samples),
			progress.WithStat("downtimeMin"), progress.WithUnit("samples"))
	}
	reporter := progress.NewReporter(tracker, os.Stderr, "uncertainty", time.Second)
	reporter.Start()
	res, err := uncertainty.RunCtx(ctx,
		jsas.PaperUncertaintyRanges(),
		jsas.UncertaintySolver(cfg, jsas.DefaultParams()),
		uncertainty.Options{Samples: *samples, Seed: *seed, Sampler: sampler,
			Parallelism: *parallel, Progress: tracker},
	)
	reporter.Stop()
	if err != nil {
		return err
	}
	if *statsFlag {
		fmt.Fprintf(os.Stderr, "Run diagnostics: %s\n", res.Diag)
		fmt.Fprintln(os.Stderr, "Engine metrics:")
		if err := obs.Default().WriteSummary(os.Stderr); err != nil {
			return err
		}
	}
	if *scatter {
		t := report.NewTable("", "snapshot", "yearly_downtime_minutes")
		for i, d := range res.Downtimes {
			t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%.4f", d))
		}
		return t.WriteCSV(os.Stdout)
	}
	fig := 7
	if *configNo == 2 {
		fig = 8
	}
	fmt.Printf("Figure %d. Multivariate Analysis of Yearly Downtime for Config %d\n", fig, *configNo)
	fmt.Printf("Samples: %d (%s sampling, seed %d)\n\n", res.Summary.N, sampler, *seed)
	fmt.Printf("Mean = %.2f minutes/year\n", res.Summary.Mean)
	for _, c := range res.SortedConfidences() {
		ci := res.CIs[c]
		fmt.Printf("%2.0f%% CI = (%.2f, %.2f)\n", c*100, ci.Low, ci.High)
	}
	// 5.25 min/yr is the paper's five-nines threshold.
	fmt.Printf("Fraction of sampled systems above 99.999%% availability (YD < 5.25 min): %.1f%%\n",
		res.FractionBelow(5.25)*100)
	fmt.Println("\nVariance drivers (Spearman rank correlation with downtime):")
	corr := res.Correlations()
	names := make([]string, 0, len(corr))
	for n := range corr {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return math.Abs(corr[names[i]]) > math.Abs(corr[names[j]])
	})
	for _, n := range names {
		fmt.Printf("  %-12s %+.3f\n", n, corr[n])
	}
	fmt.Println()
	hist := stats.Histogram(res.Downtimes, 12)
	t := report.NewTable("Downtime distribution", "bin (min/yr)", "count", "")
	maxCount := 0
	for _, b := range hist {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range hist {
		bar := ""
		if maxCount > 0 {
			n := b.Count * 40 / maxCount
			for i := 0; i < n; i++ {
				bar += "#"
			}
		}
		t.AddRow(fmt.Sprintf("%.2f–%.2f", b.Low, b.High), fmt.Sprintf("%d", b.Count), bar)
	}
	return t.Render(os.Stdout)
}
