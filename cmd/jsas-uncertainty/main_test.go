package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"testing"
)

func TestRunConfig1(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "1", "-samples", "50"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunConfig2LHS(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "2", "-samples", "50", "-sampler", "lhs"}); err != nil {
		t.Fatalf("run lhs: %v", err)
	}
}

func TestRunScatter(t *testing.T) {
	if err := run(context.Background(), []string{"-samples", "20", "-scatter"}); err != nil {
		t.Fatalf("run -scatter: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "9"}); err == nil {
		t.Fatal("config 9 accepted")
	}
	if err := run(context.Background(), []string{"-sampler", "bogus"}); err == nil {
		t.Fatal("bogus sampler accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run(context.Background(), []string{"-samples", "100", "-parallel", "4"}); err != nil {
		t.Fatalf("run -parallel: %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns everything
// it printed; the reporter's stderr lines are deliberately not captured.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(&buf, r)
		close(done)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	<-done
	if ferr != nil {
		t.Fatalf("run: %v", ferr)
	}
	return buf.Bytes()
}

// TestProgressKeepsStdoutIdentical: -progress may only write to stderr.
func TestProgressKeepsStdoutIdentical(t *testing.T) {
	args := []string{"-samples", "60", "-seed", "9", "-parallel", "2"}
	plain := captureStdout(t, func() error { return run(context.Background(), args) })
	tracked := captureStdout(t, func() error {
		return run(context.Background(), append(append([]string{}, args...), "-progress"))
	})
	if !bytes.Equal(plain, tracked) {
		t.Fatalf("-progress changed stdout:\n--- plain ---\n%s\n--- tracked ---\n%s", plain, tracked)
	}
}
