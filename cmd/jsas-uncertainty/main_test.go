package main

import (
	"context"
	"testing"
)

func TestRunConfig1(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "1", "-samples", "50"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunConfig2LHS(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "2", "-samples", "50", "-sampler", "lhs"}); err != nil {
		t.Fatalf("run lhs: %v", err)
	}
}

func TestRunScatter(t *testing.T) {
	if err := run(context.Background(), []string{"-samples", "20", "-scatter"}); err != nil {
		t.Fatalf("run -scatter: %v", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "9"}); err == nil {
		t.Fatal("config 9 accepted")
	}
	if err := run(context.Background(), []string{"-sampler", "bogus"}); err == nil {
		t.Fatal("bogus sampler accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run(context.Background(), []string{"-samples", "100", "-parallel", "4"}); err != nil {
		t.Fatalf("run -parallel: %v", err)
	}
}
