package main

import (
	"context"
	"testing"
)

func TestRunSmallCampaign(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "25"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithMeasure(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "25", "-measure"}); err != nil {
		t.Fatalf("run -measure: %v", err)
	}
}

func TestRunWithGroundTruthFIR(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "25", "-fir", "0.05"}); err != nil {
		t.Fatalf("run -fir: %v", err)
	}
}

func TestRunReplicated(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "24", "-replicas", "3", "-parallel", "2"}); err != nil {
		t.Fatalf("run -replicas: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "0"}); err == nil {
		t.Fatal("zero injections accepted")
	}
	if err := run(context.Background(), []string{"-n", "5", "-replicas", "-2"}); err == nil {
		t.Fatal("negative replicas accepted")
	}
}
