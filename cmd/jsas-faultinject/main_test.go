package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"testing"

	"path/filepath"
)

func TestRunSmallCampaign(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "25"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithMeasure(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "25", "-measure"}); err != nil {
		t.Fatalf("run -measure: %v", err)
	}
}

func TestRunWithGroundTruthFIR(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "25", "-fir", "0.05"}); err != nil {
		t.Fatalf("run -fir: %v", err)
	}
}

func TestRunReplicated(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "24", "-replicas", "3", "-parallel", "2"}); err != nil {
		t.Fatalf("run -replicas: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "0"}); err == nil {
		t.Fatal("zero injections accepted")
	}
	if err := run(context.Background(), []string{"-n", "5", "-replicas", "-2"}); err == nil {
		t.Fatal("negative replicas accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns everything
// it printed; the reporter's stderr lines are deliberately not captured.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(&buf, r)
		close(done)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	<-done
	if ferr != nil {
		t.Fatalf("run: %v", ferr)
	}
	return buf.Bytes()
}

// TestProgressKeepsStdoutIdentical: -progress may only write to stderr;
// stdout stays byte-for-byte what it is without the flag.
func TestProgressKeepsStdoutIdentical(t *testing.T) {
	args := []string{"-n", "40", "-seed", "5"}
	plain := captureStdout(t, func() error { return run(context.Background(), args) })
	tracked := captureStdout(t, func() error {
		return run(context.Background(), append(append([]string{}, args...), "-progress"))
	})
	if !bytes.Equal(plain, tracked) {
		t.Fatalf("-progress changed stdout:\n--- plain ---\n%s\n--- tracked ---\n%s", plain, tracked)
	}
}

// TestTimeSeriesFlagDeterministic: the -timeseries file is byte-identical
// for every -parallel setting, and stdout is unchanged by the flag.
func TestTimeSeriesFlagDeterministic(t *testing.T) {
	dir := t.TempDir()
	render := func(parallel string) ([]byte, []byte) {
		path := filepath.Join(dir, "ts-"+parallel+".json")
		out := captureStdout(t, func() error {
			return run(context.Background(), []string{
				"-n", "36", "-seed", "11", "-replicas", "3", "-parallel", parallel,
				"-timeseries", path, "-window", "30m",
			})
		})
		ts, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return ts, out
	}
	ts1, out1 := render("1")
	ts3, out3 := render("3")
	if !bytes.Equal(ts1, ts3) {
		t.Fatal("-timeseries file differs across -parallel settings")
	}
	if !bytes.Equal(out1, out3) {
		t.Fatal("stdout differs across -parallel settings")
	}
	if len(ts1) == 0 || ts1[0] != '{' {
		t.Fatalf("timeseries file does not look like JSON: %.60s", ts1)
	}
	plain := captureStdout(t, func() error {
		return run(context.Background(), []string{"-n", "36", "-seed", "11", "-replicas", "3", "-parallel", "1"})
	})
	if !bytes.Equal(plain, out1) {
		t.Fatal("-timeseries changed stdout")
	}
}
