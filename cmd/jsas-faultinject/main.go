// Command jsas-faultinject runs a fault-injection campaign against the
// simulated JSAS testbed, reproducing the paper's §3 methodology and the
// Equation (1) FIR estimate of §5 ("for over 3,000 fault injections ...
// all recoveries were successful"; FIR < 0.1% at 95% confidence).
//
// Usage:
//
//	jsas-faultinject [-n 3287] [-seed 2004] [-fir 0] [-measure]
//	                 [-replicas 1] [-parallel 0] [-trace out.jsonl]
//	                 [-progress] [-timeseries out.json] [-window 1h]
//	                 [-domains domains.json] [-ccf 0] [-partition 0]
//
// With -domains (a spec fault-domain document) and -ccf/-partition the
// campaign injects correlated faults alongside the independent taxonomy:
// a -ccf fraction of injections are domain-level common-cause bursts
// failing every member of a random domain at once, and a -partition
// fraction are network partitions isolating a random subset of AS
// instances from the load balancer (alive but serving nothing). The
// report then decomposes injections, component failures, and downtime by
// cause class, prints the measured common-cause fraction (beta), and
// cross-checks it against the analytic beta-factor model on both the
// CTMC and Bayesian-network backends. With both fractions 0 the output
// is byte-identical to a pre-correlation campaign.
//
// With -trace the campaign is recorded by the flight recorder: every
// injection, component failure, recovery stage, and system outage becomes
// a span in a JSONL stream, and the reconstructed per-failure-mode
// downtime decomposition is printed after the campaign summary.
//
// With -progress a live status line (completed/total, rate, ETA, running
// recovery success rate with its CI half-width) is printed to stderr once
// per second; stdout stays byte-identical to a run without the flag. With
// -timeseries the campaign's sim-time availability series — fixed -window
// windows of up/down time, outage counts, and per-failure-mode downtime —
// is written as JSON to the given path, deterministically for every
// -replicas/-parallel setting.
//
// With -replicas R the injections are sharded across R independent
// replica clusters running concurrently (-parallel caps the workers) and
// the reports are pooled; the output is identical for every -parallel
// value, and -replicas 1 is exactly the serial campaign.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/estimate"
	"repro/internal/faultinject"
	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/testbed"
	"repro/internal/trace"
)

func main() {
	// Ctrl-C / SIGTERM stops the campaign between injections; the
	// completed injections are still reported (partial-campaign path).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-faultinject:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jsas-faultinject", flag.ContinueOnError)
	n := fs.Int("n", 3287, "number of fault injections")
	seed := fs.Int64("seed", 2004, "random seed")
	fir := fs.Float64("fir", 0, "ground-truth fraction of imperfect recovery in the simulated testbed")
	measure := fs.Bool("measure", false, "print measured recovery-time summaries per fault class")
	replicas := fs.Int("replicas", 1, "shard the campaign across this many independent replica clusters")
	parallel := fs.Int("parallel", 0, "max replicas running concurrently (0 = one worker per replica)")
	traceOut := fs.String("trace", "", "record the campaign as a JSONL flight-recorder trace at this path")
	showProgress := fs.Bool("progress", false, "print a live status line (rate, ETA, running success rate) to stderr")
	tsOut := fs.String("timeseries", "", "write the sim-time availability time series as JSON to this path")
	window := fs.Duration("window", time.Hour, "sim-time window width for -timeseries")
	domainsPath := fs.String("domains", "", "fault-domain document (JSON) declaring common-cause domains")
	ccf := fs.Float64("ccf", 0, "fraction of injections that are domain-level common-cause bursts (requires -domains)")
	partition := fs.Float64("partition", 0, "fraction of injections that are network partitions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := jsas.DefaultParams()
	params.FIR = *fir
	var domains []testbed.Domain
	if *domainsPath != "" {
		f, err := os.Open(*domainsPath)
		if err != nil {
			return err
		}
		domains, err = spec.ParseDomains(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	correlated := *ccf > 0 || *partition > 0
	var (
		rec       *trace.Recorder
		traceFile *os.File
		traceBuf  *bufio.Writer
	)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		traceBuf = bufio.NewWriter(f)
		rec = trace.New(trace.Config{Capacity: trace.Unbounded, Sink: traceBuf})
	}
	fmt.Printf("Running %d fault injections against a simulated %s testbed...\n", *n, jsas.Config1)
	if *replicas > 1 {
		fmt.Printf("Sharding across %d independent replica clusters.\n", *replicas)
	}
	fmt.Println()
	var tracker *progress.Tracker
	if *showProgress {
		tracker = progress.New(int64(*n),
			progress.WithStat("recovered"), progress.WithUnit("inj"))
	}
	var series *testbed.TimeSeries
	if *tsOut != "" {
		series = testbed.NewTimeSeries(*window, 0)
	}
	reporter := progress.NewReporter(tracker, os.Stderr, "campaign", time.Second)
	reporter.Start()
	fopts := faultinject.Options{
		Config:     jsas.Config1,
		Params:     params,
		Seed:       *seed,
		Injections: *n,
		Trace:      rec,
		Progress:   tracker,
		TimeSeries: series,
		Domains:    domains,
	}
	// Leave the fraction pointers nil when unset so the campaign's RNG
	// draw sequence — and therefore its output — stays byte-identical to
	// a build without correlated-fault support.
	if *ccf > 0 {
		fopts.CommonCauseFraction = ccf
	}
	if *partition > 0 {
		fopts.PartitionFraction = partition
	}
	rep, runErr := faultinject.RunReplicatedCtx(ctx, faultinject.ReplicatedOptions{
		Options:     fopts,
		Replicas:    *replicas,
		Parallelism: *parallel,
	})
	reporter.Stop()
	if series != nil && rep != nil {
		if err := writeTimeSeries(*tsOut, series); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "campaign: availability time series (%d windows) written to %s\n",
			len(series.Windows()), *tsOut)
	}
	if runErr != nil {
		if rep == nil || len(rep.Injections) == 0 {
			return runErr
		}
		// Completed injections survive a mid-campaign failure: report the
		// partial campaign, then exit non-zero below.
		fmt.Fprintf(os.Stderr, "jsas-faultinject: warning: %v\n", runErr)
		fmt.Printf("Campaign incomplete: reporting the %d completed injection(s).\n\n", len(rep.Injections))
	}
	fmt.Printf("Injections: %d   Successful recoveries: %d (%.2f%%)\n",
		len(rep.Injections), rep.Successes, rep.SuccessRate()*100)
	t := report.NewTable("Injections by fault type", "fault", "count")
	faults := make([]string, 0, len(rep.ByFault))
	counts := make(map[string]int, len(rep.ByFault))
	for f, c := range rep.ByFault {
		faults = append(faults, f.String())
		counts[f.String()] = c
	}
	sort.Strings(faults)
	for _, f := range faults {
		t.AddRow(f, fmt.Sprintf("%d", counts[f]))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nEquation (1) coverage bounds:")
	for _, b := range rep.CoverageBounds {
		fmt.Printf("  at %.1f%% confidence: coverage ≥ %.5f (FIR ≤ %.4f%%)\n",
			b.Confidence*100, b.Coverage, b.FIR*100)
	}
	if correlated {
		if err := reportCorrelated(ctx, rep, params); err != nil {
			return err
		}
	}
	if *measure {
		fmt.Println("\nMeasured recovery times (successful recoveries):")
		keys := make([]string, 0, len(rep.RecoveryTimes))
		for k := range rep.RecoveryTimes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		mt := report.NewTable("", "component/class", "n", "mean", "max", "conservative (p100 ×1.5)")
		for _, k := range keys {
			samples := rep.RecoveryTimes[k]
			rt := estimate.RecoveryTimes{Samples: samples}
			sum := rt.Summary()
			cons, err := rt.Conservative(100, 1.5)
			if err != nil {
				return err
			}
			mt.AddRow(k,
				fmt.Sprintf("%d", sum.N),
				(time.Duration(sum.Mean * float64(time.Second))).Round(time.Second).String(),
				(time.Duration(sum.Max * float64(time.Second))).Round(time.Second).String(),
				cons.Round(time.Second).String(),
			)
		}
		if err := mt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if rec != nil {
		if err := rec.SinkErr(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		if err := traceBuf.Flush(); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		spans := rec.Spans()
		fmt.Printf("\nFlight-recorder trace: %d spans written to %s\n\n", len(spans), *traceOut)
		decomp := trace.AnalyzeOutages(spans)
		if err := decomp.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("  simulator downtime accounting: %s over %s (trace decomposition %s)\n",
			rep.Stats.DownTime.Round(time.Millisecond), rep.Stats.UpTime+rep.Stats.DownTime,
			decomp.TotalDowntime.Round(time.Millisecond))
	}
	return runErr
}

// reportCorrelated prints the per-class decomposition of a correlated
// campaign, the measured common-cause fraction, and the beta-factor model
// cross-check: the measured beta parameterizes the analytic model, which
// is then solved on both backends.
func reportCorrelated(ctx context.Context, rep *faultinject.Report, params jsas.Params) error {
	fmt.Println()
	t := report.NewTable("Injections by cause class",
		"class", "injections", "successes", "component failures", "downtime")
	for cl := testbed.CauseIndependent; cl <= testbed.CausePartition; cl++ {
		cs, ok := rep.ByClass[cl]
		if !ok {
			continue
		}
		t.AddRow(cl.String(),
			fmt.Sprintf("%d", cs.Injections),
			fmt.Sprintf("%d", cs.Successes),
			fmt.Sprintf("%d", cs.ComponentFailures),
			cs.Downtime.Round(time.Second).String())
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if rep.Stats.Partitions > 0 {
		fmt.Printf("Network partitions: %d\n", rep.Stats.Partitions)
	}
	beta := rep.MeasuredCommonCauseFraction()
	fmt.Printf("\nMeasured common-cause fraction (beta): %.4f\n", beta)
	if beta <= 0 || beta >= 1 {
		return nil
	}
	p := params
	p.Beta = beta
	ct, err := jsas.SolveBackend(ctx, jsas.Config1, p, backend.KindCTMC)
	if err != nil {
		return fmt.Errorf("beta-factor ctmc solve: %w", err)
	}
	bn, err := jsas.SolveBackend(ctx, jsas.Config1, p, backend.KindBayes)
	if err != nil {
		return fmt.Errorf("beta-factor bayes solve: %w", err)
	}
	fmt.Printf("Beta-factor model availability: ctmc %.6f, bayes %.6f (backend delta %.2g)\n",
		ct.Availability, bn.Availability, math.Abs(ct.Availability-bn.Availability))
	if total := rep.Stats.UpTime + rep.Stats.DownTime; total > 0 {
		// The campaign compresses failures into back-to-back experiments,
		// so its raw availability sits far below the model's steady state;
		// the delta is recorded for the experiment log, not as a check.
		measured := float64(rep.Stats.UpTime) / float64(total)
		fmt.Printf("Campaign-measured availability: %.6f (model delta %+.4g; accelerated-injection regime)\n",
			measured, measured-ct.Availability)
	}
	return nil
}

// writeTimeSeries renders the windowed availability series as JSON at
// path.
func writeTimeSeries(path string, ts *testbed.TimeSeries) error {
	ts.PublishObs() // final merged series → obs gauges (-stats summary)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ts.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
