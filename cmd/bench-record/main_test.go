package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := bytes.NewBufferString(`goos: linux
goarch: amd64
pkg: repro
BenchmarkTable2Config1-4   	   16246	     70171 ns/op	         4.463 YD-min/yr	        99.99 avail-%
BenchmarkSparseMatVec-4    	   10000	     12345 ns/op	     512 B/op	       3 allocs/op
PASS
ok  	repro	1.234s
`)
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTable2Config1-4" || r.Iterations != 16246 || r.NsPerOp != 70171 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Metrics["YD-min/yr"] != 4.463 || r.Metrics["avail-%"] != 99.99 {
		t.Fatalf("custom metrics = %v", r.Metrics)
	}
	if results[1].Metrics["B/op"] != 512 || results[1].Metrics["allocs/op"] != 3 {
		t.Fatalf("mem metrics = %v", results[1].Metrics)
	}
}

func TestParseBenchSkipsMalformed(t *testing.T) {
	out := bytes.NewBufferString(`BenchmarkBroken-4 not-a-number 1 ns/op
Benchmark 1
random text
`)
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from malformed input, want 0", len(results))
	}
}

func TestPrintFromFile(t *testing.T) {
	doc := File{
		GeneratedAt: "2026-01-01T00:00:00Z",
		GoCommand:   "go test -bench CampaignUnsharded",
		Results: []Result{{
			Name:       "BenchmarkCampaignUnsharded",
			Iterations: 1,
			NsPerOp:    2.5e6,
			Metrics:    map[string]float64{"allocs/op": 9235, "B/op": 1476504},
		}},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := printFromFile(path, "allocs/op", ""); err != nil {
		t.Errorf("allocs/op: %v", err)
	}
	if err := printFromFile(path, "ns/op", ""); err != nil {
		t.Errorf("ns/op: %v", err)
	}
	if err := printFromFile(path, "widgets/op", ""); err == nil {
		t.Error("missing metric: want error, got nil")
	}
	if err := printFromFile(path, "", ""); err == nil {
		t.Error("empty metric: want error, got nil")
	}
	if err := printFromFile(filepath.Join(t.TempDir(), "absent.json"), "ns/op", ""); err == nil {
		t.Error("missing file: want error, got nil")
	}
}

// TestPrintFromFileSelect: -select restricts to matching results and
// prints the minimum across -count repetitions.
func TestPrintFromFileSelect(t *testing.T) {
	doc := File{
		GeneratedAt: "2026-01-01T00:00:00Z",
		GoCommand:   "go test -bench CampaignTelemetry -count 3",
		Results: []Result{
			{Name: "BenchmarkCampaignTelemetryOff-4", Iterations: 200, NsPerOp: 2.6e6},
			{Name: "BenchmarkCampaignTelemetryOff-4", Iterations: 200, NsPerOp: 2.4e6},
			{Name: "BenchmarkCampaignTelemetryOn-4", Iterations: 200, NsPerOp: 2.8e6},
			{Name: "BenchmarkCampaignTelemetryOn-4", Iterations: 200, NsPerOp: 2.7e6},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	get := func(sel string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		perr := printFromFile(path, "ns/op", sel)
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if perr != nil {
			t.Fatalf("-select %q: %v", sel, perr)
		}
		return strings.TrimSpace(string(out))
	}
	if got := get("TelemetryOff"); got != "2.4e+06" {
		t.Errorf("TelemetryOff min = %q, want 2.4e+06", got)
	}
	if got := get("TelemetryOn"); got != "2.7e+06" {
		t.Errorf("TelemetryOn min = %q, want 2.7e+06", got)
	}
	if err := printFromFile(path, "ns/op", "NoSuchBench"); err == nil {
		t.Error("unmatched -select: want error, got nil")
	}
	if err := printFromFile(path, "ns/op", "("); err == nil {
		t.Error("invalid -select regex: want error, got nil")
	}
}
