package main

import (
	"bytes"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := bytes.NewBufferString(`goos: linux
goarch: amd64
pkg: repro
BenchmarkTable2Config1-4   	   16246	     70171 ns/op	         4.463 YD-min/yr	        99.99 avail-%
BenchmarkSparseMatVec-4    	   10000	     12345 ns/op	     512 B/op	       3 allocs/op
PASS
ok  	repro	1.234s
`)
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTable2Config1-4" || r.Iterations != 16246 || r.NsPerOp != 70171 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Metrics["YD-min/yr"] != 4.463 || r.Metrics["avail-%"] != 99.99 {
		t.Fatalf("custom metrics = %v", r.Metrics)
	}
	if results[1].Metrics["B/op"] != 512 || results[1].Metrics["allocs/op"] != 3 {
		t.Fatalf("mem metrics = %v", results[1].Metrics)
	}
}

func TestParseBenchSkipsMalformed(t *testing.T) {
	out := bytes.NewBufferString(`BenchmarkBroken-4 not-a-number 1 ns/op
Benchmark 1
random text
`)
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from malformed input, want 0", len(results))
	}
}
