// Command bench-record runs a benchmark selection and records the parsed
// results as JSON, giving the repository a machine-readable performance
// baseline (e.g. BENCH_PR3.json) that later changes can be compared
// against with plain tooling instead of eyeballing `go test -bench` text.
//
// Usage:
//
//	bench-record [-bench regex] [-pkg ./...] [-benchtime 2x] [-count 1] [-out BENCH.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including the GOMAXPROCS suffix
	// (e.g. "BenchmarkTable2Config1-4").
	Name string `json:"name"`
	// Iterations is the b.N the harness settled on.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "value unit" pair on the line
	// (B/op, allocs/op, and custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document bench-record writes.
type File struct {
	// GeneratedAt is the RFC 3339 recording time.
	GeneratedAt string `json:"generated_at"`
	// GoCommand echoes the exact benchmark invocation.
	GoCommand string `json:"go_command"`
	// Results lists the parsed benchmark lines in run order.
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench-record:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench-record", flag.ContinueOnError)
	bench := fs.String("bench", ".", "benchmark selection regex (go test -bench)")
	pkg := fs.String("pkg", ".", "package pattern to benchmark")
	benchtime := fs.String("benchtime", "", "per-benchmark budget (go test -benchtime), e.g. 2x or 100ms")
	count := fs.Int("count", 1, "repetitions per benchmark (go test -count)")
	benchmem := fs.Bool("benchmem", false, "record allocation metrics (go test -benchmem)")
	out := fs.String("out", "BENCH.json", "output JSON path")
	in := fs.String("in", "", "read an existing snapshot instead of running benchmarks")
	printMetric := fs.String("print-metric", "", `with -in: print this metric ("ns/op" or a unit such as "allocs/op") of the first result`)
	selectRe := fs.String("select", "", "with -in: restrict -print-metric to results whose name matches this regex, printing the minimum across matches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in != "" {
		return printFromFile(*in, *printMetric, *selectRe)
	}
	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-count", strconv.Itoa(*count)}
	if *benchmem {
		goArgs = append(goArgs, "-benchmem")
	}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, *pkg)
	cmd := exec.Command("go", goArgs...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "bench-record: running go", strings.Join(goArgs, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(goArgs, " "), err)
	}
	results, err := parseBench(&stdout)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *bench)
	}
	doc := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoCommand:   "go " + strings.Join(goArgs, " "),
		Results:     results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-record: wrote %d results to %s\n", len(results), *out)
	return nil
}

// printFromFile loads a snapshot written by a previous run and prints one
// metric to stdout, so shell gates (e.g. the `make verify` allocation and
// telemetry-overhead checks) can consume recorded values without a JSON
// parser. Without -select it reads the first result; with -select it
// prints the minimum across results whose name matches — the robust
// estimate when the snapshot holds -count repetitions of one benchmark.
func printFromFile(path, metric, selectRe string) error {
	if metric == "" {
		return fmt.Errorf("-in requires -print-metric")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	results := doc.Results
	if selectRe != "" {
		re, err := regexp.Compile(selectRe)
		if err != nil {
			return fmt.Errorf("-select %q: %w", selectRe, err)
		}
		results = nil
		for _, r := range doc.Results {
			if re.MatchString(r.Name) {
				results = append(results, r)
			}
		}
		if len(results) == 0 {
			return fmt.Errorf("%s: no results match -select %q", path, selectRe)
		}
	} else if len(results) > 1 {
		results = results[:1]
	}
	if len(results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	best := 0.0
	for i, res := range results {
		v := res.NsPerOp
		if metric != "ns/op" {
			var ok bool
			if v, ok = res.Metrics[metric]; !ok {
				return fmt.Errorf("%s: result %s has no metric %q", path, res.Name, metric)
			}
		}
		if i == 0 || v < best {
			best = v
		}
	}
	fmt.Println(best)
	return nil
}

// parseBench extracts benchmark lines from standard `go test -bench`
// output. A line has the shape
//
//	BenchmarkName-8   123   4567 ns/op   8 B/op   2 allocs/op   1.5 extra-unit
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(r *bytes.Buffer) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
			} else {
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		results = append(results, res)
	}
	return results, sc.Err()
}
