package main

import (
	"context"
	"io"
	"os"
	"testing"
)

func TestRunConfig1(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "1", "-steps", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunConfig2CSV(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "2", "-steps", "4", "-csv"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-config", "3"}); err == nil {
		t.Fatal("config 3 accepted")
	}
}

func TestRunBadRange(t *testing.T) {
	if err := run(context.Background(), []string{"-from", "3", "-to", "1"}); err == nil {
		t.Fatal("reversed range accepted")
	}
}

func TestRunSweepOtherParam(t *testing.T) {
	if err := run(context.Background(), []string{"-param", "La_as", "-from", "10", "-to", "50", "-steps", "4"}); err != nil {
		t.Fatalf("run -param La_as: %v", err)
	}
}

func TestRunSweepUnknownParam(t *testing.T) {
	if err := run(context.Background(), []string{"-param", "bogus", "-steps", "2"}); err == nil {
		t.Fatal("bogus parameter accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out)
}

// TestRunParallelOutputIdentical checks the acceptance criterion that the
// sweep output is bit-identical between -parallel 1 and -parallel N.
func TestRunParallelOutputIdentical(t *testing.T) {
	args := []string{"-config", "1", "-steps", "8", "-csv"}
	serial := captureStdout(t, func() error { return run(context.Background(), append([]string{"-parallel", "1"}, args...)) })
	parallel := captureStdout(t, func() error { return run(context.Background(), append([]string{"-parallel", "4"}, args...)) })
	if serial != parallel {
		t.Fatalf("outputs differ:\n-- parallel 1 --\n%s\n-- parallel 4 --\n%s", serial, parallel)
	}
	if serial == "" {
		t.Fatal("empty sweep output")
	}
}

func TestRunBadParallel(t *testing.T) {
	// Parallelism below 1 is clamped to a serial sweep, not rejected.
	if err := run(context.Background(), []string{"-config", "1", "-steps", "2", "-parallel", "0"}); err != nil {
		t.Fatalf("run -parallel 0: %v", err)
	}
}

// TestProgressKeepsStdoutIdentical: -progress may only write to stderr.
func TestProgressKeepsStdoutIdentical(t *testing.T) {
	args := []string{"-steps", "4", "-parallel", "2"}
	plain := captureStdout(t, func() error { return run(context.Background(), args) })
	tracked := captureStdout(t, func() error {
		return run(context.Background(), append(append([]string{}, args...), "-progress"))
	})
	if plain != tracked {
		t.Fatalf("-progress changed stdout:\n--- plain ---\n%s\n--- tracked ---\n%s", plain, tracked)
	}
}
