package main

import "testing"

func TestRunConfig1(t *testing.T) {
	if err := run([]string{"-config", "1", "-steps", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunConfig2CSV(t *testing.T) {
	if err := run([]string{"-config", "2", "-steps", "4", "-csv"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run([]string{"-config", "3"}); err == nil {
		t.Fatal("config 3 accepted")
	}
}

func TestRunBadRange(t *testing.T) {
	if err := run([]string{"-from", "3", "-to", "1"}); err == nil {
		t.Fatal("reversed range accepted")
	}
}

func TestRunSweepOtherParam(t *testing.T) {
	if err := run([]string{"-param", "La_as", "-from", "10", "-to", "50", "-steps", "4"}); err != nil {
		t.Fatalf("run -param La_as: %v", err)
	}
}

func TestRunSweepUnknownParam(t *testing.T) {
	if err := run([]string{"-param", "bogus", "-steps", "2"}); err == nil {
		t.Fatal("bogus parameter accepted")
	}
}
