// Command jsas-sweep reproduces the paper's Figures 5 and 6: the
// parametric sensitivity of system availability to the AS node HW/OS
// failure recovery time (Tstart_long), swept from 0.5 to 3 hours.
//
// Usage:
//
//	jsas-sweep [-config 1|2] [-from 0.5] [-to 3] [-steps 10] [-parallel N]
//	           [-backend ctmc|bayes] [-csv] [-stats] [-progress] [-beta 0]
//	jsas-sweep -replication [-from 10] [-to 100] [-steps 9] [-quorum 0.9]
//	           [-backend bayes]
//
// With -progress a live status line (sweep points completed, rate, ETA)
// is printed to stderr once per second; stdout stays byte-identical to a
// run without the flag.
//
// -replication sweeps the replica count of a k-of-n AS cluster instead of
// a model parameter — the scenario only the bayes backend can solve at
// scale (the flat CTMC cross-product is capped near 12 instances).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/jsas"
	"repro/internal/obs"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/sensitivity"
)

func main() {
	// Ctrl-C / SIGTERM cancels the sweep at sweep-point granularity.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jsas-sweep", flag.ContinueOnError)
	configNo := fs.Int("config", 1, "paper configuration to sweep (1 or 2)")
	param := fs.String("param", jsas.ParamTstartLong,
		"parameter to sweep: Tstart_long, La_as, La_hadb, La_os, La_hw, or FIR")
	from := fs.Float64("from", 0.5, "sweep start (hours for Tstart_long, per-year for rates, fraction for FIR)")
	to := fs.Float64("to", 3.0, "sweep end")
	steps := fs.Int("steps", 10, "number of sweep intervals")
	parallel := fs.Int("parallel", 1, "worker goroutines evaluating sweep points (results are identical at any setting)")
	backendName := fs.String("backend", "", "solver backend: "+backend.Kinds+" (default ctmc)")
	replication := fs.Bool("replication", false, "sweep the k-of-n AS cluster replica count instead of a model parameter (-from/-to are instance counts)")
	quorumFrac := fs.Float64("quorum", 0.9, "required up-fraction for -replication (k = ceil(quorum*n))")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	stats := fs.Bool("stats", false, "print engine metrics (solves, sweeps, latency) to stderr after the sweep")
	showProgress := fs.Bool("progress", false, "print a live status line (points, rate, ETA) to stderr")
	beta := fs.Float64("beta", 0, "beta-factor common-cause fraction in [0,1) (0 = paper model)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := jsas.DefaultParams()
	params.Beta = *beta
	if *stats {
		defer func() {
			fmt.Fprintln(os.Stderr, "\nEngine metrics:")
			_ = obs.Default().WriteSummary(os.Stderr)
		}()
	}
	kind, err := backend.ParseKind(*backendName)
	if err != nil {
		return err
	}
	if *replication {
		return runReplicationSweep(ctx, params, *from, *to, *steps, *quorumFrac, kind, *csv)
	}
	var cfg jsas.Config
	switch *configNo {
	case 1:
		cfg = jsas.Config1
	case 2:
		cfg = jsas.Config2
	default:
		return fmt.Errorf("config %d: want 1 or 2", *configNo)
	}
	var tracker *progress.Tracker
	if *showProgress {
		tracker = progress.New(int64(*steps)+1, progress.WithUnit("points"))
	}
	reporter := progress.NewReporter(tracker, os.Stderr, "sweep", time.Second)
	reporter.Start()
	points, err := sensitivity.SweepWithCtx(ctx, *from, *to, *steps,
		jsas.SweepSolverBackend(cfg, params, *param, kind),
		sensitivity.SweepOptions{Parallelism: *parallel, Progress: tracker})
	reporter.Stop()
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Sensitivity of Availability to %s (Config %d)", *param, *configNo)
	if *param == jsas.ParamTstartLong {
		fig := 5
		if *configNo == 2 {
			fig = 6
		}
		title = fmt.Sprintf("Figure %d. Sensitivity of Availability to HW/OS Failure Recovery Time (Config %d)", fig, *configNo)
	}
	t := report.NewTable(title, *param, "Availability", "Yearly Downtime")
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%.2f", pt.Value),
			fmt.Sprintf("%.7f%%", pt.Availability*100),
			report.Minutes(pt.YearlyDowntimeMinutes),
		)
	}
	if *csv {
		if err := t.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if cross, ok := sensitivity.CrossingBelow(points, 0.99999); ok {
		fmt.Printf("\nFive-nines availability is lost at Tstart_long ≈ %.2f hours.\n", cross)
	} else {
		fmt.Printf("\nFive-nines availability holds across the whole sweep (max delta %.3g).\n",
			sensitivity.MaxDelta(points))
	}
	return nil
}

// runReplicationSweep evaluates k-of-n cluster availability across replica
// counts: -from/-to are instance counts and -steps the stride count.
func runReplicationSweep(ctx context.Context, params jsas.Params, from, to float64, steps int, quorumFrac float64, kind backend.Kind, csv bool) error {
	nFrom, nTo := int(from), int(to)
	step := 1
	if steps > 0 && nTo > nFrom {
		if step = (nTo - nFrom) / steps; step < 1 {
			step = 1
		}
	}
	points, err := jsas.ReplicationSweep(ctx, params, nFrom, nTo, step, quorumFrac, kind)
	if err != nil {
		return err
	}
	sizeWhat := "CTMC states"
	if kind == backend.KindBayes {
		sizeWhat = "BN variables"
	}
	t := report.NewTable(
		fmt.Sprintf("Replication-factor sweep: k-of-n AS cluster availability (backend %s, quorum %.0f%%)", kind, quorumFrac*100),
		"Instances", "Quorum", "Availability", "Yearly Downtime", sizeWhat)
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%d", pt.Instances),
			fmt.Sprintf("%d", pt.Quorum),
			fmt.Sprintf("%.9f", pt.Availability),
			report.Minutes(pt.YearlyDowntimeMinutes),
			fmt.Sprintf("%d", pt.Size),
		)
	}
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}
