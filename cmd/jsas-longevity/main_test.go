package main

import (
	"context"
	"testing"
)

func TestRunShort(t *testing.T) {
	if err := run(context.Background(), []string{"-days", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunNileOrganic(t *testing.T) {
	if err := run(context.Background(), []string{"-days", "1", "-profile", "nile", "-organic"}); err != nil {
		t.Fatalf("run nile: %v", err)
	}
}

func TestRunSeriesReplicated(t *testing.T) {
	if err := run(context.Background(), []string{"-days", "1", "-replicas", "3", "-parallel", "2", "-organic"}); err != nil {
		t.Fatalf("run -replicas: %v", err)
	}
}

func TestRunPrintConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-print-config"}); err != nil {
		t.Fatalf("run -print-config: %v", err)
	}
}

func TestRunBadProfile(t *testing.T) {
	if err := run(context.Background(), []string{"-profile", "bogus"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
