package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"testing"

	"path/filepath"
)

func TestRunShort(t *testing.T) {
	if err := run(context.Background(), []string{"-days", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunNileOrganic(t *testing.T) {
	if err := run(context.Background(), []string{"-days", "1", "-profile", "nile", "-organic"}); err != nil {
		t.Fatalf("run nile: %v", err)
	}
}

func TestRunSeriesReplicated(t *testing.T) {
	if err := run(context.Background(), []string{"-days", "1", "-replicas", "3", "-parallel", "2", "-organic"}); err != nil {
		t.Fatalf("run -replicas: %v", err)
	}
}

func TestRunPrintConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-print-config"}); err != nil {
		t.Fatalf("run -print-config: %v", err)
	}
}

func TestRunBadProfile(t *testing.T) {
	if err := run(context.Background(), []string{"-profile", "bogus"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns everything
// it printed; the reporter's stderr lines are deliberately not captured.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(&buf, r)
		close(done)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	<-done
	if ferr != nil {
		t.Fatalf("run: %v", ferr)
	}
	return buf.Bytes()
}

// TestProgressKeepsStdoutIdentical: -progress may only write to stderr.
func TestProgressKeepsStdoutIdentical(t *testing.T) {
	args := []string{"-days", "1", "-seed", "3", "-organic"}
	plain := captureStdout(t, func() error { return run(context.Background(), args) })
	tracked := captureStdout(t, func() error {
		return run(context.Background(), append(append([]string{}, args...), "-progress"))
	})
	if !bytes.Equal(plain, tracked) {
		t.Fatalf("-progress changed stdout:\n--- plain ---\n%s\n--- tracked ---\n%s", plain, tracked)
	}
}

// TestTimeSeriesFlagDeterministic: the -timeseries file is byte-identical
// for every -parallel setting of a replicated series, and stdout is
// unchanged by the flag.
func TestTimeSeriesFlagDeterministic(t *testing.T) {
	dir := t.TempDir()
	render := func(parallel string) ([]byte, []byte) {
		path := filepath.Join(dir, "ts-"+parallel+".json")
		out := captureStdout(t, func() error {
			return run(context.Background(), []string{
				"-days", "1", "-seed", "7", "-organic", "-replicas", "3", "-parallel", parallel,
				"-timeseries", path, "-window", "2h",
			})
		})
		ts, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return ts, out
	}
	ts1, out1 := render("1")
	ts3, out3 := render("3")
	if !bytes.Equal(ts1, ts3) {
		t.Fatal("-timeseries file differs across -parallel settings")
	}
	if !bytes.Equal(out1, out3) {
		t.Fatal("stdout differs across -parallel settings")
	}
	plain := captureStdout(t, func() error {
		return run(context.Background(), []string{"-days", "1", "-seed", "7", "-organic", "-replicas", "3", "-parallel", "1"})
	})
	if !bytes.Equal(plain, out1) {
		t.Fatal("-timeseries changed stdout")
	}
}
