// Command jsas-longevity runs simulated longevity (stability) tests,
// reproducing the paper's §3 measurement campaign: 7-day benchmark runs at
// a 60–70% load factor processing ≈ 7 million requests, plus the 24-day
// sanity run whose zero-failure observation yields the Equation (2)
// failure-rate bounds (λ ≤ 1/16 days at 95%, ≤ 1/9 days at 99.5%).
//
// Usage:
//
//	jsas-longevity [-days 7] [-profile marketplace|nile] [-seed 1]
//	               [-organic] [-print-config] [-trace out.jsonl]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/jsas"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-longevity:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsas-longevity", flag.ContinueOnError)
	days := fs.Int("days", 7, "run length in days")
	profileName := fs.String("profile", "marketplace", "benchmark profile: marketplace or nile")
	seed := fs.Int64("seed", 1, "random seed")
	organic := fs.Bool("organic", false, "enable organic failures at the model's rates")
	printConfig := fs.Bool("print-config", false, "print the Table 1 test environment and exit")
	traceOut := fs.String("trace", "", "record the run as a JSONL flight-recorder trace at this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printConfig {
		return renderTable1(os.Stdout)
	}
	var profile workload.Profile
	switch *profileName {
	case "marketplace":
		profile = workload.Marketplace()
	case "nile":
		profile = workload.NileBookstore()
	default:
		return fmt.Errorf("profile %q: want marketplace or nile", *profileName)
	}
	var (
		rec       *trace.Recorder
		traceFile *os.File
		traceBuf  *bufio.Writer
	)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		traceBuf = bufio.NewWriter(f)
		rec = trace.New(trace.Config{Capacity: trace.Unbounded, Sink: traceBuf})
	}
	res, err := workload.Run(workload.RunOptions{
		Config:          jsas.Config1,
		Params:          jsas.DefaultParams(),
		Profile:         profile,
		Duration:        time.Duration(*days) * 24 * time.Hour,
		Seed:            *seed,
		OrganicFailures: *organic,
		Trace:           rec,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Longevity run: %s on %s for %d day(s) (load factor %.0f%%)\n\n",
		profile.Name, res.Config, *days, profile.LoadFactor*100)
	fmt.Printf("Requests served: %.0f\n", res.RequestsServed)
	fmt.Printf("Requests failed: %.0f\n", res.RequestsFailed)
	fmt.Printf("Observed availability: %.6f%%\n", res.Availability*100)
	fmt.Printf("AS instance failures: %d   System outages: %d\n",
		res.ASInstanceFailures, res.SystemOutages)
	fmt.Printf("\nEquation (2) failure-rate upper bounds (exposure %.0f instance-days, %d failure(s)):\n",
		res.InstanceExposure.Hours()/24, res.ASInstanceFailures)
	for _, b := range res.RateBounds {
		perDay := b.PerHour * 24
		fmt.Printf("  at %.1f%% confidence: λ ≤ %.4f/day (1 per %.1f days; %.1f/year)\n",
			b.Confidence*100, perDay, 1/perDay, b.PerYear)
	}
	if rec != nil {
		if err := rec.SinkErr(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		if err := traceBuf.Flush(); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		spans := rec.Spans()
		fmt.Printf("\nFlight-recorder trace: %d spans written to %s\n\n", len(spans), *traceOut)
		if err := trace.AnalyzeOutages(spans).WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// renderTable1 prints the paper's Table 1 test environment layout.
func renderTable1(w *os.File) error {
	t := report.NewTable("Table 1. Test Environment (simulated)", "Layer", "Contents")
	t.AddRow("Load balancing", "Load balancer plugin, sticky round-robin, 1-min health checks")
	t.AddRow("Application", "AS Instance 1, AS Instance 2 (J2EE Web App / Nile Bookstore)")
	t.AddRow("Session store", "HADB Pair 1 (2 nodes), HADB Pair 2 (2 nodes), 2 spares")
	t.AddRow("Data services", "Oracle database and directory server (out of model scope)")
	t.AddRow("Platform", "Simulated E450-class hosts (discrete-event testbed)")
	return t.Render(w)
}
