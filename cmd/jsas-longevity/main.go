// Command jsas-longevity runs simulated longevity (stability) tests,
// reproducing the paper's §3 measurement campaign: 7-day benchmark runs at
// a 60–70% load factor processing ≈ 7 million requests, plus the 24-day
// sanity run whose zero-failure observation yields the Equation (2)
// failure-rate bounds (λ ≤ 1/16 days at 95%, ≤ 1/9 days at 99.5%).
//
// Usage:
//
//	jsas-longevity [-days 7] [-profile marketplace|nile] [-seed 1]
//	               [-organic] [-replicas 1] [-parallel 0]
//	               [-print-config] [-trace out.jsonl]
//	               [-progress] [-timeseries out.json] [-window 6h]
//
// With -progress a live status line (simulated chunks completed, rate,
// ETA — and for a replicated series the running mean availability) goes
// to stderr once per second; stdout stays byte-identical to a run
// without the flag. With -timeseries the sim-time availability series
// (fixed -window windows of up/down time and outage counts) is written
// as JSON, deterministically for every -replicas/-parallel setting.
//
// With -replicas R the tool runs a series of R independent longevity runs
// (seeds seed..seed+R-1, concurrently up to -parallel workers, as the
// paper pooled "multiple 7-day duration runs") and reports the pooled
// Equation (2) bounds; the output is identical for every -parallel value,
// and -replicas 1 is exactly the single serial run.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/estimate"
	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Ctrl-C / SIGTERM stops the simulation at chunk granularity; a
	// replicated series still pools and reports its completed runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-longevity:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jsas-longevity", flag.ContinueOnError)
	days := fs.Int("days", 7, "run length in days")
	profileName := fs.String("profile", "marketplace", "benchmark profile: marketplace or nile")
	seed := fs.Int64("seed", 1, "random seed")
	organic := fs.Bool("organic", false, "enable organic failures at the model's rates")
	replicas := fs.Int("replicas", 1, "run a series of this many independent longevity runs and pool the exposure")
	parallel := fs.Int("parallel", 0, "max runs executing concurrently (0 = one worker per run)")
	printConfig := fs.Bool("print-config", false, "print the Table 1 test environment and exit")
	traceOut := fs.String("trace", "", "record the run as a JSONL flight-recorder trace at this path")
	showProgress := fs.Bool("progress", false, "print a live status line (chunks, rate, ETA) to stderr")
	tsOut := fs.String("timeseries", "", "write the sim-time availability time series as JSON to this path")
	window := fs.Duration("window", 6*time.Hour, "sim-time window width for -timeseries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printConfig {
		return renderTable1(os.Stdout)
	}
	var profile workload.Profile
	switch *profileName {
	case "marketplace":
		profile = workload.Marketplace()
	case "nile":
		profile = workload.NileBookstore()
	default:
		return fmt.Errorf("profile %q: want marketplace or nile", *profileName)
	}
	var (
		rec       *trace.Recorder
		traceFile *os.File
		traceBuf  *bufio.Writer
	)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		traceBuf = bufio.NewWriter(f)
		rec = trace.New(trace.Config{Capacity: trace.Unbounded, Sink: traceBuf})
	}
	runOpts := workload.RunOptions{
		Config:          jsas.Config1,
		Params:          jsas.DefaultParams(),
		Profile:         profile,
		Duration:        time.Duration(*days) * 24 * time.Hour,
		Seed:            *seed,
		OrganicFailures: *organic,
		Trace:           rec,
	}
	var tracker *progress.Tracker
	if *showProgress {
		popts := []progress.Option{progress.WithUnit("chunks")}
		if *replicas > 1 {
			popts = append(popts, progress.WithStat("availability"))
		}
		tracker = progress.New(int64(*replicas)*workload.ProgressChunks(runOpts.Duration), popts...)
		runOpts.Progress = tracker
	}
	var series *testbed.TimeSeries
	if *tsOut != "" {
		series = testbed.NewTimeSeries(*window, 0)
		runOpts.TimeSeries = series
	}
	reporter := progress.NewReporter(tracker, os.Stderr, "longevity", time.Second)
	reporter.Start()
	var runErr error
	if *replicas > 1 {
		// A partial series still reports (and still flushes the trace
		// below); runErr makes the exit status reflect the failure.
		runErr = runSeries(ctx, runOpts, *replicas, *parallel, *days, reporter, *tsOut, series)
	} else {
		res, err := workload.RunCtx(ctx, runOpts)
		reporter.Stop()
		if err != nil {
			return err
		}
		if err := flushTimeSeries(*tsOut, series); err != nil {
			return err
		}
		fmt.Printf("Longevity run: %s on %s for %d day(s) (load factor %.0f%%)\n\n",
			profile.Name, res.Config, *days, profile.LoadFactor*100)
		fmt.Printf("Requests served: %.0f\n", res.RequestsServed)
		fmt.Printf("Requests failed: %.0f\n", res.RequestsFailed)
		fmt.Printf("Observed availability: %.6f%%\n", res.Availability*100)
		fmt.Printf("AS instance failures: %d   System outages: %d\n",
			res.ASInstanceFailures, res.SystemOutages)
		fmt.Printf("\nEquation (2) failure-rate upper bounds (exposure %.0f instance-days, %d failure(s)):\n",
			res.InstanceExposure.Hours()/24, res.ASInstanceFailures)
		printRateBounds(res.RateBounds)
	}
	if rec != nil {
		if err := rec.SinkErr(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		if err := traceBuf.Flush(); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		spans := rec.Spans()
		fmt.Printf("\nFlight-recorder trace: %d spans written to %s\n\n", len(spans), *traceOut)
		if err := trace.AnalyzeOutages(spans).WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return runErr
}

// runSeries executes and reports a replicated longevity series: replicas
// independent runs pooled for the Equation (2) bound, as the paper pooled
// its repeated 7-day runs.
func runSeries(ctx context.Context, runOpts workload.RunOptions, replicas, parallel, days int,
	reporter *progress.Reporter, tsOut string, ts *testbed.TimeSeries) error {
	series, runErr := workload.RunSeriesWithCtx(ctx, workload.SeriesOptions{
		Run:         runOpts,
		Runs:        replicas,
		Parallelism: parallel,
	})
	reporter.Stop()
	if runErr == nil {
		if err := flushTimeSeries(tsOut, ts); err != nil {
			return err
		}
	}
	if runErr != nil {
		if series == nil || len(series.Runs) == 0 {
			return runErr
		}
		fmt.Fprintf(os.Stderr, "jsas-longevity: warning: %v\n", runErr)
		fmt.Printf("Series incomplete: pooling the %d completed run(s).\n\n", len(series.Runs))
	}
	fmt.Printf("Longevity series: %s on %s, %d × %d-day runs (load factor %.0f%%)\n\n",
		runOpts.Profile.Name, runOpts.Config, replicas, days, runOpts.Profile.LoadFactor*100)
	totalOutages := 0
	for i, r := range series.Runs {
		fmt.Printf("  run %d: %.0f requests, availability %.6f%%, %d AS failure(s), %d outage(s)\n",
			i+1, r.RequestsServed, r.Availability*100, r.ASInstanceFailures, r.SystemOutages)
		totalOutages += r.SystemOutages
	}
	fmt.Printf("\nPooled: %.0f requests, %d AS instance failure(s), %d system outage(s)\n",
		series.TotalRequests, series.TotalFailures, totalOutages)
	fmt.Printf("\nEquation (2) failure-rate upper bounds (pooled exposure %.0f instance-days, %d failure(s)):\n",
		series.TotalExposure.Hours()/24, series.TotalFailures)
	printRateBounds(series.PooledBounds)
	return runErr
}

func printRateBounds(bounds []estimate.FailureRateBound) {
	for _, b := range bounds {
		perDay := b.PerHour * 24
		fmt.Printf("  at %.1f%% confidence: λ ≤ %.4f/day (1 per %.1f days; %.1f/year)\n",
			b.Confidence*100, perDay, 1/perDay, b.PerYear)
	}
}

// renderTable1 prints the paper's Table 1 test environment layout.
func renderTable1(w *os.File) error {
	t := report.NewTable("Table 1. Test Environment (simulated)", "Layer", "Contents")
	t.AddRow("Load balancing", "Load balancer plugin, sticky round-robin, 1-min health checks")
	t.AddRow("Application", "AS Instance 1, AS Instance 2 (J2EE Web App / Nile Bookstore)")
	t.AddRow("Session store", "HADB Pair 1 (2 nodes), HADB Pair 2 (2 nodes), 2 spares")
	t.AddRow("Data services", "Oracle database and directory server (out of model scope)")
	t.AddRow("Platform", "Simulated E450-class hosts (discrete-event testbed)")
	return t.Render(w)
}

// flushTimeSeries writes the windowed availability series as JSON to
// path, with a stderr note so stdout stays byte-identical.
func flushTimeSeries(path string, ts *testbed.TimeSeries) error {
	if path == "" || ts == nil {
		return nil
	}
	ts.PublishObs() // final merged series → obs gauges (-stats summary)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ts.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "longevity: availability time series (%d windows) written to %s\n",
		len(ts.Windows()), path)
	return nil
}
