// Command avail-solve loads a declarative JSON Markov reward model (see
// internal/spec) — flat or hierarchical — and solves it for availability,
// yearly downtime, MTBF, and the equivalent two-state rates: the generic
// replacement for solving a RAScad diagram (or diagram hierarchy).
//
// Usage:
//
//	avail-solve [-set name=value ...] model.json
//	avail-solve -hier [-set name=value ...] hierarchy.json
//	avail-solve -dot model.json          # emit the Graphviz rendering
//	avail-solve -check model.json        # structural diagnosis
//	avail-solve -uncertainty 1000 m.json # sample declared uncertain ranges
//	avail-solve -example                 # print a sample model document
//	avail-solve -stats model.json        # append solver diagnostics (stderr)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/ctmc"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/uncertainty"
)

// overrides collects repeated -set name=value flags.
type overrides map[string]float64

func (o overrides) String() string { return fmt.Sprintf("%v", map[string]float64(o)) }

func (o overrides) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", v)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("value of %s: %w", name, err)
	}
	o[name] = f
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avail-solve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avail-solve", flag.ContinueOnError)
	ov := make(overrides)
	fs.Var(ov, "set", "override a model parameter, name=value (repeatable)")
	example := fs.Bool("example", false, "print a sample model document and exit")
	hierDoc := fs.Bool("hier", false, "treat the input as a hierarchical document")
	dot := fs.Bool("dot", false, "emit a Graphviz rendering of the (flat) model instead of solving")
	check := fs.Bool("check", false, "print a structural diagnosis of the (flat) model instead of solving")
	uncertaintyN := fs.Int("uncertainty", 0, "sample the document's declared uncertain ranges N times instead of a point solve")
	backendName := fs.String("backend", "", "solver backend: "+backend.Kinds+" (default ctmc; bayes requires a redundancy document)")
	seed := fs.Int64("seed", 2004, "seed for -uncertainty")
	stats := fs.Bool("stats", false, "print solver diagnostics (method, sweeps, residual, wall time) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stats {
		defer func() {
			fmt.Fprintln(os.Stderr, "\nEngine metrics:")
			_ = obs.Default().WriteSummary(os.Stderr)
		}()
	}
	if *example {
		return printExample()
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: avail-solve [-hier] [-dot] [-set name=value] model.json")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	if *hierDoc {
		if *uncertaintyN > 0 {
			d, err := spec.ParseHier(f)
			if err != nil {
				return err
			}
			res, err := d.RunUncertainty(uncertainty.Options{Samples: *uncertaintyN, Seed: *seed})
			if err != nil {
				return err
			}
			printUncertainty(d.Name, res)
			return nil
		}
		return solveHierarchy(f, ov)
	}
	kind, err := backend.ParseKind(*backendName)
	if err != nil {
		return err
	}
	doc, err := spec.Parse(f)
	if err != nil {
		return err
	}
	// Redundancy documents (and any explicit backend selection) go through
	// the multi-backend interface; the classic flat-CTMC path below keeps
	// its richer report (π vector, MTBF, equivalent rates).
	if doc.Redundancy != nil || kind != backend.KindCTMC {
		return solveRedundancy(doc, kind, ov)
	}
	if *uncertaintyN > 0 {
		res, err := doc.RunUncertainty(uncertainty.Options{Samples: *uncertaintyN, Seed: *seed})
		if err != nil {
			return err
		}
		printUncertainty(doc.Name, res)
		return nil
	}
	structure, err := doc.Compile(ov)
	if err != nil {
		return err
	}
	if *dot {
		return structure.WriteDOT(os.Stdout, doc.Name)
	}
	if *check {
		m := structure.Model()
		fmt.Printf("Model %s:\n%s", doc.Name, m.Diagnose().Summary(m))
		return nil
	}
	var diag ctmc.Diagnostics
	solveOpts := ctmc.SolveOptions{}
	if *stats {
		solveOpts.Diag = &diag
	}
	res, err := structure.Solve(solveOpts)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "Solver diagnostics: %s\n", diag)
	}
	fmt.Printf("Model: %s (%d states, %d transitions)\n",
		doc.Name, structure.Model().NumStates(), structure.Model().NumTransitions())
	if doc.Description != "" {
		fmt.Println(doc.Description)
	}
	fmt.Printf("\nAvailability:       %.7f%%\n", res.Availability*100)
	fmt.Printf("Expected reward:    %.9f\n", res.ExpectedReward)
	fmt.Printf("Yearly downtime:    %.3f minutes\n", res.YearlyDowntimeMinutes)
	if res.FailureFrequency > 0 {
		fmt.Printf("Failure frequency:  %.3g per hour\n", res.FailureFrequency)
		fmt.Printf("MTBF:               %.1f hours\n", res.MTBFHours)
		fmt.Printf("Mean down duration: %.3f hours\n", res.MeanDownDurationHours)
	}
	fmt.Printf("Equivalent rates:   lambda %.6g/h, mu %.6g/h\n", res.LambdaEq, res.MuEq)
	fmt.Println("\nSteady-state probabilities:")
	m := structure.Model()
	for _, s := range m.States() {
		fmt.Printf("  %-16s %.9f\n", m.Name(s), res.Pi[s])
	}
	return nil
}

// printUncertainty reports an uncertainty analysis over a document's
// declared ranges.
func printUncertainty(name string, res *uncertainty.Result) {
	fmt.Printf("Uncertainty analysis of %s (%d samples):\n", name, res.Summary.N)
	fmt.Printf("  mean yearly downtime: %.3f minutes (s.d. %.3f)\n", res.Summary.Mean, res.Summary.StdDev)
	for _, c := range res.SortedConfidences() {
		ci := res.CIs[c]
		fmt.Printf("  %.0f%% interval: (%.3f, %.3f) minutes\n", c*100, ci.Low, ci.High)
	}
	fmt.Println("  variance drivers (Spearman):")
	corr := res.Correlations()
	names := make([]string, 0, len(corr))
	for nameP := range corr {
		names = append(names, nameP)
	}
	sort.Strings(names) // map order would shuffle the report run to run
	for _, nameP := range names {
		fmt.Printf("    %-18s %+.3f\n", nameP, corr[nameP])
	}
}

// solveRedundancy solves a document through the multi-backend interface
// and prints the backend-independent report.
func solveRedundancy(doc *spec.Document, kind backend.Kind, ov overrides) error {
	res, err := doc.SolveBackend(context.Background(), kind, ov)
	if err != nil {
		return err
	}
	sizeWhat := "CTMC states"
	if res.Backend == backend.KindBayes {
		sizeWhat = "BN variables"
	}
	fmt.Printf("Model: %s (backend %s, %d %s)\n", res.Name, res.Backend, res.Size, sizeWhat)
	if doc.Description != "" {
		fmt.Println(doc.Description)
	}
	if doc.Redundancy != nil {
		fmt.Printf("Redundancy structure: %d node(s), %d leaf instance(s)\n",
			len(doc.Redundancy.Nodes), doc.Redundancy.LeafCount())
	}
	fmt.Printf("\nAvailability:       %.9f\n", res.Availability)
	fmt.Printf("Yearly downtime:    %.4f minutes\n", res.YearlyDowntimeMinutes)
	return nil
}

// solveHierarchy parses and evaluates a hierarchical document, printing
// the result tree bottom-up.
func solveHierarchy(f *os.File, ov overrides) error {
	doc, err := spec.ParseHier(f)
	if err != nil {
		return err
	}
	ev, err := doc.Solve(ov)
	if err != nil {
		return err
	}
	fmt.Printf("Hierarchy: %s (root %q, %d model(s))\n", doc.Name, doc.Root, len(doc.Models))
	if doc.Description != "" {
		fmt.Println(doc.Description)
	}
	fmt.Println()
	printEvaluation(ev, 0)
	return nil
}

func printEvaluation(ev *spec.HierEvaluation, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	fmt.Printf("%s%-20s availability %.9f  YD %8.4f min/yr  lambda_eq %.4g/h  mu_eq %.4g/h\n",
		indent, ev.Name, ev.Result.Availability, ev.Result.YearlyDowntimeMinutes,
		ev.Result.LambdaEq, ev.Result.MuEq)
	for _, child := range ev.Children {
		printEvaluation(child, depth+1)
	}
}

func printExample() error {
	doc := &spec.Document{
		Name:        "repairable-pair",
		Description: "Two-state repairable component: fails at La/hour, repairs at Mu/hour.",
		Parameters:  map[string]float64{"La": 0.00057, "Mu": 2},
		States: []spec.State{
			{Name: "Up", Reward: 1},
			{Name: "Down", Reward: 0},
		},
		Transitions: []spec.Transition{
			{From: "Up", To: "Down", Rate: "La"},
			{From: "Down", To: "Up", Rate: "Mu"},
		},
	}
	return doc.Encode(os.Stdout)
}
