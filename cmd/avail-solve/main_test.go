package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTempModel(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write temp model: %v", err)
	}
	return path
}

const flatModel = `{
  "name": "pair",
  "parameters": {"La": 0.001, "Mu": 2},
  "states": [{"name":"Up","reward":1},{"name":"Down","reward":0}],
  "transitions": [
    {"from":"Up","to":"Down","rate":"La"},
    {"from":"Down","to":"Up","rate":"Mu"}
  ]
}`

func TestRunFlatModel(t *testing.T) {
	path := writeTempModel(t, flatModel)
	if err := run([]string{path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithOverride(t *testing.T) {
	path := writeTempModel(t, flatModel)
	if err := run([]string{"-set", "La=0.01", path}); err != nil {
		t.Fatalf("run -set: %v", err)
	}
	if err := run([]string{"-set", "nope=1", path}); err == nil {
		t.Fatal("unknown override accepted")
	}
	if err := run([]string{"-set", "garbage", path}); err == nil {
		t.Fatal("malformed override accepted")
	}
	if err := run([]string{"-set", "La=zzz", path}); err == nil {
		t.Fatal("non-numeric override accepted")
	}
}

func TestRunDot(t *testing.T) {
	path := writeTempModel(t, flatModel)
	if err := run([]string{"-dot", path}); err != nil {
		t.Fatalf("run -dot: %v", err)
	}
}

func TestRunExample(t *testing.T) {
	if err := run([]string{"-example"}); err != nil {
		t.Fatalf("run -example: %v", err)
	}
}

func TestRunHierarchyDocument(t *testing.T) {
	// The shipped JSAS Config 1 hierarchy must load and solve.
	if err := run([]string{"-hier", filepath.Join("..", "..", "models", "jsas-config1.json")}); err != nil {
		t.Fatalf("run -hier: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"/no/such/file.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeTempModel(t, `{"name":"x"}`)
	if err := run([]string{bad}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if err := run([]string{"-hier", bad}); err == nil {
		t.Fatal("invalid hierarchy accepted")
	}
}

func TestRunCheck(t *testing.T) {
	path := writeTempModel(t, flatModel)
	if err := run([]string{"-check", path}); err != nil {
		t.Fatalf("run -check: %v", err)
	}
}

func TestRunUncertaintyHier(t *testing.T) {
	if err := run([]string{"-hier", "-uncertainty", "40",
		filepath.Join("..", "..", "models", "jsas-config1.json")}); err != nil {
		t.Fatalf("run -hier -uncertainty: %v", err)
	}
}

func TestRunUncertaintyFlat(t *testing.T) {
	doc := `{
	  "name": "pair",
	  "parameters": {"La": 0.001, "Mu": 2},
	  "uncertain": {"La": {"low": 0.0005, "high": 0.002}},
	  "states": [{"name":"Up","reward":1},{"name":"Down","reward":0}],
	  "transitions": [
	    {"from":"Up","to":"Down","rate":"La"},
	    {"from":"Down","to":"Up","rate":"Mu"}
	  ]
	}`
	path := writeTempModel(t, doc)
	if err := run([]string{"-uncertainty", "30", path}); err != nil {
		t.Fatalf("run -uncertainty: %v", err)
	}
	// A document without declared ranges errors cleanly.
	plain := writeTempModel(t, flatModel)
	if err := run([]string{"-uncertainty", "10", plain}); err == nil {
		t.Fatal("undeclared uncertainty accepted")
	}
}
