package main

import "testing"

func TestRunInterval(t *testing.T) {
	if err := run([]string{"-interval", "24h"}); err != nil {
		t.Fatalf("run -interval: %v", err)
	}
}

func TestRunPerformability(t *testing.T) {
	if err := run([]string{"-performability", "-instances", "4"}); err != nil {
		t.Fatalf("run -performability: %v", err)
	}
}

func TestRunImportance(t *testing.T) {
	if err := run([]string{"-importance", "-config", "2"}); err != nil {
		t.Fatalf("run -importance: %v", err)
	}
}

func TestRunNothing(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run([]string{"-config", "7", "-importance"}); err == nil {
		t.Fatal("config 7 accepted")
	}
}

func TestRunDualCluster(t *testing.T) {
	if err := run([]string{"-upgrades", "12"}); err != nil {
		t.Fatalf("run -upgrades: %v", err)
	}
}

func TestRunDualClusterBadWindow(t *testing.T) {
	if err := run([]string{"-upgrades", "12", "-window", "0s"}); err == nil {
		t.Fatal("zero window accepted")
	}
}
