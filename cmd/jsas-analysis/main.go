// Command jsas-analysis runs the extended analyses built on top of the
// paper's models:
//
//   - interval (finite-mission) availability via transient uniformization,
//     the capability the paper cites as RAScad's companion feature;
//   - performability: delivered-capacity analysis of the AS cluster, where
//     the paper notes its Recovery state "could be a degraded state";
//   - parameter importance: one-at-a-time elasticities and range swings
//     over the §7 uncertainty parameters, explaining why the paper sweeps
//     Tstart_long in Figures 5/6.
//
// Usage:
//
//	jsas-analysis -interval 24h [-config 1|2]
//	jsas-analysis -performability [-instances 2]
//	jsas-analysis -importance [-config 1|2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/jsas"
	"repro/internal/report"
	"repro/internal/sensitivity"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-analysis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsas-analysis", flag.ContinueOnError)
	configNo := fs.Int("config", 1, "paper configuration (1 or 2)")
	interval := fs.Duration("interval", 0, "mission window for interval availability (e.g. 24h)")
	perf := fs.Bool("performability", false, "run the AS delivered-capacity analysis")
	instances := fs.Int("instances", 2, "AS instance count for -performability")
	importance := fs.Bool("importance", false, "rank the §7 parameters by influence on yearly downtime")
	upgrades := fs.Float64("upgrades", 0, "upgrade campaigns per year for the dual-cluster comparison")
	window := fs.Duration("window", time.Hour, "offline window per upgrade")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg jsas.Config
	switch *configNo {
	case 1:
		cfg = jsas.Config1
	case 2:
		cfg = jsas.Config2
	default:
		return fmt.Errorf("config %d: want 1 or 2", *configNo)
	}
	p := jsas.DefaultParams()
	ran := false
	if *interval > 0 {
		ran = true
		if err := runInterval(cfg, p, *interval); err != nil {
			return err
		}
	}
	if *perf {
		ran = true
		if err := runPerformability(p, *instances); err != nil {
			return err
		}
	}
	if *importance {
		ran = true
		if err := runImportance(cfg, p); err != nil {
			return err
		}
	}
	if *upgrades > 0 {
		ran = true
		if err := runDualCluster(cfg, p, jsas.UpgradePolicy{PerYear: *upgrades, Window: *window}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -interval, -performability, -importance, or -upgrades")
	}
	return nil
}

func runDualCluster(cfg jsas.Config, p jsas.Params, policy jsas.UpgradePolicy) error {
	res, err := jsas.SolveDualCluster(cfg, p, policy)
	if err != nil {
		return err
	}
	fmt.Printf("Upgrade strategy for %s (%.0f upgrades/yr, %v windows):\n",
		cfg, policy.PerYear, policy.Window)
	fmt.Printf("  single cluster: %.5f%% (%.2f min downtime/yr)\n",
		res.SingleCluster*100, res.SingleClusterDowntimeMinutes)
	fmt.Printf("  dual cluster:   %.5f%% (%.4f min downtime/yr)\n",
		res.DualCluster*100, res.DualClusterDowntimeMinutes)
	return nil
}

func runInterval(cfg jsas.Config, p jsas.Params, mission time.Duration) error {
	res, err := jsas.IntervalAvailability(cfg, p, mission)
	if err != nil {
		return err
	}
	fmt.Printf("Interval availability for %s over %v (starting healthy):\n", cfg, mission)
	fmt.Printf("  interval availability: %.9f%%\n", res.IntervalAvailability*100)
	fmt.Printf("  steady-state limit:    %.9f%%\n", res.SteadyStateAvailability*100)
	fmt.Printf("  expected downtime:     %v\n", res.ExpectedDowntime.Round(time.Millisecond))
	return nil
}

func runPerformability(p jsas.Params, n int) error {
	res, err := jsas.SolveAppServerPerformability(p, n)
	if err != nil {
		return err
	}
	fmt.Printf("Performability of a %d-instance AS cluster:\n", n)
	fmt.Printf("  availability:        %.7f%%\n", res.Availability*100)
	fmt.Printf("  delivered capacity:  %.7f%% of nominal\n", res.ExpectedCapacity*100)
	fmt.Printf("  hidden capacity loss: %.2f full-outage-equivalent min/yr\n",
		res.CapacityLossMinutesPerYear)
	fmt.Printf("  (availability alone charges only %.2f min/yr)\n",
		(1-res.Availability)*525600)
	return nil
}

func runImportance(cfg jsas.Config, p jsas.Params) error {
	entries, err := sensitivity.Importance(jsas.PaperImportanceRanges(p), jsas.ImportanceSolver(cfg, p))
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Parameter importance for %s (measure: yearly downtime, minutes)", cfg),
		"parameter", "nominal", "elasticity", "range swing (min/yr)",
	)
	for _, e := range entries {
		t.AddRow(e.Name,
			fmt.Sprintf("%g", e.Base),
			fmt.Sprintf("%+.4f", e.Elasticity),
			fmt.Sprintf("%+.4f", e.Swing),
		)
	}
	return t.Render(os.Stdout)
}
