// Command avail-server exposes the availability modeling engine over
// HTTP: POST model documents (flat or hierarchical) and GET solved JSAS
// configurations as JSON. See internal/httpapi for the endpoints.
//
// Usage:
//
//	avail-server [-addr :8080] [-pprof]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /metrics               (Prometheus text; ?format=json or
//	                             Accept: application/json for JSON)
//	POST /v1/solve              (spec.Document)
//	POST /v1/solve-hierarchy    (spec.HierDocument)
//	GET  /v1/jsas?instances=4&pairs=4&spares=2
//	GET  /v1/jsas/uncertainty?instances=2&pairs=2&samples=1000
//	GET  /v1/traces             (flight-recorder trace IDs)
//	GET  /v1/traces/{id}        (?format=chrome|timeline|jsonl)
//	GET  /debug/pprof/          (only with -pprof)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/httpapi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avail-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avail-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewHandler(httpapi.Options{PProf: *withPprof}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	log.Printf("avail-server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
