// Command avail-server exposes the availability modeling engine over
// HTTP: POST model documents (flat or hierarchical) and GET solved JSAS
// configurations as JSON. See internal/httpapi for the endpoints.
//
// Usage:
//
//	avail-server [-addr :8080] [-pprof] [-max-inflight N] [-shutdown-timeout 10s]
//	             [-job-workers N] [-job-queue N] [-cache-size N]
//	             [-job-keep N] [-job-ttl 1h]
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -shutdown-timeout before exiting;
// connections still open at the deadline are force-closed.
//
// Endpoints:
//
//	GET  /healthz               (build identity + uptime)
//	GET  /metrics               (Prometheus text; ?format=json or
//	                             Accept: application/json for JSON)
//	GET  /v1/metrics/stream     (Server-Sent Events: snapshot frame, then
//	                             per-series deltas each ?interval= tick)
//	GET  /v1/runs               (in-flight/recent tracked requests with
//	                             progress and ETA)
//	POST /v1/jobs               (submit an async job; 202 + job ID)
//	GET  /v1/jobs               (job records, newest first)
//	GET  /v1/jobs/{id}          (poll status/result; cache + progress)
//	GET  /v1/jobs/{id}/stream   (Server-Sent Events until the job ends)
//	POST /v1/solve              (spec.Document)
//	POST /v1/solve-hierarchy    (spec.HierDocument)
//	GET  /v1/jsas?instances=4&pairs=4&spares=2
//	GET  /v1/jsas/uncertainty?instances=2&pairs=2&samples=1000
//	GET  /v1/traces             (flight-recorder trace IDs)
//	GET  /v1/traces/{id}        (?format=chrome|timeline|jsonl)
//	GET  /debug/pprof/          (only with -pprof)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/jobs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avail-server:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("avail-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
	maxInflight := fs.Int("max-inflight", 0,
		"max concurrent solve requests before shedding with 429 (0 = unlimited)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"how long to drain in-flight requests after SIGINT/SIGTERM")
	jobWorkers := fs.Int("job-workers", 0,
		"async job worker goroutines (0 = GOMAXPROCS)")
	jobQueue := fs.Int("job-queue", jobs.DefaultQueueDepth,
		"async job queue depth before submissions shed with 429")
	cacheSize := fs.Int("cache-size", jobs.DefaultCacheSize,
		"async job result cache entries (0 disables caching)")
	jobKeep := fs.Int("job-keep", jobs.DefaultKeepDone,
		"finished job records retained for polling")
	jobTTL := fs.Duration("job-ttl", time.Hour,
		"how long finished job records stay pollable (0 = count cap only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The flag's 0 means "no cache"; the engine spells that -1 (its zero
	// value selects the default size so handler-built engines get a cache).
	cs := *cacheSize
	if cs == 0 {
		cs = -1
	}
	engine := jobs.New(jobs.Config{
		Workers:    *jobWorkers,
		QueueDepth: *jobQueue,
		CacheSize:  cs,
		KeepDone:   *jobKeep,
		TTL:        *jobTTL,
		Registry:   httpapi.RunRegistry(),
	})
	defer engine.Close()
	srv := &http.Server{
		Handler: httpapi.NewHandler(httpapi.Options{
			PProf:       *withPprof,
			MaxInflight: *maxInflight,
			Jobs:        engine,
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("avail-server listening on %s", ln.Addr())
	return serve(ctx, srv, ln, *shutdownTimeout)
}

// serve runs srv on ln until ctx is canceled, then drains: the listener
// closes immediately (no new connections), in-flight requests get up to
// timeout to finish, and anything still open at the deadline is
// force-closed. A graceful drain returns nil — shutdown on signal is the
// intended exit, not an error.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, timeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	log.Printf("avail-server: shutting down, draining in-flight requests (up to %v)", timeout)
	sctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// The drain deadline passed with requests still running: close
		// their connections (canceling the request contexts, which aborts
		// the solves) rather than hang forever.
		_ = srv.Close()
		return fmt.Errorf("drain timed out after %v: %w", timeout, err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
