package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer runs serve() on an ephemeral port and returns the base URL,
// the cancel that triggers shutdown, and the channel carrying serve's
// return value.
func startServer(t *testing.T, h http.Handler, drain time.Duration) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{Handler: h}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln, drain) }()
	return "http://" + ln.Addr().String(), cancel, done
}

// TestServeDrainsInflightRequests: SIGTERM-style cancellation lets an
// in-flight request finish and then exits cleanly.
func TestServeDrainsInflightRequests(t *testing.T) {
	t.Parallel()
	entered := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained-ok")
	})
	url, cancel, done := startServer(t, h, 5*time.Second)

	type result struct {
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(url + "/")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{body: string(b), err: err}
	}()

	<-entered
	cancel() // the signal arrives while the request is in flight
	// Give the shutdown a moment to start, then let the handler finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after a clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.body != "drained-ok" {
		t.Errorf("in-flight response = %q, want drained-ok", r.body)
	}
}

// TestServeDrainTimeoutForcesClose: a request that outlives the drain
// deadline is force-closed and serve reports the timeout.
func TestServeDrainTimeoutForcesClose(t *testing.T) {
	t.Parallel()
	entered := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-r.Context().Done() // holds until the connection is torn down
	})
	url, cancel, done := startServer(t, h, 50*time.Millisecond)

	go func() {
		resp, err := http.Get(url + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()

	<-entered
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "drain timed out") {
			t.Fatalf("serve = %v, want a drain-timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung past the drain deadline")
	}
}

// TestServeExitsOnListenerError: serve returns the Serve error when the
// listener dies without a cancellation.
func TestServeExitsOnListenerError(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.NewServeMux()}
	done := make(chan error, 1)
	go func() { done <- serve(context.Background(), srv, ln, time.Second) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serve returned nil after the listener died")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not notice the dead listener")
	}
}

// TestRunRejectsBadFlags: flag errors surface instead of starting a
// server.
func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:-1"}); err == nil {
		t.Fatal("invalid address accepted")
	}
}
