// Command jsas-report generates a complete Markdown availability
// assessment for a JSAS deployment: steady-state results, downtime
// attribution, sensitivity, uncertainty bands, parameter importance,
// finite-mission availability, and delivered capacity.
//
// Usage:
//
//	jsas-report [-instances 2] [-pairs 2] [-spares 2] [-samples 1000]
//	            [-seed 2004] [-o report.md]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/assess"
	"repro/internal/jsas"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsas-report", flag.ContinueOnError)
	instances := fs.Int("instances", 2, "AS instance count")
	pairs := fs.Int("pairs", 2, "HADB pair count")
	spares := fs.Int("spares", 2, "HADB spare count")
	samples := fs.Int("samples", 1000, "uncertainty analysis samples")
	seed := fs.Int64("seed", 2004, "uncertainty analysis seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := assess.Run(assess.Request{
		Config: jsas.Config{
			ASInstances: *instances,
			HADBPairs:   *pairs,
			HADBSpares:  *spares,
		},
		Params:             jsas.DefaultParams(),
		UncertaintySamples: *samples,
		Seed:               *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return rep.WriteMarkdown(w)
}
