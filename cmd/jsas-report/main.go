// Command jsas-report generates a complete Markdown availability
// assessment for a JSAS deployment: steady-state results, downtime
// attribution, sensitivity, uncertainty bands, parameter importance,
// finite-mission availability, and delivered capacity.
//
// Usage:
//
//	jsas-report [-instances 2] [-pairs 2] [-spares 2] [-samples 1000]
//	            [-seed 2004] [-o report.md]
//	jsas-report -trace campaign.jsonl [-chrome out.json] [-o report.md]
//
// The second form renders a flight-recorder JSONL trace (from
// jsas-faultinject/jsas-longevity -trace) instead of running the model
// assessment: the reconstructed outage timeline and per-failure-mode
// downtime decomposition as Markdown, plus an optional Chrome
// trace_event export (-chrome) loadable in Perfetto or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/assess"
	"repro/internal/jsas"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsas-report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsas-report", flag.ContinueOnError)
	instances := fs.Int("instances", 2, "AS instance count")
	pairs := fs.Int("pairs", 2, "HADB pair count")
	spares := fs.Int("spares", 2, "HADB spare count")
	samples := fs.Int("samples", 1000, "uncertainty analysis samples")
	seed := fs.Int64("seed", 2004, "uncertainty analysis seed")
	out := fs.String("o", "", "output file (default stdout)")
	traceIn := fs.String("trace", "", "render this flight-recorder JSONL trace instead of running the assessment")
	chromeOut := fs.String("chrome", "", "with -trace: also write a Chrome trace_event JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceIn == "" && *chromeOut != "" {
		return fmt.Errorf("-chrome requires -trace")
	}
	if *traceIn != "" {
		return renderTrace(*traceIn, *chromeOut, *out)
	}
	rep, err := assess.Run(assess.Request{
		Config: jsas.Config{
			ASInstances: *instances,
			HADBPairs:   *pairs,
			HADBSpares:  *spares,
		},
		Params:             jsas.DefaultParams(),
		UncertaintySamples: *samples,
		Seed:               *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return rep.WriteMarkdown(w)
}

// renderTrace reads a JSONL span stream and writes the Markdown outage
// report (and optionally a Chrome trace_event export).
func renderTrace(path, chromePath, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spans, err := trace.ReadJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no spans", path)
	}
	if chromePath != "" {
		cf, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		err = trace.WriteChromeTrace(cf, spans)
		if cerr := cf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if _, err := fmt.Fprintf(w, "# Flight-recorder trace report\n\n%d span(s) from `%s`.\n\n", len(spans), path); err != nil {
		return err
	}
	if err := trace.AnalyzeOutages(spans).WriteMarkdown(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "## Timeline\n\n```\n"); err != nil {
		return err
	}
	if err := trace.WriteTimeline(w, spans); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "```\n")
	return err
}
