package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-samples", "50", "-o", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if !strings.Contains(string(data), "# Availability assessment") {
		t.Error("report heading missing")
	}
}

func TestRunStdout(t *testing.T) {
	if err := run([]string{"-samples", "30", "-instances", "4", "-pairs", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run([]string{"-instances", "0"}); err == nil {
		t.Fatal("bad config accepted")
	}
}
