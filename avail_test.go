package avail

import (
	"math"
	"testing"
	"time"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	t.Parallel()
	b := NewModelBuilder()
	up := b.State("Up")
	down := b.State("Down")
	b.Transition(up, down, 0.001)
	b.Transition(down, up, 4)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := BinaryReward(m, "Down")
	if err != nil {
		t.Fatalf("BinaryReward: %v", err)
	}
	res, err := s.Solve(SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 4 / 4.001
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", res.Availability, want)
	}
}

func TestFacadeNewReward(t *testing.T) {
	t.Parallel()
	b := NewModelBuilder()
	a := b.State("A")
	c := b.State("C")
	b.Transition(a, c, 1)
	b.Transition(c, a, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := NewReward(m, []float64{1, 0.5})
	if err != nil {
		t.Fatalf("NewReward: %v", err)
	}
	res, err := s.Solve(SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.ExpectedReward-0.75) > 1e-12 {
		t.Errorf("ExpectedReward = %v, want 0.75", res.ExpectedReward)
	}
}

func TestFacadeSolveJSAS(t *testing.T) {
	t.Parallel()
	res, err := SolveJSAS(Config1, DefaultParams())
	if err != nil {
		t.Fatalf("SolveJSAS: %v", err)
	}
	if math.Abs(res.YearlyDowntimeMinutes-3.49) > 0.15 {
		t.Errorf("YD = %v, want ~3.49", res.YearlyDowntimeMinutes)
	}
	if len(Table3Configs()) != 6 {
		t.Error("Table3Configs should have 6 rows")
	}
}

func TestFacadeHierarchy(t *testing.T) {
	t.Parallel()
	leaf := NewComponent("leaf", func(p HierParams) (*RewardStructure, error) {
		b := NewModelBuilder()
		up := b.State("Up")
		down := b.State("Down")
		b.Transition(up, down, p["la"])
		b.Transition(down, up, p["mu"])
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return BinaryReward(m, "Down")
	})
	ev, err := EvaluateHierarchy(leaf, HierParams{"la": 0.01, "mu": 1})
	if err != nil {
		t.Fatalf("EvaluateHierarchy: %v", err)
	}
	if math.Abs(ev.Result.Availability-1/1.01) > 1e-12 {
		t.Errorf("availability = %v", ev.Result.Availability)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	t.Parallel()
	pts, err := SweepTstartLong(Config1, DefaultParams(), 0.5, 3, 5)
	if err != nil {
		t.Fatalf("SweepTstartLong: %v", err)
	}
	if len(pts) != 6 {
		t.Errorf("points = %d, want 6", len(pts))
	}
	res, err := RunUncertainty(Config1, DefaultParams(), UncertaintyOptions{Samples: 50, Seed: 1})
	if err != nil {
		t.Fatalf("RunUncertainty: %v", err)
	}
	if res.Summary.N != 50 {
		t.Errorf("samples = %d, want 50", res.Summary.N)
	}
	if len(PaperUncertaintyRanges()) != 6 {
		t.Error("PaperUncertaintyRanges should have 6 ranges")
	}
}

func TestFacadeEstimators(t *testing.T) {
	t.Parallel()
	rb, err := FailureRateUpperBound(48*24*time.Hour, 0, 0.95)
	if err != nil {
		t.Fatalf("FailureRateUpperBound: %v", err)
	}
	if math.Abs(1/(rb.PerHour*24)-16) > 0.1 {
		t.Errorf("rate bound = 1/%.1f d, want 1/16", 1/(rb.PerHour*24))
	}
	cb, err := CoverageLowerBound(3287, 3287, 0.95)
	if err != nil {
		t.Fatalf("CoverageLowerBound: %v", err)
	}
	if cb.FIR > 0.001 {
		t.Errorf("FIR = %v, want < 0.001", cb.FIR)
	}
}

func TestFacadePaperModels(t *testing.T) {
	t.Parallel()
	pair, err := BuildHADBPair(DefaultParams())
	if err != nil {
		t.Fatalf("BuildHADBPair: %v", err)
	}
	if pair.Model().NumStates() != 6 {
		t.Errorf("HADB pair states = %d, want 6", pair.Model().NumStates())
	}
	as, err := BuildAppServer(DefaultParams(), 2)
	if err != nil {
		t.Fatalf("BuildAppServer: %v", err)
	}
	if as.Model().NumStates() != 5 {
		t.Errorf("AS states = %d, want 5", as.Model().NumStates())
	}
}
