package avail_test

import (
	"fmt"

	avail "repro"
)

// ExampleSolveJSAS reproduces the paper's Config 1 headline numbers.
func ExampleSolveJSAS() {
	res, err := avail.SolveJSAS(avail.Config1, avail.DefaultParams())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("availability %.5f%%\n", res.Availability*100)
	fmt.Printf("yearly downtime %.2f min\n", res.YearlyDowntimeMinutes)
	fmt.Printf("AS share %.2f min, HADB share %.2f min\n",
		res.DowntimeASMinutes, res.DowntimeHADBMinutes)
	// Output:
	// availability 99.99934%
	// yearly downtime 3.49 min
	// AS share 2.35 min, HADB share 1.14 min
}

// ExampleNewModelBuilder solves a classic repairable component.
func ExampleNewModelBuilder() {
	b := avail.NewModelBuilder()
	up := b.State("Up")
	down := b.State("Down")
	b.Transition(up, down, 0.01) // fails ~once per 100 h
	b.Transition(down, up, 2)    // repaired in 30 min
	m, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s, err := avail.BinaryReward(m, "Down")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := s.Solve(avail.SolveOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("availability %.5f\n", res.Availability)
	fmt.Printf("MTBF %.1f h\n", res.MTBFHours)
	// Output:
	// availability 0.99502
	// MTBF 100.5 h
}

// ExampleCoverageLowerBound reproduces the paper's Equation (1) FIR bound.
func ExampleCoverageLowerBound() {
	b, err := avail.CoverageLowerBound(3287, 3287, 0.95)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("FIR ≤ %.4f%% at 95%% confidence\n", b.FIR*100)
	// Output:
	// FIR ≤ 0.0911% at 95% confidence
}

// ExampleEvaluateHierarchy composes a submodel into a parent model.
func ExampleEvaluateHierarchy() {
	leaf := avail.NewComponent("database", func(p avail.HierParams) (*avail.RewardStructure, error) {
		b := avail.NewModelBuilder()
		up, down := b.State("Up"), b.State("Down")
		b.Transition(up, down, p["la"])
		b.Transition(down, up, p["mu"])
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return avail.BinaryReward(m, "Down")
	})
	top := avail.NewComponent("service", func(p avail.HierParams) (*avail.RewardStructure, error) {
		b := avail.NewModelBuilder()
		ok, fail := b.State("Ok"), b.State("DBFail")
		b.Transition(ok, fail, p["La_db"])
		b.Transition(fail, ok, p["Mu_db"])
		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		return avail.BinaryReward(m, "DBFail")
	})
	top.Use(leaf, "La_db", "Mu_db")
	ev, err := avail.EvaluateHierarchy(top, avail.HierParams{"la": 0.002, "mu": 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("service availability %.6f\n", ev.Result.Availability)
	// Output:
	// service availability 0.999500
}
