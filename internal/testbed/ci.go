package testbed

import (
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// AvailabilityCI estimates a two-sided confidence interval for the
// long-run availability from the observed outage history, treating the
// per-outage downtime contributions as an i.i.d. renewal sample (valid for
// long runs where outages are rare and short). With fewer than two outages
// the interval degenerates to [observed, 1].
func (s Stats) AvailabilityCI(confidence float64) (stats.Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return stats.Interval{}, fmt.Errorf("testbed: confidence %g out of (0,1)", confidence)
	}
	total := s.UpTime + s.DownTime
	if total <= 0 {
		return stats.Interval{Low: 0, High: 1}, nil
	}
	point := s.Availability()
	if len(s.Outages) < 2 {
		return stats.Interval{Low: point, High: 1}, nil
	}
	// Split the run into per-outage renewal cycles: cycle i spans from the
	// end of outage i−1 to the end of outage i. Unavailability is the
	// ratio estimator E[down_i]/E[cycle_i]; its standard error follows the
	// delta method for ratio estimators.
	downs := make([]float64, 0, len(s.Outages)+1)
	cycles := make([]float64, 0, len(s.Outages)+1)
	prevEnd := time.Duration(0)
	for _, o := range s.Outages {
		downs = append(downs, o.Duration().Hours())
		cycles = append(cycles, (o.End - prevEnd).Hours())
		prevEnd = o.End
	}
	// Include the trailing partial cycle (standard ratio-estimator
	// treatment): the healthy tail after the final outage carries zero
	// downtime but real exposure. Dropping it would bias the estimated
	// unavailability upward on long-tail histories (the common shape of a
	// stability run) and detach the interval from Availability(), which
	// does count that tail.
	if tail := total - prevEnd; tail > 0 {
		downs = append(downs, 0)
		cycles = append(cycles, tail.Hours())
	}
	n := len(downs)
	meanDown := mean(downs)
	meanCycle := mean(cycles)
	if meanCycle == 0 {
		return stats.Interval{Low: point, High: 1}, nil
	}
	ratio := meanDown / meanCycle
	// Delta-method variance of the ratio estimator.
	var sVar float64
	for i := range downs {
		d := downs[i] - ratio*cycles[i]
		sVar += d * d
	}
	sVar /= float64(n - 1)
	se := 0.0
	if sVar > 0 {
		se = math.Sqrt(sVar/float64(n)) / meanCycle
	}
	z, err := stats.NormalQuantile(0.5 + confidence/2)
	if err != nil {
		return stats.Interval{}, fmt.Errorf("testbed: %w", err)
	}
	lo := 1 - (ratio + z*se)
	hi := 1 - (ratio - z*se)
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return stats.Interval{Low: lo, High: hi}, nil
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
