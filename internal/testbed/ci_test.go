package testbed

import (
	"testing"
	"time"

	"repro/internal/jsas"
)

func TestAvailabilityCICoversModel(t *testing.T) {
	t.Parallel()
	// Long organic run: the 95% CI must cover the observed availability
	// and (almost always) the analytic model's value.
	p := jsas.DefaultParams()
	tm := DefaultTiming()
	tm.HADBRestart = Fixed(p.HADBRestartShort)
	tm.HADBOSReboot = Fixed(p.HADBRestartLong)
	tm.HADBRepairPerGB = Fixed(p.HADBRepair)
	tm.OperatorRestoreHADB = Fixed(p.HADBRestore)
	tm.ASRestart = Fixed(p.ASRestartShort / 2)
	tm.HealthCheckInterval = p.ASRestartShort
	tm.ASOSReboot = Fixed(15 * time.Minute)
	tm.ASHWRepair = Fixed(100 * time.Minute)
	tm.OperatorRestoreAS = Fixed(p.ASRestoreAll)
	tm.MaintenanceSwitchover = Fixed(p.MaintenanceSwitchover)
	c, err := New(Options{
		Config: jsas.Config1, Params: p, Timing: &tm, Seed: 41,
		OrganicFailures: true, Maintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(250 * 8760 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if len(s.Outages) < 5 {
		t.Skipf("only %d outages; CI not meaningful", len(s.Outages))
	}
	ci, err := s.AvailabilityCI(0.95)
	if err != nil {
		t.Fatalf("AvailabilityCI: %v", err)
	}
	obs := s.Availability()
	if obs < ci.Low || obs > ci.High {
		t.Errorf("observed %v outside its own CI (%v, %v)", obs, ci.Low, ci.High)
	}
	model, err := jsas.Solve(jsas.Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	if model.Availability < ci.Low || model.Availability > ci.High {
		t.Logf("note: model availability %v outside 95%% CI (%v, %v) — possible for 1 in 20 seeds",
			model.Availability, ci.Low, ci.High)
	}
	if ci.Low >= ci.High {
		t.Errorf("degenerate CI: (%v, %v)", ci.Low, ci.High)
	}
}

// TestAvailabilityCIBracketsPointOnLongTail is the regression test for
// the trailing-cycle bug: the renewal cycles used to end at the final
// outage's End, so a long healthy tail — the common case in stability
// runs — was dropped from the exposure, inflating estimated unavailability
// until the CI no longer contained the point estimate.
func TestAvailabilityCIBracketsPointOnLongTail(t *testing.T) {
	t.Parallel()
	s := Stats{
		UpTime:   997 * time.Hour,
		DownTime: 3 * time.Hour,
		Outages: []Outage{
			{Start: 10 * time.Hour, End: 11 * time.Hour, Cause: ComponentHADB},
			{Start: 30 * time.Hour, End: 31 * time.Hour, Cause: ComponentHADB},
			{Start: 50 * time.Hour, End: 51 * time.Hour, Cause: ComponentAS},
		},
	}
	point := s.Availability() // 0.997: 3 h down over 1000 h
	ci, err := s.AvailabilityCI(0.95)
	if err != nil {
		t.Fatalf("AvailabilityCI: %v", err)
	}
	if point < ci.Low || point > ci.High {
		t.Errorf("point estimate %v outside CI (%v, %v) — trailing up-time dropped?",
			point, ci.Low, ci.High)
	}
	if ci.Low >= ci.High {
		t.Errorf("degenerate CI (%v, %v)", ci.Low, ci.High)
	}

	// Without the tail (history ends at the last outage) the old and new
	// treatments coincide: the interval must still bracket the point.
	noTail := Stats{
		UpTime:   48 * time.Hour,
		DownTime: 3 * time.Hour,
		Outages:  s.Outages,
	}
	point = noTail.Availability()
	ci, err = noTail.AvailabilityCI(0.95)
	if err != nil {
		t.Fatalf("AvailabilityCI: %v", err)
	}
	if point < ci.Low || point > ci.High {
		t.Errorf("no-tail point %v outside CI (%v, %v)", point, ci.Low, ci.High)
	}
}

func TestStatsMergePoolsAccounting(t *testing.T) {
	t.Parallel()
	a := Stats{
		UpTime: 10 * time.Hour, DownTime: time.Hour,
		RequestsServed: 100, RequestsFailed: 5,
		SessionFailovers: 2, SessionRecoverySeconds: 1.5,
		Outages:    []Outage{{Start: 1 * time.Hour, End: 2 * time.Hour, Cause: ComponentAS}},
		Recoveries: []Recovery{{Component: ComponentAS, Kind: FailureProcess, Success: true}},
	}
	b := Stats{
		UpTime: 20 * time.Hour, DownTime: 2 * time.Hour,
		RequestsServed: 200, RequestsFailed: 10,
		SessionFailovers: 3, SessionRecoverySeconds: 2.5,
		Outages:    []Outage{{Start: 5 * time.Hour, End: 7 * time.Hour, Cause: ComponentHADB}},
		Recoveries: []Recovery{{Component: ComponentHADB, Kind: FailureHW, Success: false}},
	}
	m := a.Merge(b)
	if m.UpTime != 30*time.Hour || m.DownTime != 3*time.Hour {
		t.Errorf("merged durations = %v/%v", m.UpTime, m.DownTime)
	}
	if m.RequestsServed != 300 || m.RequestsFailed != 15 {
		t.Errorf("merged requests = %v/%v", m.RequestsServed, m.RequestsFailed)
	}
	if m.SessionFailovers != 5 || m.SessionRecoverySeconds != 4 {
		t.Errorf("merged failovers = %d/%v", m.SessionFailovers, m.SessionRecoverySeconds)
	}
	if len(m.Outages) != 2 || m.Outages[0].Cause != ComponentAS || m.Outages[1].Cause != ComponentHADB {
		t.Errorf("merged outages = %+v", m.Outages)
	}
	if len(m.Recoveries) != 2 {
		t.Errorf("merged recoveries = %+v", m.Recoveries)
	}
	// Merge must not alias the inputs' slices.
	m.Outages[0].Cause = ComponentHADB
	if a.Outages[0].Cause != ComponentAS {
		t.Error("Merge aliased the receiver's Outages slice")
	}
}

func TestAvailabilityCIDegenerateCases(t *testing.T) {
	t.Parallel()
	var empty Stats
	ci, err := empty.AvailabilityCI(0.9)
	if err != nil {
		t.Fatalf("AvailabilityCI(empty): %v", err)
	}
	if ci.Low != 0 || ci.High != 1 {
		t.Errorf("empty stats CI = %+v, want [0,1]", ci)
	}
	one := Stats{UpTime: 100 * time.Hour, DownTime: time.Hour,
		Outages: []Outage{{Start: 0, End: time.Hour}}}
	ci, err = one.AvailabilityCI(0.9)
	if err != nil {
		t.Fatalf("AvailabilityCI(one outage): %v", err)
	}
	if ci.High != 1 {
		t.Errorf("one-outage CI high = %v, want 1", ci.High)
	}
	if _, err := one.AvailabilityCI(0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := one.AvailabilityCI(1); err == nil {
		t.Error("confidence 1 accepted")
	}
}
