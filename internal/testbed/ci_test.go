package testbed

import (
	"testing"
	"time"

	"repro/internal/jsas"
)

func TestAvailabilityCICoversModel(t *testing.T) {
	t.Parallel()
	// Long organic run: the 95% CI must cover the observed availability
	// and (almost always) the analytic model's value.
	p := jsas.DefaultParams()
	tm := DefaultTiming()
	tm.HADBRestart = Fixed(p.HADBRestartShort)
	tm.HADBOSReboot = Fixed(p.HADBRestartLong)
	tm.HADBRepairPerGB = Fixed(p.HADBRepair)
	tm.OperatorRestoreHADB = Fixed(p.HADBRestore)
	tm.ASRestart = Fixed(p.ASRestartShort / 2)
	tm.HealthCheckInterval = p.ASRestartShort
	tm.ASOSReboot = Fixed(15 * time.Minute)
	tm.ASHWRepair = Fixed(100 * time.Minute)
	tm.OperatorRestoreAS = Fixed(p.ASRestoreAll)
	tm.MaintenanceSwitchover = Fixed(p.MaintenanceSwitchover)
	c, err := New(Options{
		Config: jsas.Config1, Params: p, Timing: &tm, Seed: 41,
		OrganicFailures: true, Maintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(250 * 8760 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if len(s.Outages) < 5 {
		t.Skipf("only %d outages; CI not meaningful", len(s.Outages))
	}
	ci, err := s.AvailabilityCI(0.95)
	if err != nil {
		t.Fatalf("AvailabilityCI: %v", err)
	}
	obs := s.Availability()
	if obs < ci.Low || obs > ci.High {
		t.Errorf("observed %v outside its own CI (%v, %v)", obs, ci.Low, ci.High)
	}
	model, err := jsas.Solve(jsas.Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	if model.Availability < ci.Low || model.Availability > ci.High {
		t.Logf("note: model availability %v outside 95%% CI (%v, %v) — possible for 1 in 20 seeds",
			model.Availability, ci.Low, ci.High)
	}
	if ci.Low >= ci.High {
		t.Errorf("degenerate CI: (%v, %v)", ci.Low, ci.High)
	}
}

func TestAvailabilityCIDegenerateCases(t *testing.T) {
	t.Parallel()
	var empty Stats
	ci, err := empty.AvailabilityCI(0.9)
	if err != nil {
		t.Fatalf("AvailabilityCI(empty): %v", err)
	}
	if ci.Low != 0 || ci.High != 1 {
		t.Errorf("empty stats CI = %+v, want [0,1]", ci)
	}
	one := Stats{UpTime: 100 * time.Hour, DownTime: time.Hour,
		Outages: []Outage{{Start: 0, End: time.Hour}}}
	ci, err = one.AvailabilityCI(0.9)
	if err != nil {
		t.Fatalf("AvailabilityCI(one outage): %v", err)
	}
	if ci.High != 1 {
		t.Errorf("one-outage CI high = %v, want 1", ci.High)
	}
	if _, err := one.AvailabilityCI(0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := one.AvailabilityCI(1); err == nil {
		t.Error("confidence 1 accepted")
	}
}
