package testbed

import (
	"fmt"
	"time"
)

// Fault is an injectable fault type, mirroring the paper's manual and
// automated fault-injection campaigns (§3).
type Fault int

// Fault values.
const (
	// FaultProcessKill kills all processes of a node/instance at once
	// ("simultaneously kill all processes in a node to simulate a full
	// node failure").
	FaultProcessKill Fault = iota + 1
	// FaultRandomProcessKill kills one random process ("randomly kill one
	// of the processes to simulate software bugs").
	FaultRandomProcessKill
	// FaultFastFail asks processes to terminate immediately ("fast fail
	// scenarios").
	FaultFastFail
	// FaultNetworkCut unplugs the network cable: the component becomes
	// unreachable until reconnection, which takes an OS-reboot-scale
	// outage for the affected node.
	FaultNetworkCut
	// FaultPowerOff pulls host power: a hardware-class failure requiring
	// repair (and spare reconstruction for HADB nodes).
	FaultPowerOff
)

func (f Fault) String() string {
	switch f {
	case FaultProcessKill:
		return "process-kill"
	case FaultRandomProcessKill:
		return "random-process-kill"
	case FaultFastFail:
		return "fast-fail"
	case FaultNetworkCut:
		return "network-cut"
	case FaultPowerOff:
		return "power-off"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Kind maps an injected fault to the failure class it manifests as.
func (f Fault) Kind() (FailureKind, error) {
	switch f {
	case FaultProcessKill, FaultRandomProcessKill, FaultFastFail:
		return FailureProcess, nil
	case FaultNetworkCut:
		return FailureOS, nil
	case FaultPowerOff:
		return FailureHW, nil
	default:
		return 0, fmt.Errorf("unknown fault %d: %w", int(f), ErrBadTarget)
	}
}

// Faults lists all injectable fault types.
func Faults() []Fault {
	return []Fault{
		FaultProcessKill, FaultRandomProcessKill, FaultFastFail,
		FaultNetworkCut, FaultPowerOff,
	}
}

// InjectAS injects a fault into AS instance id at the current virtual
// time. The instance must exist and be up.
func (c *Cluster) InjectAS(id int, f Fault) error {
	if id < 0 || id >= len(c.as) {
		return fmt.Errorf("AS instance %d of %d: %w", id, len(c.as), ErrBadTarget)
	}
	inst := c.as[id]
	if !inst.up {
		return fmt.Errorf("AS instance %d is already down: %w", id, ErrBadTarget)
	}
	kind, err := f.Kind()
	if err != nil {
		return err
	}
	c.failAS(inst, kind, true)
	return nil
}

// InjectHADB injects a fault into the node in the given pair and slot.
// The pair must exist and the node must be active.
func (c *Cluster) InjectHADB(pair, slot int, f Fault) error {
	if pair < 0 || pair >= len(c.pairs) {
		return fmt.Errorf("HADB pair %d of %d: %w", pair, len(c.pairs), ErrBadTarget)
	}
	if slot < 0 || slot > 1 {
		return fmt.Errorf("HADB node slot %d, want 0 or 1: %w", slot, ErrBadTarget)
	}
	p := c.pairs[pair]
	if p.down {
		return fmt.Errorf("HADB pair %d is down: %w", pair, ErrBadTarget)
	}
	if !p.nodes[slot].active {
		return fmt.Errorf("HADB node %d/%d is not active: %w", pair, slot, ErrBadTarget)
	}
	kind, err := f.Kind()
	if err != nil {
		return err
	}
	c.failHADB(p, slot, kind, true)
	return nil
}

// Snapshot reports the instantaneous component states — used by campaigns
// to decide targets and verify recovery.
type Snapshot struct {
	// ASUp[i] reports whether AS instance i is serving.
	ASUp []bool
	// ASPartitioned[i] marks instances alive-but-unreachable behind a
	// network partition.
	ASPartitioned []bool
	// PairActiveNodes[i] is the number of active nodes in pair i (0–2).
	PairActiveNodes []int
	// PairDown[i] marks pairs lost and awaiting operator restore.
	PairDown []bool
	// Spares is the current spare-node pool size.
	Spares int
	// SystemUp is the availability predicate.
	SystemUp bool
}

// Snapshot returns the current component states.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{
		ASUp:            make([]bool, len(c.as)),
		ASPartitioned:   make([]bool, len(c.as)),
		PairActiveNodes: make([]int, len(c.pairs)),
		PairDown:        make([]bool, len(c.pairs)),
		Spares:          c.spares,
		SystemUp:        c.systemIsUp(),
	}
	for i, inst := range c.as {
		s.ASUp[i] = inst.up
		s.ASPartitioned[i] = inst.partitioned
	}
	for i, p := range c.pairs {
		s.PairActiveNodes[i] = p.activeCount()
		s.PairDown[i] = p.down
	}
	return s
}

// ScheduleInjectAS arms a fault injection on an AS instance at an absolute
// virtual time. If the target is down when the time arrives, the injection
// is silently skipped (as a lab operator would skip an already-failed
// node).
func (c *Cluster) ScheduleInjectAS(at time.Duration, id int, f Fault) error {
	if id < 0 || id >= len(c.as) {
		return fmt.Errorf("AS instance %d of %d: %w", id, len(c.as), ErrBadTarget)
	}
	kind, err := f.Kind()
	if err != nil {
		return err
	}
	delay := at - c.sim.Now()
	return c.sim.Schedule(delay, func() {
		inst := c.as[id]
		if inst.up {
			c.failAS(inst, kind, true)
		}
	})
}

// ScheduleInjectHADB arms a fault injection on an HADB node at an absolute
// virtual time, skipping silently if the node is not active then.
func (c *Cluster) ScheduleInjectHADB(at time.Duration, pair, slot int, f Fault) error {
	if pair < 0 || pair >= len(c.pairs) {
		return fmt.Errorf("HADB pair %d of %d: %w", pair, len(c.pairs), ErrBadTarget)
	}
	if slot < 0 || slot > 1 {
		return fmt.Errorf("HADB node slot %d, want 0 or 1: %w", slot, ErrBadTarget)
	}
	kind, err := f.Kind()
	if err != nil {
		return err
	}
	delay := at - c.sim.Now()
	return c.sim.Schedule(delay, func() {
		p := c.pairs[pair]
		if !p.down && p.nodes[slot].active {
			c.failHADB(p, slot, kind, true)
		}
	})
}
