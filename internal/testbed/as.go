package testbed

import (
	"math"
	"time"
)

// asFailureRatePerHour returns the current per-instance failure rate,
// including the workload acceleration from already-down instances
// (paper §4: La_i = La_0·Acc^i).
func (c *Cluster) asFailureRatePerHour() float64 {
	base := (c.params.ASFailuresPerYear + c.params.ASOSFailuresPerYear + c.params.ASHWFailuresPerYear) / 8760
	down := len(c.as) - c.upASCount()
	return base * math.Pow(c.params.Acceleration, float64(down))
}

// scheduleASFailure arms the organic failure timer for an up instance.
func (c *Cluster) scheduleASFailure(inst *asInstance) {
	if !c.opts.OrganicFailures || !inst.up {
		return
	}
	inst.version++
	delay := c.sim.ExponentialRate(c.asFailureRatePerHour())
	// Reclaim the superseded draw: without the Cancel, every resample
	// would leave its predecessor — often a far-horizon event — queued
	// until it fired. The Cancel also carries the staleness guarantee: a
	// timer that fires is always the instance's latest arm (every
	// version bump on a live timer cancels it), so the callback needs no
	// per-arm version capture and one prebound closure serves every arm.
	c.sim.Cancel(inst.timer)
	if inst.failFn == nil {
		inst.failFn = func() {
			if !inst.up {
				return
			}
			c.failAS(inst, c.classifyASFailure(), false)
		}
	}
	// Schedule errors only occur on a stopped simulation; the run is over
	// then and the timer is moot.
	inst.timer, _ = c.sim.ScheduleHandle(delay, inst.failFn)
}

// classifyASFailure draws the failure class with the Params proportions.
func (c *Cluster) classifyASFailure() FailureKind {
	total := c.params.ASFailuresPerYear + c.params.ASOSFailuresPerYear + c.params.ASHWFailuresPerYear
	u := c.sim.RNG().Float64() * total
	switch {
	case u < c.params.ASFailuresPerYear:
		return FailureProcess
	case u < c.params.ASFailuresPerYear+c.params.ASOSFailuresPerYear:
		return FailureOS
	default:
		return FailureHW
	}
}

// rescheduleUpASTimers resamples the failure timers of all up instances;
// called whenever the acceleration level changes. Exponential
// memorylessness makes the resample statistically exact.
func (c *Cluster) rescheduleUpASTimers() {
	for _, inst := range c.as {
		if inst.up {
			c.scheduleASFailure(inst)
		}
	}
}

// failAS takes an instance down and drives its recovery.
func (c *Cluster) failAS(inst *asInstance, kind FailureKind, injected bool) {
	if !inst.up {
		return
	}
	inst.up = false
	inst.version++ // invalidate the organic failure timer
	c.sim.Cancel(inst.timer)
	inst.pendingKind = kind
	inst.failedAt = c.sim.Now()
	inst.injected = injected
	c.emit(Event{
		Type: EventFailure, Component: ComponentAS,
		Target: inst.target, Kind: kind, Injected: injected,
	})

	survivors := c.upASCount()
	if survivors > 0 && c.opts.SessionsPerInstance > 0 {
		// Sessions on the failed instance fail over to the survivors and
		// are re-established from HADB (HTTP session failover); each pays
		// one session-recovery interval of elevated response time.
		c.sessionFailovers += c.opts.SessionsPerInstance
		obsFailovers.Add(int64(c.opts.SessionsPerInstance))
		c.sessionRecovery += float64(c.opts.SessionsPerInstance) *
			c.draw(c.timing.SessionRecovery).Seconds()
	}
	c.stateChanged(ComponentAS)

	if survivors == 0 {
		// Total AS outage: operator restarts every instance.
		c.recordRecovery(Recovery{
			Component: ComponentAS,
			Kind:      kind,
			Start:     inst.failedAt,
			Injected:  injected,
			Success:   false,
		})
		c.scheduleASRestoreAll()
		return
	}
	c.rescheduleUpASTimers() // survivors now run accelerated
	c.scheduleASRecovery(inst)
}

// scheduleASRecovery arms the automatic restart of a failed instance,
// including the load-balancer health-check reinstatement lag.
func (c *Cluster) scheduleASRecovery(inst *asInstance) {
	var base time.Duration
	switch inst.pendingKind {
	case FailureOS:
		base = c.draw(c.timing.ASOSReboot)
	case FailureHW:
		base = c.draw(c.timing.ASHWRepair)
	default:
		base = c.draw(c.timing.ASRestart)
	}
	// The load balancer reinstates the instance at its next health check,
	// uniformly distributed within the check interval.
	detection := c.sim.Uniform(0, c.timing.HealthCheckInterval)
	version := inst.version
	_ = c.sim.Schedule(base, func() {
		if inst.version != version || inst.up {
			return
		}
		c.emit(Event{
			Type: EventRepairDone, Component: ComponentAS,
			Target: inst.target, Kind: inst.pendingKind, Injected: inst.injected,
		})
	})
	_ = c.sim.Schedule(base+detection, func() {
		if inst.version != version || inst.up {
			return
		}
		c.recoverAS(inst)
	})
}

// recoverAS reinstates an instance after automatic restart.
func (c *Cluster) recoverAS(inst *asInstance) {
	inst.up = true
	c.emit(Event{
		Type: EventRecovery, Component: ComponentAS,
		Target: inst.target, Kind: inst.pendingKind, Injected: inst.injected,
	})
	c.recordRecovery(Recovery{
		Component: ComponentAS,
		Kind:      inst.pendingKind,
		Start:     inst.failedAt,
		Duration:  c.sim.Now() - inst.failedAt,
		Injected:  inst.injected,
		Success:   true,
	})
	c.stateChanged(ComponentAS)
	c.rescheduleUpASTimers()
}

// scheduleASRestoreAll arms the operator restore after a total AS outage:
// every instance returns to service together.
func (c *Cluster) scheduleASRestoreAll() {
	// Invalidate all pending per-instance recoveries.
	for _, inst := range c.as {
		inst.version++
	}
	_ = c.sim.Schedule(c.draw(c.timing.OperatorRestoreAS), func() {
		for _, inst := range c.as {
			inst.up = true
		}
		c.emit(Event{Type: EventRecovery, Component: ComponentAS, Target: "as-all"})
		c.stateChanged(ComponentAS)
		c.rescheduleUpASTimers()
	})
}

func (c *Cluster) recordRecovery(r Recovery) {
	c.recoveries = append(c.recoveries, r)
}
