// Package testbed simulates the paper's JSAS EE7 lab environment: a
// cluster of Application Server instances fronted by a load balancer with
// periodic health checks, backed by mirrored HADB node pairs with
// automatic restart, spare-node repair, and operator restore. It is the
// measurement substrate: longevity runs and fault-injection campaigns are
// executed against it, and the measured recovery times and success counts
// feed the estimators (package estimate) that produce the conservative
// model parameters of Section 5.
//
// The simulator distinguishes the *measured truth* of the testbed (package
// Timing: e.g. HADB restart ≈ 40 s, AS restart < 25 s) from the
// *conservative model parameters* (jsas.Params: 1 min, 90 s) exactly as
// the paper does.
package testbed

import "time"

// Timing holds the ground-truth recovery behavior of the simulated
// testbed, modeled on the measurements reported in Sections 3 and 5 of the
// paper. Recovery durations are sampled uniformly from [Min, Max].
type Timing struct {
	// HADBRestart is the observed automatic restart after an HADB process
	// failure (paper: "around 40 seconds").
	HADBRestart DurationRange
	// HADBOSReboot is the observed node OS reboot time (paper models 15
	// minutes).
	HADBOSReboot DurationRange
	// HADBRepairPerGB is the observed data copy rate during spare repair
	// (paper: "about 12 minutes to copy 1GB").
	HADBRepairPerGB DurationRange
	// NodeDataGB is the session data volume per HADB node (paper: within
	// 1 GB).
	NodeDataGB float64
	// HADBPhysicalRepair is the time to physically repair a failed node
	// host, after which it rejoins as a spare.
	HADBPhysicalRepair DurationRange
	// ASRestart is the observed AS instance process restart (paper:
	// "less than 25 seconds").
	ASRestart DurationRange
	// ASOSReboot is the observed AS node OS reboot (paper: 15 minutes).
	ASOSReboot DurationRange
	// ASHWRepair is the AS node hardware repair time (paper field data:
	// 100 minutes).
	ASHWRepair DurationRange
	// HealthCheckInterval is the load-balancer health check period
	// (paper: 1 minute); a recovered instance is reinstated at the next
	// check.
	HealthCheckInterval time.Duration
	// SessionRecovery is the observed per-session failover
	// re-establishment time (paper: sub-second).
	SessionRecovery DurationRange
	// OperatorRestoreAS is the human intervention time to restart all AS
	// instances after a total AS outage (paper models 30 minutes).
	OperatorRestoreAS DurationRange
	// OperatorRestoreHADB is the human intervention time to recreate a
	// failed HADB pair (paper models 1 hour).
	OperatorRestoreHADB DurationRange
	// MaintenanceSwitchover is the observed switchover to a standby
	// during scheduled maintenance (paper: 1 minute).
	MaintenanceSwitchover DurationRange
	// PartitionHeal is the time for a network partition to be found and
	// fixed (switch reboot, cable reseat, route repair). The zero value
	// selects the default — Timing literals predating fault domains stay
	// valid.
	PartitionHeal DurationRange
}

// DurationRange is a closed interval recovery durations are drawn from.
type DurationRange struct {
	Min, Max time.Duration
}

// Fixed returns a degenerate range (deterministic duration).
func Fixed(d time.Duration) DurationRange { return DurationRange{Min: d, Max: d} }

// Valid reports whether the range is well-formed and positive.
func (r DurationRange) Valid() bool { return r.Min > 0 && r.Max >= r.Min }

// DefaultTiming returns the measured-truth behavior reported in the paper.
func DefaultTiming() Timing {
	return Timing{
		HADBRestart:           DurationRange{35 * time.Second, 45 * time.Second},
		HADBOSReboot:          DurationRange{10 * time.Minute, 15 * time.Minute},
		HADBRepairPerGB:       DurationRange{11 * time.Minute, 13 * time.Minute},
		NodeDataGB:            1.0,
		HADBPhysicalRepair:    DurationRange{90 * time.Minute, 110 * time.Minute},
		ASRestart:             DurationRange{15 * time.Second, 25 * time.Second},
		ASOSReboot:            DurationRange{12 * time.Minute, 15 * time.Minute},
		ASHWRepair:            DurationRange{90 * time.Minute, 110 * time.Minute},
		HealthCheckInterval:   time.Minute,
		SessionRecovery:       DurationRange{300 * time.Millisecond, 900 * time.Millisecond},
		OperatorRestoreAS:     DurationRange{20 * time.Minute, 30 * time.Minute},
		OperatorRestoreHADB:   DurationRange{45 * time.Minute, 60 * time.Minute},
		MaintenanceSwitchover: DurationRange{45 * time.Second, 75 * time.Second},
		PartitionHeal:         DurationRange{5 * time.Minute, 15 * time.Minute},
	}
}

// Validate checks the timing ranges.
func (t Timing) Validate() error {
	checks := []struct {
		name string
		ok   bool
	}{
		{"HADBRestart", t.HADBRestart.Valid()},
		{"HADBOSReboot", t.HADBOSReboot.Valid()},
		{"HADBRepairPerGB", t.HADBRepairPerGB.Valid()},
		{"NodeDataGB > 0", t.NodeDataGB > 0},
		{"HADBPhysicalRepair", t.HADBPhysicalRepair.Valid()},
		{"ASRestart", t.ASRestart.Valid()},
		{"ASOSReboot", t.ASOSReboot.Valid()},
		{"ASHWRepair", t.ASHWRepair.Valid()},
		{"HealthCheckInterval > 0", t.HealthCheckInterval > 0},
		{"SessionRecovery", t.SessionRecovery.Valid()},
		{"OperatorRestoreAS", t.OperatorRestoreAS.Valid()},
		{"OperatorRestoreHADB", t.OperatorRestoreHADB.Valid()},
		{"MaintenanceSwitchover", t.MaintenanceSwitchover.Valid()},
		// Zero means "use the default" (filled at New), so only reject a
		// partially-set range.
		{"PartitionHeal", t.PartitionHeal.Valid() || t.PartitionHeal == (DurationRange{})},
	}
	for _, c := range checks {
		if !c.ok {
			return &ConfigError{Field: c.name}
		}
	}
	return nil
}

// ConfigError reports an invalid testbed configuration field.
type ConfigError struct {
	Field string
}

func (e *ConfigError) Error() string {
	return "testbed: invalid configuration: " + e.Field
}
