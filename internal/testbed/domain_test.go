package testbed

import (
	"errors"
	"testing"
	"time"

	"repro/internal/jsas"
)

// testDomains is a two-rack site covering all of Config1: rack-a owns
// AS 0 and the slot-0 HADB nodes, rack-b owns AS 1 and the slot-1 nodes.
func testDomains() []Domain {
	return []Domain{
		{Name: "site"},
		{Name: "rack-a", Parent: "site", AS: []int{0}, HADB: []NodeRef{{0, 0}, {1, 0}}},
		{Name: "rack-b", Parent: "site", AS: []int{1}, HADB: []NodeRef{{0, 1}, {1, 1}}},
	}
}

func newDomainCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c, err := New(Options{Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: seed, Domains: testDomains()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestValidateDomains(t *testing.T) {
	t.Parallel()
	if err := ValidateDomains(testDomains(), 2, 2); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	cases := []struct {
		name    string
		domains []Domain
	}{
		{"unnamed", []Domain{{Name: ""}}},
		{"duplicate", []Domain{{Name: "a"}, {Name: "a"}}},
		{"AS out of range", []Domain{{Name: "a", AS: []int{2}}}},
		{"negative AS", []Domain{{Name: "a", AS: []int{-1}}}},
		{"pair out of range", []Domain{{Name: "a", HADB: []NodeRef{{2, 0}}}}},
		{"bad slot", []Domain{{Name: "a", HADB: []NodeRef{{0, 2}}}}},
		{"unknown parent", []Domain{{Name: "a", Parent: "nope"}}},
		{"cycle", []Domain{{Name: "a", Parent: "b"}, {Name: "b", Parent: "a"}}},
	}
	for _, tc := range cases {
		if err := ValidateDomains(tc.domains, 2, 2); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The same validation guards cluster construction.
	if _, err := New(Options{Config: jsas.Config1, Params: jsas.DefaultParams(),
		Domains: []Domain{{Name: "a", AS: []int{9}}}}); err == nil {
		t.Error("New accepted out-of-range domain member")
	}
}

func TestClusterDomainsListed(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 1)
	got := c.Domains()
	want := []string{"site", "rack-a", "rack-b"}
	if len(got) != len(want) {
		t.Fatalf("Domains() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Domains() = %v, want %v", got, want)
		}
	}
}

func TestInjectDomainRackBurst(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 3)
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// A rack burst fails its AS member and both its HADB nodes at once,
	// but the survivors on the other rack keep the system up (each pair
	// still has its slot-1 node).
	n, err := c.InjectDomain("rack-a", FaultPowerOff)
	if err != nil {
		t.Fatalf("InjectDomain: %v", err)
	}
	if n != 3 {
		t.Errorf("failed %d components, want 3 (1 AS + 2 HADB)", n)
	}
	snap := c.Snapshot()
	if snap.ASUp[0] {
		t.Error("AS 0 survived its rack's power-off")
	}
	if !snap.SystemUp {
		t.Error("system should survive a single-rack burst")
	}
	if err := c.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy() {
		t.Error("cluster not healthy after rack burst recovery")
	}
}

func TestInjectDomainSiteOutageAttributed(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 4)
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// The site burst transitively includes both racks: every AS instance
	// and every HADB node fails at once — a system outage whose cause
	// class is common-cause.
	n, err := c.InjectDomain("site", FaultProcessKill)
	if err != nil {
		t.Fatalf("InjectDomain: %v", err)
	}
	if n != 6 {
		t.Errorf("failed %d components, want 6 (2 AS + 4 HADB)", n)
	}
	if c.Snapshot().SystemUp {
		t.Fatal("system up after whole-site burst")
	}
	if err := c.Run(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if len(s.Outages) == 0 {
		t.Fatal("no outage recorded")
	}
	if got := s.Outages[0].Class; got != CauseCommonCause {
		t.Errorf("outage class = %v, want common-cause", got)
	}
	down := s.DowntimeByClass()
	if down[CauseCommonCause] == 0 {
		t.Error("no common-cause downtime accounted")
	}
	if down[CauseCommonCause] != s.DownTime {
		t.Errorf("common-cause downtime %v != total %v", down[CauseCommonCause], s.DownTime)
	}
}

func TestInjectDomainErrors(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 5)
	if _, err := c.InjectDomain("nope", FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("unknown domain: err = %v, want ErrBadTarget", err)
	}
	if _, err := c.InjectDomain("site", Fault(99)); !errors.Is(err, ErrBadTarget) {
		t.Errorf("unknown fault: err = %v, want ErrBadTarget", err)
	}
}

func TestInjectPartitionSplitBrain(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 6)
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// Isolating every instance models losing the cluster switch: all
	// instances stay alive, yet nothing serves — an outage attributed to
	// the partition, not to component failures.
	if err := c.InjectPartition([]int{0, 1}); err != nil {
		t.Fatalf("InjectPartition: %v", err)
	}
	snap := c.Snapshot()
	if !snap.ASUp[0] || !snap.ASUp[1] {
		t.Error("partitioned instances should stay alive")
	}
	if !snap.ASPartitioned[0] || !snap.ASPartitioned[1] {
		t.Error("instances not marked partitioned")
	}
	if snap.SystemUp {
		t.Fatal("system up with every instance unreachable")
	}
	if c.Healthy() {
		t.Error("Healthy with an open partition")
	}
	// DefaultTiming heals a partition within 15 simulated minutes.
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if !c.Snapshot().SystemUp {
		t.Fatal("system still down after partition heal window")
	}
	if s.Partitions != 1 {
		t.Errorf("Partitions = %d, want 1", s.Partitions)
	}
	if len(s.Outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(s.Outages))
	}
	if got := s.Outages[0].Class; got != CausePartition {
		t.Errorf("outage class = %v, want partition", got)
	}
	if down := s.DowntimeByClass(); down[CausePartition] != s.DownTime {
		t.Errorf("partition downtime %v != total %v", down[CausePartition], s.DownTime)
	}
}

func TestInjectPartitionPartialKeepsServing(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 7)
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectPartition([]int{0}); err != nil {
		t.Fatalf("InjectPartition: %v", err)
	}
	if !c.Snapshot().SystemUp {
		t.Error("system down with a reachable survivor serving")
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.DownTime != 0 {
		t.Errorf("downtime = %v, want 0 for a partial partition", s.DownTime)
	}
}

func TestInjectPartitionValidation(t *testing.T) {
	t.Parallel()
	c := newDomainCluster(t, 8)
	for name, ids := range map[string][]int{
		"empty":        {},
		"out of range": {5},
		"negative":     {-1},
		"duplicate":    {0, 0},
	} {
		if err := c.InjectPartition(ids); !errors.Is(err, ErrBadTarget) {
			t.Errorf("%s: err = %v, want ErrBadTarget", name, err)
		}
	}
}

// TestDomainsDeclaredButUnusedChangeNothing pins the byte-identity
// contract: declaring domains draws nothing from the RNG, so an organic
// run with domains matches one without, outage for outage.
func TestDomainsDeclaredButUnusedChangeNothing(t *testing.T) {
	t.Parallel()
	run := func(domains []Domain) Stats {
		c, err := New(Options{Config: jsas.Config1, Params: jsas.DefaultParams(),
			Seed: 42, OrganicFailures: true, Domains: domains})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := c.Run(90 * 24 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	plain, domained := run(nil), run(testDomains())
	if plain.DownTime != domained.DownTime || len(plain.Outages) != len(domained.Outages) {
		t.Errorf("declared-but-unused domains changed the run: %v/%d vs %v/%d",
			plain.DownTime, len(plain.Outages), domained.DownTime, len(domained.Outages))
	}
}
