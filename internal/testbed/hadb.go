package testbed

import "time"

// hadbFailureRatePerHour returns the per-node failure rate, doubled (by
// the acceleration factor) while the pair runs on one node.
func (c *Cluster) hadbFailureRatePerHour(p *hadbPair) float64 {
	base := (c.params.HADBFailuresPerYear + c.params.HADBOSFailuresPerYear + c.params.HADBHWFailuresPerYear) / 8760
	if p.degraded() {
		return base * c.params.Acceleration
	}
	return base
}

// scheduleHADBFailure arms the organic failure timer for an active node.
func (c *Cluster) scheduleHADBFailure(p *hadbPair, slot int) {
	node := p.nodes[slot]
	if !c.opts.OrganicFailures || !node.active || p.down {
		return
	}
	node.version++
	delay := c.sim.ExponentialRate(c.hadbFailureRatePerHour(p))
	// Reclaim the superseded draw instead of leaving it queued (often
	// parked at the far horizon). As with AS timers, cancellation is the
	// staleness guarantee — a firing timer is always the node's latest
	// arm — so one prebound closure serves every re-arm.
	c.sim.Cancel(node.timer)
	if node.failFn == nil {
		node.failFn = func() {
			if !node.active || p.down {
				return
			}
			c.failHADB(p, slot, c.classifyHADBFailure(), false)
		}
	}
	node.timer, _ = c.sim.ScheduleHandle(delay, node.failFn)
}

// classifyHADBFailure draws the node failure class with the Params
// proportions.
func (c *Cluster) classifyHADBFailure() FailureKind {
	total := c.params.HADBFailuresPerYear + c.params.HADBOSFailuresPerYear + c.params.HADBHWFailuresPerYear
	u := c.sim.RNG().Float64() * total
	switch {
	case u < c.params.HADBFailuresPerYear:
		return FailureProcess
	case u < c.params.HADBFailuresPerYear+c.params.HADBOSFailuresPerYear:
		return FailureOS
	default:
		return FailureHW
	}
}

// reschedulePairTimers resamples the organic timers of the pair's active
// nodes (acceleration level may have changed).
func (c *Cluster) reschedulePairTimers(p *hadbPair) {
	for slot, node := range p.nodes {
		if node.active {
			c.scheduleHADBFailure(p, slot)
		}
	}
}

// failHADB takes a node down and drives the mirrored-pair recovery
// protocol: automatic restart for process/OS failures, spare-node repair
// for hardware failures, catastrophic pair loss on imperfect recovery or
// a second failure.
func (c *Cluster) failHADB(p *hadbPair, slot int, kind FailureKind, injected bool) {
	node := p.nodes[slot]
	if !node.active || p.down {
		return
	}
	node.active = false
	node.version++
	c.sim.Cancel(node.timer)
	node.failedAt = c.sim.Now()
	node.kind = kind
	node.injected = injected
	c.emit(Event{
		Type: EventFailure, Component: ComponentHADB,
		Target: node.target, Kind: kind, Injected: injected,
	})

	companion := p.nodes[1-slot]
	if !companion.active {
		// Second failure in the pair: session data lost.
		c.pairDown(p, kind, injected, node.failedAt)
		return
	}
	// The companion-driven recovery may itself fail (latent faults, fault
	// handler defects): fraction of imperfect recovery.
	if c.sim.RNG().Float64() < c.params.FIR {
		c.pairDown(p, kind, injected, node.failedAt)
		return
	}
	c.stateChanged(ComponentHADB)
	c.reschedulePairTimers(p) // surviving node now runs accelerated

	switch kind {
	case FailureHW:
		c.startHWRepair(p, slot)
	case FailureOS:
		c.scheduleNodeRestart(p, slot, c.draw(c.timing.HADBOSReboot))
	default:
		c.scheduleNodeRestart(p, slot, c.draw(c.timing.HADBRestart))
	}
}

// scheduleNodeRestart arms the automatic node restart (process or OS
// failure): the node recovers the missed updates from its companion and
// returns the pair to the mirrored configuration.
func (c *Cluster) scheduleNodeRestart(p *hadbPair, slot int, after time.Duration) {
	node := p.nodes[slot]
	version := node.version
	_ = c.sim.Schedule(after, func() {
		if node.version != version || node.active || p.down {
			return
		}
		c.activateNode(p, slot)
	})
}

// startHWRepair runs the spare-node repair protocol: the companion copies
// its data onto a spare, converting it to the new mirror; the dead host is
// physically repaired and then returns to the spare pool. Without a spare
// the node waits for physical repair and then performs the data copy
// itself.
func (c *Cluster) startHWRepair(p *hadbPair, slot int) {
	node := p.nodes[slot]
	version := node.version
	copyTime := time.Duration(float64(c.draw(c.timing.HADBRepairPerGB)) * c.timing.NodeDataGB)
	if c.spares > 0 {
		c.spares--
		c.emit(Event{Type: EventSpareConsumed, Component: ComponentHADB, Target: node.target})
		_ = c.sim.Schedule(copyTime, func() {
			if node.version != version || p.down {
				return
			}
			// The spare is now the active mirror in this slot.
			c.activateNode(p, slot)
		})
		// The failed host is repaired offline and re-enters the spare pool.
		_ = c.sim.Schedule(c.draw(c.timing.HADBPhysicalRepair), func() {
			c.spares++
			c.emit(Event{Type: EventSpareReturned, Component: ComponentHADB, Target: node.target})
		})
		return
	}
	// No spare: wait for physical repair, then restore data from the
	// companion.
	_ = c.sim.Schedule(c.draw(c.timing.HADBPhysicalRepair)+copyTime, func() {
		if node.version != version || p.down {
			return
		}
		c.activateNode(p, slot)
	})
}

// activateNode returns a node slot to active mirroring and records the
// recovery measurement.
func (c *Cluster) activateNode(p *hadbPair, slot int) {
	node := p.nodes[slot]
	node.active = true
	c.emit(Event{
		Type: EventRecovery, Component: ComponentHADB,
		Target: node.target, Kind: node.kind, Injected: node.injected,
	})
	c.recordRecovery(Recovery{
		Component: ComponentHADB,
		Kind:      node.kind,
		Start:     node.failedAt,
		Duration:  c.sim.Now() - node.failedAt,
		Injected:  node.injected,
		Success:   true,
	})
	c.stateChanged(ComponentHADB)
	c.reschedulePairTimers(p)
}

// pairDown is the catastrophic double-node failure: the pair's fragment of
// session data is lost and an operator must recreate the pair.
func (c *Cluster) pairDown(p *hadbPair, kind FailureKind, injected bool, failedAt time.Duration) {
	p.down = true
	p.downAt = c.sim.Now()
	p.maintenance = false
	for _, n := range p.nodes {
		n.active = false
		n.version++
		c.sim.Cancel(n.timer)
	}
	c.emit(Event{
		Type: EventPairDown, Component: ComponentHADB,
		Target: p.target, Kind: kind, Injected: injected,
	})
	c.recordRecovery(Recovery{
		Component: ComponentHADB,
		Kind:      kind,
		Start:     failedAt,
		Injected:  injected,
		Success:   false,
	})
	c.stateChanged(ComponentHADB)
	_ = c.sim.Schedule(c.draw(c.timing.OperatorRestoreHADB), func() {
		p.down = false
		for _, n := range p.nodes {
			n.active = true
		}
		c.emit(Event{
			Type: EventPairRestore, Component: ComponentHADB,
			Target: p.target,
		})
		c.stateChanged(ComponentHADB)
		c.reschedulePairTimers(p)
	})
}

// scheduleMaintenance arms the next scheduled maintenance event for a
// pair: the serviced node goes offline for the switchover window, leaving
// the pair on one (accelerated) node — a companion failure during the
// window loses the pair, exactly as in the Figure 3 Maintenance state.
func (c *Cluster) scheduleMaintenance(p *hadbPair) {
	rate := c.params.MaintenancePerYear / 8760
	_ = c.sim.Schedule(c.sim.ExponentialRate(rate), func() {
		defer c.scheduleMaintenance(p)
		if p.down || p.maintenance || p.activeCount() < 2 {
			return // skip maintenance while the pair is degraded
		}
		p.maintenance = true
		node := p.nodes[0]
		node.active = false
		node.version++
		c.sim.Cancel(node.timer)
		c.emit(Event{Type: EventMaintenanceStart, Component: ComponentHADB, Target: node.target})
		c.stateChanged(ComponentHADB)
		c.reschedulePairTimers(p)
		_ = c.sim.Schedule(c.draw(c.timing.MaintenanceSwitchover), func() {
			if p.down || !p.maintenance {
				return
			}
			p.maintenance = false
			node.active = true
			c.emit(Event{Type: EventMaintenanceEnd, Component: ComponentHADB, Target: node.target})
			c.stateChanged(ComponentHADB)
			c.reschedulePairTimers(p)
		})
	})
}
