package testbed

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// TimeSeries is a windowed availability recorder: it consumes the
// cluster's Observer event stream and accumulates per-window up/down
// time, outage counts, and per-failure-mode downtime over fixed-width
// sim-time windows. This is the paper's measurement posture — availability
// as it evolves over the observation window, decomposed by outage cause —
// rather than a single end-of-run aggregate.
//
// Windows live in a bounded ring: when a run outlasts the retention cap,
// the oldest windows are folded into an Evicted aggregate in O(1), so the
// recorder's memory is fixed no matter how long the simulated horizon is.
// Feed it events via Observe (compose with a tracer using MultiObserver),
// close the final partial window with FinishAt, and merge per-replica
// series in ascending replica order with Merge — the same deterministic
// convention as Stats.Merge and trace.Recorder.Import.
type TimeSeries struct {
	width time.Duration
	cap   int

	// ring of retained windows: buf[(head+i)%cap] for i in [0,count).
	// Window indices are contiguous — sim time only moves forward — so
	// the ring holds [firstIdx, firstIdx+count).
	buf   []Window
	head  int
	count int

	// Evicted aggregates windows dropped from the ring.
	evicted WindowAggregate

	// Sweep state: how far accounting has advanced and whether the
	// system is currently down (plus outage-cause attribution).
	st tsState

	// Fast-path cache: the window containing st.at and its end time.
	// Nearly every event lands in the window the previous event did, so
	// advance charges the span with one comparison instead of the
	// division-and-modulo ring lookup. nil whenever the cache is cold.
	cur    *Window
	curEnd time.Duration
}

// tsState is the recorder's event-sweep state.
type tsState struct {
	at   time.Duration // time accounted so far
	down bool          // system currently down
	// cause of the open outage (zero values = unattributed).
	causeComp  Component
	causeKind  FailureKind
	causeClass Cause
	// last component failure seen, pending outage attribution.
	lastComp Component
	lastKind FailureKind
	haveLast bool
}

// Window is one fixed-width sim-time bucket of availability accounting.
// Index is the absolute window number (window start = Index*width), so
// windows from different replicas of the same experiment align exactly.
type Window struct {
	Index   int64
	Up      time.Duration
	Down    time.Duration
	Outages int64
	// DownByCause attributes down time to the failure that opened the
	// outage, indexed [Component][FailureKind] (slot [0][0] collects
	// outages with no attributable prior failure, e.g. maintenance).
	DownByCause [int(ComponentHADB) + 1][int(FailureHW) + 1]time.Duration
	// DownByClass attributes down time to the outage's cause class
	// (independent, common-cause, partition).
	DownByClass [int(CausePartition) + 1]time.Duration
}

// Availability is the window's up fraction (1 for an empty window).
func (w Window) Availability() float64 {
	total := w.Up + w.Down
	if total <= 0 {
		return 1
	}
	return float64(w.Up) / float64(total)
}

// WindowAggregate summarizes evicted windows.
type WindowAggregate struct {
	Windows int64
	Up      time.Duration
	Down    time.Duration
	Outages int64
}

// defaultWindowCap bounds ring retention; at the default 1h window that is
// about 42 simulated days of full-resolution history before folding.
const defaultWindowCap = 1024

// NewTimeSeries constructs a recorder with the given window width
// (required > 0) retaining at most capWindows windows (0 or negative
// selects the default of 1024).
func NewTimeSeries(width time.Duration, capWindows int) *TimeSeries {
	if width <= 0 {
		panic("testbed: TimeSeries window width must be positive")
	}
	if capWindows <= 0 {
		capWindows = defaultWindowCap
	}
	return &TimeSeries{width: width, cap: capWindows}
}

// Width returns the window width.
func (ts *TimeSeries) Width() time.Duration { return ts.width }

// Cap returns the ring capacity in windows.
func (ts *TimeSeries) Cap() int { return ts.cap }

// Observe consumes one cluster event. Events must arrive in nondecreasing
// sim-time order (the cluster emits them that way). Use it directly as a
// testbed Observer: opts.Observer = ts.Observe.
func (ts *TimeSeries) Observe(e Event) {
	ts.advance(e.Time)
	switch e.Type {
	case EventFailure:
		ts.st.lastComp, ts.st.lastKind, ts.st.haveLast = e.Component, e.Kind, true
	case EventOutageStart:
		if !ts.st.down {
			ts.st.down = true
			ts.st.causeClass = e.Class
			if ts.st.haveLast {
				ts.st.causeComp, ts.st.causeKind = ts.st.lastComp, ts.st.lastKind
			} else {
				ts.st.causeComp, ts.st.causeKind = 0, 0
			}
			w := ts.window(ts.windowIndex(e.Time))
			if w != nil {
				w.Outages++
			}
		}
	case EventOutageEnd:
		ts.st.down = false
		ts.st.haveLast = false
	}
}

// FinishAt accounts the remaining span up to the end of the observation
// horizon and must be called once when the run completes (Stats() time).
func (ts *TimeSeries) FinishAt(t time.Duration) {
	ts.advance(t)
}

// advance accounts [st.at, t) as up or down time, splitting the span at
// window boundaries.
func (ts *TimeSeries) advance(t time.Duration) {
	// Fast path: the span stays inside the cached current window.
	if ts.cur != nil && t <= ts.curEnd {
		span := t - ts.st.at
		if ts.st.down {
			ts.cur.Down += span
			ts.cur.DownByCause[ts.st.causeComp][ts.st.causeKind] += span
			ts.cur.DownByClass[ts.st.causeClass] += span
		} else {
			ts.cur.Up += span
		}
		ts.st.at = t
		return
	}
	ts.cur = nil
	for ts.st.at < t {
		idx := ts.windowIndex(ts.st.at)
		end := time.Duration(idx+1) * ts.width
		last := end >= t
		if end > t {
			end = t
		}
		span := end - ts.st.at
		if w := ts.window(idx); w != nil {
			if ts.st.down {
				w.Down += span
				w.DownByCause[ts.st.causeComp][ts.st.causeKind] += span
				w.DownByClass[ts.st.causeClass] += span
			} else {
				w.Up += span
			}
			if last { // warm the cache with the window holding st.at
				ts.cur, ts.curEnd = w, time.Duration(idx+1)*ts.width
			}
		} else if ts.st.down { // span predates the ring (merge-time only)
			ts.evicted.Down += span
		} else {
			ts.evicted.Up += span
		}
		ts.st.at = end
	}
}

func (ts *TimeSeries) windowIndex(t time.Duration) int64 {
	return int64(t / ts.width)
}

// window returns the ring slot for absolute window idx, appending (and
// evicting) as needed. It returns nil for windows older than the ring —
// callers fold those spans into the evicted aggregate instead.
func (ts *TimeSeries) window(idx int64) *Window {
	if ts.count > 0 {
		first := ts.buf[ts.head].Index
		if idx < first {
			return nil
		}
		if idx < first+int64(ts.count) {
			return &ts.buf[(ts.head+int(idx-first))%ts.cap]
		}
	}
	if ts.buf == nil {
		ts.buf = make([]Window, ts.cap)
	}
	// Append windows (empty gaps included) until idx is resident.
	next := idx
	if ts.count > 0 {
		next = ts.buf[ts.head].Index + int64(ts.count)
	}
	for ; next <= idx; next++ {
		if ts.count == ts.cap {
			ts.evict()
		}
		slot := (ts.head + ts.count) % ts.cap
		ts.buf[slot] = Window{Index: next}
		ts.count++
	}
	return &ts.buf[(ts.head+int(idx-ts.buf[ts.head].Index))%ts.cap]
}

// evict folds the oldest window into the aggregate in O(1).
func (ts *TimeSeries) evict() {
	if ts.cur == &ts.buf[ts.head] {
		// The evicted slot will be reused for a newer window (possible
		// via Merge appending far-future indices); drop the cache.
		ts.cur = nil
	}
	w := ts.buf[ts.head]
	ts.evicted.Windows++
	ts.evicted.Up += w.Up
	ts.evicted.Down += w.Down
	ts.evicted.Outages += w.Outages
	ts.head = (ts.head + 1) % ts.cap
	ts.count--
}

// Windows returns the retained windows oldest-first (a copy).
func (ts *TimeSeries) Windows() []Window {
	out := make([]Window, ts.count)
	for i := 0; i < ts.count; i++ {
		out[i] = ts.buf[(ts.head+i)%ts.cap]
	}
	return out
}

// Evicted returns the aggregate of windows dropped from the ring.
func (ts *TimeSeries) Evicted() WindowAggregate { return ts.evicted }

// Merge folds another series into ts by absolute window index; both must
// share the same width. Replicated campaigns run each replica from sim
// time zero, so replica windows align index-for-index and merged windows
// accumulate more than one window-width of exposure — availability stays
// the exact up fraction. Merge replicas in ascending replica order (the
// Stats.Merge convention) and the result is deterministic at any
// parallelism. Windows falling off the merged ring fold into Evicted.
func (ts *TimeSeries) Merge(o *TimeSeries) {
	if o == nil {
		return
	}
	if o.width != ts.width {
		panic(fmt.Sprintf("testbed: merging TimeSeries of different widths (%s vs %s)", ts.width, o.width))
	}
	ts.evicted.Windows += o.evicted.Windows
	ts.evicted.Up += o.evicted.Up
	ts.evicted.Down += o.evicted.Down
	ts.evicted.Outages += o.evicted.Outages
	for i := 0; i < o.count; i++ {
		ow := o.buf[(o.head+i)%o.cap]
		w := ts.window(ow.Index)
		if w == nil {
			ts.evicted.Up += ow.Up
			ts.evicted.Down += ow.Down
			ts.evicted.Outages += ow.Outages
			continue
		}
		w.Up += ow.Up
		w.Down += ow.Down
		w.Outages += ow.Outages
		for c := range ow.DownByCause {
			for k := range ow.DownByCause[c] {
				w.DownByCause[c][k] += ow.DownByCause[c][k]
			}
		}
		for cl := range ow.DownByClass {
			w.DownByClass[cl] += ow.DownByClass[cl]
		}
	}
}

// causeKey labels a DownByCause slot for export ("as/process",
// "hadb/hw", or "unattributed" for outages with no prior failure).
func causeKey(c Component, k FailureKind) string {
	if c == 0 {
		return "unattributed"
	}
	return fmt.Sprintf("%s/%s", c, k)
}

// windowJSON is the export shape of one window. Durations are integer
// nanoseconds so same-seed runs serialize byte-identically.
type windowJSON struct {
	Index        int64            `json:"index"`
	StartNanos   int64            `json:"startNanos"`
	UpNanos      int64            `json:"upNanos"`
	DownNanos    int64            `json:"downNanos"`
	Availability float64          `json:"availability"`
	Outages      int64            `json:"outages,omitempty"`
	DownByCause  map[string]int64 `json:"downByCauseNanos,omitempty"`
	DownByClass  map[string]int64 `json:"downByClassNanos,omitempty"`
}

type timeSeriesJSON struct {
	WindowNanos int64          `json:"windowNanos"`
	Windows     []windowJSON   `json:"windows"`
	Evicted     *aggregateJSON `json:"evicted,omitempty"`
}

type aggregateJSON struct {
	Windows   int64 `json:"windows"`
	UpNanos   int64 `json:"upNanos"`
	DownNanos int64 `json:"downNanos"`
	Outages   int64 `json:"outages"`
}

// WriteJSON renders the series as one indented JSON document. Map keys
// sort deterministically under encoding/json, so same-seed runs produce
// byte-identical output at any replica parallelism.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	doc := timeSeriesJSON{
		WindowNanos: int64(ts.width),
		Windows:     make([]windowJSON, 0, ts.count),
	}
	for _, win := range ts.Windows() {
		wj := windowJSON{
			Index:        win.Index,
			StartNanos:   win.Index * int64(ts.width),
			UpNanos:      int64(win.Up),
			DownNanos:    int64(win.Down),
			Availability: win.Availability(),
			Outages:      win.Outages,
		}
		for c := range win.DownByCause {
			for k := range win.DownByCause[c] {
				if d := win.DownByCause[c][k]; d > 0 {
					if wj.DownByCause == nil {
						wj.DownByCause = make(map[string]int64)
					}
					wj.DownByCause[causeKey(Component(c), FailureKind(k))] = int64(d)
				}
			}
		}
		// Only correlated classes are emitted: independent downtime is
		// DownNanos minus the rest, and domain-free runs keep their exact
		// pre-fault-domain serialization.
		for cl, d := range win.DownByClass {
			if Cause(cl) != CauseIndependent && d > 0 {
				if wj.DownByClass == nil {
					wj.DownByClass = make(map[string]int64)
				}
				wj.DownByClass[Cause(cl).String()] = int64(d)
			}
		}
		doc.Windows = append(doc.Windows, wj)
	}
	if ts.evicted != (WindowAggregate{}) {
		doc.Evicted = &aggregateJSON{
			Windows:   ts.evicted.Windows,
			UpNanos:   int64(ts.evicted.Up),
			DownNanos: int64(ts.evicted.Down),
			Outages:   ts.evicted.Outages,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText renders a human-readable table: one line per window with
// availability, downtime, and outage count.
func (ts *TimeSeries) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "window width %s, %d windows retained", ts.width, ts.count); err != nil {
		return err
	}
	if ts.evicted.Windows > 0 {
		if _, err := fmt.Fprintf(w, " (%d evicted: up %s, down %s, %d outages)",
			ts.evicted.Windows, ts.evicted.Up, ts.evicted.Down, ts.evicted.Outages); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, win := range ts.Windows() {
		start := time.Duration(win.Index) * ts.width
		if _, err := fmt.Fprintf(w, "  [%12s] avail %.6f  down %-12s outages %d\n",
			start, win.Availability(), win.Down, win.Outages); err != nil {
			return err
		}
	}
	return nil
}

// PublishObs pushes the series' summary into the obs registry gauges, so
// /metrics and the SSE stream carry the windowed view. Call it on the
// final (merged) series only — per-replica workers would race on the
// shared gauges.
func (ts *TimeSeries) PublishObs() {
	obsTSWindows.Set(float64(ts.count))
	obsTSEvicted.Set(float64(ts.evicted.Windows))
	if ts.count > 0 {
		last := ts.buf[(ts.head+ts.count-1)%ts.cap]
		obsTSLastAvail.Set(last.Availability())
		obsTSLastDown.Set(last.Down.Seconds())
	}
}

var (
	obsTSWindows = obs.G("testbed_timeseries_windows",
		"availability time-series windows currently retained")
	obsTSEvicted = obs.G("testbed_timeseries_windows_evicted",
		"availability time-series windows folded into the evicted aggregate")
	obsTSLastAvail = obs.G("testbed_timeseries_last_window_availability",
		"availability of the most recent retained sim-time window")
	obsTSLastDown = obs.G("testbed_timeseries_last_window_downtime_seconds",
		"down time accumulated in the most recent retained sim-time window")
)

// MultiObserver composes observers: each event fans out to every non-nil
// observer in order. Campaign drivers use it to attach a flight recorder
// and a TimeSeries to the same cluster. Returns nil when every observer
// is nil, preserving the cluster's no-observer fast path.
func MultiObserver(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, o := range live {
			o(e)
		}
	}
}
