package testbed

import (
	"fmt"
	"time"
)

// EventType classifies a trace event.
type EventType int

// EventType values.
const (
	// EventFailure marks a component failure (organic or injected).
	EventFailure EventType = iota + 1
	// EventRecovery marks a component returning to service.
	EventRecovery
	// EventOutageStart marks the system predicate going false.
	EventOutageStart
	// EventOutageEnd marks the system predicate returning true.
	EventOutageEnd
	// EventSpareConsumed marks a spare node being taken for repair.
	EventSpareConsumed
	// EventSpareReturned marks a repaired host rejoining the spare pool.
	EventSpareReturned
	// EventMaintenanceStart marks a scheduled switchover beginning.
	EventMaintenanceStart
	// EventMaintenanceEnd marks a switchover completing.
	EventMaintenanceEnd
	// EventRepairDone marks a failed component finishing repair
	// (restart/reboot/replacement) while still awaiting load-balancer
	// reinstatement — the boundary between the restore and reinstate
	// stages of an AS recovery.
	EventRepairDone
	// EventPairDown marks a catastrophic HADB pair loss (double failure
	// or imperfect recovery): session data gone, operator restore needed.
	EventPairDown
	// EventPairRestore marks the operator recreating a lost pair.
	EventPairRestore
	// EventDomainFault marks the start of a domain-level common-cause
	// injection; the member failures follow at the same virtual time.
	EventDomainFault
	// EventDomainFaultDone closes the burst (Count carries how many
	// members actually failed).
	EventDomainFaultDone
	// EventPartitionStart marks a network partition isolating AS
	// instances from the load balancer (Count carries how many).
	EventPartitionStart
	// EventPartitionHeal marks the partition being repaired.
	EventPartitionHeal
)

func (e EventType) String() string {
	switch e {
	case EventFailure:
		return "failure"
	case EventRecovery:
		return "recovery"
	case EventOutageStart:
		return "outage-start"
	case EventOutageEnd:
		return "outage-end"
	case EventSpareConsumed:
		return "spare-consumed"
	case EventSpareReturned:
		return "spare-returned"
	case EventMaintenanceStart:
		return "maintenance-start"
	case EventMaintenanceEnd:
		return "maintenance-end"
	case EventRepairDone:
		return "repair-done"
	case EventPairDown:
		return "pair-down"
	case EventPairRestore:
		return "pair-restore"
	case EventDomainFault:
		return "domain-fault"
	case EventDomainFaultDone:
		return "domain-fault-done"
	case EventPartitionStart:
		return "partition-start"
	case EventPartitionHeal:
		return "partition-heal"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is one entry in a cluster trace.
type Event struct {
	Time      time.Duration
	Type      EventType
	Component Component
	// Target identifies the affected entity ("as-1", "hadb-0/1", "system").
	Target string
	// Kind is set for failures and recoveries.
	Kind FailureKind
	// Injected marks fault-injection events.
	Injected bool
	// Class attributes outage-start and correlated-fault events to a
	// cause class (zero = independent).
	Class Cause
	// Count carries the member/instance count for domain-fault and
	// partition events.
	Count int
}

// String renders the event as one log line.
func (e Event) String() string {
	s := fmt.Sprintf("[%12s] %-17s %s", e.Time, e.Type, e.Target)
	if e.Type == EventFailure || e.Type == EventRecovery {
		s += fmt.Sprintf(" (%s", e.Kind)
		if e.Injected {
			s += ", injected"
		}
		s += ")"
	}
	return s
}

// Observer receives trace events as they happen. Observers run inline with
// the simulation: keep them fast and do not call back into the cluster.
type Observer func(Event)

// emit records an event in the metrics registry and delivers it to the
// observer, if any. With no observer attached this is the full per-event
// overhead: the metrics switch and one nil check — event targets are
// precomputed strings, so building an Event allocates nothing.
func (c *Cluster) emit(e Event) {
	e.Time = c.sim.Now()
	obsRecordEvent(e)
	if c.observer != nil {
		c.observer(e)
	}
}
