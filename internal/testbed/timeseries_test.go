package testbed

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/jsas"
)

func tsEvent(t time.Duration, typ EventType, comp Component, kind FailureKind) Event {
	return Event{Time: t, Type: typ, Component: comp, Kind: kind}
}

func TestTimeSeriesWindowAccounting(t *testing.T) {
	t.Parallel()
	ts := NewTimeSeries(10*time.Second, 0)
	ts.Observe(tsEvent(3*time.Second, EventFailure, ComponentAS, FailureProcess))
	ts.Observe(tsEvent(3*time.Second, EventOutageStart, 0, 0))
	ts.Observe(tsEvent(7*time.Second, EventOutageEnd, 0, 0))
	ts.FinishAt(25 * time.Second)

	wins := ts.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	w0 := wins[0]
	if w0.Up != 6*time.Second || w0.Down != 4*time.Second || w0.Outages != 1 {
		t.Fatalf("w0 = up %s down %s outages %d, want 6s/4s/1", w0.Up, w0.Down, w0.Outages)
	}
	if got := w0.DownByCause[ComponentAS][FailureProcess]; got != 4*time.Second {
		t.Fatalf("w0 as/process downtime = %s, want 4s", got)
	}
	if a := w0.Availability(); a != 0.6 {
		t.Fatalf("w0 availability = %v, want 0.6", a)
	}
	if wins[1].Up != 10*time.Second || wins[1].Down != 0 {
		t.Fatalf("w1 = %+v, want fully up", wins[1])
	}
	if wins[2].Up != 5*time.Second {
		t.Fatalf("w2 up = %s, want 5s (partial final window)", wins[2].Up)
	}
}

func TestTimeSeriesOutageSpansWindows(t *testing.T) {
	t.Parallel()
	ts := NewTimeSeries(10*time.Second, 0)
	ts.Observe(tsEvent(8*time.Second, EventOutageStart, 0, 0))
	ts.Observe(tsEvent(12*time.Second, EventOutageEnd, 0, 0))
	ts.FinishAt(20 * time.Second)

	wins := ts.Windows()
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[0].Down != 2*time.Second || wins[1].Down != 2*time.Second {
		t.Fatalf("down split = %s/%s, want 2s/2s", wins[0].Down, wins[1].Down)
	}
	// The outage counts once, in the window where it started.
	if wins[0].Outages != 1 || wins[1].Outages != 0 {
		t.Fatalf("outage counts = %d/%d, want 1/0", wins[0].Outages, wins[1].Outages)
	}
	// No prior failure: downtime lands in the unattributed slot.
	if got := wins[0].DownByCause[0][0]; got != 2*time.Second {
		t.Fatalf("unattributed downtime = %s, want 2s", got)
	}
}

func TestTimeSeriesRingEviction(t *testing.T) {
	t.Parallel()
	ts := NewTimeSeries(10*time.Second, 2)
	ts.Observe(tsEvent(2*time.Second, EventOutageStart, 0, 0))
	ts.Observe(tsEvent(4*time.Second, EventOutageEnd, 0, 0))
	ts.FinishAt(50 * time.Second) // 5 windows through a cap-2 ring

	wins := ts.Windows()
	if len(wins) != 2 {
		t.Fatalf("retained %d windows, want 2", len(wins))
	}
	if wins[0].Index != 3 || wins[1].Index != 4 {
		t.Fatalf("retained indices %d,%d, want 3,4", wins[0].Index, wins[1].Index)
	}
	ev := ts.Evicted()
	if ev.Windows != 3 {
		t.Fatalf("evicted %d windows, want 3", ev.Windows)
	}
	if ev.Up != 28*time.Second || ev.Down != 2*time.Second || ev.Outages != 1 {
		t.Fatalf("evicted aggregate = %+v, want up 28s down 2s outages 1", ev)
	}
	// Conservation: retained + evicted covers the full horizon.
	var retUp time.Duration
	for _, w := range wins {
		retUp += w.Up + w.Down
	}
	if retUp+ev.Up+ev.Down != 50*time.Second {
		t.Fatalf("horizon not conserved: retained %s + evicted %s", retUp, ev.Up+ev.Down)
	}
}

func TestTimeSeriesMergeAlignsByIndex(t *testing.T) {
	t.Parallel()
	mk := func(downStart, downEnd time.Duration) *TimeSeries {
		ts := NewTimeSeries(10*time.Second, 0)
		ts.Observe(tsEvent(downStart, EventFailure, ComponentHADB, FailureOS))
		ts.Observe(tsEvent(downStart, EventOutageStart, 0, 0))
		ts.Observe(tsEvent(downEnd, EventOutageEnd, 0, 0))
		ts.FinishAt(30 * time.Second)
		return ts
	}
	a := mk(2*time.Second, 5*time.Second)
	b := mk(12*time.Second, 14*time.Second)
	a.Merge(b)

	wins := a.Windows()
	if len(wins) != 3 {
		t.Fatalf("merged windows = %d, want 3", len(wins))
	}
	// Each window carries both replicas' exposure: 20s total per window.
	if got := wins[0].Up + wins[0].Down; got != 20*time.Second {
		t.Fatalf("w0 exposure = %s, want 20s", got)
	}
	if wins[0].Down != 3*time.Second || wins[1].Down != 2*time.Second {
		t.Fatalf("merged downs = %s/%s, want 3s/2s", wins[0].Down, wins[1].Down)
	}
	if wins[0].Outages != 1 || wins[1].Outages != 1 {
		t.Fatalf("merged outages = %d/%d, want 1/1", wins[0].Outages, wins[1].Outages)
	}
	if got := wins[1].DownByCause[ComponentHADB][FailureOS]; got != 2*time.Second {
		t.Fatalf("merged hadb/os downtime = %s, want 2s", got)
	}
}

func TestTimeSeriesMergeWidthMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("merging different widths should panic")
		}
	}()
	a := NewTimeSeries(10*time.Second, 0)
	a.Merge(NewTimeSeries(20*time.Second, 0))
}

func TestTimeSeriesWriteJSONDeterministic(t *testing.T) {
	t.Parallel()
	mk := func() *TimeSeries {
		ts := NewTimeSeries(10*time.Second, 0)
		ts.Observe(tsEvent(1*time.Second, EventFailure, ComponentAS, FailureProcess))
		ts.Observe(tsEvent(1*time.Second, EventOutageStart, 0, 0))
		ts.Observe(tsEvent(2*time.Second, EventOutageEnd, 0, 0))
		ts.Observe(tsEvent(3*time.Second, EventFailure, ComponentHADB, FailureHW))
		ts.Observe(tsEvent(3*time.Second, EventOutageStart, 0, 0))
		ts.Observe(tsEvent(5*time.Second, EventOutageEnd, 0, 0))
		ts.FinishAt(10 * time.Second)
		return ts
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("same series rendered differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{`"windowNanos": 10000000000`, `"AS/process"`, `"HADB/hw"`, `"availability"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestTimeSeriesWriteText(t *testing.T) {
	t.Parallel()
	ts := NewTimeSeries(10*time.Second, 0)
	ts.Observe(tsEvent(2*time.Second, EventOutageStart, 0, 0))
	ts.Observe(tsEvent(4*time.Second, EventOutageEnd, 0, 0))
	ts.FinishAt(10 * time.Second)
	var buf bytes.Buffer
	if err := ts.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "avail 0.800000") || !strings.Contains(out, "outages 1") {
		t.Fatalf("text output missing fields:\n%s", out)
	}
}

func TestTimeSeriesFromCluster(t *testing.T) {
	t.Parallel()
	// Drive a real cluster with injected AS failures and confirm the
	// recorder agrees with the cluster's own aggregate accounting.
	ts := NewTimeSeries(time.Minute, 0)
	c, err := New(Options{Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 7,
		Observer: ts.Observe})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	// Take out both AS instances so the system predicate actually drops.
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatalf("InjectAS(0): %v", err)
	}
	if err := c.InjectAS(1, FaultProcessKill); err != nil {
		t.Fatalf("InjectAS(1): %v", err)
	}
	if err := c.Run(30 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := c.Stats()
	ts.FinishAt(c.Sim().Now())

	var up, down time.Duration
	var outages int64
	for _, w := range ts.Windows() {
		up += w.Up
		down += w.Down
		outages += w.Outages
	}
	ev := ts.Evicted()
	up += ev.Up
	down += ev.Down
	outages += ev.Outages
	if up != stats.UpTime || down != stats.DownTime {
		t.Fatalf("series up/down %s/%s != stats %s/%s", up, down, stats.UpTime, stats.DownTime)
	}
	if int(outages) != len(stats.Outages) {
		t.Fatalf("series outages %d != stats %d", outages, len(stats.Outages))
	}
}

func TestMultiObserver(t *testing.T) {
	t.Parallel()
	if MultiObserver(nil, nil) != nil {
		t.Fatal("all-nil MultiObserver should collapse to nil")
	}
	var calls []string
	a := func(Event) { calls = append(calls, "a") }
	b := func(Event) { calls = append(calls, "b") }
	MultiObserver(a, nil, b)(Event{})
	if got := strings.Join(calls, ""); got != "ab" {
		t.Fatalf("fan-out order = %q, want ab", got)
	}
}

func TestTimeSeriesPublishObs(t *testing.T) {
	t.Parallel()
	ts := NewTimeSeries(10*time.Second, 0)
	ts.Observe(tsEvent(2*time.Second, EventOutageStart, 0, 0))
	ts.Observe(tsEvent(4*time.Second, EventOutageEnd, 0, 0))
	ts.FinishAt(10 * time.Second)
	ts.PublishObs()
	if got := obsTSWindows.Value(); got != 1 {
		t.Fatalf("windows gauge = %v, want 1", got)
	}
	if got := obsTSLastAvail.Value(); got != 0.8 {
		t.Fatalf("last-window availability gauge = %v, want 0.8", got)
	}
}
