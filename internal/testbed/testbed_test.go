package testbed

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ctmc"
	"repro/internal/estimate"
	"repro/internal/jsas"
)

func newQuietCluster(t *testing.T, cfg jsas.Config, seed int64) *Cluster {
	t.Helper()
	c, err := New(Options{Config: cfg, Params: jsas.DefaultParams(), Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(Options{Config: jsas.Config{}, Params: jsas.DefaultParams()}); err == nil {
		t.Error("bad config accepted")
	}
	bad := jsas.DefaultParams()
	bad.FIR = -1
	if _, err := New(Options{Config: jsas.Config1, Params: bad}); err == nil {
		t.Error("bad params accepted")
	}
	badTiming := DefaultTiming()
	badTiming.ASRestart = DurationRange{}
	if _, err := New(Options{Config: jsas.Config1, Params: jsas.DefaultParams(), Timing: &badTiming}); err == nil {
		t.Error("bad timing accepted")
	}
	if _, err := New(Options{Config: jsas.Config1, Params: jsas.DefaultParams(), RequestRatePerSecond: -1}); err == nil {
		t.Error("negative request rate accepted")
	}
}

func TestQuietClusterStaysUp(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 1)
	if err := c.Run(30 * 24 * time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := c.Stats()
	if s.DownTime != 0 {
		t.Errorf("downtime = %v, want 0 without failures", s.DownTime)
	}
	if s.Availability() != 1 {
		t.Errorf("availability = %v, want 1", s.Availability())
	}
	if len(s.Outages) != 0 {
		t.Errorf("outages = %d, want 0", len(s.Outages))
	}
}

func TestInjectASProcessKillRecovers(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 2)
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatalf("InjectAS: %v", err)
	}
	snap := c.Snapshot()
	if snap.ASUp[0] {
		t.Error("instance 0 still up after injection")
	}
	if !snap.SystemUp {
		t.Error("system should survive a single AS failure")
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	snap = c.Snapshot()
	if !snap.ASUp[0] {
		t.Error("instance 0 did not recover")
	}
	s := c.Stats()
	if s.DownTime != 0 {
		t.Errorf("single AS failure caused downtime %v", s.DownTime)
	}
	recs := s.RecoveryDurations(ComponentAS, FailureProcess)
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(recs))
	}
	// Restart 15–25 s plus health check 0–60 s.
	if recs[0] < 15*time.Second || recs[0] > 85*time.Second {
		t.Errorf("AS recovery = %v, want within [15s, 85s]", recs[0])
	}
	// Sessions failed over to the surviving instance.
	if s.SessionFailovers != 0 {
		t.Errorf("failovers = %d, want 0 (SessionsPerInstance unset)", s.SessionFailovers)
	}
}

func TestSessionFailoverAccounting(t *testing.T) {
	t.Parallel()
	c, err := New(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 3,
		SessionsPerInstance: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(1, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SessionFailovers; got != 5000 {
		t.Errorf("failovers = %d, want 5000", got)
	}
}

func TestAllASDownIsAnOutageWithOperatorRestore(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 4)
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(1, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().SystemUp {
		t.Error("system up with all AS instances down")
	}
	if err := c.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if !snap.ASUp[0] || !snap.ASUp[1] {
		t.Error("operator restore did not bring all instances back")
	}
	s := c.Stats()
	if len(s.Outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(s.Outages))
	}
	o := s.Outages[0]
	if o.Cause != ComponentAS {
		t.Errorf("cause = %v, want AS", o.Cause)
	}
	// Operator restore is 20–30 min.
	if o.Duration() < 20*time.Minute || o.Duration() > 30*time.Minute {
		t.Errorf("outage duration = %v, want 20–30 min", o.Duration())
	}
}

func TestInjectHADBProcessKillRecovers(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 5)
	if err := c.InjectHADB(0, 0, FaultProcessKill); err != nil {
		t.Fatalf("InjectHADB: %v", err)
	}
	snap := c.Snapshot()
	if snap.PairActiveNodes[0] != 1 {
		t.Errorf("active nodes = %d, want 1", snap.PairActiveNodes[0])
	}
	if !snap.SystemUp {
		t.Error("system should survive single HADB node failure")
	}
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().PairActiveNodes[0]; got != 2 {
		t.Errorf("active nodes after recovery = %d, want 2", got)
	}
	recs := c.Stats().RecoveryDurations(ComponentHADB, FailureProcess)
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(recs))
	}
	// Paper: measured restart around 40 s.
	if recs[0] < 35*time.Second || recs[0] > 45*time.Second {
		t.Errorf("HADB restart = %v, want 35–45 s", recs[0])
	}
}

func TestInjectHADBPowerOffUsesSpare(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 6)
	before := c.Snapshot().Spares
	if err := c.InjectHADB(0, 1, FaultPowerOff); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Spares; got != before-1 {
		t.Errorf("spares = %d, want %d (one consumed)", got, before-1)
	}
	// Repair copy ~12 min/GB.
	if err := c.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().PairActiveNodes[0]; got != 2 {
		t.Errorf("active nodes = %d, want 2 after spare promotion", got)
	}
	// Physical repair returns the dead host to the pool (90–110 min).
	if err := c.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Spares; got != before {
		t.Errorf("spares = %d, want %d after physical repair", got, before)
	}
	if c.Stats().DownTime != 0 {
		t.Error("HW failure with spare should not cause downtime")
	}
}

func TestInjectHADBHWWithoutSpare(t *testing.T) {
	t.Parallel()
	cfg := jsas.Config{ASInstances: 2, HADBPairs: 1, HADBSpares: 0}
	c := newQuietCluster(t, cfg, 7)
	if err := c.InjectHADB(0, 0, FaultPowerOff); err != nil {
		t.Fatal(err)
	}
	// Recovery requires physical repair (90–110 min) plus copy (~12 min):
	// not yet recovered at 1 h …
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().PairActiveNodes[0]; got != 1 {
		t.Errorf("active nodes at 1h = %d, want 1 (no spare)", got)
	}
	// … but recovered by 3 h.
	if err := c.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().PairActiveNodes[0]; got != 2 {
		t.Errorf("active nodes at 3h = %d, want 2", got)
	}
}

func TestDoubleNodeFailureLosesPair(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 8)
	if err := c.InjectHADB(1, 0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectHADB(1, 1, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if !snap.PairDown[1] {
		t.Error("pair not marked down after double failure")
	}
	if snap.SystemUp {
		t.Error("system up with a pair down")
	}
	// Injecting into a down pair is rejected.
	if err := c.InjectHADB(1, 0, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("inject into down pair: err = %v", err)
	}
	// Operator restore 45–60 min.
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	snap = c.Snapshot()
	if snap.PairDown[1] || snap.PairActiveNodes[1] != 2 {
		t.Error("pair not restored")
	}
	s := c.Stats()
	if len(s.Outages) != 1 || s.Outages[0].Cause != ComponentHADB {
		t.Fatalf("outages = %+v, want one HADB outage", s.Outages)
	}
	if d := s.Outages[0].Duration(); d < 45*time.Minute || d > time.Hour {
		t.Errorf("restore took %v, want 45–60 min", d)
	}
	// The failed recovery is recorded as unsuccessful.
	var unsuccessful int
	for _, r := range s.Recoveries {
		if !r.Success {
			unsuccessful++
		}
	}
	if unsuccessful != 1 {
		t.Errorf("unsuccessful recoveries = %d, want 1", unsuccessful)
	}
}

func TestInjectValidation(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 9)
	if err := c.InjectAS(99, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad AS id: err = %v", err)
	}
	if err := c.InjectHADB(99, 0, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad pair: err = %v", err)
	}
	if err := c.InjectHADB(0, 5, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad slot: err = %v", err)
	}
	if err := c.InjectAS(0, Fault(99)); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad fault: err = %v", err)
	}
	// Double injection on the same instance.
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(0, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("inject down instance: err = %v", err)
	}
}

func TestFaultKindMapping(t *testing.T) {
	t.Parallel()
	want := map[Fault]FailureKind{
		FaultProcessKill:       FailureProcess,
		FaultRandomProcessKill: FailureProcess,
		FaultFastFail:          FailureProcess,
		FaultNetworkCut:        FailureOS,
		FaultPowerOff:          FailureHW,
	}
	for f, k := range want {
		got, err := f.Kind()
		if err != nil || got != k {
			t.Errorf("%v.Kind() = %v, %v; want %v", f, got, err, k)
		}
	}
	if len(Faults()) != 5 {
		t.Errorf("Faults() = %d, want 5", len(Faults()))
	}
}

func TestRequestAccounting(t *testing.T) {
	t.Parallel()
	c, err := New(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 10,
		RequestRatePerSecond: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if math.Abs(s.RequestsServed-36000) > 1 {
		t.Errorf("requests served = %.0f, want 36000", s.RequestsServed)
	}
	if s.RequestsFailed != 0 {
		t.Errorf("requests failed = %.0f, want 0", s.RequestsFailed)
	}
	// Force a full outage and verify failures accrue.
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(1, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(c.Now() + 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RequestsFailed; got < 10*60*10/2 {
		t.Errorf("requests failed = %.0f, want ≥ 3000 during outage", got)
	}
}

func TestMaintenanceDegradesPair(t *testing.T) {
	t.Parallel()
	p := jsas.DefaultParams()
	p.MaintenancePerYear = 8760 * 4 // ~4 events/hour so the test sees some
	c, err := New(Options{Config: jsas.Config1, Params: p, Seed: 11, Maintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for i := 0; i < 200 && !sawDegraded; i++ {
		if err := c.Run(c.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
		snap := c.Snapshot()
		for _, n := range snap.PairActiveNodes {
			if n == 1 {
				sawDegraded = true
			}
		}
	}
	if !sawDegraded {
		t.Error("maintenance never degraded a pair")
	}
	// Maintenance alone must not cause downtime.
	if c.Stats().DownTime != 0 {
		t.Errorf("maintenance caused downtime %v", c.Stats().DownTime)
	}
}

// TestOrganicLongevityRunIsStable mirrors the paper's 7-day stability runs:
// with organic failures enabled at the paper's rates, a 7-day window
// usually sees a few instance failures but no system outage at all
// (system MTBF ≈ 10 years).
func TestOrganicLongevityRunIsStable(t *testing.T) {
	t.Parallel()
	c, err := New(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 12,
		OrganicFailures: true, RequestRatePerSecond: 11.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(7 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	// ~7 million requests per 7-day run (paper §3).
	if s.RequestsServed < 6.9e6 {
		t.Errorf("requests served = %.0f, want ≈ 7M", s.RequestsServed)
	}
	if s.Availability() < 0.999 {
		t.Errorf("7-day availability = %v, suspiciously low", s.Availability())
	}
}

// TestSimulatedAvailabilityMatchesModel cross-validates the testbed
// against the analytic model: a long organic run of Config 1 must land
// near the model's availability (99.99933%) — i.e. yearly downtime within
// a factor ~2.5 of 3.5 min/yr given Monte-Carlo noise.
func TestSimulatedAvailabilityMatchesModel(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long cross-validation run")
	}
	// The testbed's measured-truth timings are faster than the model's
	// conservative parameters; align them for the comparison.
	p := jsas.DefaultParams()
	tm := DefaultTiming()
	tm.HADBRestart = Fixed(p.HADBRestartShort)
	tm.HADBOSReboot = Fixed(p.HADBRestartLong)
	tm.HADBRepairPerGB = Fixed(p.HADBRepair)
	tm.NodeDataGB = 1
	tm.OperatorRestoreHADB = Fixed(p.HADBRestore)
	tm.ASRestart = Fixed(p.ASRestartShort / 2) // + mean health check ≈ 90 s total
	tm.HealthCheckInterval = p.ASRestartShort  // uniform [0, 90 s], mean 45 s
	tm.ASOSReboot = Fixed(15 * time.Minute)
	tm.ASHWRepair = Fixed(100 * time.Minute)
	tm.OperatorRestoreAS = Fixed(p.ASRestoreAll)
	tm.MaintenanceSwitchover = Fixed(p.MaintenanceSwitchover)

	c, err := New(Options{
		Config: jsas.Config1, Params: p, Timing: &tm, Seed: 13,
		OrganicFailures: true, Maintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// time.Duration caps at ~292 years; 250 years gives enough outage
	// events (~25) for a factor-2.5 comparison.
	const years = 250
	if err := c.Run(years * 8760 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	ydPerYear := s.DownTime.Minutes() / years
	model, err := jsas.Solve(jsas.Config1, p)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := model.YearlyDowntimeMinutes/2.5, model.YearlyDowntimeMinutes*2.5
	if ydPerYear < lo || ydPerYear > hi {
		t.Errorf("simulated YD = %.2f min/yr, model %.2f (accept [%.2f, %.2f])",
			ydPerYear, model.YearlyDowntimeMinutes, lo, hi)
	}
}

func TestStatsCopies(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 14)
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if len(s.Recoveries) == 0 {
		t.Fatal("no recoveries")
	}
	s.Recoveries[0].Duration = -1
	if c.Stats().Recoveries[0].Duration == -1 {
		t.Error("Stats exposes internal recovery slice")
	}
}

func TestComponentAndKindStrings(t *testing.T) {
	t.Parallel()
	if ComponentAS.String() != "AS" || ComponentHADB.String() != "HADB" {
		t.Error("component strings")
	}
	if FailureProcess.String() != "process" || FailureOS.String() != "os" || FailureHW.String() != "hw" {
		t.Error("kind strings")
	}
	if Fault(42).String() == "" || Component(42).String() == "" || FailureKind(42).String() == "" {
		t.Error("unknown enum strings should be diagnostic")
	}
}

func TestObserverReceivesEvents(t *testing.T) {
	t.Parallel()
	var events []Event
	c, err := New(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 21,
		Observer: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectHADB(0, 0, FaultPowerOff); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Hour); err != nil {
		t.Fatal(err)
	}
	want := map[EventType]bool{
		EventFailure: false, EventRecovery: false,
		EventSpareConsumed: false, EventSpareReturned: false,
	}
	for _, e := range events {
		if _, ok := want[e.Type]; ok {
			want[e.Type] = true
		}
		if e.Time < 0 {
			t.Errorf("event with negative time: %+v", e)
		}
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
	for typ, seen := range want {
		if !seen {
			t.Errorf("no %v event observed (events: %d)", typ, len(events))
		}
	}
}

func TestObserverOutageEvents(t *testing.T) {
	t.Parallel()
	var starts, ends int
	c, err := New(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 22,
		Observer: func(e Event) {
			switch e.Type {
			case EventOutageStart:
				starts++
			case EventOutageEnd:
				ends++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectHADB(0, 0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectHADB(0, 1, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if starts != 1 || ends != 1 {
		t.Errorf("outage events = %d starts, %d ends; want 1,1", starts, ends)
	}
}

func TestEventTypeStrings(t *testing.T) {
	t.Parallel()
	types := []EventType{
		EventFailure, EventRecovery, EventOutageStart, EventOutageEnd,
		EventSpareConsumed, EventSpareReturned, EventMaintenanceStart, EventMaintenanceEnd,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate string for %d: %q", int(typ), s)
		}
		seen[s] = true
	}
	if EventType(99).String() == "" {
		t.Error("unknown event type string empty")
	}
}

// TestPairLevelDowntimeMatchesModel isolates the HADB tier: with the AS
// tier made effectively failure-free, long-run simulated downtime per pair
// must approach the analytic Figure 3 pair model (~0.575 min/yr/pair).
func TestPairLevelDowntimeMatchesModel(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long cross-validation run")
	}
	p := jsas.DefaultParams()
	p.ASFailuresPerYear = 1e-9
	p.ASOSFailuresPerYear = 0
	p.ASHWFailuresPerYear = 0
	tm := DefaultTiming()
	tm.HADBRestart = Fixed(p.HADBRestartShort)
	tm.HADBOSReboot = Fixed(p.HADBRestartLong)
	tm.HADBRepairPerGB = Fixed(p.HADBRepair)
	tm.NodeDataGB = 1
	tm.OperatorRestoreHADB = Fixed(p.HADBRestore)
	tm.MaintenanceSwitchover = Fixed(p.MaintenanceSwitchover)
	c, err := New(Options{
		Config: jsas.Config1, Params: p, Timing: &tm, Seed: 31,
		OrganicFailures: true, Maintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const years = 250
	if err := c.Run(years * 8760 * time.Hour); err != nil {
		t.Fatal(err)
	}
	simYD := c.Stats().DownTime.Minutes() / years
	pair, err := jsas.BuildHADBPair(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pair.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	modelYD := 2 * res.YearlyDowntimeMinutes // two pairs
	if simYD < modelYD/3 || simYD > modelYD*3 {
		t.Errorf("simulated HADB YD %.3f min/yr vs model %.3f (accept ×3)", simYD, modelYD)
	}
}

// TestSessionRecoveryAccounting: the paper's session recovery time is
// sub-second per session; a failover of 10,000 sessions accrues that much
// aggregate response-time degradation.
func TestSessionRecoveryAccounting(t *testing.T) {
	t.Parallel()
	c, err := New(Options{
		Config: jsas.Config1, Params: jsas.DefaultParams(), Seed: 51,
		SessionsPerInstance: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	// Measured session recovery is 0.3–0.9 s per session.
	if s.SessionRecoverySeconds < 10000*0.3 || s.SessionRecoverySeconds > 10000*0.9 {
		t.Errorf("session recovery = %.0f session-seconds, want 3000–9000", s.SessionRecoverySeconds)
	}
	// A total outage (both down) adds no failover accounting for the
	// second failure (no survivors to fail over to).
	before := s.SessionRecoverySeconds
	if err := c.InjectAS(1, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SessionRecoverySeconds; got != before {
		t.Errorf("no-survivor failure changed session recovery: %v → %v", before, got)
	}
}

// TestScheduledInjections: a scripted scenario — three injections at fixed
// virtual times — plays out without stepping loops.
func TestScheduledInjections(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 61)
	if err := c.ScheduleInjectAS(10*time.Minute, 0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleInjectHADB(20*time.Minute, 0, 0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	// Scheduled against an already-down target: silently skipped.
	if err := c.ScheduleInjectAS(10*time.Minute+time.Second, 0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if len(s.Recoveries) != 2 {
		t.Fatalf("recoveries = %d, want 2 (duplicate skipped)", len(s.Recoveries))
	}
	if s.Recoveries[0].Start != 10*time.Minute {
		t.Errorf("first injection at %v, want 10m", s.Recoveries[0].Start)
	}
	if s.Recoveries[1].Component != ComponentHADB || s.Recoveries[1].Start != 20*time.Minute {
		t.Errorf("second recovery = %+v", s.Recoveries[1])
	}
	// Validation.
	if err := c.ScheduleInjectAS(time.Hour, 99, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad id: err = %v", err)
	}
	if err := c.ScheduleInjectHADB(time.Hour, 0, 7, FaultProcessKill); !errors.Is(err, ErrBadTarget) {
		t.Errorf("bad slot: err = %v", err)
	}
}

// TestOrganicFailuresAreExponential closes the loop on the paper's §4
// constant-failure-rate assumption: inter-failure times observed on the
// simulated testbed fit an exponential at the configured rate.
func TestOrganicFailuresAreExponential(t *testing.T) {
	t.Parallel()
	p := jsas.DefaultParams()
	// Single AS instance with no HADB: a pure failure/restart process.
	cfg := jsas.Config{ASInstances: 1}
	c, err := New(Options{Config: cfg, Params: p, Seed: 62, OrganicFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100 * 8760 * time.Hour); err != nil {
		t.Fatal(err)
	}
	recs := c.Stats().Recoveries
	if len(recs) < 100 {
		t.Fatalf("only %d failures in 100 years", len(recs))
	}
	// Inter-failure times: from each recovery completion to next failure.
	var inter []time.Duration
	for i := 1; i < len(recs); i++ {
		prevEnd := recs[i-1].Start + recs[i-1].Duration
		gap := recs[i].Start - prevEnd
		if gap > 0 {
			inter = append(inter, gap)
		}
	}
	fit, err := estimate.FitExponential(inter)
	if err != nil {
		t.Fatalf("FitExponential: %v", err)
	}
	// True rate: 52/yr ≈ 1/168.5 h.
	wantMTBF := 8760.0 / 52
	if math.Abs(fit.MTBFHours-wantMTBF) > 0.15*wantMTBF {
		t.Errorf("fitted MTBF = %.1f h, want ~%.1f", fit.MTBFHours, wantMTBF)
	}
	if fit.KSPValue < 0.005 {
		t.Errorf("KS p = %v: organic process rejected as exponential", fit.KSPValue)
	}
}

func TestMiscAccessorsAndErrors(t *testing.T) {
	t.Parallel()
	c := newQuietCluster(t, jsas.Config1, 71)
	if c.Sim() == nil {
		t.Error("Sim() returned nil")
	}
	// Run into the past surfaces the kernel error.
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Minute); err == nil {
		t.Error("Run backwards accepted")
	}
	// Fresh stats have availability 1 by definition.
	var empty Stats
	if empty.Availability() != 1 {
		t.Errorf("empty availability = %v, want 1", empty.Availability())
	}
	// Fault strings are distinct and diagnostic.
	seen := map[string]bool{}
	for _, f := range Faults() {
		s := f.String()
		if s == "" || seen[s] {
			t.Errorf("fault string %q duplicated or empty", s)
		}
		seen[s] = true
	}
	// ConfigError formats its field.
	ce := &ConfigError{Field: "ASRestart"}
	if ce.Error() == "" || !strings.Contains(ce.Error(), "ASRestart") {
		t.Errorf("ConfigError.Error() = %q", ce.Error())
	}
}
