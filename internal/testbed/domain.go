package testbed

import (
	"fmt"
	"time"
)

// Cause classifies why an outage (or injection) happened: an independent
// component fault, a domain-level common-cause fault taking out every
// member of a power domain / rack / site at once, or a network partition
// leaving alive instances unreachable (LB split-brain). The zero value is
// CauseIndependent so records from domain-free runs are unchanged.
type Cause int

// Cause values.
const (
	CauseIndependent Cause = iota
	CauseCommonCause
	CausePartition
)

func (c Cause) String() string {
	switch c {
	case CauseIndependent:
		return "independent"
	case CauseCommonCause:
		return "common-cause"
	case CausePartition:
		return "partition"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// NodeRef identifies one HADB node slot (pair index, slot 0 or 1).
type NodeRef struct {
	Pair, Slot int
}

// Domain is one node of the fault-domain tree declared alongside the
// cluster topology: a site, power domain, or rack whose members share a
// failure cause. A domain owns its direct members; injecting it also
// takes down every member of its child domains (the subtree shares the
// cause — a site failure includes its racks).
type Domain struct {
	// Name identifies the domain ("rack-a", "site-east"); unique.
	Name string
	// Parent is the enclosing domain's name ("" for a root).
	Parent string
	// AS lists the member AS instance indices.
	AS []int
	// HADB lists the member HADB node slots.
	HADB []NodeRef
}

// ValidateDomains checks a domain tree against a deployment shape:
// unique nonempty names, parents that exist, no cycles, and member
// indices within the configured instance/pair counts.
func ValidateDomains(domains []Domain, nAS, nPairs int) error {
	byName := make(map[string]int, len(domains))
	for i, d := range domains {
		if d.Name == "" {
			return &ConfigError{Field: fmt.Sprintf("domain %d has no name", i)}
		}
		if _, dup := byName[d.Name]; dup {
			return &ConfigError{Field: fmt.Sprintf("duplicate domain %q", d.Name)}
		}
		byName[d.Name] = i
		for _, id := range d.AS {
			if id < 0 || id >= nAS {
				return &ConfigError{Field: fmt.Sprintf("domain %q: AS instance %d of %d", d.Name, id, nAS)}
			}
		}
		for _, ref := range d.HADB {
			if ref.Pair < 0 || ref.Pair >= nPairs {
				return &ConfigError{Field: fmt.Sprintf("domain %q: HADB pair %d of %d", d.Name, ref.Pair, nPairs)}
			}
			if ref.Slot < 0 || ref.Slot > 1 {
				return &ConfigError{Field: fmt.Sprintf("domain %q: HADB node slot %d, want 0 or 1", d.Name, ref.Slot)}
			}
		}
	}
	for _, d := range domains {
		if d.Parent == "" {
			continue
		}
		if _, ok := byName[d.Parent]; !ok {
			return &ConfigError{Field: fmt.Sprintf("domain %q: unknown parent %q", d.Name, d.Parent)}
		}
		// Walk the parent chain; more steps than domains means a cycle.
		cur, steps := d.Parent, 0
		for cur != "" {
			if steps++; steps > len(domains) {
				return &ConfigError{Field: fmt.Sprintf("domain %q: parent cycle", d.Name)}
			}
			cur = domains[byName[cur]].Parent
		}
	}
	return nil
}

// resolvedDomain is a domain with its transitive membership (own members
// plus every descendant's) precomputed, deduplicated, and its trace
// target prebuilt — InjectDomain runs in the campaign hot loop.
type resolvedDomain struct {
	name   string
	target string // "domain:<name>"
	as     []int
	hadb   []NodeRef
}

// resolveDomains validates and flattens the domain tree. Membership
// order within a resolved domain is deterministic: own members first,
// then each child's (in declaration order), depth-first.
func resolveDomains(domains []Domain, nAS, nPairs int) ([]resolvedDomain, error) {
	if len(domains) == 0 {
		return nil, nil
	}
	if err := ValidateDomains(domains, nAS, nPairs); err != nil {
		return nil, err
	}
	children := make(map[string][]int, len(domains))
	for i, d := range domains {
		if d.Parent != "" {
			children[d.Parent] = append(children[d.Parent], i)
		}
	}
	out := make([]resolvedDomain, len(domains))
	for i, d := range domains {
		r := resolvedDomain{name: d.Name, target: "domain:" + d.Name}
		seenAS := make(map[int]bool)
		seenNode := make(map[NodeRef]bool)
		var collect func(idx int)
		collect = func(idx int) {
			for _, id := range domains[idx].AS {
				if !seenAS[id] {
					seenAS[id] = true
					r.as = append(r.as, id)
				}
			}
			for _, ref := range domains[idx].HADB {
				if !seenNode[ref] {
					seenNode[ref] = true
					r.hadb = append(r.hadb, ref)
				}
			}
			for _, ci := range children[domains[idx].Name] {
				collect(ci)
			}
		}
		collect(i)
		out[i] = r
	}
	return out, nil
}

// Domains lists the declared domain names in declaration order.
func (c *Cluster) Domains() []string {
	out := make([]string, len(c.domains))
	for i := range c.domains {
		out[i] = c.domains[i].name
	}
	return out
}

// findDomain returns the resolved domain by name, or nil.
func (c *Cluster) findDomain(name string) *resolvedDomain {
	for i := range c.domains {
		if c.domains[i].name == name {
			return &c.domains[i]
		}
	}
	return nil
}

// InjectDomain atomically fails every member of the named domain (child
// domains included) with a single common cause at the current virtual
// time: every member manifests the same fault class, and any outage the
// burst opens is attributed CauseCommonCause. Members already down are
// skipped, as a real shared-cause event finds them. It returns the
// number of components actually failed.
func (c *Cluster) InjectDomain(name string, f Fault) (int, error) {
	d := c.findDomain(name)
	if d == nil {
		return 0, fmt.Errorf("unknown fault domain %q: %w", name, ErrBadTarget)
	}
	kind, err := f.Kind()
	if err != nil {
		return 0, err
	}
	c.emit(Event{
		Type: EventDomainFault, Target: d.target, Kind: kind,
		Injected: true, Class: CauseCommonCause, Count: len(d.as) + len(d.hadb),
	})
	c.pendingClass = CauseCommonCause
	n := 0
	for _, id := range d.as {
		if inst := c.as[id]; inst.up {
			c.failAS(inst, kind, true)
			n++
		}
	}
	for _, ref := range d.hadb {
		if p := c.pairs[ref.Pair]; !p.down && p.nodes[ref.Slot].active {
			c.failHADB(p, ref.Slot, kind, true)
			n++
		}
	}
	c.pendingClass = CauseIndependent
	c.emit(Event{
		Type: EventDomainFaultDone, Target: d.target, Kind: kind,
		Injected: true, Class: CauseCommonCause, Count: n,
	})
	return n, nil
}

// InjectPartition splits the cluster's network at the current virtual
// time: the listed AS instances become unreachable from the load
// balancer (and the HADB tier) until the partition heals after a
// Timing.PartitionHeal draw. A partitioned instance keeps running — it
// can still fail and recover — but serves no traffic, and outage
// attribution records CausePartition when alive-but-unreachable
// capacity is why the system is down (LB split-brain). Sessions on
// isolated instances fail over to reachable survivors, if any.
func (c *Cluster) InjectPartition(ids []int) error {
	if len(ids) == 0 {
		return fmt.Errorf("partition isolates no instances: %w", ErrBadTarget)
	}
	for i, id := range ids {
		if id < 0 || id >= len(c.as) {
			return fmt.Errorf("AS instance %d of %d: %w", id, len(c.as), ErrBadTarget)
		}
		for _, prev := range ids[:i] {
			if prev == id {
				return fmt.Errorf("AS instance %d isolated twice: %w", id, ErrBadTarget)
			}
		}
	}
	c.partitionSeq++
	pid := c.partitionSeq
	c.partitions++
	c.emit(Event{
		Type: EventPartitionStart, Component: ComponentAS, Target: "network",
		Injected: true, Class: CausePartition, Count: len(ids),
	})
	for _, id := range ids {
		inst := c.as[id]
		if !inst.partitioned {
			inst.partitioned = true
			c.partitionedCount++
		}
		inst.partitionID = pid
	}
	// Split-brain failover: the LB health check marks isolated instances
	// dead and their sessions re-establish (from HADB) on reachable
	// survivors — each paying one session-recovery interval, exactly as
	// for a crashed instance.
	if c.opts.SessionsPerInstance > 0 && c.servingASCount() > 0 {
		for _, id := range ids {
			if c.as[id].up {
				c.sessionFailovers += c.opts.SessionsPerInstance
				obsFailovers.Add(int64(c.opts.SessionsPerInstance))
				c.sessionRecovery += float64(c.opts.SessionsPerInstance) *
					c.draw(c.timing.SessionRecovery).Seconds()
			}
		}
	}
	c.pendingClass = CausePartition
	c.stateChanged(ComponentAS)
	c.pendingClass = CauseIndependent
	heal := c.draw(c.timing.PartitionHeal)
	_ = c.sim.Schedule(heal, func() { c.healPartition(pid) })
	return nil
}

// healPartition reconnects the instances isolated by partition pid. An
// instance re-partitioned by a newer event stays isolated (its ID moved
// on), mirroring the version-stamp staleness convention of the failure
// timers.
func (c *Cluster) healPartition(pid uint64) {
	healed := 0
	for _, inst := range c.as {
		if inst.partitioned && inst.partitionID == pid {
			inst.partitioned = false
			c.partitionedCount--
			healed++
		}
	}
	if healed == 0 {
		return
	}
	c.emit(Event{
		Type: EventPartitionHeal, Component: ComponentAS, Target: "network",
		Class: CausePartition, Count: healed,
	})
	c.stateChanged(ComponentAS)
}

// servingASCount returns the number of instances actually serving
// traffic: up and reachable. With no partition active it equals
// upASCount.
func (c *Cluster) servingASCount() int {
	if c.partitionedCount == 0 {
		return c.upASCount()
	}
	n := 0
	for _, inst := range c.as {
		if inst.up && !inst.partitioned {
			n++
		}
	}
	return n
}

// partitionedAlive reports whether any instance is alive but
// unreachable — the split-brain signature: capacity exists, the network
// hides it.
func (c *Cluster) partitionedAlive() bool {
	if c.partitionedCount == 0 {
		return false
	}
	for _, inst := range c.as {
		if inst.up && inst.partitioned {
			return true
		}
	}
	return false
}

// DowntimeByClass sums the outage durations by cause class, indexed by
// Cause (CauseIndependent, CauseCommonCause, CausePartition).
func (s Stats) DowntimeByClass() [int(CausePartition) + 1]time.Duration {
	var out [int(CausePartition) + 1]time.Duration
	for _, o := range s.Outages {
		cl := int(o.Class)
		if cl < 0 || cl >= len(out) {
			cl = int(CauseIndependent)
		}
		out[cl] += o.Duration()
	}
	return out
}
