package testbed

import (
	"fmt"

	"repro/internal/obs"
)

// Testbed metrics, reported to the default obs registry. The simulated
// lab mirrors the paper's physical testbed, and these counters are its
// operations console: how much simulation work ran, what was injected,
// what failed, what recovered, and how often the system predicate went
// false.
var (
	obsSimEvents   = obs.C("testbed_events_total", "discrete-event kernel events processed")
	obsInjected    = obs.C("testbed_injections_total", "fault injections performed")
	obsFailovers   = obs.C("testbed_session_failovers_total", "sessions migrated off failed AS instances")
	obsOutages     = obs.C("testbed_outages_total", "system-level outages observed")
	obsMaintenance = obs.C("testbed_maintenance_total", "scheduled maintenance switchovers started")
	obsDomainInj   = obs.C("testbed_domain_faults_total", "domain-level common-cause injections performed")
	obsPartitions  = obs.C("testbed_partitions_total", "network partitions injected")

	// Per-(component, kind) counters are resolved once at init instead
	// of per event: obsRecordEvent runs inline in the DES hot loop, and
	// a longevity run emits millions of events — a registry lookup plus
	// two fmt.Sprintf allocations each would dominate the loop and
	// contend on the global registry mutex. Indexed by the enum values
	// directly (both start at 1, so slot 0 is unused).
	obsFailures  [int(ComponentHADB) + 1][int(FailureHW) + 1]*obs.Counter
	obsRecovered [int(ComponentHADB) + 1]*obs.Counter
)

const (
	failuresHelp   = "component failures by tier and class"
	recoveriesHelp = "component recoveries (restarts, repairs, operator restores) by tier"
)

func init() {
	for _, c := range []Component{ComponentAS, ComponentHADB} {
		for _, k := range []FailureKind{FailureProcess, FailureOS, FailureHW} {
			obsFailures[c][k] = obs.C("testbed_failures_total", failuresHelp,
				fmt.Sprintf("component=%q", c), fmt.Sprintf("kind=%q", k))
		}
		obsRecovered[c] = obs.C("testbed_recoveries_total", recoveriesHelp,
			fmt.Sprintf("component=%q", c))
	}
}

// failureCounter returns the cached counter for known enum values and
// falls back to a lazy registry lookup for out-of-range ones, so a future
// component or failure class degrades to the slow path instead of an
// index panic.
func failureCounter(c Component, k FailureKind) *obs.Counter {
	if int(c) > 0 && int(c) < len(obsFailures) && int(k) > 0 && int(k) < len(obsFailures[c]) {
		return obsFailures[c][k]
	}
	return obs.C("testbed_failures_total", failuresHelp,
		fmt.Sprintf("component=%q", c), fmt.Sprintf("kind=%q", k))
}

func recoveryCounter(c Component) *obs.Counter {
	if int(c) > 0 && int(c) < len(obsRecovered) {
		return obsRecovered[c]
	}
	return obs.C("testbed_recoveries_total", recoveriesHelp, fmt.Sprintf("component=%q", c))
}

// obsRecordEvent mirrors every cluster trace event into the metrics
// registry (independent of whether an Observer is attached).
func obsRecordEvent(e Event) {
	switch e.Type {
	case EventFailure:
		failureCounter(e.Component, e.Kind).Inc()
		if e.Injected {
			obsInjected.Inc()
		}
	case EventRecovery:
		recoveryCounter(e.Component).Inc()
	case EventOutageStart:
		obsOutages.Inc()
	case EventMaintenanceStart:
		obsMaintenance.Inc()
	case EventDomainFault:
		obsDomainInj.Inc()
	case EventPartitionStart:
		obsPartitions.Inc()
	}
}
