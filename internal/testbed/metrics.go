package testbed

import (
	"fmt"

	"repro/internal/obs"
)

// Testbed metrics, reported to the default obs registry. The simulated
// lab mirrors the paper's physical testbed, and these counters are its
// operations console: how much simulation work ran, what was injected,
// what failed, what recovered, and how often the system predicate went
// false.
var (
	obsSimEvents = obs.C("testbed_events_total", "discrete-event kernel events processed")
	obsInjected  = obs.C("testbed_injections_total", "fault injections performed")
	obsFailovers = obs.C("testbed_session_failovers_total", "sessions migrated off failed AS instances")
	obsOutages   = obs.C("testbed_outages_total", "system-level outages observed")
)

// obsRecordEvent mirrors every cluster trace event into the metrics
// registry (independent of whether an Observer is attached).
func obsRecordEvent(e Event) {
	switch e.Type {
	case EventFailure:
		obs.C("testbed_failures_total", "component failures by tier and class",
			fmt.Sprintf("component=%q", e.Component), fmt.Sprintf("kind=%q", e.Kind)).Inc()
		if e.Injected {
			obsInjected.Inc()
		}
	case EventRecovery:
		obs.C("testbed_recoveries_total", "component recoveries (restarts, repairs, operator restores) by tier",
			fmt.Sprintf("component=%q", e.Component)).Inc()
	case EventOutageStart:
		obsOutages.Inc()
	case EventMaintenanceStart:
		obs.C("testbed_maintenance_total", "scheduled maintenance switchovers started").Inc()
	}
}
