package testbed

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/jsas"
)

// Common errors.
var (
	// ErrBadTarget is reported when a fault injection names a nonexistent
	// or already-down component.
	ErrBadTarget = errors.New("testbed: invalid injection target")
)

// Component identifies the tier a record refers to.
type Component int

// Component values.
const (
	ComponentAS Component = iota + 1
	ComponentHADB
)

func (c Component) String() string {
	switch c {
	case ComponentAS:
		return "AS"
	case ComponentHADB:
		return "HADB"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// FailureKind classifies a component failure, mirroring the model's
// failure classes.
type FailureKind int

// FailureKind values.
const (
	// FailureProcess is a restartable software failure (AS or HADB
	// process death).
	FailureProcess FailureKind = iota + 1
	// FailureOS is an operating-system failure requiring a reboot.
	FailureOS
	// FailureHW is a permanent hardware failure requiring physical repair
	// (and, for HADB, spare-node data reconstruction).
	FailureHW
)

func (k FailureKind) String() string {
	switch k {
	case FailureProcess:
		return "process"
	case FailureOS:
		return "os"
	case FailureHW:
		return "hw"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Recovery records one observed component recovery.
type Recovery struct {
	Component Component
	Kind      FailureKind
	// Start is the virtual time the failure occurred.
	Start time.Duration
	// Duration is the time from failure to full reinstatement (including
	// load-balancer detection for AS instances).
	Duration time.Duration
	// Injected marks fault-injection (vs organic) failures.
	Injected bool
	// Success is false when the recovery escalated to a system-level
	// outage (imperfect recovery / double failure).
	Success bool
}

// Outage records one system-level unavailability interval.
type Outage struct {
	Start, End time.Duration
	// Cause names the tier whose failure made the system unavailable.
	Cause Component
	// Class records why: an independent fault (the zero value), a
	// domain-level common cause, or a network partition (split-brain).
	Class Cause
}

// Duration returns the outage length.
func (o Outage) Duration() time.Duration { return o.End - o.Start }

// Options configures a simulated cluster.
type Options struct {
	// Config is the deployment shape (instances, pairs, spares).
	Config jsas.Config
	// Params supplies the ground-truth failure rates (per year) and the
	// FIR used to decide imperfect recoveries. Recovery *durations* come
	// from Timing, not Params.
	Params jsas.Params
	// Timing is the measured-truth recovery behavior; zero value means
	// DefaultTiming.
	Timing *Timing
	// Seed makes the run reproducible.
	Seed int64
	// OrganicFailures enables random failures at the Params rates. Off,
	// the cluster only fails under explicit injection — the
	// fault-injection campaign mode.
	OrganicFailures bool
	// Maintenance enables scheduled HADB maintenance events.
	Maintenance bool
	// RequestRatePerSecond is the offered load used for request/session
	// accounting (paper: ~11.6 req/s ≈ 7M requests per 7-day run).
	RequestRatePerSecond float64
	// SessionsPerInstance is the number of live sessions an AS instance
	// carries (used for failover accounting; paper: up to 10,000).
	SessionsPerInstance int
	// Domains declares the fault-domain tree (site → power domain/rack →
	// members) for common-cause injection; empty means no domains.
	Domains []Domain
	// Observer, if set, receives trace events as the simulation runs.
	Observer Observer
}

// Cluster is a simulated JSAS EE7 deployment.
type Cluster struct {
	sim    *des.Sim
	cfg    jsas.Config
	params jsas.Params
	timing Timing
	opts   Options
	// observer caches opts.Observer so emit's delivery decision is a
	// single nil check in the event hot loop.
	observer Observer

	as    []*asInstance
	pairs []*hadbPair
	// spares is the pool of ready spare nodes.
	spares int

	// domains is the resolved fault-domain tree (transitive memberships
	// precomputed at New).
	domains []resolvedDomain
	// Partition state: partitionSeq stamps each partition event (heal
	// staleness checks), partitionedCount counts currently-isolated
	// instances (the no-partition fast path in the availability
	// predicate), partitions counts events for Stats.
	partitionSeq     uint64
	partitionedCount int
	partitions       int
	// pendingClass attributes outages opened during a correlated event
	// burst (domain injection, partition) to their cause class.
	pendingClass Cause

	// Availability bookkeeping.
	systemUp   bool
	lastChange time.Duration
	upTime     time.Duration
	downTime   time.Duration
	openOutage *Outage
	outages    []Outage
	recoveries []Recovery

	// Workload accounting. Request totals are derived from the integer
	// up/down time sums at read time (Stats) rather than accumulated as
	// floats per interval: the integer sums are independent of how Run
	// partitions the timeline, so the derived totals are too — the
	// cancellation-driven chunked advance cannot perturb them.
	sessionFailovers int
	// sessionRecovery accumulates session-seconds of elevated response
	// time from failovers (the paper's "session recovery time").
	sessionRecovery float64
}

// asInstance is one Application Server instance.
type asInstance struct {
	id      int
	target  string // precomputed "as-<id>" trace target
	up      bool
	version uint64 // invalidates stale failure timers
	// timer is the pending organic failure timer; superseding draws
	// Cancel it so far-horizon events don't accumulate in the queue.
	timer des.Handle
	// failFn is the timer callback, bound once on first arm and reused
	// across re-arms (rescheduling happens on every cluster event).
	failFn func()
	// partitioned marks the instance alive-but-unreachable (network
	// partition); partitionID stamps which partition isolated it so a
	// stale heal doesn't reconnect a re-partitioned instance.
	partitioned bool
	partitionID uint64
	// pendingKind is the failure class being recovered from.
	pendingKind FailureKind
	failedAt    time.Duration
	injected    bool
}

// hadbNode is one HADB node slot within a pair.
type hadbNode struct {
	target   string // precomputed "hadb-<pair>/<slot>" trace target
	active   bool
	version  uint64
	timer    des.Handle // pending organic failure timer
	failFn   func()     // prebound timer callback, reused across re-arms
	failedAt time.Duration
	kind     FailureKind
	injected bool
}

// hadbPair is a mirrored DRU pair.
type hadbPair struct {
	id     int
	target string // precomputed "hadb-<id>" trace target
	nodes  [2]*hadbNode
	// down marks a catastrophic pair failure awaiting operator restore.
	down   bool
	downAt time.Duration
	// maintenance marks a scheduled switchover in progress.
	maintenance bool
}

func (p *hadbPair) activeCount() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.active {
			n++
		}
	}
	return n
}

// degraded reports whether only one node is serving (recovery or
// maintenance in progress).
func (p *hadbPair) degraded() bool { return !p.down && p.activeCount() < 2 }

// targetNames caches the per-index trace target strings shared by every
// cluster: replicated campaigns and longevity series construct thousands
// of identically-shaped clusters, and the names depend only on the index.
// The slices only ever grow; handed-out prefixes stay valid because
// growth either appends past them or reallocates.
var targetNames struct {
	sync.Mutex
	as, pair, node0, node1 []string
}

func clusterTargets(nAS, nPairs int) (as, pair, node0, node1 []string) {
	targetNames.Lock()
	defer targetNames.Unlock()
	for i := len(targetNames.as); i < nAS; i++ {
		targetNames.as = append(targetNames.as, "as-"+strconv.Itoa(i))
	}
	for i := len(targetNames.pair); i < nPairs; i++ {
		s := strconv.Itoa(i)
		targetNames.pair = append(targetNames.pair, "hadb-"+s)
		targetNames.node0 = append(targetNames.node0, "hadb-"+s+"/0")
		targetNames.node1 = append(targetNames.node1, "hadb-"+s+"/1")
	}
	return targetNames.as[:nAS], targetNames.pair[:nPairs],
		targetNames.node0[:nPairs], targetNames.node1[:nPairs]
}

// clusterPool recycles closed clusters (see Close): the component slabs,
// their prebound timer closures, and the accumulated-history slices all
// survive reuse, so bulk drivers construct clusters without allocating.
var clusterPool sync.Pool

// New constructs a cluster.
func New(opts Options) (*Cluster, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	timing := DefaultTiming()
	if opts.Timing != nil {
		timing = *opts.Timing
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	if timing.PartitionHeal == (DurationRange{}) {
		// Pre-domain Timing literals predate the field; fill the default
		// rather than invalidating them.
		timing.PartitionHeal = DefaultTiming().PartitionHeal
	}
	if opts.RequestRatePerSecond < 0 || opts.SessionsPerInstance < 0 {
		return nil, &ConfigError{Field: "negative workload settings"}
	}
	domains, err := resolveDomains(opts.Domains, opts.Config.ASInstances, opts.Config.HADBPairs)
	if err != nil {
		return nil, err
	}
	c, _ := clusterPool.Get().(*Cluster)
	if c == nil {
		c = &Cluster{}
	}
	c.sim = des.New(opts.Seed)
	c.cfg = opts.Config
	c.params = opts.Params
	c.timing = timing
	c.opts = opts
	c.observer = opts.Observer
	c.spares = opts.Config.HADBSpares
	c.systemUp = true
	c.lastChange = 0
	c.upTime, c.downTime = 0, 0
	c.openOutage = nil
	c.outages = c.outages[:0]
	c.recoveries = c.recoveries[:0]
	c.sessionFailovers = 0
	c.sessionRecovery = 0
	c.domains = domains
	c.partitionSeq = 0
	c.partitionedCount = 0
	c.partitions = 0
	c.pendingClass = CauseIndependent
	c.resetComponents()
	if opts.OrganicFailures {
		for _, inst := range c.as {
			c.scheduleASFailure(inst)
		}
		for _, p := range c.pairs {
			for slot := range p.nodes {
				c.scheduleHADBFailure(p, slot)
			}
		}
	}
	if opts.Maintenance {
		for _, p := range c.pairs {
			c.scheduleMaintenance(p)
		}
	}
	return c, nil
}

// resetComponents (re)builds the component state for c.cfg. A recycled
// cluster of the same shape keeps its slabs and prebound timer closures
// (they capture only the stable c and component pointers — everything
// run-specific is read through c at fire time); a shape change rebuilds
// from scratch.
func (c *Cluster) resetComponents() {
	nAS, nPairs := c.cfg.ASInstances, c.cfg.HADBPairs
	if len(c.as) == nAS && len(c.pairs) == nPairs {
		for _, inst := range c.as {
			inst.up = true
			inst.version = 0
			inst.timer = des.Handle{}
			inst.pendingKind = 0
			inst.failedAt = 0
			inst.injected = false
			inst.partitioned = false
			inst.partitionID = 0
		}
		for _, p := range c.pairs {
			p.down = false
			p.downAt = 0
			p.maintenance = false
			for _, nd := range p.nodes {
				nd.active = true
				nd.version = 0
				nd.timer = des.Handle{}
				nd.failedAt = 0
				nd.kind = 0
				nd.injected = false
			}
		}
		return
	}
	asNames, pairNames, node0Names, node1Names := clusterTargets(nAS, nPairs)
	// Components are allocated as contiguous slabs — campaigns and series
	// construct thousands of clusters, so per-component allocations are
	// measurable churn. Pointers into a slab are fine: the slabs are fully
	// sized up front and never grow.
	instSlab := make([]asInstance, nAS)
	c.as = make([]*asInstance, len(instSlab))
	for i := range instSlab {
		instSlab[i] = asInstance{id: i, target: asNames[i], up: true}
		c.as[i] = &instSlab[i]
	}
	pairSlab := make([]hadbPair, nPairs)
	nodeSlab := make([]hadbNode, 2*nPairs)
	c.pairs = make([]*hadbPair, len(pairSlab))
	for i := range pairSlab {
		n0, n1 := &nodeSlab[2*i], &nodeSlab[2*i+1]
		*n0 = hadbNode{target: node0Names[i], active: true}
		*n1 = hadbNode{target: node1Names[i], active: true}
		pairSlab[i] = hadbPair{id: i, target: pairNames[i], nodes: [2]*hadbNode{n0, n1}}
		c.pairs[i] = &pairSlab[i]
	}
}

// Sim exposes the underlying simulator (advanced use: custom event
// scripting in tests and campaigns).
func (c *Cluster) Sim() *des.Sim { return c.sim }

// Close releases the cluster's simulator back to the kernel's pool (see
// des.Sim.Release). The cluster must not be used after Close; further
// method calls panic on the nil simulator rather than corrupting a
// recycled one. Close is optional — an unclosed cluster is simply
// garbage collected — but drivers that construct clusters in bulk
// (replicated campaigns, longevity series) close each one to keep the
// construction path allocation-free.
func (c *Cluster) Close() {
	if c.sim == nil {
		return // already closed; never double-pool
	}
	c.sim.Release()
	c.sim = nil
	c.observer = nil
	c.opts = Options{}
	clusterPool.Put(c)
}

// Run advances the cluster to the given virtual time.
func (c *Cluster) Run(until time.Duration) error {
	before := c.sim.Processed()
	err := c.sim.Run(until)
	obsSimEvents.Add(int64(c.sim.Processed() - before))
	if err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	c.accountInterval()
	return nil
}

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration { return c.sim.Now() }

// draw samples a duration from a range.
func (c *Cluster) draw(r DurationRange) time.Duration {
	return c.sim.Uniform(r.Min, r.Max)
}

// upASCount returns the number of serving AS instances.
func (c *Cluster) upASCount() int {
	n := 0
	for _, inst := range c.as {
		if inst.up {
			n++
		}
	}
	return n
}

// systemIsUp evaluates the availability predicate: at least one AS
// instance serving (up and reachable) and every HADB pair able to
// persist session state.
func (c *Cluster) systemIsUp() bool {
	if c.servingASCount() == 0 {
		return false
	}
	for _, p := range c.pairs {
		if p.down || p.activeCount() == 0 {
			return false
		}
	}
	return true
}

// Healthy reports whether every component is serving: all AS instances
// up and every HADB pair fully mirrored. It is the same predicate as
// evaluating Snapshot component-by-component, without building one —
// campaign drivers call it after every simulation event.
func (c *Cluster) Healthy() bool {
	if c.partitionedCount > 0 {
		return false
	}
	for _, inst := range c.as {
		if !inst.up {
			return false
		}
	}
	for _, p := range c.pairs {
		if p.down || p.activeCount() != 2 {
			return false
		}
	}
	return true
}

// OutageCount returns the number of system-level outages so far, the
// open one (if any) included — equal to len(Stats().Outages) without
// copying the outage history.
func (c *Cluster) OutageCount() int {
	n := len(c.outages)
	if c.openOutage != nil {
		n++
	}
	return n
}

// accountInterval charges the elapsed time since the last state change to
// up or down time and to the request counters.
func (c *Cluster) accountInterval() {
	now := c.sim.Now()
	dt := now - c.lastChange
	if dt <= 0 {
		c.lastChange = now
		return
	}
	if c.systemUp {
		c.upTime += dt
	} else {
		c.downTime += dt
	}
	c.lastChange = now
}

// stateChanged re-evaluates the system predicate after any component
// event, closing/opening outage records as needed. cause attributes a new
// outage to the tier that triggered it.
func (c *Cluster) stateChanged(cause Component) {
	c.accountInterval()
	up := c.systemIsUp()
	if up == c.systemUp {
		return
	}
	c.systemUp = up
	now := c.sim.Now()
	if !up {
		class := c.pendingClass
		if class == CauseIndependent && cause == ComponentAS && c.partitionedAlive() {
			// Split-brain: the last reachable instance died, but alive
			// capacity exists behind the partition — without the network
			// fault the system would still be serving.
			class = CausePartition
		}
		c.openOutage = &Outage{Start: now, Cause: cause, Class: class}
		c.emit(Event{Type: EventOutageStart, Component: cause, Target: "system", Class: class})
		return
	}
	if c.openOutage != nil {
		c.openOutage.End = now
		c.outages = append(c.outages, *c.openOutage)
		c.openOutage = nil
		c.emit(Event{Type: EventOutageEnd, Component: cause, Target: "system"})
	}
}

// Stats is a snapshot of the cluster's accumulated measurements.
type Stats struct {
	UpTime, DownTime time.Duration
	Outages          []Outage
	Recoveries       []Recovery
	RequestsServed   float64
	RequestsFailed   float64
	SessionFailovers int
	// Partitions counts injected network-partition events.
	Partitions int
	// SessionRecoverySeconds is the cumulative session-seconds of
	// elevated response time caused by failovers: each migrated session
	// pays one session-recovery interval on its next request.
	SessionRecoverySeconds float64
}

// Availability returns observed uptime fraction (1 if no time elapsed).
func (s Stats) Availability() float64 {
	total := s.UpTime + s.DownTime
	if total == 0 {
		return 1
	}
	return float64(s.UpTime) / float64(total)
}

// RecoveryDurations returns the observed recovery durations filtered by
// component and kind.
func (s Stats) RecoveryDurations(comp Component, kind FailureKind) []time.Duration {
	var out []time.Duration
	for _, r := range s.Recoveries {
		if r.Component == comp && r.Kind == kind && r.Success {
			out = append(out, r.Duration)
		}
	}
	return out
}

// Stats returns a copy of the current measurements.
func (c *Cluster) Stats() Stats {
	c.accountInterval()
	outages := make([]Outage, len(c.outages))
	copy(outages, c.outages)
	if c.openOutage != nil {
		o := *c.openOutage
		o.End = c.sim.Now()
		outages = append(outages, o)
	}
	recoveries := make([]Recovery, len(c.recoveries))
	copy(recoveries, c.recoveries)
	return Stats{
		UpTime:                 c.upTime,
		DownTime:               c.downTime,
		Outages:                outages,
		Recoveries:             recoveries,
		RequestsServed:         c.opts.RequestRatePerSecond * c.upTime.Seconds(),
		RequestsFailed:         c.opts.RequestRatePerSecond * c.downTime.Seconds(),
		SessionFailovers:       c.sessionFailovers,
		Partitions:             c.partitions,
		SessionRecoverySeconds: c.sessionRecovery,
	}
}
