package testbed

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/jsas"
)

// Common errors.
var (
	// ErrBadTarget is reported when a fault injection names a nonexistent
	// or already-down component.
	ErrBadTarget = errors.New("testbed: invalid injection target")
)

// Component identifies the tier a record refers to.
type Component int

// Component values.
const (
	ComponentAS Component = iota + 1
	ComponentHADB
)

func (c Component) String() string {
	switch c {
	case ComponentAS:
		return "AS"
	case ComponentHADB:
		return "HADB"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// FailureKind classifies a component failure, mirroring the model's
// failure classes.
type FailureKind int

// FailureKind values.
const (
	// FailureProcess is a restartable software failure (AS or HADB
	// process death).
	FailureProcess FailureKind = iota + 1
	// FailureOS is an operating-system failure requiring a reboot.
	FailureOS
	// FailureHW is a permanent hardware failure requiring physical repair
	// (and, for HADB, spare-node data reconstruction).
	FailureHW
)

func (k FailureKind) String() string {
	switch k {
	case FailureProcess:
		return "process"
	case FailureOS:
		return "os"
	case FailureHW:
		return "hw"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Recovery records one observed component recovery.
type Recovery struct {
	Component Component
	Kind      FailureKind
	// Start is the virtual time the failure occurred.
	Start time.Duration
	// Duration is the time from failure to full reinstatement (including
	// load-balancer detection for AS instances).
	Duration time.Duration
	// Injected marks fault-injection (vs organic) failures.
	Injected bool
	// Success is false when the recovery escalated to a system-level
	// outage (imperfect recovery / double failure).
	Success bool
}

// Outage records one system-level unavailability interval.
type Outage struct {
	Start, End time.Duration
	// Cause names the tier whose failure made the system unavailable.
	Cause Component
}

// Duration returns the outage length.
func (o Outage) Duration() time.Duration { return o.End - o.Start }

// Options configures a simulated cluster.
type Options struct {
	// Config is the deployment shape (instances, pairs, spares).
	Config jsas.Config
	// Params supplies the ground-truth failure rates (per year) and the
	// FIR used to decide imperfect recoveries. Recovery *durations* come
	// from Timing, not Params.
	Params jsas.Params
	// Timing is the measured-truth recovery behavior; zero value means
	// DefaultTiming.
	Timing *Timing
	// Seed makes the run reproducible.
	Seed int64
	// OrganicFailures enables random failures at the Params rates. Off,
	// the cluster only fails under explicit injection — the
	// fault-injection campaign mode.
	OrganicFailures bool
	// Maintenance enables scheduled HADB maintenance events.
	Maintenance bool
	// RequestRatePerSecond is the offered load used for request/session
	// accounting (paper: ~11.6 req/s ≈ 7M requests per 7-day run).
	RequestRatePerSecond float64
	// SessionsPerInstance is the number of live sessions an AS instance
	// carries (used for failover accounting; paper: up to 10,000).
	SessionsPerInstance int
	// Observer, if set, receives trace events as the simulation runs.
	Observer Observer
}

// Cluster is a simulated JSAS EE7 deployment.
type Cluster struct {
	sim    *des.Sim
	cfg    jsas.Config
	params jsas.Params
	timing Timing
	opts   Options

	as    []*asInstance
	pairs []*hadbPair
	// spares is the pool of ready spare nodes.
	spares int

	// Availability bookkeeping.
	systemUp   bool
	lastChange time.Duration
	upTime     time.Duration
	downTime   time.Duration
	openOutage *Outage
	outages    []Outage
	recoveries []Recovery

	// Workload accounting.
	requestsServed   float64
	requestsFailed   float64
	sessionFailovers int
	// sessionRecovery accumulates session-seconds of elevated response
	// time from failovers (the paper's "session recovery time").
	sessionRecovery float64
}

// asInstance is one Application Server instance.
type asInstance struct {
	id      int
	up      bool
	version uint64 // invalidates stale failure timers
	// pendingKind is the failure class being recovered from.
	pendingKind FailureKind
	failedAt    time.Duration
	injected    bool
}

// hadbNode is one HADB node slot within a pair.
type hadbNode struct {
	active   bool
	version  uint64
	failedAt time.Duration
	kind     FailureKind
	injected bool
}

// hadbPair is a mirrored DRU pair.
type hadbPair struct {
	id    int
	nodes [2]*hadbNode
	// down marks a catastrophic pair failure awaiting operator restore.
	down   bool
	downAt time.Duration
	// maintenance marks a scheduled switchover in progress.
	maintenance bool
}

func (p *hadbPair) activeCount() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.active {
			n++
		}
	}
	return n
}

// degraded reports whether only one node is serving (recovery or
// maintenance in progress).
func (p *hadbPair) degraded() bool { return !p.down && p.activeCount() < 2 }

// New constructs a cluster.
func New(opts Options) (*Cluster, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	timing := DefaultTiming()
	if opts.Timing != nil {
		timing = *opts.Timing
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	if opts.RequestRatePerSecond < 0 || opts.SessionsPerInstance < 0 {
		return nil, &ConfigError{Field: "negative workload settings"}
	}
	c := &Cluster{
		sim:      des.New(opts.Seed),
		cfg:      opts.Config,
		params:   opts.Params,
		timing:   timing,
		opts:     opts,
		spares:   opts.Config.HADBSpares,
		systemUp: true,
	}
	for i := 0; i < opts.Config.ASInstances; i++ {
		c.as = append(c.as, &asInstance{id: i, up: true})
	}
	for i := 0; i < opts.Config.HADBPairs; i++ {
		c.pairs = append(c.pairs, &hadbPair{
			id:    i,
			nodes: [2]*hadbNode{{active: true}, {active: true}},
		})
	}
	if opts.OrganicFailures {
		for _, inst := range c.as {
			c.scheduleASFailure(inst)
		}
		for _, p := range c.pairs {
			for slot := range p.nodes {
				c.scheduleHADBFailure(p, slot)
			}
		}
	}
	if opts.Maintenance {
		for _, p := range c.pairs {
			c.scheduleMaintenance(p)
		}
	}
	return c, nil
}

// Sim exposes the underlying simulator (advanced use: custom event
// scripting in tests and campaigns).
func (c *Cluster) Sim() *des.Sim { return c.sim }

// Run advances the cluster to the given virtual time.
func (c *Cluster) Run(until time.Duration) error {
	before := c.sim.Processed()
	err := c.sim.Run(until)
	obsSimEvents.Add(int64(c.sim.Processed() - before))
	if err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	c.accountInterval()
	return nil
}

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration { return c.sim.Now() }

// draw samples a duration from a range.
func (c *Cluster) draw(r DurationRange) time.Duration {
	return c.sim.Uniform(r.Min, r.Max)
}

// upASCount returns the number of serving AS instances.
func (c *Cluster) upASCount() int {
	n := 0
	for _, inst := range c.as {
		if inst.up {
			n++
		}
	}
	return n
}

// systemIsUp evaluates the availability predicate: at least one AS
// instance serving and every HADB pair able to persist session state.
func (c *Cluster) systemIsUp() bool {
	if c.upASCount() == 0 {
		return false
	}
	for _, p := range c.pairs {
		if p.down || p.activeCount() == 0 {
			return false
		}
	}
	return true
}

// accountInterval charges the elapsed time since the last state change to
// up or down time and to the request counters.
func (c *Cluster) accountInterval() {
	now := c.sim.Now()
	dt := now - c.lastChange
	if dt <= 0 {
		c.lastChange = now
		return
	}
	if c.systemUp {
		c.upTime += dt
		c.requestsServed += c.opts.RequestRatePerSecond * dt.Seconds()
	} else {
		c.downTime += dt
		c.requestsFailed += c.opts.RequestRatePerSecond * dt.Seconds()
	}
	c.lastChange = now
}

// stateChanged re-evaluates the system predicate after any component
// event, closing/opening outage records as needed. cause attributes a new
// outage to the tier that triggered it.
func (c *Cluster) stateChanged(cause Component) {
	c.accountInterval()
	up := c.systemIsUp()
	if up == c.systemUp {
		return
	}
	c.systemUp = up
	now := c.sim.Now()
	if !up {
		c.openOutage = &Outage{Start: now, Cause: cause}
		c.emit(Event{Type: EventOutageStart, Component: cause, Target: "system"})
		return
	}
	if c.openOutage != nil {
		c.openOutage.End = now
		c.outages = append(c.outages, *c.openOutage)
		c.openOutage = nil
		c.emit(Event{Type: EventOutageEnd, Component: cause, Target: "system"})
	}
}

// Stats is a snapshot of the cluster's accumulated measurements.
type Stats struct {
	UpTime, DownTime time.Duration
	Outages          []Outage
	Recoveries       []Recovery
	RequestsServed   float64
	RequestsFailed   float64
	SessionFailovers int
	// SessionRecoverySeconds is the cumulative session-seconds of
	// elevated response time caused by failovers: each migrated session
	// pays one session-recovery interval on its next request.
	SessionRecoverySeconds float64
}

// Availability returns observed uptime fraction (1 if no time elapsed).
func (s Stats) Availability() float64 {
	total := s.UpTime + s.DownTime
	if total == 0 {
		return 1
	}
	return float64(s.UpTime) / float64(total)
}

// RecoveryDurations returns the observed recovery durations filtered by
// component and kind.
func (s Stats) RecoveryDurations(comp Component, kind FailureKind) []time.Duration {
	var out []time.Duration
	for _, r := range s.Recoveries {
		if r.Component == comp && r.Kind == kind && r.Success {
			out = append(out, r.Duration)
		}
	}
	return out
}

// Stats returns a copy of the current measurements.
func (c *Cluster) Stats() Stats {
	c.accountInterval()
	outages := make([]Outage, len(c.outages))
	copy(outages, c.outages)
	if c.openOutage != nil {
		o := *c.openOutage
		o.End = c.sim.Now()
		outages = append(outages, o)
	}
	recoveries := make([]Recovery, len(c.recoveries))
	copy(recoveries, c.recoveries)
	return Stats{
		UpTime:                 c.upTime,
		DownTime:               c.downTime,
		Outages:                outages,
		Recoveries:             recoveries,
		RequestsServed:         c.requestsServed,
		RequestsFailed:         c.requestsFailed,
		SessionFailovers:       c.sessionFailovers,
		SessionRecoverySeconds: c.sessionRecovery,
	}
}
