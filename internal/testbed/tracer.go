package testbed

import (
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Tracer converts cluster Observer events into flight-recorder spans: a
// component failure becomes a span from the failure to full reinstatement
// (with restore/reinstate stage children for AS instances), a system
// outage becomes a span on the "system" track, and spare repairs,
// maintenance windows, and catastrophic pair losses become spans on their
// own tracks. Wire its Observe method as (or from) the cluster Observer.
//
// All span timestamps are taken from the events' virtual times, so the
// trace is in sim-time and two same-seed runs produce byte-identical JSONL
// streams (every close-many operation iterates targets in sorted order —
// map iteration never reaches the recorder).
type Tracer struct {
	rec    *trace.Recorder
	parent *trace.Active

	failures map[string]*trace.Active // target → open failure span
	stages   map[string]*trace.Active // target → open stage span
	spares   map[string]*trace.Active // target → open spare-repair span
	maint    map[string]*trace.Active // target → open maintenance span
	pairs    map[string]*trace.Active // pair target → open pair-down span
	outage   *trace.Active
	// domain is the open common-cause burst span: member failures
	// emitted during the burst parent to it instead of t.parent.
	domain *trace.Active
	// partition is the open network-partition span.
	partition *trace.Active
}

// NewTracer creates a tracer recording into rec, parenting new spans to
// parent (typically the campaign/run root span; may be nil).
func NewTracer(rec *trace.Recorder, parent *trace.Active) *Tracer {
	return &Tracer{
		rec:      rec,
		parent:   parent,
		failures: map[string]*trace.Active{},
		stages:   map[string]*trace.Active{},
		spares:   map[string]*trace.Active{},
		maint:    map[string]*trace.Active{},
		pairs:    map[string]*trace.Active{},
	}
}

// SetParent switches the span new events are parented to — campaigns call
// this with each injection span, so the component/outage spans an
// injection causes hang off it in the trace tree.
func (t *Tracer) SetParent(parent *trace.Active) { t.parent = parent }

// Observe is the cluster Observer hook.
func (t *Tracer) Observe(e Event) {
	target := e.Target
	switch e.Type {
	case EventFailure:
		parent := t.parent
		if t.domain != nil {
			parent = t.domain
		}
		sp := t.rec.StartAt(trace.SpanFailure, e.Time, parent,
			trace.String(trace.AttrTrack, target),
			trace.String(trace.AttrComponent, e.Component.String()),
			trace.String(trace.AttrTarget, target),
			trace.String(trace.AttrKind, e.Kind.String()),
			trace.Bool(trace.AttrInjected, e.Injected))
		t.failures[target] = sp
		if e.Component == ComponentAS {
			t.stages[target] = t.rec.StartAt(trace.SpanRestore, e.Time, sp,
				trace.String(trace.AttrTrack, target),
				trace.String(trace.AttrKind, e.Kind.String()))
		}
	case EventRepairDone:
		if st := t.stages[target]; st != nil {
			st.EndAt(e.Time)
			delete(t.stages, target)
		}
		if sp := t.failures[target]; sp != nil {
			t.stages[target] = t.rec.StartAt(trace.SpanReinstate, e.Time, sp,
				trace.String(trace.AttrTrack, target))
		}
	case EventRecovery:
		if target == "as-all" {
			// Operator restore after a total AS outage reinstates every
			// instance at once; close all pending AS spans.
			t.closeComponent(ComponentAS, e.Time)
			return
		}
		if st := t.stages[target]; st != nil {
			st.EndAt(e.Time)
			delete(t.stages, target)
		}
		if sp := t.failures[target]; sp != nil {
			sp.EndAt(e.Time)
			delete(t.failures, target)
		}
	case EventOutageStart:
		t.outage = t.rec.StartAt(trace.SpanOutage, e.Time, t.parent,
			trace.String(trace.AttrTrack, "system"),
			trace.String(trace.AttrCause, e.Component.String()))
		if e.Class != CauseIndependent {
			t.outage.Attr(trace.String(trace.AttrClass, e.Class.String()))
		}
	case EventOutageEnd:
		t.outage.EndAt(e.Time)
		t.outage = nil
	case EventSpareConsumed:
		t.spares[target] = t.rec.StartAt(trace.SpanSpare, e.Time, t.parent,
			trace.String(trace.AttrTrack, "spare:"+target),
			trace.String(trace.AttrTarget, target))
	case EventSpareReturned:
		if sp := t.spares[target]; sp != nil {
			sp.EndAt(e.Time)
			delete(t.spares, target)
		}
	case EventMaintenanceStart:
		t.maint[target] = t.rec.StartAt(trace.SpanMaint, e.Time, t.parent,
			trace.String(trace.AttrTrack, target),
			trace.String(trace.AttrTarget, target))
	case EventMaintenanceEnd:
		if sp := t.maint[target]; sp != nil {
			sp.EndAt(e.Time)
			delete(t.maint, target)
		}
	case EventPairDown:
		t.pairs[target] = t.rec.StartAt(trace.SpanPairDown, e.Time, t.parent,
			trace.String(trace.AttrTrack, target),
			trace.String(trace.AttrTarget, target),
			trace.String(trace.AttrComponent, e.Component.String()),
			trace.String(trace.AttrKind, e.Kind.String()),
			trace.Bool(trace.AttrInjected, e.Injected))
		// The pair's node recoveries are escalated to the operator
		// restore; mark their failure spans.
		for _, node := range t.sortedTargets(t.failures, target+"/") {
			t.failures[node].Attr(trace.Bool(trace.AttrEscalated, true))
		}
	case EventPairRestore:
		if sp := t.pairs[target]; sp != nil {
			sp.EndAt(e.Time)
			delete(t.pairs, target)
		}
		// Operator restore reinstates both nodes together.
		for _, node := range t.sortedTargets(t.failures, target+"/") {
			t.failures[node].EndAt(e.Time)
			delete(t.failures, node)
		}
	case EventDomainFault:
		t.domain = t.rec.StartAt(trace.SpanDomain, e.Time, t.parent,
			trace.String(trace.AttrTrack, target),
			trace.String(trace.AttrDomain, strings.TrimPrefix(target, "domain:")),
			trace.String(trace.AttrKind, e.Kind.String()),
			trace.String(trace.AttrClass, e.Class.String()))
	case EventDomainFaultDone:
		if t.domain != nil {
			// The burst span is instantaneous — it marks the shared cause;
			// the member failure spans it parents carry the recoveries.
			t.domain.Attr(trace.Int(trace.AttrMembers, int64(e.Count)))
			t.domain.EndAt(e.Time)
			t.domain = nil
		}
	case EventPartitionStart:
		t.partition = t.rec.StartAt(trace.SpanPartition, e.Time, t.parent,
			trace.String(trace.AttrTrack, target),
			trace.String(trace.AttrClass, e.Class.String()),
			trace.Int(trace.AttrMembers, int64(e.Count)))
	case EventPartitionHeal:
		if t.partition != nil {
			t.partition.EndAt(e.Time)
			t.partition = nil
		}
	}
}

// closeComponent ends every pending failure/stage span of one tier, in
// sorted target order.
func (t *Tracer) closeComponent(c Component, at time.Duration) {
	prefix := strings.ToLower(c.String()) + "-"
	for _, target := range t.sortedTargets(t.stages, prefix) {
		t.stages[target].EndAt(at)
		delete(t.stages, target)
	}
	for _, target := range t.sortedTargets(t.failures, prefix) {
		t.failures[target].EndAt(at)
		delete(t.failures, target)
	}
}

// sortedTargets returns the map keys with the given prefix, sorted — the
// deterministic iteration order every close-many path must use.
func (t *Tracer) sortedTargets(m map[string]*trace.Active, prefix string) []string {
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Close force-ends every span still open (in sorted order), marking them
// Open. Call when the run stops; the close time should be the cluster's
// final virtual time so totals line up with Stats().
func (t *Tracer) Close(at time.Duration) {
	for _, m := range []map[string]*trace.Active{t.stages, t.failures, t.spares, t.maint, t.pairs} {
		for _, target := range t.sortedTargets(m, "") {
			m[target].EndOpenAt(at)
			delete(m, target)
		}
	}
	if t.outage != nil {
		t.outage.EndOpenAt(at)
		t.outage = nil
	}
	if t.domain != nil {
		t.domain.EndOpenAt(at)
		t.domain = nil
	}
	if t.partition != nil {
		t.partition.EndOpenAt(at)
		t.partition = nil
	}
}
