package testbed

// Merge pools another cluster's measurements into a copy of s, returning
// the combined Stats. Replicated campaigns and longevity series use it to
// aggregate per-replica accounting into one report: durations, request
// counters, and failover totals add; outage and recovery records
// concatenate in the order given (callers merge replicas by ascending
// replica index, keeping the result deterministic).
//
// The merged Outages list interleaves independent virtual timelines, so
// time-ordered analyses of a single run — AvailabilityCI's renewal cycles
// in particular — are only meaningful on per-replica Stats, not on a
// merged one. Ratio quantities (Availability) and totals remain exact.
func (s Stats) Merge(o Stats) Stats {
	merged := Stats{
		UpTime:                 s.UpTime + o.UpTime,
		DownTime:               s.DownTime + o.DownTime,
		RequestsServed:         s.RequestsServed + o.RequestsServed,
		RequestsFailed:         s.RequestsFailed + o.RequestsFailed,
		SessionFailovers:       s.SessionFailovers + o.SessionFailovers,
		Partitions:             s.Partitions + o.Partitions,
		SessionRecoverySeconds: s.SessionRecoverySeconds + o.SessionRecoverySeconds,
	}
	merged.Outages = make([]Outage, 0, len(s.Outages)+len(o.Outages))
	merged.Outages = append(append(merged.Outages, s.Outages...), o.Outages...)
	merged.Recoveries = make([]Recovery, 0, len(s.Recoveries)+len(o.Recoveries))
	merged.Recoveries = append(append(merged.Recoveries, s.Recoveries...), o.Recoveries...)
	return merged
}
