package testbed

import (
	"testing"
	"time"

	"repro/internal/jsas"
	"repro/internal/obs"
)

// TestClusterReportsObsMetrics drives a short fault-injection scenario
// and checks that the testbed's counters in the default registry advance:
// kernel events, injections, failures, recoveries, and session failovers.
func TestClusterReportsObsMetrics(t *testing.T) {
	events := obsSimEvents.Value()
	injected := obsInjected.Value()
	failovers := obsFailovers.Value()
	failures := obs.C("testbed_failures_total", "", `component="AS"`, `kind="process"`).Value()
	recoveries := obs.C("testbed_recoveries_total", "", `component="AS"`).Value()

	c, err := New(Options{
		Config:              jsas.Config1,
		Params:              jsas.DefaultParams(),
		Seed:                11,
		SessionsPerInstance: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectAS(0, FaultProcessKill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if len(st.Recoveries) == 0 {
		t.Fatal("no recovery observed; scenario too short")
	}

	if got := obsSimEvents.Value(); got <= events {
		t.Errorf("testbed_events_total did not advance (%d -> %d)", events, got)
	}
	if got := obsInjected.Value(); got != injected+1 {
		t.Errorf("testbed_injections_total advanced by %d, want 1", got-injected)
	}
	if got := obsFailovers.Value(); got != failovers+500 {
		t.Errorf("testbed_session_failovers_total advanced by %d, want 500", got-failovers)
	}
	if got := obs.C("testbed_failures_total", "", `component="AS"`, `kind="process"`).Value(); got != failures+1 {
		t.Errorf("testbed_failures_total{AS,process} advanced by %d, want 1", got-failures)
	}
	if got := obs.C("testbed_recoveries_total", "", `component="AS"`).Value(); got != recoveries+1 {
		t.Errorf("testbed_recoveries_total{AS} advanced by %d, want 1", got-recoveries)
	}
}
