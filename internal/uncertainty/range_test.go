package uncertainty

import (
	"errors"
	"math"
	"testing"
)

func TestRangeValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name    string
		r       Range
		wantErr bool
	}{
		{"ok", Range{Name: "p", Low: 0, High: 1}, false},
		{"ok-degenerate", Range{Name: "p", Low: 1, High: 1}, false},
		{"unnamed", Range{Low: 0, High: 1}, true},
		{"inverted", Range{Name: "p", Low: 2, High: 1}, true},
		// NaN compares false against everything, so before the finiteness
		// check these slipped past the low <= high test.
		{"nan-low", Range{Name: "p", Low: nan, High: 1}, true},
		{"nan-high", Range{Name: "p", Low: 0, High: nan}, true},
		{"nan-both", Range{Name: "p", Low: nan, High: nan}, true},
		{"inf-low", Range{Name: "p", Low: -inf, High: 1}, true},
		{"inf-high", Range{Name: "p", Low: 0, High: inf}, true},
		{"inf-both", Range{Name: "p", Low: -inf, High: inf}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.r.Validate()
			if tc.wantErr {
				if !errors.Is(err, ErrBadAnalysis) {
					t.Fatalf("err = %v, want ErrBadAnalysis", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestRunRejectsNonFiniteRange(t *testing.T) {
	solve := func(map[string]float64) (float64, error) { return 0, nil }
	_, err := Run([]Range{{Name: "p", Low: math.NaN(), High: 1}}, solve, Options{Samples: 2})
	if !errors.Is(err, ErrBadAnalysis) {
		t.Fatalf("err = %v, want ErrBadAnalysis", err)
	}
}
