package uncertainty

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// newTestResult builds a Result shell with n pre-drawn dummy assignments,
// letting solveAll be exercised directly (Run discards the Result on
// failure, but the diagnostics and obs counters must still be recorded
// accurately for failing runs).
func newTestResult(n int) *Result {
	res := &Result{
		Samples:   make([]Sample, n),
		Downtimes: make([]float64, n),
		CIs:       map[float64]stats.Interval{},
	}
	for i := range res.Samples {
		res.Samples[i] = Sample{Assignment: map[string]float64{"x": float64(i)}}
	}
	return res
}

// TestFailureAccountingSeparatesSolvedFromFailed is the regression test
// for the diagnostics bug where failed solves were counted as "solved" and
// their latencies folded into the min/mean/max summary: a run with
// failures must report successes and failures separately.
func TestFailureAccountingSeparatesSolvedFromFailed(t *testing.T) {
	t.Parallel()
	res := newTestResult(10)
	okBefore := obs.C("uncertainty_samples_solved_total", "").Value()
	failBefore := obs.C("uncertainty_sample_failures_total", "").Value()
	// Fail samples 7 and up. At parallelism 1 the pool drains after the
	// failure at index 7: samples 0–6 succeed, 7 fails, 8–9 are skipped.
	solve := func(a map[string]float64) (float64, error) {
		if a["x"] >= 7 {
			return 0, fmt.Errorf("boom at %g", a["x"])
		}
		return a["x"], nil
	}
	err := solveAll(context.Background(), res, solve, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "sample 7") {
		t.Fatalf("err = %v, want the failure at sample 7", err)
	}
	d := res.Diag
	if d.SamplesSolved != 7 {
		t.Errorf("SamplesSolved = %d, want 7 (successes only)", d.SamplesSolved)
	}
	if d.SamplesFailed != 1 {
		t.Errorf("SamplesFailed = %d, want 1 (samples past the failure are skipped, not failed)", d.SamplesFailed)
	}
	if d.MinSolve > d.MeanSolve || d.MeanSolve > d.MaxSolve {
		t.Errorf("latency ordering violated: %+v", d)
	}
	if d.SolveTotal <= 0 {
		t.Errorf("SolveTotal = %v, want > 0 (total busy time incl. failures)", d.SolveTotal)
	}
	if !strings.Contains(d.String(), "failed=1") {
		t.Errorf("diagnostics string %q does not report failures", d.String())
	}
	if got := obs.C("uncertainty_samples_solved_total", "").Value(); got != okBefore+7 {
		t.Errorf("solved counter advanced by %d, want 7", got-okBefore)
	}
	if got := obs.C("uncertainty_sample_failures_total", "").Value(); got != failBefore+1 {
		t.Errorf("failure counter advanced by %d, want 1", got-failBefore)
	}
}

// TestFailureAccountingCleanRun checks a fully successful run reports zero
// failures and omits the failed= clause from the summary line.
func TestFailureAccountingCleanRun(t *testing.T) {
	t.Parallel()
	res := newTestResult(20)
	if err := solveAll(context.Background(), res, func(a map[string]float64) (float64, error) { return a["x"], nil }, 4, nil); err != nil {
		t.Fatal(err)
	}
	d := res.Diag
	if d.SamplesSolved != 20 || d.SamplesFailed != 0 {
		t.Errorf("solved/failed = %d/%d, want 20/0", d.SamplesSolved, d.SamplesFailed)
	}
	if strings.Contains(d.String(), "failed=") {
		t.Errorf("clean-run diagnostics %q mention failures", d.String())
	}
}
