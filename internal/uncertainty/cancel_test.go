package uncertainty

import (
	"context"
	"errors"
	"testing"
)

// TestRunCtxCanceled: a canceled analysis returns no Result — a partial
// Monte-Carlo sample would silently bias the statistics — and the error
// reports the cancellation.
func TestRunCtxCanceled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, []Range{{Name: "x", Low: 0, High: 1}}, sumSolver, Options{Samples: 100})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled run returned a partial Result; want nil (bias guard)")
	}
}

// TestRunCtxCanceledMidRun: cancellation raised from inside a sample
// solve stops the analysis without a Result.
func TestRunCtxCanceledMidRun(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	solve := func(a map[string]float64) (float64, error) {
		n++
		if n == 10 {
			cancel()
		}
		return a["x"], nil
	}
	res, err := RunCtx(ctx, []Range{{Name: "x", Low: 0, High: 1}}, solve, Options{Samples: 5000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("mid-run cancellation returned a partial Result; want nil")
	}
}

// TestRunCtxLiveMatchesRun: threading a live context changes nothing —
// the same seed yields the same statistics as the background-context API.
func TestRunCtxLiveMatchesRun(t *testing.T) {
	t.Parallel()
	ranges := []Range{{Name: "x", Low: 0, High: 1}}
	opts := Options{Samples: 200, Seed: 7}
	a, err := Run(ranges, sumSolver, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), ranges, sumSolver, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Mean != b.Summary.Mean || a.Summary.N != b.Summary.N {
		t.Errorf("RunCtx(background) diverged from Run: %+v vs %+v", b.Summary, a.Summary)
	}
}
