package uncertainty

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// sumSolver returns downtime = sum of all sampled parameters.
func sumSolver(assignment map[string]float64) (float64, error) {
	var s float64
	for _, v := range assignment {
		s += v
	}
	return s, nil
}

func testRanges() []Range {
	return []Range{
		{Name: "a", Low: 0, High: 1},
		{Name: "b", Low: 10, High: 20},
	}
}

func TestRunBasic(t *testing.T) {
	t.Parallel()
	res, err := Run(testRanges(), sumSolver, Options{Samples: 500, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Samples) != 500 || len(res.Downtimes) != 500 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// Sum of uniforms on [0,1]+[10,20]: mean 15.5, range [10,21].
	if res.Summary.Mean < 15 || res.Summary.Mean > 16 {
		t.Errorf("mean = %v, want ~15.5", res.Summary.Mean)
	}
	if res.Summary.Min < 10 || res.Summary.Max > 21 {
		t.Errorf("range = [%v, %v], want within [10, 21]", res.Summary.Min, res.Summary.Max)
	}
	// Default CIs present.
	if _, ok := res.CIs[0.80]; !ok {
		t.Error("missing 80% CI")
	}
	if _, ok := res.CIs[0.90]; !ok {
		t.Error("missing 90% CI")
	}
	ci80, ci90 := res.CIs[0.80], res.CIs[0.90]
	if ci90.Low > ci80.Low || ci90.High < ci80.High {
		t.Errorf("90%% CI %v should contain 80%% CI %v", ci90, ci80)
	}
	// Assignments respect ranges.
	for _, s := range res.Samples {
		if s.Assignment["a"] < 0 || s.Assignment["a"] > 1 {
			t.Fatalf("a out of range: %v", s.Assignment["a"])
		}
		if s.Assignment["b"] < 10 || s.Assignment["b"] > 20 {
			t.Fatalf("b out of range: %v", s.Assignment["b"])
		}
	}
}

func TestRunReproducible(t *testing.T) {
	t.Parallel()
	r1, err := Run(testRanges(), sumSolver, Options{Samples: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testRanges(), sumSolver, Options{Samples: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Downtimes {
		if r1.Downtimes[i] != r2.Downtimes[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	r3, err := Run(testRanges(), sumSolver, Options{Samples: 100, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Downtimes {
		if r1.Downtimes[i] != r3.Downtimes[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if _, err := Run(testRanges(), nil, Options{}); !errors.Is(err, ErrBadAnalysis) {
		t.Errorf("nil solver: err = %v", err)
	}
	if _, err := Run(nil, sumSolver, Options{}); !errors.Is(err, ErrBadAnalysis) {
		t.Errorf("no ranges: err = %v", err)
	}
	if _, err := Run([]Range{{Name: "", Low: 0, High: 1}}, sumSolver, Options{}); !errors.Is(err, ErrBadAnalysis) {
		t.Errorf("unnamed: err = %v", err)
	}
	if _, err := Run([]Range{{Name: "x", Low: 2, High: 1}}, sumSolver, Options{}); !errors.Is(err, ErrBadAnalysis) {
		t.Errorf("inverted: err = %v", err)
	}
	dup := []Range{{Name: "x", Low: 0, High: 1}, {Name: "x", Low: 0, High: 1}}
	if _, err := Run(dup, sumSolver, Options{}); !errors.Is(err, ErrBadAnalysis) {
		t.Errorf("duplicate: err = %v", err)
	}
	failing := func(map[string]float64) (float64, error) { return 0, errors.New("boom") }
	if _, err := Run(testRanges(), failing, Options{Samples: 3}); err == nil {
		t.Error("solver failure should propagate")
	}
	if _, err := Run(testRanges(), sumSolver, Options{Sampler: Sampler(99)}); !errors.Is(err, ErrBadAnalysis) {
		t.Errorf("unknown sampler: err = %v", err)
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	t.Parallel()
	const n = 100
	res, err := Run([]Range{{Name: "x", Low: 0, High: 1}}, sumSolver, Options{
		Samples: n, Seed: 7, Sampler: SamplerLatinHypercube,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Exactly one sample per 1/n stratum.
	seen := make([]bool, n)
	for _, d := range res.Downtimes {
		bin := int(d * n)
		if bin == n {
			bin = n - 1
		}
		if seen[bin] {
			t.Fatalf("stratum %d sampled twice", bin)
		}
		seen[bin] = true
	}
}

func TestLatinHypercubeLowerVariance(t *testing.T) {
	t.Parallel()
	// The LHS estimate of the mean of a monotone function has lower
	// variance than plain uniform sampling. Compare spread of mean
	// estimates across seeds.
	ranges := []Range{{Name: "x", Low: 0, High: 1}, {Name: "y", Low: 0, High: 1}}
	varOf := func(s Sampler) float64 {
		var means []float64
		for seed := int64(0); seed < 20; seed++ {
			res, err := Run(ranges, sumSolver, Options{Samples: 50, Seed: seed, Sampler: s})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			means = append(means, res.Summary.Mean)
		}
		var m, v float64
		for _, x := range means {
			m += x
		}
		m /= float64(len(means))
		for _, x := range means {
			v += (x - m) * (x - m)
		}
		return v / float64(len(means)-1)
	}
	vu := varOf(SamplerUniform)
	vl := varOf(SamplerLatinHypercube)
	if vl >= vu {
		t.Errorf("LHS variance %g should be below uniform %g", vl, vu)
	}
}

func TestFractionBelow(t *testing.T) {
	t.Parallel()
	res := &Result{Downtimes: []float64{1, 2, 3, 4}}
	if got := res.FractionBelow(2.5); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
}

func TestSortedConfidences(t *testing.T) {
	t.Parallel()
	res, err := Run(testRanges(), sumSolver, Options{Samples: 10, Confidences: []float64{0.9, 0.5, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.SortedConfidences()
	if len(cs) != 3 || cs[0] != 0.5 || cs[1] != 0.8 || cs[2] != 0.9 {
		t.Errorf("SortedConfidences = %v", cs)
	}
}

func TestSamplerString(t *testing.T) {
	t.Parallel()
	if SamplerUniform.String() != "uniform" {
		t.Error("SamplerUniform.String()")
	}
	if SamplerLatinHypercube.String() != "latin-hypercube" {
		t.Error("SamplerLatinHypercube.String()")
	}
	if Sampler(9).String() == "" {
		t.Error("unknown sampler string empty")
	}
}

// TestParallelMatchesSerial: parallelism must not change the result.
func TestParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	serial, err := Run(testRanges(), sumSolver, Options{Samples: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(testRanges(), sumSolver, Options{Samples: 300, Seed: 5, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Downtimes {
		if serial.Downtimes[i] != parallel.Downtimes[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, serial.Downtimes[i], parallel.Downtimes[i])
		}
	}
	if serial.Summary != parallel.Summary {
		t.Errorf("summaries differ: %+v vs %+v", serial.Summary, parallel.Summary)
	}
}

// TestParallelPropagatesError: a solver failure surfaces from the pool.
func TestParallelPropagatesError(t *testing.T) {
	t.Parallel()
	failing := func(a map[string]float64) (float64, error) {
		if a["a"] > 0.5 {
			return 0, errors.New("boom")
		}
		return a["a"], nil
	}
	if _, err := Run(testRanges(), failing, Options{Samples: 200, Seed: 6, Parallelism: 4}); err == nil {
		t.Fatal("parallel run swallowed solver error")
	}
}

// TestParallelismExceedingSamples clamps cleanly.
func TestParallelismExceedingSamples(t *testing.T) {
	t.Parallel()
	res, err := Run(testRanges(), sumSolver, Options{Samples: 3, Seed: 7, Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Downtimes) != 3 {
		t.Errorf("samples = %d", len(res.Downtimes))
	}
}

func TestCorrelationsOnSyntheticData(t *testing.T) {
	t.Parallel()
	// Downtime = a only: correlation with a is 1, with b ~0.
	solver := func(m map[string]float64) (float64, error) { return m["a"], nil }
	res, err := Run(testRanges(), solver, Options{Samples: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	corr := res.Correlations()
	if corr["a"] < 0.999 {
		t.Errorf("corr(a) = %v, want ~1", corr["a"])
	}
	if ab := corr["b"]; ab > 0.15 || ab < -0.15 {
		t.Errorf("corr(b) = %v, want ~0", ab)
	}
	var empty Result
	if empty.Correlations() != nil {
		t.Error("empty result should give nil correlations")
	}
}

// TestParallelErrorIsLowestIndexed is the regression test for the pool's
// error determinism: whichever worker fails first, the error reported is
// from the lowest-indexed failing sample, on every run.
func TestParallelErrorIsLowestIndexed(t *testing.T) {
	t.Parallel()
	for trial := 0; trial < 20; trial++ {
		failing := func(a map[string]float64) (float64, error) {
			// Deterministic per-assignment failure: "a" is uniform on
			// [0,1), so a fixed seed fails the same sample set each run.
			if a["a"] > 0.3 {
				return 0, fmt.Errorf("boom a=%g", a["a"])
			}
			return a["a"], nil
		}
		// Find the expected lowest failing index serially.
		wantErr := ""
		if _, err := Run(testRanges(), failing, Options{Samples: 100, Seed: 42}); err != nil {
			wantErr = err.Error()
		}
		if wantErr == "" {
			t.Fatal("serial run did not fail; bad test setup")
		}
		for _, par := range []int{2, 4, 16} {
			_, err := Run(testRanges(), failing, Options{Samples: 100, Seed: 42, Parallelism: par})
			if err == nil {
				t.Fatalf("parallelism %d: swallowed error", par)
			}
			if err.Error() != wantErr {
				t.Fatalf("parallelism %d trial %d: error %q, want %q", par, trial, err.Error(), wantErr)
			}
		}
	}
}

// TestParallelCancelsPromptly is the regression test for the runaway
// pool: after one sample fails, the other workers must stop instead of
// solving every remaining sample.
func TestParallelCancelsPromptly(t *testing.T) {
	t.Parallel()
	var calls int32
	failing := func(map[string]float64) (float64, error) {
		atomic.AddInt32(&calls, 1)
		return 0, errors.New("boom")
	}
	const n = 2000
	_, err := Run(testRanges(), failing, Options{Samples: n, Seed: 5, Parallelism: 4})
	if err == nil {
		t.Fatal("run swallowed solver error")
	}
	// Sample 0 fails; everything after it should be skipped modulo the
	// handful already in flight. Allow generous slack — the regression
	// being guarded against solved all 2000.
	if got := atomic.LoadInt32(&calls); got > 100 {
		t.Fatalf("pool performed %d solves after a failure at sample 0, want prompt cancellation", got)
	}
	if want := "sample 0: boom"; err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

// TestRunDiagnostics checks the run's performance record.
func TestRunDiagnostics(t *testing.T) {
	t.Parallel()
	res, err := Run(testRanges(), sumSolver, Options{Samples: 300, Seed: 3, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diag
	if d.SamplesSolved != 300 {
		t.Errorf("solved = %d, want 300", d.SamplesSolved)
	}
	if d.Parallelism != 3 {
		t.Errorf("parallelism = %d, want 3", d.Parallelism)
	}
	if d.Wall <= 0 || d.SolveTotal <= 0 {
		t.Errorf("non-positive timings: %+v", d)
	}
	if d.MinSolve > d.MeanSolve || d.MeanSolve > d.MaxSolve {
		t.Errorf("latency ordering violated: %+v", d)
	}
	if d.Utilization <= 0 || d.Utilization > 1.5 {
		t.Errorf("utilization = %g, want (0, ~1]", d.Utilization)
	}
	if d.String() == "" {
		t.Error("empty diagnostics string")
	}
}
