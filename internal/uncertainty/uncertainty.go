// Package uncertainty implements RAScad's Monte-Carlo uncertainty
// analysis: model parameters that cannot be measured accurately (or vary
// across customer sites) are sampled from user-defined ranges, the model
// is solved per sample, and the resulting distribution of yearly downtime
// is summarized with means and percentile confidence intervals (the
// paper's Figures 7 and 8).
package uncertainty

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/progress"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ErrBadAnalysis is reported for invalid analysis specifications.
var ErrBadAnalysis = errors.New("uncertainty: invalid analysis")

// Range is a closed interval a parameter is sampled from.
type Range struct {
	Name      string
	Low, High float64
}

// Validate checks the range: a name and finite, ordered bounds. Non-finite
// bounds are rejected explicitly — NaN compares false against everything,
// so an ordering check alone would accept NaN bounds and poison every
// sampled assignment.
func (r Range) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("unnamed range: %w", ErrBadAnalysis)
	}
	if math.IsNaN(r.Low) || math.IsInf(r.Low, 0) || math.IsNaN(r.High) || math.IsInf(r.High, 0) {
		return fmt.Errorf("range %s: non-finite bounds [%g, %g]: %w", r.Name, r.Low, r.High, ErrBadAnalysis)
	}
	if !(r.Low <= r.High) {
		return fmt.Errorf("range %s: low %g > high %g: %w", r.Name, r.Low, r.High, ErrBadAnalysis)
	}
	return nil
}

// Sampler draws parameter vectors from the ranges.
type Sampler int

// Available samplers.
const (
	// SamplerUniform draws each parameter independently and uniformly —
	// the sampling RAScad's uncertainty analysis performs.
	SamplerUniform Sampler = iota + 1
	// SamplerLatinHypercube stratifies each dimension into N bins and
	// permutes them, giving lower estimator variance at equal cost.
	SamplerLatinHypercube
)

func (s Sampler) String() string {
	switch s {
	case SamplerUniform:
		return "uniform"
	case SamplerLatinHypercube:
		return "latin-hypercube"
	default:
		return fmt.Sprintf("sampler(%d)", int(s))
	}
}

// Solver evaluates the model for one sampled parameter assignment and
// returns the yearly downtime in minutes.
type Solver func(assignment map[string]float64) (downtimeMinutes float64, err error)

// Options configures an analysis run.
type Options struct {
	// Samples is the number of Monte-Carlo samples (paper: 1000).
	Samples int
	// Seed makes the run reproducible.
	Seed int64
	// Sampler selects the sampling scheme; defaults to SamplerUniform.
	Sampler Sampler
	// Confidences lists the central CI masses to report
	// (defaults to 0.80 and 0.90, as in the paper).
	Confidences []float64
	// Parallelism is the number of worker goroutines solving samples
	// (default 1). Results are identical regardless of parallelism: the
	// assignments are drawn up front and outputs keyed by sample index.
	// The solver must be safe for concurrent use (the jsas solvers are).
	Parallelism int
	// Progress, if set, receives one Done() per attempted sample (via the
	// pool's OnTaskDone hook) and an Observe(downtime) per successful
	// solve, so status lines can show the running mean yearly downtime
	// with a CI half-width. nil (the default) costs nothing.
	Progress *progress.Tracker
}

// Sample is one evaluated parameter snapshot.
type Sample struct {
	Assignment map[string]float64
	// DowntimeMinutes is the solved yearly downtime.
	DowntimeMinutes float64
}

// Result summarizes an uncertainty analysis.
type Result struct {
	Samples []Sample
	// Downtimes is the raw downtime vector (minutes/year), in sample order.
	Downtimes []float64
	// Summary holds descriptive statistics of Downtimes.
	Summary stats.Summary
	// CIs maps confidence mass → central percentile interval.
	CIs map[float64]stats.Interval
	// Diag records how the run performed (latency, utilization) for
	// --stats reports; it does not affect the statistical results.
	Diag RunDiagnostics
}

// RunDiagnostics reports the runtime behavior of one analysis.
type RunDiagnostics struct {
	// SamplesSolved is the number of per-sample solves that succeeded.
	// Failed solves are counted in SamplesFailed, not here: mixing them in
	// would inflate the apparent throughput of a failing run and bias the
	// latency summary with error-path timings.
	SamplesSolved int
	// SamplesFailed is the number of per-sample solves that returned an
	// error (0 on a clean run).
	SamplesFailed int
	// Parallelism is the worker count actually used.
	Parallelism int
	// Wall is the end-to-end solve-phase duration.
	Wall time.Duration
	// SolveTotal is the summed duration of all solve attempts, successes
	// and failures alike — the pool's total busy time, which is what
	// Utilization is computed from. With Parallelism 1 it approximates Wall.
	SolveTotal time.Duration
	// MinSolve/MeanSolve/MaxSolve summarize the solve latency of
	// successful samples only.
	MinSolve, MeanSolve, MaxSolve time.Duration
	// Utilization is SolveTotal / (Wall × Parallelism): the fraction of
	// worker-pool capacity spent inside the solver (1 = perfectly busy).
	Utilization float64
}

// String renders a one-line summary for CLI --stats reports.
func (d RunDiagnostics) String() string {
	s := fmt.Sprintf(
		"samples=%d workers=%d wall=%v solve-latency(min/mean/max)=%v/%v/%v utilization=%.1f%%",
		d.SamplesSolved, d.Parallelism, d.Wall.Round(time.Microsecond),
		d.MinSolve.Round(time.Microsecond), d.MeanSolve.Round(time.Microsecond),
		d.MaxSolve.Round(time.Microsecond), d.Utilization*100)
	if d.SamplesFailed > 0 {
		s += fmt.Sprintf(" failed=%d", d.SamplesFailed)
	}
	return s
}

// Monte-Carlo metrics, reported to the default obs registry.
var (
	obsRuns          = obs.C("uncertainty_runs_total", "completed uncertainty analyses")
	obsSamplesSolved = obs.C("uncertainty_samples_solved_total", "per-sample model solves that succeeded")
	obsSampleFailed  = obs.C("uncertainty_sample_failures_total", "per-sample model solves that returned an error")
	obsSampleSeconds = obs.H("uncertainty_sample_solve_seconds", "per-sample solve latency", obs.DurationBuckets)
	obsUtilization   = obs.G("uncertainty_worker_utilization", "solve-time share of worker-pool capacity in the most recent run")
)

// FractionBelow returns the fraction of sampled systems with yearly
// downtime strictly below m minutes (the paper: "over 80% of sampled
// systems have yearly downtime less than 5.25 minutes").
func (r *Result) FractionBelow(m float64) float64 {
	return stats.FractionBelow(r.Downtimes, m)
}

// Run performs the analysis: draw Samples assignments from ranges, solve
// each, and summarize. It is RunCtx with a background context.
func Run(ranges []Range, solve Solver, opts Options) (*Result, error) {
	return RunCtx(context.Background(), ranges, solve, opts)
}

// RunCtx is Run with cancellation: a canceled ctx stops dispatching
// samples within one pool-task granularity and the analysis returns
// ctx.Err() (no Result — a partially solved downtime vector would bias
// every summary statistic, so cancellation discards the run rather than
// reporting misleading numbers).
func RunCtx(ctx context.Context, ranges []Range, solve Solver, opts Options) (*Result, error) {
	if solve == nil {
		return nil, fmt.Errorf("nil solver: %w", ErrBadAnalysis)
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("no parameter ranges: %w", ErrBadAnalysis)
	}
	seen := make(map[string]bool, len(ranges))
	for _, r := range ranges {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate range %q: %w", r.Name, ErrBadAnalysis)
		}
		seen[r.Name] = true
	}
	if opts.Samples <= 0 {
		opts.Samples = 1000
	}
	if opts.Sampler == 0 {
		opts.Sampler = SamplerUniform
	}
	if len(opts.Confidences) == 0 {
		opts.Confidences = []float64{0.80, 0.90}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	unit, err := drawUnitSamples(rng, opts.Sampler, len(ranges), opts.Samples)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Samples:   make([]Sample, opts.Samples),
		Downtimes: make([]float64, opts.Samples),
		CIs:       make(map[float64]stats.Interval, len(opts.Confidences)),
	}
	for i := 0; i < opts.Samples; i++ {
		assignment := make(map[string]float64, len(ranges))
		for j, r := range ranges {
			assignment[r.Name] = r.Low + (r.High-r.Low)*unit[i][j]
		}
		res.Samples[i] = Sample{Assignment: assignment}
	}
	if err := solveAll(ctx, res, solve, opts.Parallelism, opts.Progress); err != nil {
		return nil, err
	}
	res.Summary = stats.Summarize(res.Downtimes)
	for _, c := range opts.Confidences {
		ci, err := stats.PercentileCI(res.Downtimes, c)
		if err != nil {
			return nil, fmt.Errorf("confidence %g: %w", c, err)
		}
		res.CIs[c] = ci
	}
	obsRuns.Inc()
	return res, nil
}

// solveAll evaluates every pre-drawn sample across the shared
// deterministic index-keyed worker pool (one worker for parallelism ≤ 1).
// Outputs are written by index, so the result is identical at any
// parallelism level. On failure the whole pool stops promptly and the
// error returned is the one from the lowest-indexed failing sample among
// those attempted, so the reported error does not depend on goroutine
// scheduling (see internal/pool).
func solveAll(ctx context.Context, res *Result, solve Solver, parallelism int, tracker *progress.Tracker) error {
	n := len(res.Samples)
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > n {
		parallelism = n
	}
	runSpan := trace.Default().Start("uncertainty.run", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.Int("samples", int64(n)),
		trace.Int("parallelism", int64(parallelism)))
	start := time.Now()

	// Latency bookkeeping: per-worker locals merged at the end (a pool
	// worker never runs two samples concurrently, so the slots are
	// race-free). Busy time (SolveTotal) covers every attempt — that is
	// the pool utilization — while the min/mean/max latency summary covers
	// successes only, so a fast-failing error path cannot masquerade as
	// good solve latency.
	var (
		okCount   atomic.Int64
		failCount atomic.Int64
		busy      = make([]time.Duration, parallelism)
		okTime    = make([]time.Duration, parallelism)
		minTime   = make([]time.Duration, parallelism)
		maxTime   = make([]time.Duration, parallelism)
	)
	for w := range minTime {
		minTime[w] = math.MaxInt64
	}

	popts := pool.Options{Workers: parallelism}
	if tracker != nil {
		popts.OnTaskDone = func(int) { tracker.Done() }
	}
	poolErr := pool.Run(ctx, n, popts, func(worker, i int) error {
		sampleTimer := obs.StartTimer(obsSampleSeconds)
		sp := trace.Default().Start("uncertainty.sample", runSpan,
			trace.String(trace.AttrTrack, fmt.Sprintf("worker-%d", worker)),
			trace.Int(trace.AttrIndex, int64(i)))
		d, err := solve(res.Samples[i].Assignment)
		dt := sampleTimer.Stop()
		sp.End()
		busy[worker] += dt
		if err != nil {
			failCount.Add(1)
			obsSampleFailed.Inc()
			return fmt.Errorf("sample %d: %w", i, err)
		}
		okCount.Add(1)
		obsSamplesSolved.Inc()
		okTime[worker] += dt
		if dt < minTime[worker] {
			minTime[worker] = dt
		}
		if dt > maxTime[worker] {
			maxTime[worker] = dt
		}
		res.Samples[i].DowntimeMinutes = d
		res.Downtimes[i] = d
		tracker.Observe(d) // nil-safe no-op when untracked
		return nil
	})

	var (
		aggBusy time.Duration
		aggOK   time.Duration
		aggMin  time.Duration = math.MaxInt64
		aggMax  time.Duration
	)
	for w := 0; w < parallelism; w++ {
		aggBusy += busy[w]
		aggOK += okTime[w]
		if minTime[w] < aggMin {
			aggMin = minTime[w]
		}
		if maxTime[w] > aggMax {
			aggMax = maxTime[w]
		}
	}

	wall := time.Since(start)
	runSpan.Attr(
		trace.Int("solved", okCount.Load()),
		trace.Int("failed", failCount.Load()))
	runSpan.End()
	solved := int(okCount.Load())
	diag := RunDiagnostics{
		SamplesSolved: solved,
		SamplesFailed: int(failCount.Load()),
		Parallelism:   parallelism,
		Wall:          wall,
		SolveTotal:    aggBusy,
		MaxSolve:      aggMax,
	}
	if solved > 0 {
		diag.MinSolve = aggMin
		diag.MeanSolve = aggOK / time.Duration(solved)
	}
	if wall > 0 && parallelism > 0 {
		diag.Utilization = float64(aggBusy) / (float64(wall) * float64(parallelism))
	}
	res.Diag = diag
	obsUtilization.Set(diag.Utilization)

	return poolErr
}

// drawUnitSamples produces samples×dims values in [0,1).
func drawUnitSamples(rng *rand.Rand, s Sampler, dims, samples int) ([][]float64, error) {
	out := make([][]float64, samples)
	for i := range out {
		out[i] = make([]float64, dims)
	}
	switch s {
	case SamplerUniform:
		for i := 0; i < samples; i++ {
			for j := 0; j < dims; j++ {
				out[i][j] = rng.Float64()
			}
		}
	case SamplerLatinHypercube:
		for j := 0; j < dims; j++ {
			perm := rng.Perm(samples)
			for i := 0; i < samples; i++ {
				out[i][j] = (float64(perm[i]) + rng.Float64()) / float64(samples)
			}
		}
	default:
		return nil, fmt.Errorf("unknown sampler %v: %w", s, ErrBadAnalysis)
	}
	return out, nil
}

// SortedConfidences returns the result's CI keys in ascending order —
// convenient for deterministic report rendering.
func (r *Result) SortedConfidences() []float64 {
	out := make([]float64, 0, len(r.CIs))
	for c := range r.CIs {
		out = append(out, c)
	}
	sort.Float64s(out)
	return out
}

// Correlations returns the Spearman rank correlation between each sampled
// parameter and the downtime outcome — a global sensitivity measure drawn
// from the Monte-Carlo sample itself (no extra solves), complementing the
// local one-at-a-time importance analysis.
func (r *Result) Correlations() map[string]float64 {
	if len(r.Samples) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for name := range r.Samples[0].Assignment {
		xs := make([]float64, len(r.Samples))
		for i, s := range r.Samples {
			xs[i] = s.Assignment[name]
		}
		out[name] = stats.SpearmanRank(xs, r.Downtimes)
	}
	return out
}
