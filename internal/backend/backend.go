// Package backend defines the common solver-backend interface the
// engine's availability models are served through. The repo grew up
// around one backend — the CTMC / Markov reward hierarchy (internal/ctmc,
// internal/hier) — whose state spaces explode for k-out-of-n replicated
// services. A second backend (internal/bayes) answers the same question
// ("what is the steady-state availability of this structure?") by exact
// Bayesian-network inference over redundancy structures, reaching
// 100-instance clusters the CTMC cannot.
//
// Every backend implements AvailabilityModel; callers pick a backend by
// Kind (the CLI's -backend flag, the jobs engine's kinds) and consume the
// backend-independent Result.
package backend

import (
	"context"
	"fmt"
)

// Kind names a solver backend.
type Kind string

// The available backends.
const (
	// KindCTMC is the continuous-time Markov chain / Markov reward engine
	// (exact state-space solution; explodes combinatorially on replicated
	// structures).
	KindCTMC Kind = "ctmc"
	// KindBayes is the Bayesian-network engine (exact variable-elimination
	// inference over redundancy structures; linear in replica count for
	// k-out-of-n, but restricted to steady-state availability composition).
	KindBayes Kind = "bayes"
)

// Kinds lists the valid backend names, for flag help and error messages.
const Kinds = "ctmc, bayes"

// ParseKind validates a backend name ("" selects the CTMC default).
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindCTMC:
		return KindCTMC, nil
	case KindBayes:
		return KindBayes, nil
	}
	return "", fmt.Errorf("backend: unknown backend %q; want one of: %s", s, Kinds)
}

// MinutesPerYear converts unavailability to the paper's yearly-downtime
// measure (365 days × 24 h × 60 min), mirroring reward.MinutesPerYear
// without importing the CTMC-side package.
const MinutesPerYear = 365 * 24 * 60

// Result is the backend-independent availability answer.
type Result struct {
	// Backend identifies which engine produced the result.
	Backend Kind
	// Name is the solved model's display name.
	Name string
	// Availability is the steady-state probability the modeled system is up.
	Availability float64
	// YearlyDowntimeMinutes is (1 − Availability) · 525600.
	YearlyDowntimeMinutes float64
	// Size is the solved model's dominant size measure: CTMC states, or
	// Bayesian-network variables (after gate decomposition). Comparing the
	// two for one structure shows why the BN backend scales.
	Size int
}

// AvailabilityModel is the common interface both solver backends expose:
// a named model that can be solved (possibly expensively — construction
// is cheap, Solve does the work) under a cancellable context.
type AvailabilityModel interface {
	// Name returns the model's display name.
	Name() string
	// Kind identifies the backend that will solve the model.
	Kind() Kind
	// Solve computes the steady-state availability measures. It must be
	// safe to call multiple times and from multiple goroutines.
	Solve(ctx context.Context) (*Result, error)
}
