package reward

import (
	"context"

	"repro/internal/backend"
	"repro/internal/ctmc"
)

// CTMCModel adapts a reward Structure to the common
// backend.AvailabilityModel interface, so callers can treat the CTMC
// engine and the Bayesian-network engine (internal/bayes)
// interchangeably and cross-validate one against the other.
type CTMCModel struct {
	name string
	s    *Structure
	opts ctmc.SolveOptions
}

// AsModel wraps a reward structure as a named backend model solved with
// the given options (the per-call context overrides opts.Ctx).
func AsModel(name string, s *Structure, opts ctmc.SolveOptions) *CTMCModel {
	return &CTMCModel{name: name, s: s, opts: opts}
}

// Name returns the model's display name.
func (m *CTMCModel) Name() string { return m.name }

// Kind identifies the solving backend.
func (m *CTMCModel) Kind() backend.Kind { return backend.KindCTMC }

// Structure returns the wrapped reward structure, for callers that need
// the richer CTMC-only measures (MTBF, failure frequency, π).
func (m *CTMCModel) Structure() *Structure { return m.s }

// Solve computes the steady-state availability measures through the
// CTMC engine.
func (m *CTMCModel) Solve(ctx context.Context) (*backend.Result, error) {
	opts := m.opts
	opts.Ctx = ctx
	res, err := m.s.Solve(opts)
	if err != nil {
		return nil, err
	}
	return &backend.Result{
		Backend:               backend.KindCTMC,
		Name:                  m.name,
		Availability:          res.Availability,
		YearlyDowntimeMinutes: res.YearlyDowntimeMinutes,
		Size:                  m.s.Model().NumStates(),
	}, nil
}
