// Package reward adds the Markov reward layer on top of package ctmc:
// reward vectors over states, steady-state expected reward (availability),
// yearly downtime, failure frequency, MTBF, and performability measures.
//
// Conventions follow the paper (DSN'04): a reward rate of 1 marks a working
// state, 0 a failure state; intermediate rewards express degraded
// (performability) states. Yearly downtime uses the paper's 525,600-minute
// year (365 days).
package reward

import (
	"errors"
	"fmt"

	"repro/internal/ctmc"
)

// MinutesPerYear is the paper's yearly-downtime conversion constant
// (365 days × 24 h × 60 min).
const MinutesPerYear = 365 * 24 * 60

// HoursPerYear is the rate-parameter conversion constant the paper uses
// (failure rates are quoted per year, model rates per hour).
const HoursPerYear = 8760

// ErrReward is reported for invalid reward structures.
var ErrReward = errors.New("reward: invalid reward structure")

// Structure assigns a reward rate to every state of a model.
type Structure struct {
	model   *ctmc.Model
	rates   []float64
	upSet   []ctmc.State
	downSet map[ctmc.State]bool
}

// New builds a reward structure. rates must have one entry per model state,
// each in [0, ∞). States with reward 0 are classified as down states.
func New(m *ctmc.Model, rates []float64) (*Structure, error) {
	if m == nil {
		return nil, fmt.Errorf("nil model: %w", ErrReward)
	}
	if len(rates) != m.NumStates() {
		return nil, fmt.Errorf("got %d rates for %d states: %w", len(rates), m.NumStates(), ErrReward)
	}
	s := &Structure{
		model:   m,
		rates:   append([]float64(nil), rates...),
		downSet: make(map[ctmc.State]bool),
	}
	for i, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("state %q has negative reward %g: %w", m.Name(ctmc.State(i)), r, ErrReward)
		}
		if r == 0 {
			s.downSet[ctmc.State(i)] = true
		} else {
			s.upSet = append(s.upSet, ctmc.State(i))
		}
	}
	return s, nil
}

// Binary builds the common 0/1 reward structure from the set of down
// (reward-0) state names.
func Binary(m *ctmc.Model, downNames ...string) (*Structure, error) {
	rates := make([]float64, m.NumStates())
	for i := range rates {
		rates[i] = 1
	}
	for _, name := range downNames {
		s, err := m.StateByName(name)
		if err != nil {
			return nil, fmt.Errorf("down state: %w", err)
		}
		rates[s] = 0
	}
	return New(m, rates)
}

// Model returns the underlying CTMC.
func (s *Structure) Model() *ctmc.Model { return s.model }

// Rate returns the reward rate of state st.
func (s *Structure) Rate(st ctmc.State) float64 { return s.rates[st] }

// DownStates returns the set of reward-0 states.
func (s *Structure) DownStates() map[ctmc.State]bool {
	out := make(map[ctmc.State]bool, len(s.downSet))
	for k, v := range s.downSet {
		out[k] = v
	}
	return out
}

// Result collects the steady-state availability measures of a model.
type Result struct {
	// Availability is the steady-state probability of nonzero reward.
	Availability float64
	// ExpectedReward is Σ π_i·r_i (equals Availability for 0/1 rewards;
	// the performability measure otherwise).
	ExpectedReward float64
	// YearlyDowntimeMinutes is (1 − Availability) · 525600.
	YearlyDowntimeMinutes float64
	// FailureFrequency is the steady-state rate of entering the down set,
	// in events per model time unit (per hour for the paper's models).
	FailureFrequency float64
	// MTBFHours is the mean time between system failures: 1/FailureFrequency
	// (time per failure event, including both up and down time).
	MTBFHours float64
	// MeanDownDurationHours is the mean sojourn per visit to the down set:
	// P(down)/FailureFrequency.
	MeanDownDurationHours float64
	// LambdaEq and MuEq are the two-state equivalent rates used by
	// hierarchical composition.
	LambdaEq, MuEq float64
	// Pi is the stationary distribution.
	Pi []float64
}

// Solve computes the steady-state reward measures.
func (s *Structure) Solve(opts ctmc.SolveOptions) (*Result, error) {
	pi, err := s.model.SteadyState(opts)
	if err != nil {
		return nil, fmt.Errorf("reward solve: %w", err)
	}
	return s.FromPi(pi)
}

// FromPi computes the measures from an externally computed stationary
// distribution (useful when the caller already solved the chain).
func (s *Structure) FromPi(pi []float64) (*Result, error) {
	if len(pi) != s.model.NumStates() {
		return nil, fmt.Errorf("pi has %d entries for %d states: %w", len(pi), s.model.NumStates(), ErrReward)
	}
	res := &Result{Pi: append([]float64(nil), pi...)}
	var expected, pDown float64
	for i, p := range pi {
		expected += p * s.rates[i]
		if s.downSet[ctmc.State(i)] {
			pDown += p
		}
	}
	res.ExpectedReward = expected
	res.Availability = 1 - pDown
	res.YearlyDowntimeMinutes = pDown * MinutesPerYear
	res.FailureFrequency = s.model.EntryFrequency(pi, s.downSet)
	if res.FailureFrequency > 0 {
		res.MTBFHours = 1 / res.FailureFrequency
		res.MeanDownDurationHours = pDown / res.FailureFrequency
	}
	lambdaEq, muEq, err := s.model.EquivalentRates(pi, s.downSet)
	if err != nil {
		return nil, fmt.Errorf("reward solve: %w", err)
	}
	res.LambdaEq, res.MuEq = lambdaEq, muEq
	return res, nil
}

// DowntimeShare apportions steady-state downtime among disjoint groups of
// down states (e.g. "downtime due to the AS submodel" vs "due to HADB").
// Each group is a set of state names; the returned minutes-per-year values
// sum to the total yearly downtime if the groups cover all down states.
func (s *Structure) DowntimeShare(pi []float64, groups map[string][]string) (map[string]float64, error) {
	if len(pi) != s.model.NumStates() {
		return nil, fmt.Errorf("pi has %d entries for %d states: %w", len(pi), s.model.NumStates(), ErrReward)
	}
	out := make(map[string]float64, len(groups))
	for label, names := range groups {
		var p float64
		for _, name := range names {
			st, err := s.model.StateByName(name)
			if err != nil {
				return nil, fmt.Errorf("group %q: %w", label, err)
			}
			if !s.downSet[st] {
				return nil, fmt.Errorf("group %q: state %q is not a down state: %w", label, name, ErrReward)
			}
			p += pi[st]
		}
		out[label] = p * MinutesPerYear
	}
	return out, nil
}
