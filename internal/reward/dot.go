package reward

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the model as a Graphviz digraph in the visual style of
// the paper's RAScad diagrams: working (nonzero-reward) states as white
// ellipses labeled with their reward rate, failure states shaded, and
// edges labeled with their transition rates.
func (s *Structure) WriteDOT(w io.Writer, title string) error {
	m := s.Model()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDOTID(title))
	b.WriteString("  rankdir=LR;\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", title)
	}
	b.WriteString("  node [shape=ellipse, fontsize=11];\n")
	for _, st := range m.States() {
		attrs := fmt.Sprintf("label=\"%s\\nreward %g\"", m.Name(st), s.Rate(st))
		if s.Rate(st) == 0 {
			attrs += ", style=filled, fillcolor=gray85"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", m.Name(st), attrs)
	}
	trs := m.Transitions()
	sort.Slice(trs, func(i, j int) bool {
		if trs[i].From != trs[j].From {
			return trs[i].From < trs[j].From
		}
		return trs[i].To < trs[j].To
	})
	for _, tr := range trs {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.4g\"];\n",
			m.Name(tr.From), m.Name(tr.To), tr.Rate)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("reward: write dot: %w", err)
	}
	return nil
}

// sanitizeDOTID keeps graph names to a safe identifier subset.
func sanitizeDOTID(s string) string {
	if s == "" {
		return "model"
	}
	var out strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out.WriteRune(r)
		default:
			out.WriteByte('_')
		}
	}
	return out.String()
}
