package reward

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ctmc"
)

func buildTwoState(t *testing.T, lambda, mu float64) *ctmc.Model {
	t.Helper()
	b := ctmc.NewBuilder()
	up := b.State("Up")
	down := b.State("Down")
	b.Transition(up, down, lambda)
	b.Transition(down, up, mu)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestBinaryTwoState(t *testing.T) {
	t.Parallel()
	const lambda, mu = 0.001, 2.0
	m := buildTwoState(t, lambda, mu)
	s, err := Binary(m, "Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantAvail := mu / (lambda + mu)
	if math.Abs(res.Availability-wantAvail) > 1e-12 {
		t.Errorf("Availability = %v, want %v", res.Availability, wantAvail)
	}
	if math.Abs(res.ExpectedReward-wantAvail) > 1e-12 {
		t.Errorf("ExpectedReward = %v, want %v", res.ExpectedReward, wantAvail)
	}
	wantYD := (1 - wantAvail) * MinutesPerYear
	if math.Abs(res.YearlyDowntimeMinutes-wantYD) > 1e-9 {
		t.Errorf("YD = %v, want %v", res.YearlyDowntimeMinutes, wantYD)
	}
	wantFreq := wantAvail * lambda
	if math.Abs(res.FailureFrequency-wantFreq) > 1e-12 {
		t.Errorf("FailureFrequency = %v, want %v", res.FailureFrequency, wantFreq)
	}
	if math.Abs(res.MTBFHours-1/wantFreq) > 1e-6 {
		t.Errorf("MTBF = %v, want %v", res.MTBFHours, 1/wantFreq)
	}
	if math.Abs(res.MeanDownDurationHours-1/mu) > 1e-9 {
		t.Errorf("MeanDownDuration = %v, want %v", res.MeanDownDurationHours, 1/mu)
	}
	if math.Abs(res.LambdaEq-lambda) > 1e-12 || math.Abs(res.MuEq-mu) > 1e-9 {
		t.Errorf("equivalent rates = (%v, %v), want (%v, %v)", res.LambdaEq, res.MuEq, lambda, mu)
	}
}

func TestBinaryUnknownState(t *testing.T) {
	t.Parallel()
	m := buildTwoState(t, 1, 1)
	if _, err := Binary(m, "NoSuch"); !errors.Is(err, ctmc.ErrNoSuchState) {
		t.Errorf("err = %v, want ErrNoSuchState", err)
	}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	m := buildTwoState(t, 1, 1)
	if _, err := New(m, []float64{1}); !errors.Is(err, ErrReward) {
		t.Errorf("short rates: err = %v, want ErrReward", err)
	}
	if _, err := New(m, []float64{1, -1}); !errors.Is(err, ErrReward) {
		t.Errorf("negative reward: err = %v, want ErrReward", err)
	}
	if _, err := New(nil, nil); !errors.Is(err, ErrReward) {
		t.Errorf("nil model: err = %v, want ErrReward", err)
	}
}

func TestPerformabilityReward(t *testing.T) {
	t.Parallel()
	// Three states: full (reward 1), degraded (reward 0.5), down (0).
	b := ctmc.NewBuilder()
	full := b.State("Full")
	deg := b.State("Degraded")
	down := b.State("Down")
	b.Transition(full, deg, 1)
	b.Transition(deg, full, 1)
	b.Transition(deg, down, 1)
	b.Transition(down, full, 2)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := New(m, []float64{1, 0.5, 0})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Availability counts degraded as up; expected reward discounts it.
	if res.ExpectedReward >= res.Availability {
		t.Errorf("performability %v should be < availability %v", res.ExpectedReward, res.Availability)
	}
	wantAvail := 1 - res.Pi[down]
	if math.Abs(res.Availability-wantAvail) > 1e-12 {
		t.Errorf("Availability = %v, want %v", res.Availability, wantAvail)
	}
}

func TestDowntimeShare(t *testing.T) {
	t.Parallel()
	// Two distinct failure modes with different repair rates.
	b := ctmc.NewBuilder()
	ok := b.State("Ok")
	fa := b.State("FailA")
	fb := b.State("FailB")
	b.Transition(ok, fa, 0.01)
	b.Transition(ok, fb, 0.02)
	b.Transition(fa, ok, 1)
	b.Transition(fb, ok, 4)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := Binary(m, "FailA", "FailB")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	shares, err := s.DowntimeShare(res.Pi, map[string][]string{
		"A": {"FailA"},
		"B": {"FailB"},
	})
	if err != nil {
		t.Fatalf("DowntimeShare: %v", err)
	}
	total := shares["A"] + shares["B"]
	if math.Abs(total-res.YearlyDowntimeMinutes) > 1e-9 {
		t.Errorf("shares sum %v, want total %v", total, res.YearlyDowntimeMinutes)
	}
	// FailA has 0.01 rate and 1h repair → 0.01 expected hours share;
	// FailB has 0.02 rate and 0.25h repair → 0.005. Ratio A:B = 2:1.
	if math.Abs(shares["A"]/shares["B"]-2) > 1e-9 {
		t.Errorf("share ratio = %v, want 2", shares["A"]/shares["B"])
	}
}

func TestDowntimeShareErrors(t *testing.T) {
	t.Parallel()
	m := buildTwoState(t, 1, 1)
	s, err := Binary(m, "Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := s.DowntimeShare(res.Pi, map[string][]string{"x": {"Up"}}); !errors.Is(err, ErrReward) {
		t.Errorf("up state in group: err = %v, want ErrReward", err)
	}
	if _, err := s.DowntimeShare(res.Pi, map[string][]string{"x": {"zzz"}}); !errors.Is(err, ctmc.ErrNoSuchState) {
		t.Errorf("unknown state: err = %v, want ErrNoSuchState", err)
	}
	if _, err := s.DowntimeShare([]float64{1}, nil); !errors.Is(err, ErrReward) {
		t.Errorf("short pi: err = %v, want ErrReward", err)
	}
}

func TestFromPiValidation(t *testing.T) {
	t.Parallel()
	m := buildTwoState(t, 1, 1)
	s, err := Binary(m, "Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	if _, err := s.FromPi([]float64{1}); !errors.Is(err, ErrReward) {
		t.Errorf("err = %v, want ErrReward", err)
	}
}

func TestDownStatesCopy(t *testing.T) {
	t.Parallel()
	m := buildTwoState(t, 1, 1)
	s, err := Binary(m, "Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	ds := s.DownStates()
	for k := range ds {
		delete(ds, k)
	}
	if len(s.DownStates()) != 1 {
		t.Error("DownStates exposes internal map")
	}
}

func TestRateAccessor(t *testing.T) {
	t.Parallel()
	m := buildTwoState(t, 1, 1)
	s, err := New(m, []float64{1, 0.25})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Rate(1) != 0.25 {
		t.Errorf("Rate(1) = %v, want 0.25", s.Rate(1))
	}
	if s.Model() != m {
		t.Error("Model() returned wrong model")
	}
}

func TestConstantsMatchPaper(t *testing.T) {
	t.Parallel()
	// The paper's Table 3 availability figures imply a 525,600-minute year.
	if MinutesPerYear != 525600 {
		t.Errorf("MinutesPerYear = %d, want 525600", MinutesPerYear)
	}
	if HoursPerYear != 8760 {
		t.Errorf("HoursPerYear = %d, want 8760", HoursPerYear)
	}
}

// TestLumpedPreservesMeasures: the product of two identical repairable
// components in series lumps from 4 to 3 states with every availability
// measure preserved exactly.
func TestLumpedPreservesMeasures(t *testing.T) {
	t.Parallel()
	b := ctmc.NewBuilder()
	uu := b.State("UU")
	ud := b.State("UD")
	du := b.State("DU")
	dd := b.State("DD")
	const la, mu = 0.05, 2.0
	b.Transition(uu, ud, la)
	b.Transition(uu, du, la)
	b.Transition(ud, uu, mu)
	b.Transition(du, uu, mu)
	b.Transition(ud, dd, la)
	b.Transition(du, dd, la)
	b.Transition(dd, ud, mu)
	b.Transition(dd, du, mu)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Series system: up only when both components are up.
	s, err := Binary(m, "UD", "DU", "DD")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	lumped, block, err := s.Lumped()
	if err != nil {
		t.Fatalf("Lumped: %v", err)
	}
	if lumped.Model().NumStates() != 3 {
		t.Fatalf("lumped states = %d, want 3", lumped.Model().NumStates())
	}
	if block[1] != block[2] {
		t.Error("symmetric states not merged")
	}
	full, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := lumped.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Availability-red.Availability) > 1e-14 {
		t.Errorf("availability: full %.15f, lumped %.15f", full.Availability, red.Availability)
	}
	if math.Abs(full.FailureFrequency-red.FailureFrequency) > 1e-16 {
		t.Errorf("failure frequency: full %g, lumped %g", full.FailureFrequency, red.FailureFrequency)
	}
	if math.Abs(full.ExpectedReward-red.ExpectedReward) > 1e-14 {
		t.Errorf("expected reward mismatch")
	}
}
