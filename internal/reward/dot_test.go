package reward

import (
	"strings"
	"testing"

	"repro/internal/ctmc"
)

func TestWriteDOT(t *testing.T) {
	t.Parallel()
	b := ctmc.NewBuilder()
	up := b.State("Up")
	down := b.State("2_Down")
	b.Transition(up, down, 0.001)
	b.Transition(down, up, 4)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := Binary(m, "2_Down")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	var buf strings.Builder
	if err := s.WriteDOT(&buf, "HADB Pair"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"HADB_Pair\"",
		"label=\"HADB Pair\"",
		"\"Up\" [label=\"Up\\nreward 1\"]",
		"fillcolor=gray85",     // failure state shaded
		"\"Up\" -> \"2_Down\"", // forward edge
		"label=\"0.001\"",      // rate label
		"\"2_Down\" -> \"Up\"", // repair edge
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTEmptyTitle(t *testing.T) {
	t.Parallel()
	b := ctmc.NewBuilder()
	a := b.State("A")
	c := b.State("C")
	b.Transition(a, c, 1)
	b.Transition(c, a, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := Binary(m, "C")
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	var buf strings.Builder
	if err := s.WriteDOT(&buf, ""); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if !strings.Contains(buf.String(), "digraph \"model\"") {
		t.Errorf("empty title should default graph name:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "labelloc") {
		t.Error("empty title should not emit a label")
	}
}
