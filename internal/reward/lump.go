package reward

import "fmt"

// Lumped returns an exactly equivalent reduced reward structure by merging
// states that carry the same reward rate and are ordinarily lumpable (see
// ctmc.Lump). The returned mapping gives each original state's block in
// the reduced model. Availability, expected reward, downtime, and failure
// frequency are preserved exactly.
//
// Replicated-component models (the flat products hier.Product builds)
// shrink combinatorially; already-minimal models are returned equivalent
// but rebuilt.
func (s *Structure) Lumped() (*Structure, []int, error) {
	n := s.model.NumStates()
	classOf := make(map[float64]int)
	initial := make([]int, n)
	for i := 0; i < n; i++ {
		r := s.rates[i]
		id, ok := classOf[r]
		if !ok {
			id = len(classOf)
			classOf[r] = id
		}
		initial[i] = id
	}
	quotient, block, err := s.model.Lump(initial)
	if err != nil {
		return nil, nil, fmt.Errorf("reward: lump: %w", err)
	}
	rates := make([]float64, quotient.NumStates())
	for st, blk := range block {
		rates[blk] = s.rates[st] // uniform within a block by construction
	}
	ls, err := New(quotient, rates)
	if err != nil {
		return nil, nil, fmt.Errorf("reward: lump: %w", err)
	}
	return ls, block, nil
}
