package jobs

import (
	"container/list"
	"encoding/json"
)

// lruCache is the engine's result cache: canonical request hash → the
// exact result bytes a completed job produced. Entries move to the front
// on every hit, so a full cache evicts the least-recently-used request —
// repeated sweeps and dashboard polls keep their working set resident
// while one-off experiments age out.
//
// The cache stores the marshaled response verbatim (never re-encoded),
// which is what makes a hit byte-identical to the fresh solve that
// populated it. Not safe for concurrent use; the engine mutex guards it.
type lruCache struct {
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

// cacheEntry is one cached result.
type cacheEntry struct {
	hash   string
	result json.RawMessage
}

// newLRU returns a cache bounded to cap entries (cap >= 1).
func newLRU(cap int) *lruCache {
	return &lruCache{cap: cap, ll: list.New(), m: make(map[string]*list.Element, cap)}
}

// get returns the cached result for hash (nil if absent), refreshing its
// recency.
func (c *lruCache) get(hash string) json.RawMessage {
	el, ok := c.m[hash]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).result
}

// add stores (or refreshes) a result and returns how many entries were
// evicted to stay within capacity.
func (c *lruCache) add(hash string, result json.RawMessage) int64 {
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).result = result
		return 0
	}
	c.m[hash] = c.ll.PushFront(&cacheEntry{hash: hash, result: result})
	var evicted int64
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).hash)
		evicted++
	}
	return evicted
}

// len reports the resident entry count.
func (c *lruCache) len() int { return c.ll.Len() }
