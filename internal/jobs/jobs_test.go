package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/progress"
)

// fakeClock is a mutex-guarded manual time source; the engine reads it
// from several goroutines.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// constTask returns a task whose runner yields the given payload and
// counts invocations.
func constTask(hash, payload string, calls *atomic.Int64) Task {
	return Task{
		Kind: "test",
		Hash: hash,
		Run: func(context.Context, *progress.Tracker) (json.RawMessage, error) {
			if calls != nil {
				calls.Add(1)
			}
			return json.RawMessage(payload), nil
		},
	}
}

func waitDone(t *testing.T, e *Engine, id int64) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := e.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%d): %v", id, err)
	}
	return st
}

func TestSubmitComputesThenServesFromCache(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	var calls atomic.Int64
	st, err := e.Submit(constTask("h1", `{"x":1}`, &calls))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Cached {
		t.Fatalf("first submission reported cached")
	}
	first := waitDone(t, e, st.ID)
	if first.State != StateDone || string(first.Result) != `{"x":1}` {
		t.Fatalf("first result = %+v", first)
	}

	second, err := e.Submit(constTask("h1", `{"x":1}`, &calls))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("repeat not served from cache: %+v", second)
	}
	if second.ID == first.ID {
		t.Fatalf("cache hit reused the original job ID %d", first.ID)
	}
	if string(second.Result) != string(first.Result) {
		t.Fatalf("cache hit bytes %q != fresh bytes %q", second.Result, first.Result)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("runner called %d times, want 1", n)
	}
}

func TestSingleFlightCoalescesConcurrentStorm(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 4})
	defer e.Close()
	var calls atomic.Int64
	release := make(chan struct{})
	task := Task{
		Kind: "storm",
		Hash: "storm-hash",
		Run: func(ctx context.Context, _ *progress.Tracker) (json.RawMessage, error) {
			calls.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return json.RawMessage(`{"ok":true}`), nil
		},
	}

	const n = 32
	ids := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := e.Submit(task)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(release)

	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %d, want shared job %d", i, ids[i], ids[0])
		}
	}
	st := waitDone(t, e, ids[0])
	if st.State != StateDone {
		t.Fatalf("shared job state = %s (%s)", st.State, st.Error)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner executed %d times under storm, want exactly 1", got)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	e := New(Config{Workers: 1, CacheSize: 2})
	defer e.Close()
	var calls atomic.Int64
	submit := func(hash string) Status {
		t.Helper()
		st, err := e.Submit(constTask(hash, fmt.Sprintf(`{"h":%q}`, hash), &calls))
		if err != nil {
			t.Fatalf("submit %s: %v", hash, err)
		}
		return waitDone(t, e, st.ID)
	}

	submit("a")
	submit("b")
	if st := submit("a"); !st.Cached { // refresh a's recency: LRU is now b
		t.Fatalf("a not cached after insert")
	}
	submit("c") // full cache: evicts b, keeps {a, c}
	if n := e.CacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	if st := submit("a"); !st.Cached {
		t.Fatalf("a evicted despite being most recently used")
	}
	if st := submit("c"); !st.Cached {
		t.Fatalf("c evicted despite being newest insert")
	}
	if st := submit("b"); st.Cached {
		t.Fatalf("b survived eviction; expected least-recently-used to go")
	}
	// a, b, c computed once each plus b's post-eviction recompute.
	if n := calls.Load(); n != 4 {
		t.Fatalf("runner called %d times, want 4", n)
	}
}

func TestQueueFullRejectsDeterministically(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := Task{
		Kind: "blocker",
		Hash: "blocker",
		Run: func(ctx context.Context, _ *progress.Tracker) (json.RawMessage, error) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return json.RawMessage(`1`), nil
		},
	}
	bst, err := e.Submit(blocker)
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started // the single worker is now occupied

	filler, err := e.Submit(constTask("filler", `2`, nil))
	if err != nil {
		t.Fatalf("submit filler: %v", err) // occupies the one queue slot
	}
	if _, err := e.Submit(constTask("overflow", `3`, nil)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	// An identical submission still coalesces even when the queue is full:
	// it consumes no slot.
	if st, err := e.Submit(constTask("filler", `2`, nil)); err != nil || st.ID != filler.ID {
		t.Fatalf("coalesce during overflow: st=%+v err=%v", st, err)
	}

	close(release)
	waitDone(t, e, bst.ID)
	waitDone(t, e, filler.ID)
}

func TestFinishedRecordsGCByCountAndTTL(t *testing.T) {
	clock := newFakeClock()
	e := New(Config{Workers: 1, KeepDone: 2, TTL: time.Hour, Clock: clock.Now})
	defer e.Close()
	submit := func(hash string) Status {
		t.Helper()
		st, err := e.Submit(constTask(hash, `{}`, nil))
		if err != nil {
			t.Fatalf("submit %s: %v", hash, err)
		}
		return waitDone(t, e, st.ID)
	}

	a := submit("a")
	b := submit("b")
	c := submit("c") // KeepDone=2: a's record is evicted
	if _, ok := e.Status(a.ID); ok {
		t.Fatalf("job %d retained past KeepDone", a.ID)
	}
	if _, ok := e.Status(b.ID); !ok {
		t.Fatalf("job %d evicted while within KeepDone", b.ID)
	}

	clock.Advance(2 * time.Hour)
	e.Statuses() // runs GC against the advanced clock
	for _, st := range []Status{b, c} {
		if _, ok := e.Status(st.ID); ok {
			t.Fatalf("job %d retained past TTL", st.ID)
		}
	}
	// Record GC must not touch the result cache.
	if st := submit("a"); !st.Cached {
		t.Fatalf("cache entry lost to record GC")
	}
}

func TestCloseFailsQueuedJobsAndRejectsSubmits(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2})
	started := make(chan struct{})
	blocker := Task{
		Kind: "blocker",
		Hash: "blocker",
		Run: func(ctx context.Context, _ *progress.Tracker) (json.RawMessage, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	bst, err := e.Submit(blocker)
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	queued, err := e.Submit(constTask("queued", `1`, nil))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	e.Close()

	if st, ok := e.Status(bst.ID); !ok || st.State != StateFailed {
		t.Fatalf("running job after Close: %+v (ok=%v)", st, ok)
	}
	st, ok := e.Status(queued.ID)
	if !ok || st.State != StateFailed || st.Error != ErrClosed.Error() {
		t.Fatalf("queued job after Close: %+v (ok=%v)", st, ok)
	}
	if _, err := e.Submit(constTask("late", `1`, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestRetryAfterTracksServiceTime(t *testing.T) {
	clock := newFakeClock()
	e := New(Config{Workers: 1, Clock: clock.Now})
	defer e.Close()
	if d := e.RetryAfter(); d != 0 {
		t.Fatalf("RetryAfter before any job = %v, want 0 (no signal)", d)
	}
	task := Task{
		Kind: "slow",
		Hash: "slow",
		Run: func(context.Context, *progress.Tracker) (json.RawMessage, error) {
			clock.Advance(10 * time.Second)
			return json.RawMessage(`1`), nil
		},
	}
	st, err := e.Submit(task)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, e, st.ID)
	if d := e.RetryAfter(); d != 10*time.Second {
		t.Fatalf("RetryAfter = %v, want 10s (EWMA of one 10s job / 1 worker)", d)
	}
}

func TestCanonicalHashNormalizes(t *testing.T) {
	type req struct {
		Instances int `json:"instances"`
		Pairs     int `json:"pairs"`
	}
	h1, err := CanonicalHash("jsas", req{Instances: 2, Pairs: 2})
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	h2, _ := CanonicalHash("jsas", req{Pairs: 2, Instances: 2})
	if h1 != h2 {
		t.Fatalf("field assignment order changed the hash: %s vs %s", h1, h2)
	}
	h3, _ := CanonicalHash("jsas", req{Instances: 2, Pairs: 4})
	if h1 == h3 {
		t.Fatalf("different requests collided: %s", h1)
	}
	h4, _ := CanonicalHash("solve", req{Instances: 2, Pairs: 2})
	if h1 == h4 {
		t.Fatalf("kind not part of the hash: %s", h1)
	}
	if _, err := CanonicalHash("bad", func() {}); err == nil {
		t.Fatalf("unmarshalable request did not error")
	}
}

func TestSubmitValidatesTask(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	if _, err := e.Submit(Task{Kind: "x"}); err == nil {
		t.Fatalf("task without hash/run accepted")
	}
}
