// Package jobs turns the serving path into an asynchronous job engine:
// submissions enter a bounded queue drained by a worker pool (built on
// internal/pool), results land in an LRU cache keyed by a canonical
// content hash of the request, and identical concurrent submissions are
// coalesced into a single computation (single-flight).
//
// The availability workloads this engine runs — sweeps, uncertainty
// analyses, fault-injection campaigns — are deterministic functions of
// (model spec, parameters, seed), so a repeat request is pure waste and
// an identical concurrent request is redundant work. The cache serves a
// repeat in O(1) with bytes identical to the fresh solve that populated
// it, and single-flight lets N identical submissions share one solve and
// observe the same result. The queue bound is the engine's backpressure:
// a full queue rejects with ErrQueueFull, and the caller can translate
// the observed job service time (RetryAfter) into an honest Retry-After
// hint instead of a constant.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/progress"
)

// Submission and cache metrics, reported to the default obs registry.
var (
	obsSubmitted = obs.C("jobs_submitted_total",
		"job submissions accepted, coalesced, or served from cache")
	obsHits = obs.C("jobs_cache_hits_total",
		"submissions answered from the result cache")
	obsMisses = obs.C("jobs_cache_misses_total",
		"submissions that required a fresh computation")
	obsCoalesced = obs.C("jobs_coalesced_total",
		"submissions coalesced onto an identical in-flight job")
	obsEvictions = obs.C("jobs_cache_evictions_total",
		"result-cache entries evicted to stay within -cache-size")
	obsRejected = obs.C("jobs_rejected_total",
		"submissions rejected because the job queue was full")
	obsFailed = obs.C("jobs_failed_total",
		"jobs that completed with an error")
	obsQueueDepth = obs.G("jobs_queue_depth",
		"jobs waiting in the queue (excludes running jobs)")
	obsService = obs.H("jobs_service_seconds",
		"job execution time from dequeue to completion", obs.DurationBuckets)
)

// Submission-path errors.
var (
	// ErrQueueFull reports that the bounded job queue had no free slot;
	// the submission was rejected, not queued.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed reports a submission to an engine after Close.
	ErrClosed = errors.New("jobs: engine closed")
	// ErrNotFound reports a job ID the engine does not retain (never
	// assigned, or GC'd past the retention bound / TTL).
	ErrNotFound = errors.New("jobs: no such job")
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: queued → running → done | failed. Cache hits are born
// done.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Defaults for Config zero values.
const (
	DefaultQueueDepth = 64
	DefaultCacheSize  = 1024
	DefaultKeepDone   = 256
)

// svcAlpha weights the newest observation in the service-time EWMA that
// backs RetryAfter; jobs vary from microsecond cache refills to multi-
// second campaigns, so a fast-moving estimate tracks the current mix.
const svcAlpha = 0.3

// Config tunes an Engine. The zero value selects the defaults.
type Config struct {
	// Workers is the number of worker goroutines draining the queue
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many submitted jobs may wait for a worker;
	// submissions beyond it fail with ErrQueueFull (<= 0 selects 64).
	QueueDepth int
	// CacheSize bounds the result cache in entries: 0 selects the
	// default (1024), negative disables caching entirely.
	CacheSize int
	// KeepDone bounds how many finished job records are retained for
	// polling (<= 0 selects 256). Queued and running jobs are never
	// evicted.
	KeepDone int
	// TTL additionally expires finished job records by age (0 = records
	// live until evicted by KeepDone). The result cache is independent:
	// a GC'd job's result stays cached until LRU eviction.
	TTL time.Duration
	// Registry receives one progress run per executed job, so the jobs
	// show up wherever the registry is surfaced (GET /v1/runs). nil
	// creates a private registry.
	Registry *progress.Registry
	// Clock substitutes the time source (tests).
	Clock func() time.Time
}

// Task is one unit of submittable work. The engine is deliberately
// ignorant of job kinds: the caller supplies the canonical Hash (cache
// and coalescing key) and a Run closure returning the marshaled result.
type Task struct {
	// Kind labels the job for status and progress ("solve", "campaign").
	Kind string
	// Hash is the canonical content hash identifying the computation;
	// see CanonicalHash. Submissions with equal hashes coalesce and
	// share cache entries.
	Hash string
	// Detail is a human-readable request summary for status listings.
	Detail string
	// Total is the expected progress-tracker task count (0 = unknown).
	Total int64
	// TrackerOpts customize the job's progress tracker (unit, statistic).
	TrackerOpts []progress.Option
	// Run executes the job. ctx is the engine's lifetime (not the
	// submitting request's: a coalesced job must outlive any one
	// client); the tracker is never nil. The returned bytes are stored
	// and served verbatim — byte-identical cache hits depend on it.
	Run func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error)
}

// Status is a JSON-ready snapshot of one job.
type Status struct {
	ID     int64  `json:"id"`
	Kind   string `json:"kind"`
	Hash   string `json:"hash"`
	Detail string `json:"detail,omitempty"`
	State  State  `json:"state"`
	// Cached reports that the job was answered from the result cache
	// without computing.
	Cached bool `json:"cached,omitempty"`
	// Coalesced counts later identical submissions that joined this job.
	Coalesced int64               `json:"coalesced,omitempty"`
	CreatedAt string              `json:"createdAt"`
	StartedAt string              `json:"startedAt,omitempty"`
	EndedAt   string              `json:"endedAt,omitempty"`
	Error     string              `json:"error,omitempty"`
	Result    json.RawMessage     `json:"result,omitempty"`
	Progress  *progress.RunStatus `json:"progress,omitempty"`
}

// job is the engine-side record. Mutable fields are guarded by mu (a
// leaf lock: it may be taken while holding Engine.mu, never the other
// way around).
type job struct {
	id   int64
	task Task
	done chan struct{}

	mu        sync.Mutex
	state     State
	cached    bool
	coalesced int64
	created   time.Time
	started   time.Time
	ended     time.Time
	errMsg    string
	result    json.RawMessage
	run       *progress.Run
}

// status snapshots the job. includeResult=false strips the (possibly
// large) result payload for listings.
func (j *job) status(includeResult bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Kind:      j.task.Kind,
		Hash:      j.task.Hash,
		Detail:    j.task.Detail,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.ended.IsZero() {
		st.EndedAt = j.ended.UTC().Format(time.RFC3339Nano)
	}
	if includeResult {
		st.Result = j.result
	}
	if j.run != nil {
		rs := j.run.Status()
		st.Progress = &rs
	}
	return st
}

// closedChan is the pre-closed done channel shared by cache-hit jobs.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Engine is the async job engine. Construct with New; Close releases the
// workers. All methods are safe for concurrent use.
type Engine struct {
	workers    int
	queueDepth int
	keepDone   int
	ttl        time.Duration
	reg        *progress.Registry
	clock      func() time.Time

	ctx       context.Context
	cancelCtx context.CancelFunc
	startOnce sync.Once
	started   atomic.Bool
	drained   chan struct{}
	queue     chan *job

	mu        sync.Mutex
	closed    bool
	nextID    int64
	byID      map[int64]*job
	inflight  map[string]*job
	cache     *lruCache // nil = caching disabled
	doneOrder []*job    // finished jobs in completion order, for GC
	svcEWMA   float64   // smoothed job service time, seconds
}

// New constructs an engine. Workers start lazily on the first Submit, so
// an engine that never sees a job costs no goroutines.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.KeepDone <= 0 {
		cfg.KeepDone = DefaultKeepDone
	}
	if cfg.Registry == nil {
		cfg.Registry = progress.NewRegistry(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		workers:    cfg.Workers,
		queueDepth: cfg.QueueDepth,
		keepDone:   cfg.KeepDone,
		ttl:        cfg.TTL,
		reg:        cfg.Registry,
		clock:      cfg.Clock,
		ctx:        ctx,
		cancelCtx:  cancel,
		drained:    make(chan struct{}),
		queue:      make(chan *job, cfg.QueueDepth),
		byID:       make(map[int64]*job),
		inflight:   make(map[string]*job),
	}
	switch {
	case cfg.CacheSize == 0:
		e.cache = newLRU(DefaultCacheSize)
	case cfg.CacheSize > 0:
		e.cache = newLRU(cfg.CacheSize)
	}
	return e
}

// Submit accepts a task and returns the job observing it. Three paths,
// resolved atomically under one lock so no submission can fall between
// them:
//
//  1. Result cached → a new job record born done, carrying the cached
//     bytes (Status.Cached true). O(1), no queue slot consumed.
//  2. Identical job queued or running → that job is returned
//     (single-flight); the submission consumes nothing.
//  3. Fresh → the job enters the bounded queue, or ErrQueueFull.
func (e *Engine) Submit(t Task) (Status, error) {
	if t.Hash == "" || t.Run == nil {
		return Status{}, fmt.Errorf("jobs: task needs a hash and a run function")
	}
	now := e.clock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Status{}, ErrClosed
	}
	obsSubmitted.Inc()
	if e.cache != nil {
		if res := e.cache.get(t.Hash); res != nil {
			obsHits.Inc()
			e.nextID++
			j := &job{
				id:      e.nextID,
				task:    t,
				done:    closedChan,
				state:   StateDone,
				cached:  true,
				created: now,
				started: now,
				ended:   now,
				result:  res,
			}
			e.byID[j.id] = j
			e.doneOrder = append(e.doneOrder, j)
			e.gcLocked(now)
			e.mu.Unlock()
			return j.status(true), nil
		}
	}
	if exist := e.inflight[t.Hash]; exist != nil {
		obsCoalesced.Inc()
		exist.mu.Lock()
		exist.coalesced++
		exist.mu.Unlock()
		e.mu.Unlock()
		return exist.status(true), nil
	}
	obsMisses.Inc()
	e.nextID++
	j := &job{
		id:      e.nextID,
		task:    t,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: now,
	}
	select {
	case e.queue <- j:
	default:
		e.nextID--
		obsRejected.Inc()
		e.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	e.byID[j.id] = j
	e.inflight[t.Hash] = j
	obsQueueDepth.Set(float64(len(e.queue)))
	e.mu.Unlock()

	e.start()
	return j.status(false), nil
}

// start launches the worker pool once. The workers are pool.Run items:
// each of the e.workers indices is one long-lived drain loop, so queue
// workers inherit the pool's cancellation semantics and accounting.
func (e *Engine) start() {
	e.startOnce.Do(func() {
		e.started.Store(true)
		go func() {
			defer close(e.drained)
			_ = pool.Run(e.ctx, e.workers,
				pool.Options{Workers: e.workers, ContinueOnError: true},
				func(int, int) error {
					e.drainLoop()
					return nil
				})
		}()
	})
}

// drainLoop executes queued jobs until the engine context ends. When
// cancellation and a non-empty queue race, select may still hand the
// worker a job — fail it with ErrClosed instead of executing it, so a
// job that was queued (not running) at Close time never completes.
func (e *Engine) drainLoop() {
	for {
		select {
		case <-e.ctx.Done():
			return
		case j := <-e.queue:
			obsQueueDepth.Set(float64(len(e.queue)))
			if e.ctx.Err() != nil {
				e.failClosed(j)
				return
			}
			e.execute(j)
		}
	}
}

// failClosed marks a still-queued job as failed with ErrClosed.
func (e *Engine) failClosed(j *job) {
	now := e.clock()
	e.mu.Lock()
	delete(e.inflight, j.task.Hash)
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = ErrClosed.Error()
	j.ended = now
	close(j.done)
	j.mu.Unlock()
	e.doneOrder = append(e.doneOrder, j)
	e.mu.Unlock()
}

// execute runs one job to completion and publishes its result: cache
// insert, single-flight release, and done-marking happen under the
// engine lock, so a concurrent Submit observes either the in-flight job
// or the cached result — never a gap between them.
func (e *Engine) execute(j *job) {
	start := e.clock()
	run := e.reg.Begin("job:"+j.task.Kind, j.task.Detail, j.task.Total, j.task.TrackerOpts...)

	j.mu.Lock()
	j.state = StateRunning
	j.started = start
	j.run = run
	j.mu.Unlock()

	res, err := j.task.Run(e.ctx, run.Tracker())
	end := e.clock()
	run.Finish(err)
	dur := end.Sub(start).Seconds()
	obsService.Observe(dur)

	e.mu.Lock()
	if e.svcEWMA == 0 {
		e.svcEWMA = dur
	} else {
		e.svcEWMA = svcAlpha*dur + (1-svcAlpha)*e.svcEWMA
	}
	if err == nil && e.cache != nil {
		obsEvictions.Add(e.cache.add(j.task.Hash, res))
	}
	delete(e.inflight, j.task.Hash)
	j.mu.Lock()
	j.ended = end
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		obsFailed.Inc()
	} else {
		j.state = StateDone
		j.result = res
	}
	close(j.done)
	j.mu.Unlock()
	e.doneOrder = append(e.doneOrder, j)
	e.gcLocked(end)
	e.mu.Unlock()
}

// gcLocked evicts finished job records past the TTL, then the oldest
// past the retention count. Requires e.mu.
func (e *Engine) gcLocked(now time.Time) {
	i := 0
	if e.ttl > 0 {
		for i < len(e.doneOrder) {
			j := e.doneOrder[i]
			j.mu.Lock()
			expired := now.Sub(j.ended) > e.ttl
			j.mu.Unlock()
			if !expired {
				break
			}
			delete(e.byID, j.id)
			i++
		}
	}
	for len(e.doneOrder)-i > e.keepDone {
		delete(e.byID, e.doneOrder[i].id)
		i++
	}
	if i > 0 {
		e.doneOrder = append(e.doneOrder[:0], e.doneOrder[i:]...)
	}
}

// Status returns a snapshot of the identified job, including its result.
func (e *Engine) Status(id int64) (Status, bool) {
	e.mu.Lock()
	j := e.byID[id]
	e.mu.Unlock()
	if j == nil {
		return Status{}, false
	}
	return j.status(true), true
}

// Statuses snapshots every retained job, newest first, with results
// stripped (a listing must stay cheap even when results are large).
func (e *Engine) Statuses() []Status {
	e.mu.Lock()
	e.gcLocked(e.clock())
	js := make([]*job, 0, len(e.byID))
	for _, j := range e.byID {
		js = append(js, j)
	}
	e.mu.Unlock()
	sort.Slice(js, func(i, k int) bool { return js[i].id > js[k].id })
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.status(false)
	}
	return out
}

// Wait blocks until the identified job finishes (or ctx ends) and
// returns its final status.
func (e *Engine) Wait(ctx context.Context, id int64) (Status, error) {
	e.mu.Lock()
	j := e.byID[id]
	e.mu.Unlock()
	if j == nil {
		return Status{}, ErrNotFound
	}
	select {
	case <-j.done:
		return j.status(true), nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// CacheLen reports resident result-cache entries (0 when disabled).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}

// RetryAfter estimates how long a rejected submitter should wait for a
// queue slot: the smoothed job service time divided by the worker count
// (≈ time until the next worker frees up), clamped to [1s, 1m]. Zero
// means no job has completed yet — the caller should fall back to its
// constant hint.
func (e *Engine) RetryAfter() time.Duration {
	e.mu.Lock()
	svc := e.svcEWMA
	e.mu.Unlock()
	if svc <= 0 {
		return 0
	}
	d := time.Duration(svc / float64(e.workers) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// Close stops the engine: running jobs see a canceled context, workers
// drain, and jobs still queued are failed with ErrClosed so no poller
// waits forever. Safe to call twice; Submit after Close returns
// ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	e.cancelCtx()
	if e.started.Load() {
		<-e.drained
	}
	for {
		select {
		case j := <-e.queue:
			e.failClosed(j)
		default:
			obsQueueDepth.Set(0)
			return
		}
	}
}

// CanonicalHash computes the engine cache key for a request: SHA-256
// over the kind and the request's canonical JSON encoding. encoding/json
// is canonical for the job request types because struct fields marshal
// in declaration order and maps marshal with sorted keys — so two
// requests that decode (with defaults applied) to the same normalized
// value hash identically regardless of JSON field order or whether
// defaults were spelled out.
func CanonicalHash(kind string, v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("jobs: canonicalize %s request: %w", kind, err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}
