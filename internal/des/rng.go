package des

import (
	"math/rand"
	"sync"
)

// This file implements the simulation's random stream: a batched
// reimplementation of math/rand's additive lagged-Fibonacci generator
// (Mitchell & Reeds, the rand.NewSource algorithm) that produces the
// bit-identical value stream for every seed. Owning the generator buys
// the DES hot loop three things math/rand cannot provide:
//
//  1. Batched draws: outputs are produced rngBatch at a time into a
//     buffer, amortizing the tap/feed wraparound bookkeeping, so the
//     per-draw fast path is an array read and an increment instead of
//     an interface call into math/rand.
//  2. Seed-state reuse: seeding the 607-word feedback register costs
//     ~1,900 multiplicative-LCG steps per rand.NewSource — measurable
//     when campaigns and longevity series construct thousands of
//     same-seeded replica clusters. Seeded registers are cached by
//     seed and re-used with a plain copy.
//  3. No allocation after construction.
//
// Bit-compatibility matters because the repository's determinism
// contract is byte-identical same-seed reports across refactors: every
// recorded campaign, trace, and longevity output was produced by
// math/rand's stream, so the rebuilt kernel must reproduce it exactly.
//
// The generator needs math/rand's unexported 607-entry seeding table
// (rngCooked). Rather than copying the table, bootstrapCooked recovers
// it at first use from the public API: the seeding recurrence
// vec[i] = u_i(seed) XOR cooked[i] is documented and u_i is computable,
// and the first 607 outputs of a seeded source overwrite the register
// one slot at a time in a known order, so the table falls out of a
// linear walk over one output stream. The recovered table is verified
// against math/rand on independent seeds; if verification ever fails
// (a hypothetical future change to the frozen math/rand algorithm),
// Rand transparently falls back to delegating to *rand.Rand — slower,
// but still bit-identical.

const (
	rngLen    = 607
	rngTapOff = 273
	rngMask   = 1<<63 - 1
	int32max  = 1<<31 - 1
	// rngBatch balances batching gain against over-production: a refill
	// always produces a full batch, and a short-lived stream (one
	// replica's run draws a few hundred values) wastes the tail of its
	// last batch. 64 keeps the amortization while capping the waste.
	rngBatch = 64
)

// seedrand is math/rand's seeding LCG: x' = 48271·x mod (2³¹−1).
// math/rand uses the Schrage decomposition to stay in 32 bits; with
// 64-bit arithmetic the Mersenne-prime modulus reduces with one multiply
// and a fold, which is ~2× faster over the ~1,900-step seeding chain.
// The result is the exact same value for every x in [1, 2³¹−2]:
// 48271·x < 2⁴⁷, and (y mod 2³¹) + (y >> 31) folds y into [0, 2³¹+2¹⁶),
// one conditional subtract short of the true residue.
// The final correction is branchless: after folding, y < 2·(2³¹−1) and
// y ≡ r (mod 2³¹−1) with true residue r ∈ [1, 2³¹−2], so y is either r
// or r + (2³¹−1) — y can never equal 2³¹−1 itself, which makes bit 31
// exactly the "subtract once" indicator.
func seedrand(x int32) int32 {
	y := uint64(x) * 48271
	y = (y & int32max) + (y >> 31)
	y -= (y >> 31) * int32max
	return int32(y)
}

// seedrandK advances the seeding LCG k steps at once: x' = aᵏ·x
// mod (2³¹−1) with aᵏ pre-reduced below 2³¹, so the product stays under
// 2⁶², which two folds bring into [0, 2³¹+1] for one final subtract —
// exactly the residue k serial seedrand calls would reach.
func seedrandK(x int32, ak uint64) int32 {
	y := uint64(x) * ak
	y = (y & int32max) + (y >> 31)
	y = (y & int32max) + (y >> 31)
	y -= (y >> 31) * int32max
	return int32(y)
}

// Powers of the seeding multiplier, reduced mod 2³¹−1.
const (
	seedA3 = (48271 * 48271 % int32max) * 48271 % int32max
	seedA6 = seedA3 * seedA3 % int32max
)

// seedVecRaw computes the pre-XOR seeding words u_i(seed) — the register
// contents math/rand's Seed produces before mixing in rngCooked.
//
// Word i packs LCG states s₂₁₊₃ᵢ, s₂₂₊₃ᵢ, s₂₃₊₃ᵢ (after the 20-step
// warmup). Viewed two words at a time those form six interleaved
// subsequences each advancing by a⁶, so the loop runs six independent
// multiply chains — the serial mul-latency chain that dominates naive
// stepping overlaps sixfold. The values are identical to serial
// stepping: LCG composition is exact modular arithmetic.
func seedVecRaw(seed int64) [rngLen]uint64 {
	var u [rngLen]uint64
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := 0; i < 20; i++ {
		x = seedrand(x)
	}
	s1 := seedrand(x)
	s2 := seedrand(s1)
	s3 := seedrand(s2)
	s4 := seedrandK(s1, seedA3)
	s5 := seedrandK(s2, seedA3)
	s6 := seedrandK(s3, seedA3)
	i := 0
	for ; i+1 < rngLen; i += 2 {
		u[i] = uint64(s1)<<40 ^ uint64(s2)<<20 ^ uint64(s3)
		u[i+1] = uint64(s4)<<40 ^ uint64(s5)<<20 ^ uint64(s6)
		s1, s2, s3 = seedrandK(s1, seedA6), seedrandK(s2, seedA6), seedrandK(s3, seedA6)
		s4, s5, s6 = seedrandK(s4, seedA6), seedrandK(s5, seedA6), seedrandK(s6, seedA6)
	}
	// rngLen is odd: the last word comes from the first chain triple.
	u[i] = uint64(s1)<<40 ^ uint64(s2)<<20 ^ uint64(s3)
	return u
}

var (
	cookedOnce sync.Once
	cookedTab  [rngLen]uint64
	cookedOK   bool
)

// bootstrapCooked recovers math/rand's rngCooked table from one seeded
// source's output stream.
//
// After Seed, tap starts at 0 and feed at 334 (both pre-decremented), so
// output k reads and rewrites the register as
//
//	out[k] = vec[(333−k) mod 607] + vec[(606−k) mod 607]
//	vec[(333−k) mod 607] = out[k]
//
// For k ≥ 273 the tap slot (606−k) mod 607 was already overwritten at
// step k−273, so its content is the known out[k−273] and the feed slot's
// original value — u_f XOR cooked[f] — is exposed directly. That walk
// recovers cooked[0..60] and cooked[334..606]; the remaining middle range
// then falls out of the first 273 outputs, whose tap slots (334..606) are
// now known.
func bootstrapCooked() {
	const probe = int64(20040628) // arbitrary fixed seed
	us := seedVecRaw(probe)
	src, ok := rand.NewSource(probe).(rand.Source64)
	if !ok {
		return
	}
	var out [rngLen]uint64
	for i := range out {
		out[i] = src.Uint64()
	}
	for k := rngTapOff; k < rngLen; k++ {
		f := (333 - k + rngLen) % rngLen
		cookedTab[f] = (out[k] - out[k-rngTapOff]) ^ us[f]
	}
	for k := 0; k < rngTapOff; k++ {
		f := 333 - k
		t := 606 - k
		cookedTab[f] = (out[k] - (us[t] ^ cookedTab[t])) ^ us[f]
	}
	cookedOK = cookedVerify(1) && cookedVerify(-987654321) && cookedVerify(1<<40+7)
}

// cookedVerify cross-checks the recovered table: a Rand built from it
// must reproduce math/rand's output stream for the given seed.
func cookedVerify(seed int64) bool {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		return false
	}
	r := &Rand{vec: seededVec(seed), tap: 0, feed: rngLen - rngTapOff, bi: rngBatch}
	for i := 0; i < 2*rngLen; i++ {
		if r.Uint64() != src.Uint64() {
			return false
		}
	}
	return true
}

// seededVec returns the post-seeding feedback register for a seed.
func seededVec(seed int64) [rngLen]uint64 {
	vec := seedVecRaw(seed)
	for i := range vec {
		vec[i] ^= cookedTab[i]
	}
	return vec
}

// seedCache memoizes seeded registers: replicated campaigns and series
// benchmarks construct many simulators over a small, recurring set of
// seeds, and a 4.9 KB copy is far cheaper than the ~1,900-step reseed.
var seedCache = struct {
	sync.Mutex
	vecs  map[int64]*[rngLen]uint64
	order []int64 // FIFO eviction
}{vecs: make(map[int64]*[rngLen]uint64)}

const seedCacheCap = 128

// cachedSeededVec writes the seeded register for seed into dst, serving
// repeats from the cache. Writing through a pointer keeps the 4.9 KB
// register out of return-value copies on the construction path.
func cachedSeededVec(seed int64, dst *[rngLen]uint64) {
	seedCache.Lock()
	if v, ok := seedCache.vecs[seed]; ok {
		*dst = *v
		seedCache.Unlock()
		return
	}
	seedCache.Unlock()
	*dst = seededVec(seed)
	seedCache.Lock()
	if _, ok := seedCache.vecs[seed]; !ok {
		// At capacity, the evicted entry's register array is recycled for
		// the new one: a full cache under churning seeds (a sweep over an
		// increasing seed sequence) then allocates nothing.
		var slot *[rngLen]uint64
		if len(seedCache.order) >= seedCacheCap {
			oldest := seedCache.order[0]
			seedCache.order = seedCache.order[1:]
			slot = seedCache.vecs[oldest]
			delete(seedCache.vecs, oldest)
		}
		if slot == nil {
			slot = new([rngLen]uint64)
		}
		*slot = *dst
		seedCache.vecs[seed] = slot
		seedCache.order = append(seedCache.order, seed)
	}
	seedCache.Unlock()
}

// Rand is the simulation's deterministic random stream. It produces the
// bit-identical value sequence of rand.New(rand.NewSource(seed)) for
// every method, with draws batched rngBatch at a time.
//
// Rand is not safe for concurrent use; each Sim owns one stream.
type Rand struct {
	vec       [rngLen]uint64
	tap, feed int
	buf       [rngBatch]uint64
	bi        int // next unread buffer slot; rngBatch = empty
	fallback  *rand.Rand
}

// NewRand returns a deterministic stream for the seed.
func NewRand(seed int64) *Rand {
	r := new(Rand)
	r.seed(seed)
	return r
}

// seed (re)initializes the stream in place, so a Rand embedded by value
// in a larger struct costs no extra allocation.
func (r *Rand) seed(seed int64) {
	cookedOnce.Do(bootstrapCooked)
	if !cookedOK {
		*r = Rand{fallback: rand.New(rand.NewSource(seed))}
		return
	}
	r.fallback = nil
	r.tap = 0
	r.feed = rngLen - rngTapOff
	r.bi = rngBatch
	cachedSeededVec(seed, &r.vec)
}

// refill produces the next rngBatch outputs in one pass. The inner loops
// run wraparound-free segments, so the per-output cost is one add and
// two register moves.
func (r *Rand) refill() {
	tap, feed := r.tap, r.feed
	n := 0
	for n < rngBatch {
		// Steps until tap or feed would wrap (they decrement first).
		k := tap
		if feed < k {
			k = feed
		}
		if rem := rngBatch - n; k > rem {
			k = rem
		}
		if k == 0 {
			if tap == 0 {
				tap = rngLen
			}
			if feed == 0 {
				feed = rngLen
			}
			continue
		}
		for i := 0; i < k; i++ {
			tap--
			feed--
			x := r.vec[feed] + r.vec[tap]
			r.vec[feed] = x
			r.buf[n] = x
			n++
		}
	}
	r.tap, r.feed = tap, feed
	r.bi = 0
}

// Uint64 returns the next 64-bit value in the stream.
func (r *Rand) Uint64() uint64 {
	if r.fallback != nil {
		return r.fallback.Uint64()
	}
	if r.bi == rngBatch {
		r.refill()
	}
	v := r.buf[r.bi]
	r.bi++
	return v
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	if r.fallback != nil {
		return r.fallback.Int63()
	}
	return int64(r.Uint64() & rngMask)
}

// Int31 returns a non-negative 31-bit value.
func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Uint32 returns a 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Int63() >> 31) }

// Int63n returns a value in [0, n). It panics if n <= 0, with
// math/rand's message.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Int31n returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 {
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// Float64 returns a value in [0.0, 1.0), preserving math/rand's Go 1
// value stream (including its resample-on-1.0 branch).
func (r *Rand) Float64() float64 {
again:
	f := float64(r.Int63()) / (1 << 63)
	if f == 1 {
		goto again
	}
	return f
}
