package des

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
	"time"
)

// Reference scheduler: the container/heap implementation the calendar
// queue replaced, used as the ordering oracle for differential tests.
type refEvent struct {
	at  time.Duration
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// TestQueueDifferential drives the calendar queue and the reference heap
// through randomized schedule/cancel/run interleavings and checks they
// fire the same events in the same order — including FIFO ties, which the
// generator produces deliberately by reusing a small set of times.
func TestQueueDifferential(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		sim := New(1)

		ref := refHeap{}
		canceled := map[int]bool{}
		handles := map[int]Handle{}
		var refNow time.Duration

		var simFired, refFired []int
		nextID := 0

		// A small time palette guarantees plenty of exact ties.
		palette := make([]time.Duration, 8)
		for i := range palette {
			palette[i] = time.Duration(rng.Int63n(int64(10 * time.Hour)))
		}

		schedule := func() {
			id := nextID
			nextID++
			var delay time.Duration
			switch rng.Intn(10) {
			case 0:
				delay = time.Duration(math.MaxInt64) // never event
			case 1, 2, 3:
				delay = palette[rng.Intn(len(palette))]
			default:
				delay = time.Duration(rng.Int63n(int64(100 * time.Hour)))
			}
			h, err := sim.ScheduleHandle(delay, func() { simFired = append(simFired, id) })
			if err != nil {
				t.Fatalf("trial %d: schedule: %v", trial, err)
			}
			handles[id] = h
			at := sim.Now() + delay
			if at < sim.Now() {
				at = time.Duration(math.MaxInt64)
			}
			if at != time.Duration(math.MaxInt64) {
				// The reference models never-parking by omission.
				heap.Push(&ref, &refEvent{at: at, seq: uint64(id), id: id})
			}
		}

		cancel := func() {
			if len(handles) == 0 {
				return
			}
			// Deterministic choice among live ids.
			ids := make([]int, 0, len(handles))
			for id := range handles {
				ids = append(ids, id)
			}
			// map iteration is random; sort by id for reproducibility
			for i := 1; i < len(ids); i++ {
				for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
					ids[j], ids[j-1] = ids[j-1], ids[j]
				}
			}
			id := ids[rng.Intn(len(ids))]
			sim.Cancel(handles[id])
			delete(handles, id)
			canceled[id] = true
		}

		run := func() {
			until := refNow + time.Duration(rng.Int63n(int64(20*time.Hour)))
			if until < refNow || rng.Intn(20) == 0 {
				until = time.Duration(math.MaxInt64)
			}
			if err := sim.Run(until); err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			for len(ref) > 0 && ref[0].at <= until {
				e := heap.Pop(&ref).(*refEvent)
				if !canceled[e.id] {
					refFired = append(refFired, e.id)
					delete(handles, e.id)
				}
			}
			refNow = until
		}

		for op := 0; op < 400; op++ {
			switch rng.Intn(6) {
			case 0:
				cancel()
			case 1:
				run()
			default:
				schedule()
			}
		}
		run()

		if len(simFired) != len(refFired) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(simFired), len(refFired))
		}
		for i := range simFired {
			if simFired[i] != refFired[i] {
				t.Fatalf("trial %d: firing order diverges at %d: got id %d, want %d",
					trial, i, simFired[i], refFired[i])
			}
		}
	}
}

// TestQueueFIFOTiesAcrossResize schedules many same-time events (forcing
// bucket-table resizes in between) and checks they fire in schedule order.
func TestQueueFIFOTiesAcrossResize(t *testing.T) {
	sim := New(1)
	const n = 500
	var got []int
	for i := 0; i < n; i++ {
		i := i
		if err := sim.Schedule(time.Hour, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
		// Interleave spread-out events to force resizes and rehashing.
		if err := sim.Schedule(time.Duration(i+2)*time.Hour, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("fired %d of %d tied events", len(got), n)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("tie order broken at %d: got id %d", i, id)
		}
	}
}

// TestCancel covers the handle lifecycle: live cancel, double cancel,
// cancel after firing, and the zero Handle.
func TestCancel(t *testing.T) {
	sim := New(1)
	fired := false
	h, err := sim.ScheduleHandle(time.Second, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Cancel(h) {
		t.Fatal("first Cancel returned false for a pending event")
	}
	if sim.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if sim.Processed() != 0 {
		t.Fatalf("canceled event counted as processed: %d", sim.Processed())
	}

	h2, err := sim.ScheduleHandle(time.Second, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if sim.Cancel(h2) {
		t.Fatal("Cancel returned true for an already-fired event")
	}
	if sim.Cancel(Handle{}) {
		t.Fatal("Cancel returned true for the zero Handle")
	}
}

// TestCancelReclaimsSlot checks the free list actually recycles slots:
// schedule/cancel churn must not grow the slab.
func TestCancelReclaimsSlot(t *testing.T) {
	sim := New(1)
	for i := 0; i < 10000; i++ {
		h, err := sim.ScheduleHandle(time.Hour, func() {})
		if err != nil {
			t.Fatal(err)
		}
		if !sim.Cancel(h) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	if n := len(sim.q.events); n > 2 {
		t.Fatalf("slab grew to %d slots under schedule/cancel churn; free list not reused", n)
	}
}

// TestNeverEventsReclaimed checks the far-horizon behavior end to end:
// parked events are invisible to NextEventAt, don't run even at the
// maximal horizon, are counted by Pending, and are reclaimable.
func TestNeverEventsReclaimed(t *testing.T) {
	sim := New(1)
	fired := false
	h, err := sim.ScheduleHandle(time.Duration(math.MaxInt64), func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.NextEventAt(); ok {
		t.Fatal("NextEventAt reported a parked never event")
	}
	if got := sim.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1 (parked event still counts)", got)
	}
	if err := sim.Run(time.Duration(math.MaxInt64)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("never event executed at the maximal horizon")
	}
	if !sim.Cancel(h) {
		t.Fatal("parked event was not cancellable")
	}
	if got := sim.Pending(); got != 0 {
		t.Fatalf("Pending = %d after reclaiming parked event, want 0", got)
	}
}

// TestNeverEventsNoCreep re-arms a far-horizon timer many times, as a
// vanishing-rate component timer does over a longevity series, and checks
// the pending population stays bounded when each re-arm cancels its
// predecessor.
func TestNeverEventsNoCreep(t *testing.T) {
	sim := New(1)
	var h Handle
	for i := 0; i < 5000; i++ {
		sim.Cancel(h)
		var err error
		h, err = sim.ScheduleHandle(time.Duration(math.MaxInt64), func() {})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.Pending(); got != 1 {
		t.Fatalf("Pending = %d after re-arming with cancellation, want 1", got)
	}
	if n := len(sim.q.events); n > 2 {
		t.Fatalf("slab grew to %d slots under never-event churn", n)
	}
}
