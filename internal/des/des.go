// Package des is a small discrete-event simulation kernel: a virtual
// clock, an event heap, and deterministic seeded random variates. It
// drives the simulated JSAS testbed (package testbed) that stands in for
// the paper's physical lab environment.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ErrStopped is reported when scheduling on a stopped simulation.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. The zero value is not
// usable; construct with New.
type Sim struct {
	now       time.Duration
	queue     eventHeap
	seq       uint64
	processed uint64
	stopped   bool
	rng       *rand.Rand
}

// New creates a simulator with a deterministic RNG stream.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG returns the simulation's random stream.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time. Negative delays fire
// immediately (at the current time).
func (s *Sim) Schedule(delay time.Duration, fn func()) error {
	if s.stopped {
		return ErrStopped
	}
	if fn == nil {
		return errors.New("des: nil event callback")
	}
	if delay < 0 {
		delay = 0
	}
	at := s.now + delay
	if at < s.now {
		// Overflow: an effectively-never event (e.g. an exponential draw
		// for a vanishing rate). Park it at the far horizon instead of
		// wrapping into the past.
		at = math.MaxInt64
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
	return nil
}

// NextEventAt returns the virtual time of the earliest pending event and
// whether one exists. Campaign drivers use it to advance the simulation
// event-by-event — measured intervals (e.g. recovery times) are then exact
// to the simulator's clock instead of quantized to a polling step.
func (s *Sim) NextEventAt() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Run processes events in time order until the virtual clock would pass
// until, the queue drains, or Stop is called. The clock is left at until
// (or at the stop/drain time if earlier events stopped it).
func (s *Sim) Run(until time.Duration) error {
	if until < s.now {
		return fmt.Errorf("des: run until %v is before now %v", until, s.now)
	}
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.processed++
		next.fn()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
	return nil
}

// Stop halts the simulation: Run returns after the current event and
// further Schedule calls fail.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// Processed returns the total number of events executed so far — the
// kernel-level measure of simulation work, exposed so drivers (package
// testbed) can report it to the metrics layer.
func (s *Sim) Processed() uint64 { return s.processed }

// Exponential draws an exponentially distributed duration with the given
// mean. A non-positive mean returns 0.
func (s *Sim) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	d := -math.Log(u) * float64(mean)
	if d > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// ExponentialRate draws an exponential duration for a rate expressed in
// events per hour. A non-positive or vanishing rate returns the maximum
// duration (effectively "never") — converting the would-be mean to a
// Duration first would overflow into the past.
func (s *Sim) ExponentialRate(perHour float64) time.Duration {
	if perHour <= 0 {
		return time.Duration(math.MaxInt64)
	}
	meanNs := float64(time.Hour) / perHour
	if meanNs >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return s.Exponential(time.Duration(meanNs))
}

// Uniform draws a uniformly distributed duration in [lo, hi].
func (s *Sim) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	span := int64(hi - lo)
	if span < 0 || span == math.MaxInt64 {
		// Either span+1 would overflow to a negative Int63n argument and
		// panic (span == MaxInt64), or hi-lo itself already wrapped
		// negative because the true range exceeds MaxInt64 (negative lo
		// with hi parked at the far horizon). Both happen for real
		// inputs: Schedule and ExponentialRate park "effectively never"
		// events at math.MaxInt64, so ranges like [0, MaxInt64] reach
		// here. Draw over [lo, lo+MaxInt64) instead — the widest span a
		// 63-bit draw can cover, indistinguishable at nanosecond
		// resolution.
		return lo + time.Duration(s.rng.Int63())
	}
	return lo + time.Duration(s.rng.Int63n(span+1))
}
