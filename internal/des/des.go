// Package des is a small discrete-event simulation kernel: a virtual
// clock, a calendar-queue event scheduler, and deterministic seeded
// random variates. It drives the simulated JSAS testbed (package
// testbed) that stands in for the paper's physical lab environment.
package des

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrStopped is reported when scheduling on a stopped simulation.
var ErrStopped = errors.New("des: simulation stopped")

// Sim is a single-threaded discrete-event simulator. The zero value is not
// usable; construct with New.
type Sim struct {
	now       time.Duration
	q         calQueue
	seq       uint64
	processed uint64
	stopped   bool
	rng       Rand // embedded by value: one allocation with the Sim
}

// simPool recycles released simulators. A Sim is ~7 KB dominated by the
// RNG's feedback register and batch buffer; campaign and series drivers
// construct one per replica run, so reuse keeps the hot construction
// path free of large zeroed allocations.
var simPool sync.Pool

// New creates a simulator with a deterministic RNG stream. A recycled
// simulator (see Release) is reset to exactly the state a fresh one
// would have, so results never depend on whether the Sim was pooled.
func New(seed int64) *Sim {
	s, _ := simPool.Get().(*Sim)
	if s == nil {
		s = new(Sim)
		s.q.init()
	} else {
		s.reset()
	}
	s.rng.seed(seed)
	return s
}

// reset restores pristine simulator state, keeping allocated capacity.
func (s *Sim) reset() {
	s.now = 0
	s.seq = 0
	s.processed = 0
	s.stopped = false
	s.q.reset()
}

// Release returns the simulator to the kernel's pool for reuse by a
// future New. The caller must not use the Sim (or any Handle it issued)
// afterwards: slot generations restart, so stale handles held across a
// Release are not detected the way ordinary stale handles are.
func (s *Sim) Release() { simPool.Put(s) }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG returns the simulation's random stream.
func (s *Sim) RNG() *Rand { return &s.rng }

// Schedule runs fn after delay of virtual time. Negative delays fire
// immediately (at the current time).
func (s *Sim) Schedule(delay time.Duration, fn func()) error {
	_, err := s.ScheduleHandle(delay, fn)
	return err
}

// ScheduleHandle is Schedule returning a Handle for cancellation. Timer
// owners that re-arm (superseding a pending draw) should Cancel the old
// handle so the event's slot is reclaimed immediately instead of riding
// the queue to its — possibly far-future — firing time.
func (s *Sim) ScheduleHandle(delay time.Duration, fn func()) (Handle, error) {
	if s.stopped {
		return Handle{}, ErrStopped
	}
	if fn == nil {
		return Handle{}, errors.New("des: nil event callback")
	}
	if delay < 0 {
		delay = 0
	}
	at := s.now + delay
	if at < s.now {
		// Overflow: an effectively-never event (e.g. an exponential draw
		// for a vanishing rate). Park it at the far horizon instead of
		// wrapping into the past.
		at = time.Duration(maxNever)
	}
	s.seq++
	i := s.q.alloc()
	e := &s.q.events[i]
	e.at = int64(at)
	e.seq = s.seq
	e.fn = fn
	if e.at == maxNever {
		s.q.parkNever(i)
	} else {
		s.q.insert(i)
	}
	return Handle{slot: i + 1, gen: e.gen}, nil
}

// Cancel revokes a scheduled event. It reports whether the event was
// still pending: canceling an already-fired, already-canceled, or zero
// Handle is a safe no-op returning false. Canceled events never run and
// do not count as processed.
func (s *Sim) Cancel(h Handle) bool {
	if h.slot == 0 || int(h.slot) > len(s.q.events) {
		return false
	}
	i := h.slot - 1
	e := &s.q.events[i]
	if e.gen != h.gen || e.where == whereFree {
		return false
	}
	if e.where == whereNever {
		s.q.unparkNever(i)
	} else {
		s.q.unlink(i)
	}
	s.q.release(i)
	return true
}

// NextEventAt returns the virtual time of the earliest pending event and
// whether one exists. Campaign drivers use it to advance the simulation
// event-by-event — measured intervals (e.g. recovery times) are then exact
// to the simulator's clock instead of quantized to a polling step.
// Far-horizon "never" events are not pending for this purpose: they exist
// only as parked placeholders and would otherwise make every horizon look
// busy.
func (s *Sim) NextEventAt() (time.Duration, bool) {
	i := s.q.peek()
	if i < 0 {
		return 0, false
	}
	return time.Duration(s.q.events[i].at), true
}

// Run processes events in time order until the virtual clock would pass
// until, the queue drains, or Stop is called. The clock is left at until
// (or at the stop/drain time if earlier events stopped it). Events parked
// at the far horizon (math.MaxInt64) are "never" events and do not run,
// even when until is math.MaxInt64.
func (s *Sim) Run(until time.Duration) error {
	if until < s.now {
		return fmt.Errorf("des: run until %v is before now %v", until, s.now)
	}
	for !s.stopped {
		i := s.q.peek()
		if i < 0 {
			break
		}
		e := &s.q.events[i]
		if e.at > int64(until) {
			break
		}
		fn := e.fn
		s.now = time.Duration(e.at)
		s.q.unlink(i)
		s.q.release(i)
		s.processed++
		fn()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
	return nil
}

// Stop halts the simulation: Run returns after the current event and
// further Schedule calls fail.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Pending returns the number of queued events, including parked
// far-horizon ones.
func (s *Sim) Pending() int { return s.q.pending() }

// Processed returns the total number of events executed so far — the
// kernel-level measure of simulation work, exposed so drivers (package
// testbed) can report it to the metrics layer.
func (s *Sim) Processed() uint64 { return s.processed }

// Exponential draws an exponentially distributed duration with the given
// mean. A non-positive mean returns 0.
func (s *Sim) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	d := -math.Log(u) * float64(mean)
	if d > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// ExponentialRate draws an exponential duration for a rate expressed in
// events per hour. A non-positive or vanishing rate returns the maximum
// duration (effectively "never") — converting the would-be mean to a
// Duration first would overflow into the past.
func (s *Sim) ExponentialRate(perHour float64) time.Duration {
	if perHour <= 0 {
		return time.Duration(math.MaxInt64)
	}
	meanNs := float64(time.Hour) / perHour
	if meanNs >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return s.Exponential(time.Duration(meanNs))
}

// Uniform draws a uniformly distributed duration in [lo, hi].
func (s *Sim) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	span := int64(hi - lo)
	if span < 0 || span == math.MaxInt64 {
		// Either span+1 would overflow to a negative Int63n argument and
		// panic (span == MaxInt64), or hi-lo itself already wrapped
		// negative because the true range exceeds MaxInt64 (negative lo
		// with hi parked at the far horizon). Both happen for real
		// inputs: Schedule and ExponentialRate park "effectively never"
		// events at math.MaxInt64, so ranges like [0, MaxInt64] reach
		// here. Draw over [lo, lo+MaxInt64) instead — the widest span a
		// 63-bit draw can cover, indistinguishable at nanosecond
		// resolution.
		return lo + time.Duration(s.rng.Int63())
	}
	return lo + time.Duration(s.rng.Int63n(span+1))
}
