package des

import (
	"math/rand"
	"testing"
)

// TestRandMatchesMathRand pins the determinism contract of the rebuilt
// kernel's generator: for any seed, every Rand method must produce the
// bit-identical value stream of rand.New(rand.NewSource(seed)). The
// recorded campaign and longevity outputs were produced by math/rand, so
// any divergence here silently breaks byte-identical reports.
func TestRandMatchesMathRand(t *testing.T) {
	t.Parallel()
	seeds := []int64{0, 1, -1, 42, 1 << 31, -(1 << 40), 1<<62 + 12345, -987654321}
	for _, seed := range seeds {
		r := NewRand(seed)
		ref := rand.New(rand.NewSource(seed))
		// Interleave methods so tap/feed bookkeeping is exercised at many
		// phases of the batch buffer, not just method-aligned boundaries.
		for i := 0; i < 5000; i++ {
			switch i % 7 {
			case 0:
				if got, want := r.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d step %d: Uint64 = %d, want %d", seed, i, got, want)
				}
			case 1:
				if got, want := r.Int63(), ref.Int63(); got != want {
					t.Fatalf("seed %d step %d: Int63 = %d, want %d", seed, i, got, want)
				}
			case 2:
				if got, want := r.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d step %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 3:
				if got, want := r.Int63n(1e12+7), ref.Int63n(1e12+7); got != want {
					t.Fatalf("seed %d step %d: Int63n = %d, want %d", seed, i, got, want)
				}
			case 4:
				if got, want := r.Int31(), ref.Int31(); got != want {
					t.Fatalf("seed %d step %d: Int31 = %d, want %d", seed, i, got, want)
				}
			case 5:
				if got, want := r.Intn(97), ref.Intn(97); got != want {
					t.Fatalf("seed %d step %d: Intn = %d, want %d", seed, i, got, want)
				}
			case 6:
				if got, want := r.Uint32(), ref.Uint32(); got != want {
					t.Fatalf("seed %d step %d: Uint32 = %d, want %d", seed, i, got, want)
				}
			}
		}
	}
}

// TestRandPowerOfTwoRanges covers the masked fast paths of the bounded
// draws, which bypass the resample loop.
func TestRandPowerOfTwoRanges(t *testing.T) {
	t.Parallel()
	r := NewRand(99)
	ref := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		if got, want := r.Int63n(1<<40), ref.Int63n(1<<40); got != want {
			t.Fatalf("step %d: Int63n(2^40) = %d, want %d", i, got, want)
		}
		if got, want := r.Int31n(1<<16), ref.Int31n(1<<16); got != want {
			t.Fatalf("step %d: Int31n(2^16) = %d, want %d", i, got, want)
		}
	}
}

// TestRandPanicsLikeMathRand pins the panic contract of the bounded
// draws to math/rand's messages.
func TestRandPanicsLikeMathRand(t *testing.T) {
	t.Parallel()
	wantPanic := func(want string, fn func()) {
		defer func() {
			if got := recover(); got != want {
				t.Errorf("panic = %v, want %q", got, want)
			}
		}()
		fn()
	}
	r := NewRand(1)
	wantPanic("invalid argument to Int63n", func() { r.Int63n(0) })
	wantPanic("invalid argument to Int31n", func() { r.Int31n(-3) })
	wantPanic("invalid argument to Intn", func() { r.Intn(0) })
}

// TestSeededVecCacheChurn drives the seed cache far past its capacity so
// eviction, slot recycling, and re-misses all run, then re-verifies
// streams for seeds that were evicted along the way.
func TestSeededVecCacheChurn(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < int64(3*seedCacheCap); seed++ {
		r := NewRand(seed)
		ref := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 3; i++ {
			if got, want := r.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: %d != %d", seed, i, got, want)
			}
		}
	}
	// Seed 0 was evicted by the churn above; a fresh Rand re-seeds it.
	r := NewRand(0)
	ref := rand.NewSource(0).(rand.Source64)
	if got, want := r.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("evicted seed re-miss: %d != %d", got, want)
	}
}
