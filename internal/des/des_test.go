package des

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestScheduleAndRunOrder(t *testing.T) {
	t.Parallel()
	s := New(1)
	var order []int
	mustSchedule := func(d time.Duration, fn func()) {
		t.Helper()
		if err := s.Schedule(d, fn); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	mustSchedule(3*time.Second, func() { order = append(order, 3) })
	mustSchedule(1*time.Second, func() { order = append(order, 1) })
	mustSchedule(2*time.Second, func() { order = append(order, 2) })
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	t.Parallel()
	s := New(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.Schedule(time.Second, func() { order = append(order, i) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestRunHorizonLeavesFutureEvents(t *testing.T) {
	t.Parallel()
	s := New(1)
	fired := false
	if err := s.Schedule(5*time.Second, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Continue run picks it up.
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event not fired on continued run")
	}
}

func TestEventsCanSchedule(t *testing.T) {
	t.Parallel()
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			if err := s.Schedule(time.Second, tick); err != nil {
				t.Errorf("re-schedule: %v", err)
			}
		}
	}
	if err := s.Schedule(time.Second, tick); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != time.Minute {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	t.Parallel()
	s := New(1)
	ran := 0
	if err := s.Schedule(time.Second, func() { ran++; s.Stop() }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(2*time.Second, func() { ran++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (stopped)", ran)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
	if err := s.Schedule(time.Second, func() {}); err != ErrStopped {
		t.Errorf("Schedule after stop: err = %v, want ErrStopped", err)
	}
}

func TestRunBackwards(t *testing.T) {
	t.Parallel()
	s := New(1)
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Millisecond); err == nil {
		t.Error("Run into the past should error")
	}
}

func TestScheduleValidation(t *testing.T) {
	t.Parallel()
	s := New(1)
	if err := s.Schedule(time.Second, nil); err == nil {
		t.Error("nil callback accepted")
	}
	// Negative delay clamps to now.
	fired := false
	if err := s.Schedule(-time.Second, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("negative-delay event not fired")
	}
}

func TestExponentialMean(t *testing.T) {
	t.Parallel()
	s := New(42)
	const n = 20000
	mean := 2 * time.Hour
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(mean).Hours()
	}
	got := sum / n
	if math.Abs(got-2) > 0.05 {
		t.Errorf("sample mean = %.3f h, want ~2 (±0.05)", got)
	}
	if s.Exponential(0) != 0 {
		t.Error("zero mean should give 0")
	}
}

func TestExponentialRate(t *testing.T) {
	t.Parallel()
	s := New(7)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExponentialRate(4).Hours() // 4 per hour → mean 0.25 h
	}
	got := sum / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("sample mean = %.4f h, want ~0.25", got)
	}
	if s.ExponentialRate(0) != time.Duration(math.MaxInt64) {
		t.Error("zero rate should give max duration")
	}
}

func TestUniform(t *testing.T) {
	t.Parallel()
	s := New(3)
	lo, hi := time.Second, 3*time.Second
	for i := 0; i < 1000; i++ {
		v := s.Uniform(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if got := s.Uniform(hi, lo); got != hi {
		t.Errorf("degenerate Uniform = %v, want lo", got)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func(seed int64) []time.Duration {
		s := New(seed)
		var out []time.Duration
		for i := 0; i < 10; i++ {
			out = append(out, s.Exponential(time.Hour))
		}
		return out
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different variates")
		}
	}
}

// TestScheduleOverflowClamps: a delay that would overflow the clock parks
// the event at the far horizon instead of wrapping into the past.
func TestScheduleOverflowClamps(t *testing.T) {
	t.Parallel()
	s := New(1)
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := s.Schedule(time.Duration(math.MaxInt64), func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100 * 365 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("effectively-never event fired")
	}
	if s.Now() != 100*365*24*time.Hour {
		t.Errorf("clock = %v, want run horizon", s.Now())
	}
}

// TestExponentialRateVanishing: a vanishing (but positive) rate must give
// an effectively-never delay, not an overflowed negative mean.
func TestExponentialRateVanishing(t *testing.T) {
	t.Parallel()
	s := New(5)
	if got := s.ExponentialRate(1e-13); got != time.Duration(math.MaxInt64) {
		t.Errorf("ExponentialRate(1e-13) = %v, want max duration", got)
	}
}

// TestExponentialDistributionKS validates the exponential generator with
// a Kolmogorov–Smirnov goodness-of-fit test, not just its mean.
func TestExponentialDistributionKS(t *testing.T) {
	t.Parallel()
	s := New(101)
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Exponential(90 * time.Minute).Hours()
	}
	res, err := stats.KolmogorovSmirnov(xs, stats.ExponentialCDF(1.5))
	if err != nil {
		t.Fatalf("KolmogorovSmirnov: %v", err)
	}
	if res.PValue < 0.005 {
		t.Errorf("exponential generator rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
}

// TestUniformDistributionKS validates Uniform the same way.
func TestUniformDistributionKS(t *testing.T) {
	t.Parallel()
	s := New(102)
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Uniform(10*time.Minute, 40*time.Minute).Minutes()
	}
	res, err := stats.KolmogorovSmirnov(xs, stats.UniformCDF(10, 40))
	if err != nil {
		t.Fatalf("KolmogorovSmirnov: %v", err)
	}
	if res.PValue < 0.005 {
		t.Errorf("uniform generator rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
}

// TestUniformFullRange is the regression test for the Int63n overflow:
// Uniform(0, MaxInt64) used to compute int64(hi-lo)+1 = MinInt64 and
// panic inside rand.Int63n. The full-range case occurs in practice when a
// bound comes from an "effectively never" horizon (Schedule's overflow
// clamp or ExponentialRate with a vanishing rate).
func TestUniformFullRange(t *testing.T) {
	s := New(1)
	horizon := time.Duration(math.MaxInt64)
	for i := 0; i < 100; i++ {
		d := s.Uniform(0, horizon)
		if d < 0 || d > horizon {
			t.Fatalf("Uniform(0, MaxInt64) = %v, out of range", d)
		}
	}
	// Near-full ranges with a nonzero lower bound must also stay in range.
	lo := -time.Duration(5)
	d := s.Uniform(lo, horizon+lo)
	if d < lo || d > horizon+lo {
		t.Fatalf("Uniform(%v, %v) = %v, out of range", lo, horizon+lo, d)
	}
	// Ranges wider than MaxInt64 make hi-lo itself wrap negative (the
	// MaxInt64 guard alone misses this); they must not panic and must
	// stay within [lo, hi].
	for i := 0; i < 100; i++ {
		d := s.Uniform(lo, horizon-1)
		if d < lo || d > horizon-1 {
			t.Fatalf("Uniform(%v, %v) = %v, out of range", lo, horizon-1, d)
		}
	}
}

// TestProcessedCountsEvents checks the kernel's event counter.
func TestProcessedCountsEvents(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		if err := s.Schedule(time.Duration(i)*time.Second, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.Processed(); got != 5 {
		t.Fatalf("Processed = %d, want 5", got)
	}
	if err := s.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.Processed(); got != 5 {
		t.Fatalf("Processed after idle run = %d, want 5", got)
	}
}

func TestNextEventAt(t *testing.T) {
	t.Parallel()
	sim := New(1)
	if _, ok := sim.NextEventAt(); ok {
		t.Fatal("empty queue reported a next event")
	}
	if err := sim.Schedule(5*time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Schedule(2*time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	at, ok := sim.NextEventAt()
	if !ok || at != 2*time.Second {
		t.Fatalf("NextEventAt = %v, %v; want 2s, true", at, ok)
	}
	if err := sim.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	at, ok = sim.NextEventAt()
	if !ok || at != 5*time.Second {
		t.Fatalf("after draining to 3s: NextEventAt = %v, %v; want 5s, true", at, ok)
	}
	if err := sim.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.NextEventAt(); ok {
		t.Fatal("drained queue reported a next event")
	}
}
