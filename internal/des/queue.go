package des

// Calendar-queue event scheduler (Brown 1988) with a slab arena and
// free-list, replacing the previous container/heap scheduler.
//
// Why a calendar queue: the testbed's pending-event population is small
// and its inter-event gaps are stable (component timers at comparable
// scales), which is the regime where a calendar queue gives O(1)
// enqueue/dequeue — events hash into year-width buckets by time, the
// dequeue cursor walks the current year, and resize keeps ~1 event per
// bucket. The previous heap paid O(log n) per operation plus one
// allocation per Schedule; here Schedule in steady state is a free-list
// pop, a bucket append, and no allocation.
//
// Determinism: ordering is the same total order as the heap — (at, seq)
// with seq breaking ties FIFO. Events with equal at always hash to the
// same bucket, where they are kept list-sorted by (at, seq), so the
// tie-break survives the bucket structure. Resizing only rehashes; it
// never reorders equal keys.
//
// Slots are identified by index into the slab (stable across growth) and
// guarded by a per-slot generation counter, so a Handle held after its
// event fired or was canceled is harmlessly stale rather than dangling.
//
// Events at exactly maxNever (math.MaxInt64 ns) are "never" events —
// overflow-clamped timers and vanishing-rate exponential draws. They are
// parked in a side list instead of a bucket: Run and NextEventAt never
// see them, Cancel reclaims them in O(1), and they cost nothing as the
// live population churns.

import "math"

const (
	maxNever = int64(math.MaxInt64)

	// where sentinel values; non-negative means a bucket index.
	whereFree  = int32(-1)
	whereNever = int32(-2)

	minBuckets = 16
)

// Handle identifies a scheduled event for cancellation. The zero Handle
// is invalid and never matches a live event.
type Handle struct {
	slot int32  // slab index + 1; 0 = invalid
	gen  uint32 // slot generation at schedule time
}

type qevent struct {
	at   int64
	seq  uint64
	year uint64 // at / q.width at insert time, so peek never divides
	fn   func()
	gen  uint32
	// where: bucket index, whereFree, or whereNever.
	where int32
	// prev/next: intra-bucket doubly-linked list (slab indices, -1 = none).
	// For free slots next chains the free list; for never events prev
	// holds the position in the never slice.
	prev, next int32
}

type calQueue struct {
	events []qevent
	free   int32 // free-list head, -1 when empty

	buckets []int32 // per-bucket list head, -1 when empty
	tails   []int32 // per-bucket list tail
	mask    uint64  // len(buckets)-1 (power of two)
	width   uint64  // bucket width in ns, >= 1
	size    int     // events stored in buckets (excludes never/free)
	curN    uint64  // dequeue cursor: year-slot lower bound for the minimum
	minIdx  int32   // memoized peek result; -1 = unknown

	never []int32 // parked maxNever events

	scratch []int32 // resize scratch: live slots collected before rebuild
}

func (q *calQueue) init() {
	q.free = -1
	q.minIdx = -1
	q.width = uint64(1) << 30 // ~1 s; resize recalibrates from live spans
	// Pre-size the slab for a typical testbed population so steady growth
	// doesn't churn through the append doubling ladder.
	q.events = make([]qevent, 0, 2*minBuckets)
	q.setBuckets(minBuckets)
}

func (q *calQueue) setBuckets(n int) {
	q.buckets = make([]int32, n)
	q.tails = make([]int32, n)
	for i := range q.buckets {
		q.buckets[i] = -1
		q.tails[i] = -1
	}
	q.mask = uint64(n) - 1
}

// alloc returns a slab slot, reusing the free list when possible.
func (q *calQueue) alloc() int32 {
	if i := q.free; i >= 0 {
		q.free = q.events[i].next
		return i
	}
	q.events = append(q.events, qevent{})
	return int32(len(q.events) - 1)
}

// release returns a slot to the free list, bumping its generation so any
// outstanding Handle goes stale.
func (q *calQueue) release(i int32) {
	e := &q.events[i]
	e.gen++
	e.fn = nil
	e.where = whereFree
	e.next = q.free
	q.free = i
}

func (q *calQueue) less(a, b int32) bool {
	ea, eb := &q.events[a], &q.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// insert places an allocated slot (with at/seq/fn/gen set) into its
// bucket, keeping the bucket list sorted by (at, seq), and triggers a
// resize when the population outgrows the bucket count.
func (q *calQueue) insert(i int32) {
	q.insertRaw(i)
	q.size++
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets)) // re-anchors minIdx itself
		return
	}
	// A known minimum stays valid unless the new event undercuts it; an
	// unknown one (-1) must stay unknown — the new event proves nothing.
	if q.minIdx >= 0 && q.less(i, q.minIdx) {
		q.minIdx = i
	}
}

func (q *calQueue) insertRaw(i int32) {
	e := &q.events[i]
	n := uint64(e.at) / q.width
	b := int32(n & q.mask)
	e.where = b
	e.year = n
	if n < q.curN {
		// The cursor tracks the year of the minimum *seen* event, which
		// can sit ahead of the clock after Run stops short of it; a new
		// event may legally land in between. Keep curN a true lower bound.
		q.curN = n
	}
	// Search backwards from the tail: new events are usually the latest
	// in their bucket (timers fire in rough arrival order).
	at, seq := e.at, e.seq
	cur := q.tails[b]
	for cur >= 0 {
		c := &q.events[cur]
		if c.at < at || (c.at == at && c.seq < seq) {
			break
		}
		cur = c.prev
	}
	if cur < 0 { // new head
		e.prev = -1
		e.next = q.buckets[b]
		if e.next >= 0 {
			q.events[e.next].prev = i
		} else {
			q.tails[b] = i
		}
		q.buckets[b] = i
		return
	}
	c := &q.events[cur]
	e.prev = cur
	e.next = c.next
	c.next = i
	if e.next >= 0 {
		q.events[e.next].prev = i
	} else {
		q.tails[b] = i
	}
}

// unlink removes a bucketed slot from its list without releasing it.
func (q *calQueue) unlink(i int32) {
	if i == q.minIdx {
		q.minIdx = -1
	}
	e := &q.events[i]
	b := e.where
	if e.prev >= 0 {
		q.events[e.prev].next = e.next
	} else {
		q.buckets[b] = e.next
	}
	if e.next >= 0 {
		q.events[e.next].prev = e.prev
	} else {
		q.tails[b] = e.prev
	}
	q.size--
	if len(q.buckets) > minBuckets && q.size < len(q.buckets)/4 {
		q.resize(len(q.buckets) / 2)
	}
}

// resize rebuilds the bucket table with a width recalibrated to the live
// event span (target ~3 events per bucket-width across the span, the
// classic calendar-queue heuristic). Rehashing preserves (at, seq) order
// within every bucket because insertRaw keeps lists sorted.
func (q *calQueue) resize(nb int) {
	// Collect live slots and the time span before tearing down buckets.
	// The scratch buffer is kept across resizes: width recalibration (see
	// peek's fallback) happens on every population-regime shift, so this
	// path must not allocate in steady state.
	live := q.scratch[:0]
	var lo, hi int64
	first := true
	for _, h := range q.buckets {
		for i := h; i >= 0; i = q.events[i].next {
			live = append(live, i)
			at := q.events[i].at
			if first {
				lo, hi = at, at
				first = false
			} else {
				if at < lo {
					lo = at
				}
				if at > hi {
					hi = at
				}
			}
		}
	}
	q.scratch = live[:0]
	if n := len(live); n > 1 && hi > lo {
		w := uint64(hi-lo) / uint64(n) * 3
		if w == 0 {
			w = 1
		}
		q.width = w
	}
	if nb == len(q.buckets) {
		for i := range q.buckets {
			q.buckets[i] = -1
			q.tails[i] = -1
		}
	} else {
		q.setBuckets(nb)
	}
	for _, i := range live {
		q.insertRaw(i)
	}
	if len(live) > 0 {
		// Re-anchor the cursor at the (possibly rescaled) slot of the
		// minimum; q.curN must stay a lower bound for every live slot.
		min := live[0]
		for _, i := range live[1:] {
			if q.less(i, min) {
				min = i
			}
		}
		q.curN = q.events[min].year
		q.minIdx = min
	} else {
		q.curN = 0
		q.minIdx = -1
	}
}

// peek returns the slot of the minimum (at, seq) event, or -1. The
// result is memoized in minIdx (invalidated by unlink of the minimum and
// recomputed by resize), so back-to-back peeks — the pattern Run's
// horizon checks produce — cost one field read. On a miss it scans one
// full bucket cycle from the cursor's year-slot; if no event lives
// within that cycle (the population jumped far ahead), it falls back to
// a direct min scan and re-anchors the cursor.
func (q *calQueue) peek() int32 {
	if q.size == 0 {
		return -1
	}
	if q.minIdx >= 0 {
		return q.minIdx
	}
	nb := uint64(len(q.buckets))
	n := q.curN
	for i := uint64(0); i < nb; i++ {
		h := q.buckets[(n+i)&q.mask]
		if h >= 0 && q.events[h].year == n+i {
			q.curN = n + i
			q.minIdx = h
			return h
		}
	}
	best := int32(-1)
	for _, h := range q.buckets {
		if h >= 0 && (best < 0 || q.less(h, best)) {
			best = h
		}
	}
	q.curN = q.events[best].year
	q.minIdx = best
	if q.size > 1 {
		// The cycle scan failed: every event lies beyond one full bucket
		// cycle from the cursor, so the width no longer matches the event
		// spacing. A stable-size population never crosses the grow/shrink
		// thresholds, so this is the only recalibration trigger it has —
		// rebuild at the same bucket count to recompute width from the
		// live span. Afterwards one cycle spans ≥ 3/2 of the population
		// span, so the scan cannot fail again until the regime shifts.
		q.resize(len(q.buckets))
		best = q.minIdx
	}
	return best
}

// parkNever stores a maxNever slot in the never list.
func (q *calQueue) parkNever(i int32) {
	e := &q.events[i]
	e.where = whereNever
	e.prev = int32(len(q.never))
	e.next = -1
	q.never = append(q.never, i)
}

// unparkNever removes a slot from the never list (swap-with-last).
func (q *calQueue) unparkNever(i int32) {
	pos := q.events[i].prev
	last := int32(len(q.never) - 1)
	moved := q.never[last]
	q.never[pos] = moved
	q.events[moved].prev = pos
	q.never = q.never[:last]
}

// pending counts all scheduled-and-unfired events, parked ones included.
func (q *calQueue) pending() int { return q.size + len(q.never) }

// reset restores an initialized queue to its pristine state, keeping the
// slab and bucket capacity. Slots are zeroed so callback closures from
// the previous owner don't outlive it through the recycled slab.
func (q *calQueue) reset() {
	for i := range q.events {
		q.events[i] = qevent{}
	}
	q.events = q.events[:0]
	q.free = -1
	q.minIdx = -1
	q.size = 0
	q.curN = 0
	q.width = uint64(1) << 30
	q.never = q.never[:0]
	if len(q.buckets) != minBuckets {
		q.setBuckets(minBuckets)
		return
	}
	for i := range q.buckets {
		q.buckets[i] = -1
		q.tails[i] = -1
	}
}
