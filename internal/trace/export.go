package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// encodeJSONL writes one span as a single JSON line.
func encodeJSONL(w io.Writer, sp Span) error {
	b, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONL renders spans in the canonical JSONL format, one span per
// line, in the given order.
func WriteJSONL(w io.Writer, spans []Span) error {
	for _, sp := range spans {
		if err := encodeJSONL(w, sp); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL decodes a JSONL span stream. Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var sp Span
		if err := json.Unmarshal([]byte(text), &sp); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// sortSpans orders spans for display: by start time, longer (enclosing)
// spans first among equal starts, then by ID for full determinism.
func sortSpans(spans []Span) []Span {
	out := append([]Span(nil), spans...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End > out[j].End
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// AttrTrack names the attribute that assigns a span to a display track
// (a Chrome trace "thread"). Spans without it fall back to a per-trace
// track.
const AttrTrack = "track"

// chromeEvent is one Chrome trace_event entry (the subset we emit:
// complete "X" events plus "M" metadata naming the tracks).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON object format of the trace_event spec.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans in the Chrome trace_event JSON object
// format, loadable in chrome://tracing and Perfetto. Spans are emitted as
// complete ("X") events. Each display track (the span's "track" attribute,
// or its trace ID) becomes one or more tids; a span that would partially
// overlap the spans already on its track's lane is bumped to an overflow
// lane, so events on any single tid always nest properly.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	ordered := sortSpans(spans)

	// laneKey → open-interval stack used for nesting checks.
	type lane struct {
		tid   int
		stack []Span
	}
	lanesByTrack := map[string][]*lane{}
	var trackOrder []string
	nextTid := 1
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	tidNames := map[int]string{}

	for _, sp := range ordered {
		track := sp.AttrString(AttrTrack)
		if track == "" {
			track = fmt.Sprintf("trace-%d", sp.Trace)
		}
		lanes := lanesByTrack[track]
		if lanes == nil {
			trackOrder = append(trackOrder, track)
		}
		var target *lane
		for _, ln := range lanes {
			// Pop intervals this span no longer falls inside.
			st := ln.stack
			for len(st) > 0 && sp.Start >= st[len(st)-1].End {
				st = st[:len(st)-1]
			}
			ln.stack = st
			if len(st) == 0 || sp.End <= st[len(st)-1].End {
				target = ln
				break
			}
		}
		if target == nil {
			target = &lane{tid: nextTid}
			nextTid++
			name := track
			if len(lanes) > 0 {
				name = fmt.Sprintf("%s (overflow %d)", track, len(lanes))
			}
			tidNames[target.tid] = name
			lanesByTrack[track] = append(lanes, target)
		}
		target.stack = append(target.stack, sp)

		args := map[string]any{"id": uint64(sp.ID), "trace": uint64(sp.Trace)}
		if sp.Parent != 0 {
			args["parent"] = uint64(sp.Parent)
		}
		if sp.Open {
			args["open"] = true
		}
		for _, a := range sp.Attrs {
			if a.Key != AttrTrack {
				args[a.Key] = a.Value()
			}
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start) / 1e3, // ns → µs
			Dur:  float64(sp.End-sp.Start) / 1e3,
			Pid:  1,
			Tid:  target.tid,
			Args: args,
		})
	}

	// Name the tracks, in first-appearance order for determinism.
	var meta []chromeEvent
	for _, track := range trackOrder {
		for _, ln := range lanesByTrack[track] {
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: ln.tid,
				Args: map[string]any{"name": tidNames[ln.tid]},
			})
		}
	}
	file.TraceEvents = append(meta, file.TraceEvents...)

	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// WriteTimeline renders a plain-text timeline: one line per span, indented
// by tree depth, ordered by start time within each trace.
func WriteTimeline(w io.Writer, spans []Span) error {
	ordered := sortSpans(spans)
	depth := map[SpanID]int{}
	byID := map[SpanID]Span{}
	for _, sp := range ordered {
		byID[sp.ID] = sp
	}
	depthOf := func(sp Span) int {
		if d, ok := depth[sp.ID]; ok {
			return d
		}
		d := 0
		for cur := sp; cur.Parent != 0; {
			p, ok := byID[cur.Parent]
			if !ok {
				break
			}
			d++
			cur = p
		}
		depth[sp.ID] = d
		return d
	}
	for _, sp := range ordered {
		attrs := make([]string, 0, len(sp.Attrs))
		for _, a := range sp.Attrs {
			if a.Key == AttrTrack {
				continue
			}
			attrs = append(attrs, a.String())
		}
		suffix := ""
		if len(attrs) > 0 {
			suffix = "  " + strings.Join(attrs, " ")
		}
		if sp.Open {
			suffix += "  [open]"
		}
		_, err := fmt.Fprintf(w, "[%14s] %s%-24s %10s%s\n",
			time.Duration(sp.Start), strings.Repeat("  ", depthOf(sp)), sp.Name,
			sp.Duration().Round(time.Millisecond), suffix)
		if err != nil {
			return err
		}
	}
	return nil
}
