package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// campaignTrace hand-builds the span tree of a two-injection campaign:
// an AS process kill with restore+reinstate stages and a system outage,
// then an HADB hardware failure with no stage children and no outage.
func campaignTrace() []Span {
	rec := New(Config{Capacity: Unbounded})
	root := rec.StartAt(SpanCampaign, 0, nil, String(AttrTrack, "campaign"))

	inj0 := rec.StartAt(SpanInjection, time.Minute, root,
		String(AttrFault, "process-kill"), String(AttrKind, "process"),
		String(AttrComponent, "AS"))
	fail := rec.StartAt(SpanFailure, time.Minute, inj0,
		String(AttrComponent, "AS"), String(AttrKind, "process"))
	rec.StartAt(SpanRestore, time.Minute, fail).EndAt(time.Minute + 25*time.Second)
	rec.StartAt(SpanReinstate, time.Minute+25*time.Second, fail).
		EndAt(time.Minute + 85*time.Second)
	out := rec.StartAt(SpanOutage, time.Minute+5*time.Second, inj0,
		String(AttrCause, "AS"))
	out.EndAt(time.Minute + 35*time.Second)
	fail.EndAt(time.Minute + 85*time.Second)
	inj0.EndAt(time.Minute + 85*time.Second)

	inj1 := rec.StartAt(SpanInjection, 10*time.Minute, root,
		String(AttrFault, "power-off"), String(AttrKind, "hw"),
		String(AttrComponent, "HADB"))
	rec.StartAt(SpanFailure, 10*time.Minute, inj1,
		String(AttrComponent, "HADB"), String(AttrKind, "hw")).
		EndAt(10*time.Minute + 40*time.Second)
	inj1.EndAt(10*time.Minute + 40*time.Second)

	root.EndAt(11 * time.Minute)
	return rec.Spans()
}

func TestAnalyzeOutagesDecomposition(t *testing.T) {
	t.Parallel()
	rep := AnalyzeOutages(campaignTrace())

	if len(rep.Outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(rep.Outages))
	}
	o := rep.Outages[0]
	if o.Cause != "AS" || o.Kind != "process" || o.Fault != "process-kill" {
		t.Errorf("outage attribution = %+v, want AS/process via injection ancestor", o)
	}
	if o.Duration() != 30*time.Second {
		t.Errorf("outage duration = %v, want 30s", o.Duration())
	}
	if rep.TotalDowntime != 30*time.Second || rep.UnattributedDowntime != 0 {
		t.Errorf("downtime = %v (unattributed %v), want 30s / 0",
			rep.TotalDowntime, rep.UnattributedDowntime)
	}
	if rep.Horizon != 11*time.Minute {
		t.Errorf("horizon = %v, want 11m", rep.Horizon)
	}

	if len(rep.Modes) != 2 {
		t.Fatalf("modes = %d, want 2 (AS/process, HADB/hw)", len(rep.Modes))
	}
	as, hadb := rep.Modes[0], rep.Modes[1]
	if as.Mode != (ModeKey{"AS", "process"}) || hadb.Mode != (ModeKey{"HADB", "hw"}) {
		t.Fatalf("mode order = %v, %v", as.Mode, hadb.Mode)
	}
	if as.Injections != 1 || as.Failures != 1 || as.Outages != 1 || as.Downtime != 30*time.Second {
		t.Errorf("AS mode = %+v", as)
	}
	if as.RecoveryMean != 85*time.Second {
		t.Errorf("AS mean recovery = %v, want 85s", as.RecoveryMean)
	}
	if as.Stages[SpanRestore] != 25*time.Second || as.Stages[SpanReinstate] != 60*time.Second {
		t.Errorf("AS stages = %v, want restore=25s reinstate=60s", as.Stages)
	}
	// A failure span without stage children books its whole duration as
	// restore time.
	if hadb.Stages[SpanRestore] != 40*time.Second {
		t.Errorf("HADB stages = %v, want restore=40s", hadb.Stages)
	}
	if hadb.Outages != 0 || hadb.Downtime != 0 {
		t.Errorf("HADB mode charged downtime: %+v", hadb)
	}

	md := rep.ModeDowntime()
	if md[ModeKey{"AS", "process"}] != 30*time.Second || len(md) != 1 {
		t.Errorf("ModeDowntime = %v", md)
	}
}

// TestAnalyzeOutagesFallbackAttribution covers an outage with no injection
// ancestor (organic run): the kind comes from the latest failure span of
// the causing component that started at or before the outage.
func TestAnalyzeOutagesFallbackAttribution(t *testing.T) {
	t.Parallel()
	rec := New(Config{})
	run := rec.StartAt(SpanLongevity, 0, nil)
	rec.StartAt(SpanFailure, time.Minute, run,
		String(AttrComponent, "HADB"), String(AttrKind, "os")).EndAt(2 * time.Minute)
	rec.StartAt(SpanFailure, 3*time.Minute, run,
		String(AttrComponent, "HADB"), String(AttrKind, "hw")).EndAt(5 * time.Minute)
	out := rec.StartAt(SpanOutage, 4*time.Minute, run, String(AttrCause, "HADB"))
	out.EndAt(4*time.Minute + 30*time.Second)
	run.EndAt(6 * time.Minute)

	rep := AnalyzeOutages(rec.Spans())
	if len(rep.Outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(rep.Outages))
	}
	if got := rep.Outages[0].Kind; got != "hw" {
		t.Errorf("fallback kind = %q, want hw (latest failure at/before outage)", got)
	}
	if rep.UnattributedDowntime != 0 {
		t.Errorf("unattributed = %v, want 0", rep.UnattributedDowntime)
	}
}

func TestAnalyzeOutagesUnattributed(t *testing.T) {
	t.Parallel()
	rec := New(Config{})
	rec.StartAt(SpanOutage, time.Minute, nil).EndAt(2 * time.Minute)
	rep := AnalyzeOutages(rec.Spans())
	if rep.UnattributedDowntime != time.Minute || rep.TotalDowntime != time.Minute {
		t.Errorf("downtime = %v, unattributed = %v, want both 1m",
			rep.TotalDowntime, rep.UnattributedDowntime)
	}
}

func TestOutageReportRenderers(t *testing.T) {
	t.Parallel()
	rep := AnalyzeOutages(campaignTrace())
	var text, md bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"Downtime decomposition", "AS/process", "HADB/hw",
		"restore=25s reinstate=1m0s", "cause=AS"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	for _, want := range []string{"## Downtime decomposition", "| AS/process |",
		"| Outage start |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown report missing %q:\n%s", want, md.String())
		}
	}
}
