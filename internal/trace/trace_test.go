package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchy(t *testing.T) {
	t.Parallel()
	rec := New(Config{Capacity: Unbounded})
	root := rec.StartAt("campaign", 0, nil, Int("seed", 7))
	child := rec.StartAt("injection", time.Second, root)
	grand := rec.StartAt("failure", 2*time.Second, child, String(AttrComponent, "AS"))
	grand.EndAt(3 * time.Second)
	child.EndAt(4 * time.Second)
	root.EndAt(5 * time.Second)

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// Completion order: innermost first.
	if spans[0].Name != "failure" || spans[1].Name != "injection" || spans[2].Name != "campaign" {
		t.Fatalf("completion order wrong: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	for _, sp := range spans {
		if sp.Trace != root.ID() {
			t.Errorf("%s: trace = %d, want root %d", sp.Name, sp.Trace, root.ID())
		}
	}
	if spans[0].Parent != child.ID() || spans[1].Parent != root.ID() || spans[2].Parent != 0 {
		t.Errorf("parent links wrong: %d %d %d", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	if got := spans[1].Duration(); got != 3*time.Second {
		t.Errorf("injection duration = %v, want 3s", got)
	}
	if c, ok := spans[0].Attr(AttrComponent); !ok || c.Str != "AS" {
		t.Errorf("component attr = %+v, %v", c, ok)
	}
	if ids := rec.TraceIDs(); len(ids) != 1 || ids[0] != root.ID() {
		t.Errorf("TraceIDs = %v, want [%d]", ids, root.ID())
	}
	if got := rec.TraceSpans(root.ID()); len(got) != 3 {
		t.Errorf("TraceSpans = %d spans, want 3", len(got))
	}
}

func TestBoundedRingOverwrites(t *testing.T) {
	t.Parallel()
	rec := New(Config{Capacity: 3})
	for i := 0; i < 5; i++ {
		sp := rec.StartAt("op", time.Duration(i), nil, Int("i", int64(i)))
		sp.EndAt(time.Duration(i + 1))
	}
	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// Oldest first: ops 2, 3, 4 survive.
	for i, sp := range spans {
		a, _ := sp.Attr("i")
		if a.Int != int64(i+2) {
			t.Errorf("slot %d holds op %d, want %d", i, a.Int, i+2)
		}
	}
	if got := rec.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
}

func TestSinkReceivesEverySpan(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	rec := New(Config{Capacity: 1, Sink: &buf}) // ring smaller than span count
	for i := 0; i < 4; i++ {
		rec.StartAt("op", time.Duration(i), nil).EndAt(time.Duration(i + 1))
	}
	spans, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(spans) != 4 {
		t.Errorf("sink got %d spans, want all 4 despite capacity 1", len(spans))
	}
	if err := rec.SinkErr(); err != nil {
		t.Errorf("SinkErr = %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestSinkErrSticks(t *testing.T) {
	t.Parallel()
	rec := New(Config{Sink: failWriter{}})
	rec.StartAt("op", 0, nil).EndAt(1)
	if err := rec.SinkErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("SinkErr = %v, want disk full", err)
	}
}

func TestNilRecorderAndActiveAreNoOps(t *testing.T) {
	t.Parallel()
	var rec *Recorder
	sp := rec.Start("op", nil)
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	// All Active methods must tolerate nil.
	sp.Attr(Int("x", 1))
	sp.End()
	sp.EndAt(time.Second)
	sp.EndOpenAt(time.Second)
	if sp.ID() != 0 || sp.TraceID() != 0 {
		t.Error("nil Active has nonzero IDs")
	}
	if rec.Spans() != nil || rec.Dropped() != 0 || rec.SinkErr() != nil {
		t.Error("nil recorder reported data")
	}
}

func TestEndTwiceAndClamping(t *testing.T) {
	t.Parallel()
	rec := New(Config{})
	sp := rec.StartAt("op", 5*time.Second, nil)
	sp.EndAt(2 * time.Second) // before start: clamped
	sp.EndAt(9 * time.Second) // second End ignored
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1 (End twice must record once)", len(spans))
	}
	if spans[0].End != spans[0].Start {
		t.Errorf("end = %d, want clamped to start %d", spans[0].End, spans[0].Start)
	}
}

func TestEndOpenAtMarksSpan(t *testing.T) {
	t.Parallel()
	rec := New(Config{})
	rec.StartAt("outage", time.Second, nil).EndOpenAt(3 * time.Second)
	spans := rec.Spans()
	if len(spans) != 1 || !spans[0].Open {
		t.Fatalf("want one Open span, got %+v", spans)
	}
}

func TestAttrHelpersRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []struct {
		attr Attr
		want any
	}{
		{String("s", "x"), "x"},
		{Int("i", -3), int64(-3)},
		{Float("f", 2.5), 2.5},
		{Bool("b", true), true},
	}
	for _, c := range cases {
		if got := c.attr.Value(); got != c.want {
			t.Errorf("%s: Value() = %v (%T), want %v", c.attr.Key, got, got, c.want)
		}
	}
	if s := Int("iters", 12).String(); s != "iters=12" {
		t.Errorf("String() = %q", s)
	}
}

func TestDefaultRecorderWallClock(t *testing.T) {
	// Not parallel: uses the shared default recorder.
	sp := Default().Start("test.op", nil)
	sp.End()
	var found bool
	for _, s := range Default().Spans() {
		if s.ID == sp.ID() {
			found = true
			if s.End < s.Start {
				t.Errorf("wall-clock span ends before it starts: %+v", s)
			}
		}
	}
	if !found {
		t.Error("default recorder did not retain the span")
	}
}
