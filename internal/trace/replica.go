package trace

import "fmt"

// TagReplica returns a copy of spans labeled as replica r's timeline in a
// merged replicated-measurement trace: every span gains an AttrReplica
// integer attribute, and its display track is prefixed with "r<r>/" so
// renderers keep each replica's components on distinct tracks. The input
// spans are not modified. Pair with Recorder.Import:
//
//	merged.Import(trace.TagReplica(replicaRec.Spans(), i))
func TagReplica(spans []Span, r int) []Span {
	if len(spans) == 0 {
		return nil
	}
	prefix := fmt.Sprintf("r%d/", r)
	out := make([]Span, len(spans))
	for i, sp := range spans {
		attrs := make([]Attr, 0, len(sp.Attrs)+1)
		for _, a := range sp.Attrs {
			if a.Key == AttrTrack && a.Type == TypeString {
				a.Str = prefix + a.Str
			}
			attrs = append(attrs, a)
		}
		attrs = append(attrs, Int(AttrReplica, int64(r)))
		sp.Attrs = attrs
		out[i] = sp
	}
	return out
}
