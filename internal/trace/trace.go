// Package trace is a dependency-free structured tracing layer — the
// engine's flight recorder. Spans carry IDs, parent links, start/end
// timestamps, and typed attributes; a Recorder collects completed spans in
// a bounded in-memory ring buffer and optionally streams them to a JSONL
// sink as they close. Timestamps are durations from a run origin, so the
// same machinery records both clock domains the engine uses: virtual
// sim-time for discrete-event testbed runs and wall-time for solver work.
//
// The span tree is the measurement artifact the paper's methodology is
// built on: a fault-injection campaign is not a counter but a timeline
// (injection → component failure → repair stages → reinstatement, with any
// system outage as its own interval), and the outage analyzer (outage.go)
// reconstructs the per-failure-mode downtime decomposition from it.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanID identifies a span within one Recorder. IDs are assigned
// monotonically from 1; 0 means "no span" (no parent / no trace).
type SpanID uint64

// Attr value discriminators.
const (
	TypeString = "str"
	TypeInt    = "int"
	TypeFloat  = "float"
	TypeBool   = "bool"
)

// Attr is one typed span attribute. Exactly one value field is meaningful,
// selected by Type; keeping the variants explicit (rather than an `any`)
// makes the JSONL encoding lossless under decode→re-encode.
type Attr struct {
	Key   string  `json:"key"`
	Type  string  `json:"type"`
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Bool  bool    `json:"bool,omitempty"`
}

// String makes a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Type: TypeString, Str: v} }

// Int makes an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Type: TypeInt, Int: v} }

// Float makes a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Type: TypeFloat, Float: v} }

// Bool makes a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Type: TypeBool, Bool: v} }

// Value returns the attribute's value as an any (for generic renderers).
func (a Attr) Value() any {
	switch a.Type {
	case TypeInt:
		return a.Int
	case TypeFloat:
		return a.Float
	case TypeBool:
		return a.Bool
	default:
		return a.Str
	}
}

// String renders key=value.
func (a Attr) String() string { return fmt.Sprintf("%s=%v", a.Key, a.Value()) }

// Span is one completed (or force-closed) operation interval.
type Span struct {
	// Trace is the ID of the root span this span belongs to.
	Trace SpanID `json:"trace"`
	// ID is the span's own identifier.
	ID SpanID `json:"id"`
	// Parent is the enclosing span's ID (0 for a root).
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Start and End are nanoseconds from the recorder's origin (virtual
	// time for DES recorders, process-relative wall time otherwise).
	Start int64  `json:"start"`
	End   int64  `json:"end"`
	Attrs []Attr `json:"attrs,omitempty"`
	// Open marks a span that was still in flight when the recorder was
	// closed; End then holds the close time, not a real completion.
	Open bool `json:"open,omitempty"`
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Attr returns the named attribute and whether it exists.
func (s Span) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// AttrString returns the named string attribute ("" if absent).
func (s Span) AttrString(key string) string {
	a, _ := s.Attr(key)
	return a.Str
}

// Unbounded disables the ring-buffer cap (Config.Capacity): every span is
// retained. Use for bounded workloads (a campaign that will be analyzed);
// long-lived processes should keep the default bounded ring.
const Unbounded = -1

// defaultCapacity is the ring size when Config.Capacity is 0.
const defaultCapacity = 8192

// Config configures a Recorder.
type Config struct {
	// Capacity bounds the in-memory ring of completed spans: once full,
	// the oldest span is overwritten (and counted in Dropped). 0 means
	// defaultCapacity; Unbounded retains everything.
	Capacity int
	// Sink, if set, receives every completed span as one JSON line, in
	// completion order, regardless of ring capacity.
	Sink io.Writer
	// Clock supplies "now" for Start/End (as opposed to StartAt/EndAt,
	// which take explicit times). Defaults to wall time relative to the
	// recorder's creation.
	Clock func() time.Duration
}

// Recorder collects spans. It is safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	clock    func() time.Duration
	nextID   SpanID
	ring     []Span
	next     int // next ring slot to write (bounded mode)
	full     bool
	capacity int
	dropped  uint64
	sink     io.Writer
	sinkErr  error
}

// New constructs a recorder.
func New(cfg Config) *Recorder {
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = defaultCapacity
	}
	clock := cfg.Clock
	if clock == nil {
		epoch := time.Now()
		clock = func() time.Duration { return time.Since(epoch) }
	}
	return &Recorder{clock: clock, capacity: capacity, sink: cfg.Sink}
}

// defaultRecorder is the process-wide wall-clock recorder the solver
// layers (ctmc, uncertainty, hier, sensitivity, httpapi) report into; the
// HTTP API serves it at GET /v1/traces/{id}.
var defaultRecorder = New(Config{})

// Default returns the process-wide recorder.
func Default() *Recorder { return defaultRecorder }

// Active is an in-flight span. The zero/nil Active is a no-op, so call
// sites can start spans unconditionally against a possibly-nil Recorder.
type Active struct {
	r     *Recorder
	span  Span
	ended bool
}

// Start opens a span at the recorder's current clock time. parent may be
// nil (the span roots a new trace). A nil recorder returns nil.
func (r *Recorder) Start(name string, parent *Active, attrs ...Attr) *Active {
	if r == nil {
		return nil
	}
	return r.StartAt(name, r.clock(), parent, attrs...)
}

// StartAt opens a span at an explicit time from the run origin.
func (r *Recorder) StartAt(name string, at time.Duration, parent *Active, attrs ...Attr) *Active {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	sp := Span{ID: id, Trace: id, Name: name, Start: int64(at), Attrs: attrs}
	if parent != nil && parent.r == r {
		sp.Parent = parent.span.ID
		sp.Trace = parent.span.Trace
	}
	return &Active{r: r, span: sp}
}

// ID returns the span's identifier (0 for a nil Active).
func (a *Active) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// TraceID returns the root span ID of the span's trace (0 for nil).
func (a *Active) TraceID() SpanID {
	if a == nil {
		return 0
	}
	return a.span.Trace
}

// Attr appends attributes to the span. No-op after End.
func (a *Active) Attr(attrs ...Attr) {
	if a == nil || a.ended {
		return
	}
	a.span.Attrs = append(a.span.Attrs, attrs...)
}

// End closes the span at the recorder's current clock time and records it.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.EndAt(a.r.clock())
}

// EndAt closes the span at an explicit time. Ending twice is a no-op.
func (a *Active) EndAt(at time.Duration) {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.End = int64(at)
	if a.span.End < a.span.Start {
		a.span.End = a.span.Start
	}
	a.r.record(a.span)
}

// EndOpenAt closes the span at an explicit time, marking it force-closed
// (Span.Open): the operation was still in flight when the trace stopped.
func (a *Active) EndOpenAt(at time.Duration) {
	if a == nil || a.ended {
		return
	}
	a.span.Open = true
	a.EndAt(at)
}

// record stores a completed span in the ring and streams it to the sink.
func (r *Recorder) record(sp Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordLocked(sp)
}

func (r *Recorder) recordLocked(sp Span) {
	if r.capacity == Unbounded {
		r.ring = append(r.ring, sp)
	} else if len(r.ring) < r.capacity {
		r.ring = append(r.ring, sp)
		r.next = len(r.ring) % r.capacity
	} else {
		r.ring[r.next] = sp
		r.next = (r.next + 1) % r.capacity
		r.full = true
		r.dropped++
	}
	if r.sink != nil && r.sinkErr == nil {
		r.sinkErr = encodeJSONL(r.sink, sp)
	}
}

// Import appends completed spans from another recorder, remapping span,
// parent, and trace IDs past this recorder's current ID watermark so the
// imported tree cannot collide with native spans. Spans are recorded in
// the order given (and streamed to the sink in that order), so importing
// per-replica recorders by ascending replica index yields a deterministic
// merged stream regardless of how the replicas were scheduled. Parent
// links internal to the imported set are preserved; a parent ID not
// present in the set is remapped blindly, so import whole recorder dumps,
// not filtered subsets.
func (r *Recorder) Import(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	base := r.nextID
	var maxID SpanID
	for _, sp := range spans {
		if sp.ID > maxID {
			maxID = sp.ID
		}
		sp.ID += base
		if sp.Trace != 0 {
			sp.Trace += base
		}
		if sp.Parent != 0 {
			sp.Parent += base
		}
		r.recordLocked(sp)
	}
	r.nextID = base + maxID
}

// Spans returns the retained spans in completion order (oldest first).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.ring))
	if r.full {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
		return out
	}
	return append(out, r.ring...)
}

// TraceSpans returns the retained spans belonging to the given trace.
func (r *Recorder) TraceSpans(id SpanID) []Span {
	var out []Span
	for _, sp := range r.Spans() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// TraceIDs returns the distinct trace IDs present in the ring, ascending.
func (r *Recorder) TraceIDs() []SpanID {
	seen := map[SpanID]bool{}
	var out []SpanID
	for _, sp := range r.Spans() {
		if !seen[sp.Trace] {
			seen[sp.Trace] = true
			out = append(out, sp.Trace)
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort: IDs are near-sorted
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Dropped returns the number of spans overwritten in the bounded ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// SinkErr returns the first error the JSONL sink reported, if any.
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}
