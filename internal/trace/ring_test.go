package trace

import (
	"fmt"
	"testing"
	"time"
)

// zeroClock pins recorder time so tests control every timestamp via
// StartAt/EndAt.
func zeroClock() time.Duration { return 0 }

// TestRingEvictsOldestFirst: a full bounded ring overwrites the oldest
// completed span, Spans() keeps returning completion order, and every
// eviction is counted in Dropped.
func TestRingEvictsOldestFirst(t *testing.T) {
	t.Parallel()
	rec := New(Config{Capacity: 4, Clock: zeroClock})
	for i := 0; i < 10; i++ {
		s := rec.StartAt(fmt.Sprintf("s%02d", i), time.Duration(i), nil)
		s.EndAt(time.Duration(i + 1))
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%02d", 6+i); sp.Name != want {
			t.Fatalf("span %d = %q, want %q (oldest-first completion order)", i, sp.Name, want)
		}
	}
	if got := rec.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
}

// TestImportIntoNearFullRing: importing a replica stream into a ring
// with less free space than the stream is long must evict the oldest
// local spans, remap every imported ID past the local ID range, and keep
// allocating collision-free IDs afterwards.
func TestImportIntoNearFullRing(t *testing.T) {
	t.Parallel()
	src := New(Config{Capacity: Unbounded, Clock: zeroClock})
	for i := 0; i < 5; i++ {
		s := src.StartAt(fmt.Sprintf("imp%d", i), time.Duration(i), nil)
		s.EndAt(time.Duration(i + 1))
	}

	dst := New(Config{Capacity: 6, Clock: zeroClock})
	for i := 0; i < 4; i++ {
		s := dst.StartAt(fmt.Sprintf("loc%d", i), time.Duration(i), nil)
		s.EndAt(time.Duration(i + 1))
	}
	dst.Import(src.Spans())

	spans := dst.Spans()
	if len(spans) != 6 {
		t.Fatalf("retained %d spans, want 6", len(spans))
	}
	// Completion order was loc0..loc3, imp0..imp4; the three oldest local
	// spans fell off the ring.
	wantNames := []string{"loc3", "imp0", "imp1", "imp2", "imp3", "imp4"}
	seen := map[SpanID]string{}
	for i, sp := range spans {
		if sp.Name != wantNames[i] {
			t.Fatalf("span %d = %q, want %q", i, sp.Name, wantNames[i])
		}
		if prev, dup := seen[sp.ID]; dup {
			t.Fatalf("ID %d assigned to both %q and %q", sp.ID, prev, sp.Name)
		}
		seen[sp.ID] = sp.Name
		// Local IDs were 1..4, so every imported ID must sit above them,
		// remapped by the import base.
		if sp.Name[:3] == "imp" {
			if sp.ID <= 4 {
				t.Fatalf("imported span %q kept a colliding ID %d", sp.Name, sp.ID)
			}
			if sp.Trace != sp.ID {
				t.Fatalf("imported root %q: trace %d != id %d after remap", sp.Name, sp.Trace, sp.ID)
			}
		}
	}
	if got := dst.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}

	// The next locally started span continues above the imported range.
	s := dst.StartAt("after", 20, nil)
	s.EndAt(21)
	for _, sp := range dst.Spans() {
		if sp.Name == "after" {
			if sp.ID != 10 {
				t.Fatalf("post-import span ID = %d, want 10 (4 local + 5 imported + 1)", sp.ID)
			}
			return
		}
	}
	t.Fatal("post-import span not retained")
}

// TestAnalyzeOutagesOnTruncatedRing: when ring eviction has dropped the
// injection and failure spans an outage would be attributed to,
// AnalyzeOutages must still account the outage — as unattributed
// downtime — rather than panic or lose it.
func TestAnalyzeOutagesOnTruncatedRing(t *testing.T) {
	t.Parallel()
	rec := New(Config{Capacity: 3, Clock: zeroClock})

	// A full injection experiment: injection → failure (with a restore
	// stage) → outage caused by the AS component.
	inj := rec.StartAt(SpanInjection, 0, nil,
		String(AttrComponent, "AS"), String(AttrKind, "process"))
	fail := rec.StartAt(SpanFailure, 0, inj,
		String(AttrComponent, "AS"), String(AttrKind, "process"))
	restore := rec.StartAt(SpanRestore, 0, fail)
	out := rec.StartAt(SpanOutage, 10*time.Second, inj, String(AttrCause, "AS"))
	restore.EndAt(40 * time.Second)
	fail.EndAt(40 * time.Second)
	inj.EndAt(60 * time.Second)
	out.EndAt(30 * time.Second)

	// Completion order: restore, failure, injection, outage. Capacity 3
	// keeps {failure, injection, outage}; two fillers evict the failure
	// and the injection, leaving the outage with no attribution evidence.
	for i := 0; i < 2; i++ {
		filler := rec.StartAt("filler", time.Duration(61+i)*time.Second, nil)
		filler.EndAt(time.Duration(62+i) * time.Second)
	}

	spans := rec.Spans()
	var haveOutage, haveFailure, haveInjection bool
	for _, sp := range spans {
		switch sp.Name {
		case SpanOutage:
			haveOutage = true
		case SpanFailure:
			haveFailure = true
		case SpanInjection:
			haveInjection = true
		}
	}
	if !haveOutage || haveFailure || haveInjection {
		t.Fatalf("truncation setup wrong: outage=%v failure=%v injection=%v (spans %v)",
			haveOutage, haveFailure, haveInjection, spans)
	}

	rep := AnalyzeOutages(spans)
	if len(rep.Outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(rep.Outages))
	}
	if rep.TotalDowntime != 20*time.Second {
		t.Fatalf("TotalDowntime = %s, want 20s", rep.TotalDowntime)
	}
	// The injection ancestor and the failure span are gone, so the outage
	// cannot be attributed to a failure mode.
	if rep.UnattributedDowntime != 20*time.Second {
		t.Fatalf("UnattributedDowntime = %s, want 20s (attribution evidence was evicted)",
			rep.UnattributedDowntime)
	}
	if rep.Horizon < 60*time.Second {
		t.Fatalf("Horizon = %s, want ≥ 60s", rep.Horizon)
	}

	// Control: the same timeline analyzed without truncation attributes
	// the outage to AS/process.
	full := New(Config{Capacity: Unbounded, Clock: zeroClock})
	inj2 := full.StartAt(SpanInjection, 0, nil,
		String(AttrComponent, "AS"), String(AttrKind, "process"))
	fail2 := full.StartAt(SpanFailure, 0, inj2,
		String(AttrComponent, "AS"), String(AttrKind, "process"))
	fail2.EndAt(40 * time.Second)
	out2 := full.StartAt(SpanOutage, 10*time.Second, inj2, String(AttrCause, "AS"))
	out2.EndAt(30 * time.Second)
	inj2.EndAt(60 * time.Second)
	ctrl := AnalyzeOutages(full.Spans())
	if ctrl.UnattributedDowntime != 0 {
		t.Fatalf("control run left %s unattributed", ctrl.UnattributedDowntime)
	}
	if got := ctrl.ModeDowntime()[ModeKey{"AS", "process"}]; got != 20*time.Second {
		t.Fatalf("control AS/process downtime = %s, want 20s", got)
	}
}
