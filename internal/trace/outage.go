package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Span names and attribute keys of the testbed/campaign vocabulary. The
// trace package owns the vocabulary (it is shared by the recorders in
// internal/testbed and internal/faultinject and by this analyzer) so the
// analyzer stays dependency-free.
const (
	SpanCampaign  = "campaign"  // one fault-injection campaign (root)
	SpanLongevity = "longevity" // one longevity run (root)
	SpanInjection = "injection" // one injection experiment
	SpanOutage    = "outage"    // system predicate false
	SpanFailure   = "failure"   // component failure → reinstatement
	SpanRestore   = "restore"   // repair stage (restart/reboot/replace)
	SpanReinstate = "reinstate" // LB health-check reinstatement lag
	SpanSpare     = "spare-repair"
	SpanMaint     = "maintenance"
	SpanPairDown  = "pair-down"    // catastrophic HADB pair loss
	SpanDomain    = "domain-fault" // domain-level common-cause burst
	SpanPartition = "partition"    // network partition (LB split-brain)

	AttrComponent = "component"
	AttrKind      = "kind"
	AttrTarget    = "target"
	AttrFault     = "fault"
	AttrCause     = "cause"
	AttrInjected  = "injected"
	AttrIndex     = "index"
	AttrRecovered = "recovered"
	AttrMultiNode = "multi-node"
	AttrEscalated = "escalated"
	// AttrClass attributes an outage or injection to its cause class
	// (independent, common-cause, partition); AttrDomain names the fault
	// domain of a common-cause burst; AttrMembers counts the components a
	// correlated event hit.
	AttrClass   = "class"
	AttrDomain  = "domain"
	AttrMembers = "members"
	// AttrReplica tags every span of one replica's timeline in a merged
	// replicated-measurement trace (see TagReplica).
	AttrReplica = "replica"
)

// ModeKey identifies a failure mode: the tier that failed and the failure
// class (process, os, hw).
type ModeKey struct {
	Component string
	Kind      string
}

func (k ModeKey) String() string { return k.Component + "/" + k.Kind }

// OutageInterval is one reconstructed system-level outage.
type OutageInterval struct {
	Trace     SpanID
	Span      SpanID
	Injection SpanID // causal injection span (0 for organic runs)
	// Cause is the tier whose failure made the system unavailable.
	Cause string
	// Kind is the failure class attributed from the causal injection (or
	// the latest matching component failure span); "unknown" if neither.
	Kind  string
	Fault string
	Start time.Duration
	End   time.Duration
	// Open marks an outage still in progress when the trace closed.
	Open bool
}

// Duration returns the outage length.
func (o OutageInterval) Duration() time.Duration { return o.End - o.Start }

// ModeDecomposition aggregates one failure mode's contribution — the
// repo-native row of the paper's Tables 2–4.
type ModeDecomposition struct {
	Mode ModeKey
	// Injections counts injection experiments of this mode.
	Injections int
	// Failures counts component failure spans of this mode.
	Failures int
	// RecoveryTotal sums the component failure-span durations (failure to
	// full reinstatement); RecoveryMean is the per-failure average.
	RecoveryTotal time.Duration
	RecoveryMean  time.Duration
	// Stages sums the stage-span durations within this mode's failure
	// spans (restore, reinstate). A failure span with no stage children
	// contributes its whole duration to "restore".
	Stages map[string]time.Duration
	// Outages counts system-level outages attributed to this mode and
	// Downtime sums their durations — the mode's share of unavailability.
	Outages  int
	Downtime time.Duration
}

// OutageReport is the reconstructed timeline decomposition of one trace
// stream.
type OutageReport struct {
	// Outages lists every reconstructed outage interval, in start order.
	Outages []OutageInterval
	// Modes aggregates per failure mode, sorted by (component, kind).
	Modes []ModeDecomposition
	// TotalDowntime is the summed outage time; it equals the simulator's
	// own down-time accounting when the trace covers the whole run.
	TotalDowntime time.Duration
	// UnattributedDowntime is outage time whose failure mode could not be
	// determined (also included in TotalDowntime).
	UnattributedDowntime time.Duration
	// Horizon is the latest span end seen — the observed run length.
	Horizon time.Duration
}

// ModeDowntime returns the summed per-mode downtime map.
func (r *OutageReport) ModeDowntime() map[ModeKey]time.Duration {
	out := make(map[ModeKey]time.Duration, len(r.Modes))
	for _, m := range r.Modes {
		if m.Downtime > 0 || m.Outages > 0 {
			out[m.Mode] = m.Downtime
		}
	}
	return out
}

// AnalyzeOutages reconstructs the outage timeline and the per-failure-mode
// downtime decomposition from a span stream (typically a campaign or
// longevity trace).
func AnalyzeOutages(spans []Span) *OutageReport {
	byID := make(map[SpanID]Span, len(spans))
	var failures, stages, outages, injections []Span
	rep := &OutageReport{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.End > int64(rep.Horizon) {
			rep.Horizon = time.Duration(sp.End)
		}
		switch sp.Name {
		case SpanFailure:
			failures = append(failures, sp)
		case SpanRestore, SpanReinstate:
			stages = append(stages, sp)
		case SpanOutage:
			outages = append(outages, sp)
		case SpanInjection:
			injections = append(injections, sp)
		}
	}

	modes := map[ModeKey]*ModeDecomposition{}
	mode := func(k ModeKey) *ModeDecomposition {
		m := modes[k]
		if m == nil {
			m = &ModeDecomposition{Mode: k, Stages: map[string]time.Duration{}}
			modes[k] = m
		}
		return m
	}

	for _, sp := range injections {
		mode(ModeKey{sp.AttrString(AttrComponent), sp.AttrString(AttrKind)}).Injections++
	}
	stagesByParent := map[SpanID][]Span{}
	for _, sp := range stages {
		stagesByParent[sp.Parent] = append(stagesByParent[sp.Parent], sp)
	}
	for _, sp := range failures {
		m := mode(ModeKey{sp.AttrString(AttrComponent), sp.AttrString(AttrKind)})
		m.Failures++
		m.RecoveryTotal += sp.Duration()
		children := stagesByParent[sp.ID]
		if len(children) == 0 {
			m.Stages[SpanRestore] += sp.Duration()
			continue
		}
		for _, st := range children {
			m.Stages[st.Name] += st.Duration()
		}
	}

	// Attribute each outage to a failure mode: prefer the causal injection
	// span (ancestor), else the latest failure span of the causing
	// component that starts at or before the outage.
	for _, sp := range outages {
		o := OutageInterval{
			Trace: sp.Trace, Span: sp.ID,
			Cause: sp.AttrString(AttrCause),
			Start: time.Duration(sp.Start), End: time.Duration(sp.End),
			Open: sp.Open, Kind: "unknown",
		}
		for cur := sp; cur.Parent != 0; {
			p, ok := byID[cur.Parent]
			if !ok {
				break
			}
			if p.Name == SpanInjection {
				o.Injection = p.ID
				o.Fault = p.AttrString(AttrFault)
				o.Kind = p.AttrString(AttrKind)
				break
			}
			cur = p
		}
		if o.Kind == "unknown" || o.Kind == "" {
			var best *Span
			for i := range failures {
				f := &failures[i]
				// Same trace only: a merged replicated stream interleaves
				// independent timelines, and a failure span from another
				// replica must not attribute this replica's outage.
				if f.Trace != sp.Trace || f.AttrString(AttrComponent) != o.Cause || f.Start > sp.Start {
					continue
				}
				if best == nil || f.Start > best.Start {
					best = f
				}
			}
			if best != nil {
				o.Kind = best.AttrString(AttrKind)
			}
		}
		rep.Outages = append(rep.Outages, o)
		rep.TotalDowntime += o.Duration()
		if o.Cause == "" || o.Kind == "unknown" || o.Kind == "" {
			rep.UnattributedDowntime += o.Duration()
			continue
		}
		m := mode(ModeKey{o.Cause, o.Kind})
		m.Outages++
		m.Downtime += o.Duration()
	}
	sort.Slice(rep.Outages, func(i, j int) bool {
		if rep.Outages[i].Start != rep.Outages[j].Start {
			return rep.Outages[i].Start < rep.Outages[j].Start
		}
		return rep.Outages[i].Span < rep.Outages[j].Span
	})

	for _, m := range modes {
		if m.Failures > 0 {
			m.RecoveryMean = m.RecoveryTotal / time.Duration(m.Failures)
		}
		rep.Modes = append(rep.Modes, *m)
	}
	sort.Slice(rep.Modes, func(i, j int) bool {
		a, b := rep.Modes[i].Mode, rep.Modes[j].Mode
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Kind < b.Kind
	})
	return rep
}

// stageOrder fixes the stage column order in reports.
var stageOrder = []string{SpanRestore, SpanReinstate}

// stageSummary renders a mode's stage totals as "restore=40s reinstate=30s".
func stageSummary(stages map[string]time.Duration) string {
	var parts []string
	for _, name := range stageOrder {
		if d, ok := stages[name]; ok {
			parts = append(parts, fmt.Sprintf("%s=%s", name, d.Round(time.Millisecond)))
		}
	}
	var rest []string
	for name := range stages {
		known := false
		for _, k := range stageOrder {
			if name == k {
				known = true
			}
		}
		if !known {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		parts = append(parts, fmt.Sprintf("%s=%s", name, stages[name].Round(time.Millisecond)))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// WriteText renders the decomposition as a fixed-width table plus an
// outage list — the CLI view of the paper's Tables 2–4.
func (r *OutageReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Downtime decomposition (horizon %s, %d outage(s), total downtime %s):\n",
		r.Horizon.Round(time.Second), len(r.Outages), r.TotalDowntime.Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-14s %6s %6s %8s %12s %12s   %s\n",
		"mode", "inject", "fails", "outages", "downtime", "mean rec.", "recovery stages"); err != nil {
		return err
	}
	for _, m := range r.Modes {
		if _, err := fmt.Fprintf(w, "  %-14s %6d %6d %8d %12s %12s   %s\n",
			m.Mode, m.Injections, m.Failures, m.Outages,
			m.Downtime.Round(time.Millisecond), m.RecoveryMean.Round(time.Millisecond),
			stageSummary(m.Stages)); err != nil {
			return err
		}
	}
	if r.UnattributedDowntime > 0 {
		if _, err := fmt.Fprintf(w, "  %-14s %6s %6s %8s %12s\n",
			"(unattributed)", "-", "-", "-", r.UnattributedDowntime.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	for _, o := range r.Outages {
		open := ""
		if o.Open {
			open = " [open]"
		}
		if _, err := fmt.Fprintf(w, "  outage at %-14s cause=%s kind=%s duration=%s%s\n",
			o.Start.Round(time.Millisecond), o.Cause, o.Kind,
			o.Duration().Round(time.Millisecond), open); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the decomposition as a Markdown section (used by
// jsas-report).
func (r *OutageReport) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	b.WriteString("## Downtime decomposition\n\n")
	fmt.Fprintf(&b, "Observed horizon %s; %d outage(s); total downtime **%s**.\n\n",
		r.Horizon.Round(time.Second), len(r.Outages), r.TotalDowntime.Round(time.Millisecond))
	b.WriteString("| Failure mode | Injections | Failures | Outages | Downtime | Mean recovery | Stages |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %s | %s | %s |\n",
			m.Mode, m.Injections, m.Failures, m.Outages,
			m.Downtime.Round(time.Millisecond), m.RecoveryMean.Round(time.Millisecond),
			stageSummary(m.Stages))
	}
	if r.UnattributedDowntime > 0 {
		fmt.Fprintf(&b, "| (unattributed) | - | - | - | %s | - | - |\n",
			r.UnattributedDowntime.Round(time.Millisecond))
	}
	b.WriteByte('\n')
	if len(r.Outages) > 0 {
		b.WriteString("| Outage start | Cause | Kind | Duration |\n|---|---|---|---|\n")
		for _, o := range r.Outages {
			dur := o.Duration().Round(time.Millisecond).String()
			if o.Open {
				dur += " (open)"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
				o.Start.Round(time.Millisecond), o.Cause, o.Kind, dur)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
