package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"
)

// sampleSpans builds a small campaign-shaped trace exercising every
// attribute type, a parent chain, an overlapping second track, and an
// open span.
func sampleSpans() []Span {
	rec := New(Config{Capacity: Unbounded})
	root := rec.StartAt(SpanCampaign, 0, nil,
		String(AttrTrack, "campaign"), Int("seed", 11), Bool("organic", false))
	inj := rec.StartAt(SpanInjection, time.Second, root,
		String(AttrTrack, "campaign"), String(AttrFault, "process-kill"), Float("weight", 0.5))
	fail := rec.StartAt(SpanFailure, 2*time.Second, inj,
		String(AttrTrack, "as-0"), String(AttrComponent, "AS"), String(AttrKind, "process"))
	rec.StartAt(SpanRestore, 2*time.Second, fail, String(AttrTrack, "as-0")).
		EndAt(20 * time.Second)
	rec.StartAt(SpanReinstate, 20*time.Second, fail, String(AttrTrack, "as-0")).
		EndAt(50 * time.Second)
	fail.EndAt(50 * time.Second)
	// Second failure overlapping the first on another track.
	rec.StartAt(SpanFailure, 10*time.Second, inj,
		String(AttrTrack, "as-1"), String(AttrComponent, "AS"), String(AttrKind, "os")).
		EndAt(40 * time.Second)
	out := rec.StartAt(SpanOutage, 10*time.Second, inj,
		String(AttrTrack, "system"), String(AttrCause, "AS"))
	out.EndOpenAt(45 * time.Second)
	inj.EndAt(50 * time.Second)
	root.EndAt(60 * time.Second)
	return rec.Spans()
}

// TestJSONLRoundTripLossless asserts decode→re-encode is byte-identical:
// the JSONL stream is the canonical archival format, so nothing may be
// lost or reordered through a read/write cycle.
func TestJSONLRoundTripLossless(t *testing.T) {
	t.Parallel()
	spans := sampleSpans()
	var first bytes.Buffer
	if err := WriteJSONL(&first, spans); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	decoded, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(decoded) != len(spans) {
		t.Fatalf("decoded %d spans, want %d", len(decoded), len(spans))
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, decoded); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("JSONL round-trip is lossy:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

func TestReadJSONLSkipsBlanksReportsBadLines(t *testing.T) {
	t.Parallel()
	spans, err := ReadJSONL(strings.NewReader(
		"\n{\"trace\":1,\"id\":1,\"name\":\"a\",\"start\":0,\"end\":5}\n\n"))
	if err != nil || len(spans) != 1 {
		t.Fatalf("spans, err = %v, %v; want one span", spans, err)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"id\":1}\nnot json\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("bad line error = %v, want line 2 mention", err)
	}
}

// TestChromeTraceSchema is the golden schema check for the Chrome
// trace_event export: the output must be valid JSON in the object format,
// every event a complete "X" or metadata "M" phase, and the X events on
// any single tid must nest properly (an event starting inside another on
// the same lane must also end inside it), which is what chrome://tracing
// and Perfetto require to render a sane flame view.
func TestChromeTraceSchema(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}

	type interval struct{ start, end float64 }
	byTid := map[int][]interval{}
	named := map[int]bool{}
	for i, ev := range file.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing ts/pid/tid: %+v", i, ev)
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("event %d: metadata name = %q", i, ev.Name)
			}
			if _, ok := ev.Args["name"].(string); !ok {
				t.Errorf("event %d: thread_name without args.name", i)
			}
			named[*ev.Tid] = true
		case "X":
			if *ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %d: negative ts/dur: %+v", i, ev)
			}
			if _, ok := ev.Args["id"]; !ok {
				t.Errorf("event %d: X event without span id arg", i)
			}
			byTid[*ev.Tid] = append(byTid[*ev.Tid], interval{*ev.Ts, *ev.Ts + ev.Dur})
		default:
			t.Errorf("event %d: unsupported phase %q", i, ev.Ph)
		}
	}
	for tid, ivs := range byTid {
		if !named[tid] {
			t.Errorf("tid %d has events but no thread_name metadata", tid)
		}
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].start != ivs[j].start {
				return ivs[i].start < ivs[j].start
			}
			return ivs[i].end > ivs[j].end
		})
		var stack []interval
		for _, iv := range ivs {
			for len(stack) > 0 && iv.start >= stack[len(stack)-1].end {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && iv.end > stack[len(stack)-1].end {
				t.Errorf("tid %d: event [%v,%v] partially overlaps enclosing [%v,%v]",
					tid, iv.start, iv.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, iv)
		}
	}
}

// TestChromeTraceOverflowLanes forces two same-track spans that partially
// overlap and asserts they land on different tids (the overflow lane).
func TestChromeTraceOverflowLanes(t *testing.T) {
	t.Parallel()
	rec := New(Config{})
	rec.StartAt("a", 0, nil, String(AttrTrack, "x")).EndAt(10)
	rec.StartAt("b", 5, nil, String(AttrTrack, "x")).EndAt(15) // overlaps a, not nested
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Spans()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	tids := map[int]bool{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Tid] = true
		}
	}
	if len(tids) != 2 {
		t.Errorf("partially-overlapping spans share %d tid(s), want 2 lanes", len(tids))
	}
}

func TestTimelineOutput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, sampleSpans()); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	out := buf.String()
	for _, want := range []string{SpanCampaign, SpanInjection, SpanFailure, SpanRestore,
		SpanReinstate, SpanOutage, "[open]", "seed=11", "cause=AS"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The injection line is indented one level under the campaign.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, SpanInjection) && !strings.Contains(line, "]   injection") {
			t.Errorf("injection not indented under campaign: %q", line)
		}
	}
}
