package trace

import (
	"testing"
	"time"
)

// buildReplicaTrace records a tiny campaign-shaped trace: a root, an
// injection, a failure under the injection, and an outage under the
// injection.
func buildReplicaTrace(t *testing.T) []Span {
	t.Helper()
	rec := New(Config{Capacity: Unbounded})
	root := rec.StartAt(SpanCampaign, 0, nil, String(AttrTrack, "campaign"))
	inj := rec.StartAt(SpanInjection, time.Second, root,
		String(AttrTrack, "campaign"),
		String(AttrComponent, "HADB"), String(AttrKind, "process"),
		String(AttrFault, "process-kill"))
	rec.StartAt(SpanFailure, time.Second, inj,
		String(AttrTrack, "hadb-0/0"),
		String(AttrComponent, "HADB"), String(AttrKind, "process")).
		EndAt(40 * time.Second)
	rec.StartAt(SpanOutage, 2*time.Second, inj,
		String(AttrTrack, "system"), String(AttrCause, "HADB")).
		EndAt(10 * time.Second)
	inj.EndAt(41 * time.Second)
	root.EndAt(time.Minute)
	return rec.Spans()
}

func TestTagReplicaAddsAttrAndTrackPrefix(t *testing.T) {
	t.Parallel()
	orig := buildReplicaTrace(t)
	tagged := TagReplica(orig, 3)
	if len(tagged) != len(orig) {
		t.Fatalf("tagged %d spans, want %d", len(tagged), len(orig))
	}
	for i, sp := range tagged {
		a, ok := sp.Attr(AttrReplica)
		if !ok || a.Int != 3 {
			t.Errorf("span %d: replica attr = %+v, want 3", i, a)
		}
		if tr := sp.AttrString(AttrTrack); tr[:3] != "r3/" {
			t.Errorf("span %d: track %q missing r3/ prefix", i, tr)
		}
	}
	// Inputs untouched.
	for i, sp := range orig {
		if _, ok := sp.Attr(AttrReplica); ok {
			t.Errorf("input span %d gained a replica attr", i)
		}
		if tr := sp.AttrString(AttrTrack); len(tr) >= 3 && tr[:3] == "r3/" {
			t.Errorf("input span %d track mutated to %q", i, tr)
		}
	}
	if TagReplica(nil, 1) != nil {
		t.Error("TagReplica(nil) != nil")
	}
}

// TestImportMergesReplicasDeterministically: importing two replica dumps
// yields distinct remapped ID spaces, preserved parent links, and an
// analyzable merged stream; per-replica outage attribution survives.
func TestImportMergesReplicasDeterministically(t *testing.T) {
	t.Parallel()
	r0 := buildReplicaTrace(t)
	r1 := buildReplicaTrace(t)

	merged := New(Config{Capacity: Unbounded})
	merged.Import(TagReplica(r0, 0))
	merged.Import(TagReplica(r1, 1))
	spans := merged.Spans()
	if len(spans) != len(r0)+len(r1) {
		t.Fatalf("merged %d spans, want %d", len(spans), len(r0)+len(r1))
	}

	// IDs unique; parent links resolve within the merged set (or are 0).
	byID := map[SpanID]Span{}
	for _, sp := range spans {
		if _, dup := byID[sp.ID]; dup {
			t.Fatalf("duplicate span ID %d after import", sp.ID)
		}
		byID[sp.ID] = sp
	}
	traces := map[SpanID]int64{}
	for _, sp := range spans {
		if sp.Parent != 0 {
			p, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("span %d parent %d not in merged set", sp.ID, sp.Parent)
			}
			if p.Trace != sp.Trace {
				t.Fatalf("span %d crosses traces: %d vs parent %d", sp.ID, sp.Trace, p.Trace)
			}
		}
		rep, _ := sp.Attr(AttrReplica)
		if prev, seen := traces[sp.Trace]; seen && prev != rep.Int {
			t.Fatalf("trace %d spans two replicas (%d and %d)", sp.Trace, prev, rep.Int)
		}
		traces[sp.Trace] = rep.Int
	}
	if len(traces) != 2 {
		t.Fatalf("merged stream has %d traces, want 2", len(traces))
	}

	// The outage analyzer still reconstructs both replicas' timelines:
	// one outage per replica, each attributed via its own injection.
	rep := AnalyzeOutages(spans)
	if len(rep.Outages) != 2 {
		t.Fatalf("reconstructed %d outages, want 2", len(rep.Outages))
	}
	for i, o := range rep.Outages {
		if o.Injection == 0 {
			t.Errorf("outage %d lost its causal injection after merge", i)
		}
		if o.Kind != "process" || o.Cause != "HADB" {
			t.Errorf("outage %d attribution = %s/%s, want HADB/process", i, o.Cause, o.Kind)
		}
	}
	if rep.TotalDowntime != 16*time.Second {
		t.Errorf("merged downtime = %v, want 16s (2 × 8s)", rep.TotalDowntime)
	}

	// New native spans allocate above the imported watermark.
	sp := merged.StartAt("post", 0, nil)
	for id := range byID {
		if sp.ID() == id {
			t.Fatalf("native span reused imported ID %d", id)
		}
	}
}
