// Package expr implements the small rate-expression language used in model
// specifications: floating-point arithmetic over named parameters with
// + - * / ^ operators, parentheses, unary minus, and a few math functions.
// It is the equivalent of the `$Lambda1`-style parameter references RAScad
// diagrams use on their transition arcs.
package expr

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokNumber
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
	tokLParen
	tokRParen
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError describes a lexing or parsing failure with its byte offset.
type SyntaxError struct {
	Pos     int
	Message string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d: %s", e.Pos, e.Message)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '^':
		l.pos++
		return token{tokCaret, "^", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	}
	if isDigit(c) || c == '.' {
		return l.lexNumber()
	}
	if isIdentStart(rune(c)) {
		return l.lexIdent()
	}
	return token{}, &SyntaxError{Pos: start, Message: fmt.Sprintf("unexpected character %q", c)}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if text == "." {
		return token{}, &SyntaxError{Pos: start, Message: "malformed number"}
	}
	return token{tokNumber, text, start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	// Accept a leading '$' (RAScad-style parameter reference); it is
	// stripped so "$La" and "La" name the same parameter.
	if l.src[l.pos] == '$' {
		l.pos++
		if l.pos >= len(l.src) || !isIdentStart(rune(l.src[l.pos])) || l.src[l.pos] == '$' {
			return token{}, &SyntaxError{Pos: start, Message: "'$' must be followed by a name"}
		}
	}
	nameStart := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{tokIdent, l.src[nameStart:l.pos], start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// tokenize is a test helper exposed within the package.
func tokenize(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
