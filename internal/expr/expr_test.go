package expr

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestParseEvalArithmetic(t *testing.T) {
	t.Parallel()
	tests := []struct {
		src  string
		want float64
	}{
		{"1", 1},
		{"1 + 2*3", 7},
		{"(1+2)*3", 9},
		{"2^10", 1024},
		{"2^3^2", 512}, // right associative
		{"-2^2", -4},
		{"-2*3", -6},
		{"10/4", 2.5},
		{"1 - 2 - 3", -4}, // left associative
		{"+5", 5},
		{"1.5e2", 150},
		{".5", 0.5},
		{"3e-1", 0.3},
		{"min(3, 2)", 2},
		{"max(3, 2)", 3},
		{"pow(2, 8)", 256},
		{"abs(-4)", 4},
		{"sqrt(16)", 4},
		{"exp(0)", 1},
		{"log(exp(1))", 1},
		{"min(1+1, 2*3)", 2},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.src, func(t *testing.T) {
			t.Parallel()
			if got := evalOK(t, tc.src, nil); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Eval(%q) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

func TestParseEvalVariables(t *testing.T) {
	t.Parallel()
	env := MapEnv{"La_hadb": 2.0 / 8760, "FIR": 0.001, "N_pair": 2}
	got := evalOK(t, "2*La_hadb*(1 - FIR)", env)
	want := 2 * (2.0 / 8760) * 0.999
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("got %v, want %v", got, want)
	}
	// RAScad-style $ prefix refers to the same parameter.
	if got := evalOK(t, "$N_pair * $La_hadb", env); math.Abs(got-2*2.0/8760) > 1e-15 {
		t.Errorf("$-prefixed lookup = %v", got)
	}
}

func TestUndefinedParameter(t *testing.T) {
	t.Parallel()
	e := MustParse("La * 2")
	_, err := e.Eval(MapEnv{})
	var ue *UndefinedError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UndefinedError", err)
	}
	if ue.Name != "La" {
		t.Errorf("UndefinedError.Name = %q, want La", ue.Name)
	}
}

func TestEvalErrors(t *testing.T) {
	t.Parallel()
	tests := []string{"1/0", "log(0)", "log(-1)", "sqrt(-1)"}
	for _, src := range tests {
		src := src
		t.Run(src, func(t *testing.T) {
			t.Parallel()
			e := MustParse(src)
			_, err := e.Eval(nil)
			var ee *EvalError
			if !errors.As(err, &ee) {
				t.Fatalf("Eval(%q) err = %v, want EvalError", src, err)
			}
		})
	}
}

func TestSyntaxErrors(t *testing.T) {
	t.Parallel()
	tests := []string{
		"", "1 +", "(1", "1)", "min(1)", "min(1,2,3)", "nosuchfn(1)",
		"1 2", "@", "$", "$ x", "1..2", ".", "min(1,)",
	}
	for _, src := range tests {
		src := src
		t.Run(src, func(t *testing.T) {
			t.Parallel()
			_, err := Parse(src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", src)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%q) err = %v, want SyntaxError", src, err)
			}
		})
	}
}

func TestVars(t *testing.T) {
	t.Parallel()
	e := MustParse("2*La*(1-FIR) + min(Acc, La)")
	got := e.Vars()
	want := []string{"Acc", "FIR", "La"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestConstant(t *testing.T) {
	t.Parallel()
	if v, ok := MustParse("3*(2+1)").Constant(); !ok || v != 9 {
		t.Errorf("Constant = %v,%v, want 9,true", v, ok)
	}
	if _, ok := MustParse("La").Constant(); ok {
		t.Error("Constant(La) reported constant")
	}
	// Constant with a domain error is not constant-foldable.
	if _, ok := MustParse("1/0").Constant(); ok {
		t.Error("Constant(1/0) reported constant")
	}
}

// TestStringRoundTrip: rendering an expression and reparsing it preserves
// its value on a fixed environment.
func TestStringRoundTrip(t *testing.T) {
	t.Parallel()
	env := MapEnv{"a": 1.25, "b": -3, "c": 0.5}
	sources := []string{
		"a + b*c", "(a+b)^2", "-a", "min(a, max(b, c))", "a/b - c",
		"2*a*(1 - c)", "a^b^c",
	}
	for _, src := range sources {
		src := src
		t.Run(src, func(t *testing.T) {
			t.Parallel()
			e1 := MustParse(src)
			rendered := e1.String()
			e2, err := Parse(rendered)
			if err != nil {
				t.Fatalf("reparse %q (from %q): %v", rendered, src, err)
			}
			v1, err1 := e1.Eval(env)
			v2, err2 := e2.Eval(env)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval errors: %v, %v", err1, err2)
			}
			if math.Abs(v1-v2) > 1e-12*math.Max(1, math.Abs(v1)) {
				t.Errorf("round trip: %v != %v", v1, v2)
			}
		})
	}
}

// TestRandomExprRoundTrip property-tests String/Parse/Eval agreement on
// randomly generated ASTs.
func TestRandomExprRoundTrip(t *testing.T) {
	t.Parallel()
	var build func(r *rand.Rand, depth int) string
	build = func(r *rand.Rand, depth int) string {
		if depth <= 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return "x"
			case 1:
				return "y"
			default:
				// Positive constants keep ^ well-defined.
				return []string{"1", "2", "0.5", "3"}[r.Intn(4)]
			}
		}
		a, b := build(r, depth-1), build(r, depth-1)
		op := []string{"+", "-", "*"}[r.Intn(3)]
		return "(" + a + " " + op + " " + b + ")"
	}
	env := MapEnv{"x": 1.5, "y": 2.25}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := build(r, 4)
		e1, err := Parse(src)
		if err != nil {
			return false
		}
		e2, err := Parse(e1.String())
		if err != nil {
			return false
		}
		v1, err1 := e1.Eval(env)
		v2, err2 := e2.Eval(env)
		return err1 == nil && err2 == nil && math.Abs(v1-v2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFunctionsList(t *testing.T) {
	t.Parallel()
	fns := Functions()
	if len(fns) == 0 {
		t.Fatal("Functions() empty")
	}
	joined := strings.Join(fns, ",")
	for _, want := range []string{"exp", "log", "min", "max", "pow", "sqrt", "abs"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Functions() missing %q: %v", want, fns)
		}
	}
	// Sorted.
	for i := 1; i < len(fns); i++ {
		if fns[i-1] >= fns[i] {
			t.Errorf("Functions() not sorted: %v", fns)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("((")
}

func TestSourcePreserved(t *testing.T) {
	t.Parallel()
	const src = "2*La_hadb*(1-FIR)"
	if got := MustParse(src).Source(); got != src {
		t.Errorf("Source = %q, want %q", got, src)
	}
}

func TestErrorMessages(t *testing.T) {
	t.Parallel()
	_, err := Parse("@")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(se.Error(), "offset 0") {
		t.Errorf("SyntaxError.Error() = %q", se.Error())
	}
	ue := &UndefinedError{Name: "La"}
	if !strings.Contains(ue.Error(), "La") {
		t.Errorf("UndefinedError.Error() = %q", ue.Error())
	}
	ee := &EvalError{Op: "divide", Message: "division by zero"}
	if !strings.Contains(ee.Error(), "divide") {
		t.Errorf("EvalError.Error() = %q", ee.Error())
	}
}

func TestTokenizeHelper(t *testing.T) {
	t.Parallel()
	toks, err := tokenize("1 + x * (2 - 3) / y ^ 2, min")
	if err != nil {
		t.Fatalf("tokenize: %v", err)
	}
	// 15 tokens + EOF.
	if len(toks) != 16 {
		t.Errorf("tokens = %d, want 16", len(toks))
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
	if _, err := tokenize("#"); err == nil {
		t.Error("tokenize accepted '#'")
	}
}

func TestTokenKindStrings(t *testing.T) {
	t.Parallel()
	kinds := []tokenKind{
		tokEOF, tokNumber, tokIdent, tokPlus, tokMinus, tokStar,
		tokSlash, tokCaret, tokLParen, tokRParen, tokComma,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("duplicate or empty token string for %d: %q", int(k), s)
		}
		seen[s] = true
	}
	if tokenKind(99).String() == "" {
		t.Error("unknown token kind string empty")
	}
}

func TestUnaryAndCallVars(t *testing.T) {
	t.Parallel()
	// Exercise vars() on unary and call nodes.
	e := MustParse("-a + min(b, -c)")
	got := e.Vars()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	// String rendering of unary and call nodes round-trips.
	e2, err := Parse(e.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", e.String(), err)
	}
	env := MapEnv{"a": 1, "b": 2, "c": 3}
	v1, _ := e.Eval(env)
	v2, _ := e2.Eval(env)
	if v1 != v2 {
		t.Errorf("round trip: %v != %v", v1, v2)
	}
}

func TestEvalErrorInsideUnaryAndCall(t *testing.T) {
	t.Parallel()
	// Error propagation through unary and call argument evaluation.
	if _, err := MustParse("-(1/0)").Eval(nil); err == nil {
		t.Error("unary should propagate eval error")
	}
	if _, err := MustParse("min(1, 1/0)").Eval(nil); err == nil {
		t.Error("call should propagate eval error")
	}
	if _, err := MustParse("(1/0) + 1").Eval(nil); err == nil {
		t.Error("left operand error should propagate")
	}
	if _, err := MustParse("1 + (1/0)").Eval(nil); err == nil {
		t.Error("right operand error should propagate")
	}
	if _, err := MustParse("x").Eval(nil); err == nil {
		t.Error("nil env lookup should fail")
	}
}

func TestNumberLexingEdgeCases(t *testing.T) {
	t.Parallel()
	cases := map[string]float64{
		"1e3":    1000,
		"1E3":    1000,
		"1.5e+2": 150,
		"2.5E-1": 0.25,
		"0.0":    0,
		"007":    7,
		"1.25e0": 1.25,
	}
	for src, want := range cases {
		got := evalOK(t, src, nil)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval(%q) = %v, want %v", src, got, want)
		}
	}
	// "1e" stops the number before 'e'... the lexer consumes the exponent
	// marker only with digits after sign; "1e" yields "1e" which fails
	// ParseFloat or splits; either way Parse must not accept it silently
	// producing a wrong value.
	if e, err := Parse("1e"); err == nil {
		if v, err2 := e.Eval(MapEnv{"e": 2}); err2 == nil && v != 0 {
			// Lexed as "1" then ident "e" juxtaposed → syntax error
			// expected; reaching here means it parsed as something else.
			t.Errorf("Parse(\"1e\") unexpectedly evaluated to %v", v)
		}
	}
}
