package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Node is an expression AST node.
type Node interface {
	// Eval computes the node's value against the parameter environment.
	Eval(env Env) (float64, error)
	// String renders the node back to parseable source.
	String() string
	// vars accumulates referenced parameter names into set.
	vars(set map[string]struct{})
}

// Env supplies parameter values during evaluation.
type Env interface {
	// Lookup returns the value bound to name and whether it exists.
	Lookup(name string) (float64, bool)
}

// MapEnv is the common map-backed environment.
type MapEnv map[string]float64

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// UndefinedError reports a parameter referenced but absent from the Env.
type UndefinedError struct {
	Name string
}

func (e *UndefinedError) Error() string {
	return fmt.Sprintf("expr: undefined parameter %q", e.Name)
}

// EvalError reports a domain failure during evaluation (division by zero,
// log of a non-positive number, ...).
type EvalError struct {
	Op      string
	Message string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: %s: %s", e.Op, e.Message)
}

type numberNode float64

func (n numberNode) Eval(Env) (float64, error) { return float64(n), nil }
func (n numberNode) String() string {
	return strconv.FormatFloat(float64(n), 'g', -1, 64)
}
func (n numberNode) vars(map[string]struct{}) {}

type varNode string

func (v varNode) Eval(env Env) (float64, error) {
	if env != nil {
		if x, ok := env.Lookup(string(v)); ok {
			return x, nil
		}
	}
	return 0, &UndefinedError{Name: string(v)}
}
func (v varNode) String() string               { return string(v) }
func (v varNode) vars(set map[string]struct{}) { set[string(v)] = struct{}{} }

type unaryNode struct {
	op   byte // '-'
	expr Node
}

func (u *unaryNode) Eval(env Env) (float64, error) {
	v, err := u.expr.Eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}
func (u *unaryNode) String() string               { return "-" + parenthesize(u.expr) }
func (u *unaryNode) vars(set map[string]struct{}) { u.expr.vars(set) }

type binaryNode struct {
	op          byte // '+', '-', '*', '/', '^'
	left, right Node
}

func (b *binaryNode) Eval(env Env) (float64, error) {
	l, err := b.left.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.right.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, &EvalError{Op: "divide", Message: "division by zero"}
		}
		return l / r, nil
	case '^':
		return math.Pow(l, r), nil
	}
	return 0, &EvalError{Op: string(b.op), Message: "unknown operator"}
}

func (b *binaryNode) String() string {
	return fmt.Sprintf("%s %c %s", parenthesize(b.left), b.op, parenthesize(b.right))
}
func (b *binaryNode) vars(set map[string]struct{}) {
	b.left.vars(set)
	b.right.vars(set)
}

type callNode struct {
	name string
	args []Node
}

// function describes a builtin callable.
type function struct {
	arity int
	apply func(args []float64) (float64, error)
}

var builtins = map[string]function{
	"exp": {1, func(a []float64) (float64, error) { return math.Exp(a[0]), nil }},
	"log": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, &EvalError{Op: "log", Message: fmt.Sprintf("argument %g not positive", a[0])}
		}
		return math.Log(a[0]), nil
	}},
	"sqrt": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, &EvalError{Op: "sqrt", Message: fmt.Sprintf("argument %g negative", a[0])}
		}
		return math.Sqrt(a[0]), nil
	}},
	"abs": {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"min": {2, func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max": {2, func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
	"pow": {2, func(a []float64) (float64, error) { return math.Pow(a[0], a[1]), nil }},
}

// Functions returns the sorted names of the builtin functions, for
// documentation and error messages.
func Functions() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *callNode) Eval(env Env) (float64, error) {
	fn, ok := builtins[c.name]
	if !ok {
		return 0, &EvalError{Op: c.name, Message: "unknown function"}
	}
	args := make([]float64, len(c.args))
	for i, a := range c.args {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return fn.apply(args)
}

func (c *callNode) String() string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return c.name + "(" + strings.Join(parts, ", ") + ")"
}

func (c *callNode) vars(set map[string]struct{}) {
	for _, a := range c.args {
		a.vars(set)
	}
}

func parenthesize(n Node) string {
	switch n.(type) {
	case *binaryNode:
		return "(" + n.String() + ")"
	default:
		return n.String()
	}
}

// Expr is a parsed, reusable expression.
type Expr struct {
	root Node
	src  string
}

// Parse compiles source text into an Expr.
func Parse(src string) (*Expr, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	root, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, &SyntaxError{Pos: p.cur.pos, Message: fmt.Sprintf("unexpected %s", p.cur.kind)}
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for statically known-good expressions; it panics on
// error and is intended for package-level model definitions and tests.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression against env.
func (e *Expr) Eval(env Env) (float64, error) { return e.root.Eval(env) }

// Source returns the original source text.
func (e *Expr) Source() string { return e.src }

// String renders a normalized form of the expression.
func (e *Expr) String() string { return e.root.String() }

// Vars returns the sorted set of parameter names the expression references.
func (e *Expr) Vars() []string {
	set := make(map[string]struct{})
	e.root.vars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Constant reports whether the expression references no parameters, and if
// so its value.
func (e *Expr) Constant() (float64, bool) {
	if len(e.Vars()) > 0 {
		return 0, false
	}
	v, err := e.Eval(nil)
	if err != nil {
		return 0, false
	}
	return v, true
}

// parser is a Pratt (precedence-climbing) parser.
type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// binding powers; '^' is right-associative and binds tightest.
func infixPower(k tokenKind) (left, right int, ok bool) {
	switch k {
	case tokPlus, tokMinus:
		return 1, 2, true
	case tokStar, tokSlash:
		return 3, 4, true
	case tokCaret:
		return 6, 5, true // right associative
	}
	return 0, 0, false
}

func (p *parser) parseExpr(minPower int) (Node, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		lp, rp, ok := infixPower(p.cur.kind)
		if !ok || lp < minPower {
			return left, nil
		}
		op := p.cur.text[0]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseExpr(rp)
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: op, left: left, right: right}
	}
}

func (p *parser) parsePrefix() (Node, error) {
	switch p.cur.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, &SyntaxError{Pos: p.cur.pos, Message: fmt.Sprintf("malformed number %q", p.cur.text)}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return numberNode(v), nil
	case tokIdent:
		name := p.cur.text
		pos := p.cur.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tokLParen {
			return p.parseCall(name, pos)
		}
		return varNode(name), nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr(5) // binds tighter than * and /
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: '-', expr: inner}, nil
	case tokPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parsePrefix()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.cur.kind != tokRParen {
			return nil, &SyntaxError{Pos: p.cur.pos, Message: fmt.Sprintf("expected ')', found %s", p.cur.kind)}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, &SyntaxError{Pos: p.cur.pos, Message: fmt.Sprintf("expected expression, found %s", p.cur.kind)}
	}
}

func (p *parser) parseCall(name string, pos int) (Node, error) {
	fn, known := builtins[name]
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []Node
	if p.cur.kind != tokRParen {
		for {
			a, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.cur.kind != tokRParen {
		return nil, &SyntaxError{Pos: p.cur.pos, Message: fmt.Sprintf("expected ')', found %s", p.cur.kind)}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if !known {
		return nil, &SyntaxError{Pos: pos, Message: fmt.Sprintf("unknown function %q (have %s)", name, strings.Join(Functions(), ", "))}
	}
	if len(args) != fn.arity {
		return nil, &SyntaxError{Pos: pos, Message: fmt.Sprintf("%s takes %d argument(s), got %d", name, fn.arity, len(args))}
	}
	return &callNode{name: name, args: args}, nil
}
