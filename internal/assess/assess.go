// Package assess generates a complete availability assessment report for
// a JSAS deployment — the deliverable the paper's methodology produces for
// a product team: steady-state results, downtime attribution, sensitivity,
// uncertainty bands, parameter importance, finite-mission availability,
// and delivered capacity, rendered as a Markdown document.
package assess

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/jsas"
	"repro/internal/sensitivity"
	"repro/internal/uncertainty"
)

// ErrBadRequest is reported for invalid assessment requests.
var ErrBadRequest = errors.New("assess: invalid request")

// Request configures an assessment.
type Request struct {
	Config jsas.Config
	Params jsas.Params
	// MissionWindows lists finite horizons to evaluate interval
	// availability for (default: 24 h, 30 d, 365 d).
	MissionWindows []time.Duration
	// UncertaintySamples sets the Monte-Carlo sample count (default 1000).
	UncertaintySamples int
	// Seed makes the uncertainty section reproducible.
	Seed int64
	// Title overrides the report heading.
	Title string
}

// Report holds the computed assessment, ready for rendering.
type Report struct {
	Request     Request
	System      *jsas.SystemResult
	Sweep       []sensitivity.Point
	Crossing    float64
	HasCrossing bool
	Uncertainty *uncertainty.Result
	Importance  []sensitivity.ImportanceEntry
	Missions    []*jsas.IntervalResult
	Capacity    *jsas.PerformabilityResult
}

// Run computes every section of the assessment.
func Run(req Request) (*Report, error) {
	if err := req.Config.Validate(); err != nil {
		return nil, err
	}
	if err := req.Params.Validate(); err != nil {
		return nil, err
	}
	if len(req.MissionWindows) == 0 {
		req.MissionWindows = []time.Duration{
			24 * time.Hour, 30 * 24 * time.Hour, 365 * 24 * time.Hour,
		}
	}
	if req.UncertaintySamples <= 0 {
		req.UncertaintySamples = 1000
	}
	rep := &Report{Request: req}
	var err error
	if rep.System, err = jsas.Solve(req.Config, req.Params); err != nil {
		return nil, fmt.Errorf("assess: solve: %w", err)
	}
	if rep.Sweep, err = sensitivity.Sweep(0.5, 3, 10,
		jsas.TstartLongSweepSolver(req.Config, req.Params)); err != nil {
		return nil, fmt.Errorf("assess: sweep: %w", err)
	}
	rep.Crossing, rep.HasCrossing = sensitivity.CrossingBelow(rep.Sweep, 0.99999)
	if rep.Uncertainty, err = uncertainty.Run(
		jsas.PaperUncertaintyRanges(),
		jsas.UncertaintySolver(req.Config, req.Params),
		uncertainty.Options{Samples: req.UncertaintySamples, Seed: req.Seed},
	); err != nil {
		return nil, fmt.Errorf("assess: uncertainty: %w", err)
	}
	if rep.Importance, err = sensitivity.Importance(
		jsas.PaperImportanceRanges(req.Params),
		jsas.ImportanceSolver(req.Config, req.Params),
	); err != nil {
		return nil, fmt.Errorf("assess: importance: %w", err)
	}
	for _, w := range req.MissionWindows {
		ir, err := jsas.IntervalAvailability(req.Config, req.Params, w)
		if err != nil {
			return nil, fmt.Errorf("assess: interval %v: %w", w, err)
		}
		rep.Missions = append(rep.Missions, ir)
	}
	if rep.Capacity, err = jsas.SolveAppServerPerformability(req.Params, req.Config.ASInstances); err != nil {
		return nil, fmt.Errorf("assess: performability: %w", err)
	}
	return rep, nil
}

// WriteMarkdown renders the report.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	title := r.Request.Title
	if title == "" {
		title = fmt.Sprintf("Availability assessment: %s", r.Request.Config)
	}
	fmt.Fprintf(&b, "# %s\n\n", title)
	b.WriteString("Methodology: hierarchical Markov reward modeling with uncertainty\n")
	b.WriteString("analysis, after Tang et al., DSN 2004.\n\n")

	b.WriteString("## Steady-state availability\n\n")
	fmt.Fprintf(&b, "- Availability: **%.5f%%**\n", r.System.Availability*100)
	fmt.Fprintf(&b, "- Yearly downtime: **%.2f minutes**\n", r.System.YearlyDowntimeMinutes)
	fmt.Fprintf(&b, "- MTBF: %.0f hours\n", r.System.MTBFHours)
	fmt.Fprintf(&b, "- Downtime attribution: %.2f min/yr Application Server, %.2f min/yr HADB\n\n",
		r.System.DowntimeASMinutes, r.System.DowntimeHADBMinutes)
	fiveNines := "meets"
	if r.System.Availability < 0.99999 {
		fiveNines = "does not meet"
	}
	fmt.Fprintf(&b, "The configuration **%s** the 99.999%% availability target.\n\n", fiveNines)

	b.WriteString("## Sensitivity to HW/OS recovery time (Tstart_long)\n\n")
	b.WriteString("| Tstart_long (h) | Availability | Downtime (min/yr) |\n|---|---|---|\n")
	for _, p := range r.Sweep {
		fmt.Fprintf(&b, "| %.2f | %.7f%% | %.2f |\n", p.Value, p.Availability*100, p.YearlyDowntimeMinutes)
	}
	b.WriteByte('\n')
	if r.HasCrossing {
		fmt.Fprintf(&b, "Five nines is lost once Tstart_long exceeds **%.2f hours** — bound\n", r.Crossing)
		b.WriteString("repair logistics accordingly (standby node or spare parts on site).\n\n")
	} else {
		b.WriteString("Five nines holds across the entire 0.5–3 h range; repair logistics\nare not the availability bottleneck.\n\n")
	}

	b.WriteString("## Uncertainty analysis\n\n")
	u := r.Uncertainty
	fmt.Fprintf(&b, "Across %d sampled parameter snapshots (§7 ranges):\n\n", u.Summary.N)
	fmt.Fprintf(&b, "- Mean yearly downtime: **%.2f minutes** (s.d. %.2f)\n", u.Summary.Mean, u.Summary.StdDev)
	for _, c := range u.SortedConfidences() {
		ci := u.CIs[c]
		fmt.Fprintf(&b, "- %.0f%% interval: (%.2f, %.2f) minutes\n", c*100, ci.Low, ci.High)
	}
	fmt.Fprintf(&b, "- Fraction of deployments above five nines: **%.1f%%**\n\n", u.FractionBelow(5.25)*100)

	b.WriteString("## Parameter importance\n\n")
	b.WriteString("| Parameter | Nominal | Elasticity | Range swing (min/yr) |\n|---|---|---|---|\n")
	for _, e := range r.Importance {
		fmt.Fprintf(&b, "| %s | %g | %+.4f | %+.3f |\n", e.Name, e.Base, e.Elasticity, e.Swing)
	}
	if len(r.Importance) > 0 {
		fmt.Fprintf(&b, "\nThe dominant lever is **%s**; invest measurement and engineering\neffort there first.\n\n", r.Importance[0].Name)
	}

	b.WriteString("## Finite-mission availability\n\n")
	b.WriteString("Starting from a fully healthy system:\n\n")
	b.WriteString("| Mission | Interval availability | Expected downtime |\n|---|---|---|\n")
	for _, m := range r.Missions {
		fmt.Fprintf(&b, "| %v | %.7f%% | %v |\n",
			m.Mission, m.IntervalAvailability*100, m.ExpectedDowntime.Round(time.Second))
	}
	b.WriteByte('\n')

	b.WriteString("## Delivered capacity (performability)\n\n")
	c := r.Capacity
	fmt.Fprintf(&b, "- 0/1 availability of the AS cluster: %.7f%%\n", c.Availability*100)
	fmt.Fprintf(&b, "- Long-run delivered capacity: **%.7f%%** of nominal\n", c.ExpectedCapacity*100)
	fmt.Fprintf(&b, "- Hidden capacity loss: %.2f full-outage-equivalent minutes/yr\n",
		c.CapacityLossMinutesPerYear)
	b.WriteString("\nCapacity loss from instances restarting while the cluster stays\n\"available\" dwarfs the availability-visible downtime; capacity planning\nshould use the performability number.\n")

	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("assess: write report: %w", err)
	}
	return nil
}
