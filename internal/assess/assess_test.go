package assess

import (
	"strings"
	"testing"
	"time"

	"repro/internal/jsas"
)

func TestRunAndRenderConfig1(t *testing.T) {
	t.Parallel()
	rep, err := Run(Request{
		Config:             jsas.Config1,
		Params:             jsas.DefaultParams(),
		UncertaintySamples: 200,
		Seed:               1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.System == nil || rep.Uncertainty == nil || rep.Capacity == nil {
		t.Fatal("missing sections")
	}
	if len(rep.Sweep) != 11 {
		t.Errorf("sweep points = %d, want 11", len(rep.Sweep))
	}
	if len(rep.Importance) != 6 {
		t.Errorf("importance entries = %d, want 6", len(rep.Importance))
	}
	if len(rep.Missions) != 3 {
		t.Errorf("default mission windows = %d, want 3", len(rep.Missions))
	}
	if !rep.HasCrossing {
		t.Error("Config 1 should have a five-nines crossing")
	}
	var b strings.Builder
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# Availability assessment",
		"## Steady-state availability",
		"## Sensitivity to HW/OS recovery time",
		"## Uncertainty analysis",
		"## Parameter importance",
		"## Finite-mission availability",
		"## Delivered capacity",
		"99.99", // the availability number
		"meets** the 99.999% availability target",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunConfig2NoCrossing(t *testing.T) {
	t.Parallel()
	rep, err := Run(Request{
		Config:             jsas.Config2,
		Params:             jsas.DefaultParams(),
		UncertaintySamples: 100,
		Seed:               2,
		MissionWindows:     []time.Duration{24 * time.Hour},
		Title:              "Config 2 assessment",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.HasCrossing {
		t.Error("Config 2 should not cross below five nines in the sweep")
	}
	var b strings.Builder
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if !strings.Contains(b.String(), "# Config 2 assessment") {
		t.Error("custom title not used")
	}
	if !strings.Contains(b.String(), "Five nines holds across") {
		t.Error("no-crossing narrative missing")
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Request{Params: jsas.DefaultParams()}); err == nil {
		t.Error("bad config accepted")
	}
	bad := jsas.DefaultParams()
	bad.FIR = -1
	if _, err := Run(Request{Config: jsas.Config1, Params: bad}); err == nil {
		t.Error("bad params accepted")
	}
}
