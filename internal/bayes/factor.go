package bayes

// factor is a nonnegative table over a subset of the network's discrete
// variables — the building block of variable elimination. Values are
// stored row-major over f.vars with the LAST variable's index varying
// fastest, so index arithmetic is a running mixed-radix counter.
type factor struct {
	// vars lists the variable ids the table ranges over, in storage order.
	vars []int
	// values holds ∏ card(v) entries.
	values []float64
}

// newFactor allocates a zeroed factor over vars (card maps variable id →
// cardinality).
func newFactor(vars []int, card []int) *factor {
	size := 1
	for _, v := range vars {
		size *= card[v]
	}
	return &factor{vars: vars, values: make([]float64, size)}
}

// at returns the table entry for the assignment (indexed by variable id).
func (f *factor) at(assign []int, card []int) float64 {
	idx := 0
	for _, v := range f.vars {
		idx = idx*card[v] + assign[v]
	}
	return f.values[idx]
}

// set writes the table entry for the assignment (indexed by variable id).
func (f *factor) set(assign []int, card []int, val float64) {
	idx := 0
	for _, v := range f.vars {
		idx = idx*card[v] + assign[v]
	}
	f.values[idx] = val
}

// contains reports whether the factor ranges over variable v.
func (f *factor) contains(v int) bool {
	for _, fv := range f.vars {
		if fv == v {
			return true
		}
	}
	return false
}

// product multiplies factors a and b into a new factor over the union of
// their variables (a's variables first, then b's new ones — a
// deterministic order, so elimination results are bit-identical run to
// run). The union table is filled by a mixed-radix odometer that keeps
// the source indices incremental: O(size · vars) with no per-entry maps.
func product(a, b *factor, card []int) *factor {
	union := append([]int(nil), a.vars...)
	for _, v := range b.vars {
		if !a.contains(v) {
			union = append(union, v)
		}
	}
	out := newFactor(union, card)

	// Per-source strides aligned to the union's digit positions: stride 0
	// when the source factor does not range over that digit.
	aStride := strides(union, a.vars, card)
	bStride := strides(union, b.vars, card)

	digits := make([]int, len(union))
	ai, bi := 0, 0
	for i := range out.values {
		out.values[i] = a.values[ai] * b.values[bi]
		// Advance the odometer (last digit fastest), carrying the source
		// indices along.
		for d := len(union) - 1; d >= 0; d-- {
			digits[d]++
			ai += aStride[d]
			bi += bStride[d]
			if digits[d] < card[union[d]] {
				break
			}
			ai -= digits[d] * aStride[d]
			bi -= digits[d] * bStride[d]
			digits[d] = 0
		}
	}
	return out
}

// strides returns, per union digit, how far the factor's flat index moves
// when that digit increments (0 if the factor ignores the digit).
func strides(union, vars []int, card []int) []int {
	// Factor-local stride of each of its variables (last varies fastest).
	local := make(map[int]int, len(vars))
	s := 1
	for i := len(vars) - 1; i >= 0; i-- {
		local[vars[i]] = s
		s *= card[vars[i]]
	}
	out := make([]int, len(union))
	for d, v := range union {
		out[d] = local[v] // zero for absent variables
	}
	return out
}

// sumOut marginalizes variable v out of the factor, returning a factor
// over the remaining variables (possibly a scalar factor with no
// variables and one entry).
func (f *factor) sumOut(v int, card []int) *factor {
	rest := make([]int, 0, len(f.vars)-1)
	for _, fv := range f.vars {
		if fv != v {
			rest = append(rest, fv)
		}
	}
	out := newFactor(rest, card)

	// Walk f once with an odometer, accumulating into the out index. The
	// stride table maps each f digit to its out-flat stride (zero for v).
	outStride := strides(f.vars, rest, card)

	digits := make([]int, len(f.vars))
	oi := 0
	for _, val := range f.values {
		out.values[oi] += val
		for d := len(f.vars) - 1; d >= 0; d-- {
			digits[d]++
			oi += outStride[d]
			if digits[d] < card[f.vars[d]] {
				break
			}
			oi -= digits[d] * outStride[d]
			digits[d] = 0
		}
	}
	return out
}
