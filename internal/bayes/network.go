// Package bayes implements exact Bayesian-network availability inference
// over redundancy structures: fault-tree style composition (AND/OR,
// k-out-of-n, noisy-OR with leak) of basic events with known steady-state
// availabilities, solved by variable elimination.
//
// It is the engine's second solver backend (backend.KindBayes). The CTMC
// hierarchy solves each leaf submodel exactly but explodes
// combinatorially when replicated services are cross-producted
// (hier.Product caps at 1e6 states — about ten 3-state instances).
// The BN backend trades the CTMC's transient structure for scale: gates
// are decomposed into chains of small conditional-probability tables
// (k-out-of-n via a saturating counter, noisy-OR via a transmission
// accumulator), so a 100-instance k-out-of-n cluster costs O(n·k) table
// entries instead of 3^100 states, and exact inference stays cheap.
package bayes

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Common errors reported by the package.
var (
	// ErrBadNetwork is reported by Build for structurally invalid networks
	// (bad probabilities, unknown child handles, duplicate names).
	ErrBadNetwork = errors.New("bayes: invalid network")
	// ErrIntractable is reported by Solve when variable elimination would
	// materialize a factor above the entry cap — the network's treewidth
	// is too large for exact inference.
	ErrIntractable = errors.New("bayes: inference intractable")
)

// maxFactorEntries caps the size of any intermediate factor materialized
// during variable elimination (4M float64 entries ≈ 32 MiB). Redundancy
// structures built through this package's gates have tiny treewidth and
// never approach it; the cap turns a pathological hand-built topology
// into ErrIntractable instead of an OOM.
const maxFactorEntries = 1 << 22

// Node is a handle to a variable created by a Builder. The zero handle is
// the first node created; handles from one Builder are meaningless in
// another.
type Node int

// variable is a discrete network variable. For basic events and gates the
// cardinality is 2 with value 1 = up, value 0 = down; k-out-of-n counter
// auxiliaries have cardinality up to k+1.
type variable struct {
	name string
	card int
}

// Builder accumulates basic events and gates and produces a validated
// Network. Children must be created before the gates that reference them,
// so the DAG is acyclic by construction. Errors are collected and
// reported by Build, following the ctmc.Builder idiom.
type Builder struct {
	name    string
	vars    []variable
	factors []*factor
	byName  map[string]Node
	errs    []error
}

// NewBuilder returns an empty network builder for a model with the given
// display name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]Node)}
}

// addVar registers a variable, enforcing unique names.
func (b *Builder) addVar(name string, card int) Node {
	if _, ok := b.byName[name]; ok {
		b.errs = append(b.errs, fmt.Errorf("duplicate node name %q: %w", name, ErrBadNetwork))
	}
	n := Node(len(b.vars))
	b.vars = append(b.vars, variable{name: name, card: card})
	b.byName[name] = n
	return n
}

// card returns the cardinalities indexed by variable id.
func (b *Builder) card() []int {
	card := make([]int, len(b.vars))
	for i, v := range b.vars {
		card[i] = v.card
	}
	return card
}

// checkChildren validates child handles and that at least one is given.
func (b *Builder) checkChildren(gate string, children []Node) bool {
	if len(children) == 0 {
		b.errs = append(b.errs, fmt.Errorf("gate %q has no children: %w", gate, ErrBadNetwork))
		return false
	}
	for _, c := range children {
		if int(c) < 0 || int(c) >= len(b.vars) {
			b.errs = append(b.errs, fmt.Errorf("gate %q references unknown child %d: %w", gate, c, ErrBadNetwork))
			return false
		}
		if b.vars[c].card != 2 {
			b.errs = append(b.errs, fmt.Errorf("gate %q child %q is not a binary event: %w", gate, b.vars[c].name, ErrBadNetwork))
			return false
		}
	}
	return true
}

// Basic adds a basic event with steady-state availability pUp — typically
// the availability of a leaf submodel solved exactly by the CTMC engine,
// which is how the hierarchy's lower layers feed the BN composition.
func (b *Builder) Basic(name string, pUp float64) Node {
	if !(pUp >= 0 && pUp <= 1) || math.IsNaN(pUp) { // NaN fails both comparisons
		b.errs = append(b.errs, fmt.Errorf("basic event %q availability %g outside [0,1]: %w", name, pUp, ErrBadNetwork))
		pUp = 0
	}
	n := b.addVar(name, 2)
	f := newFactor([]int{int(n)}, b.card())
	f.values[0] = 1 - pUp // down
	f.values[1] = pUp     // up
	b.factors = append(b.factors, f)
	return n
}

// And adds a gate that is up iff every child is up (series structure).
func (b *Builder) And(name string, children ...Node) Node {
	return b.KOfN(name, len(children), children...)
}

// Or adds a gate that is up iff at least one child is up (parallel
// structure).
func (b *Builder) Or(name string, children ...Node) Node {
	return b.KOfN(name, 1, children...)
}

// KOfN adds a gate that is up iff at least k of its n children are up —
// the quorum structure of replicated services.
//
// An explicit CPT over n parents would hold 2^(n+1) entries; instead the
// gate is decomposed into a chain of saturating counters
// s_i = min(s_{i-1} + up(x_i), k) with cardinality ≤ k+1, so the table
// cost is O(n·k²) and a 100-instance quorum stays trivially tractable.
func (b *Builder) KOfN(name string, k int, children ...Node) Node {
	if !b.checkChildren(name, children) {
		return b.addVar(name, 2)
	}
	n := len(children)
	if k < 1 || k > n {
		b.errs = append(b.errs, fmt.Errorf("gate %q requires %d of %d children: %w", name, k, n, ErrBadNetwork))
		return b.addVar(name, 2)
	}

	// Counter chain: s_i counts min(#up among x_1..x_i, k).
	prev := Node(-1)
	for i := 1; i <= n; i++ {
		cap := i
		if cap > k {
			cap = k
		}
		s := b.addVar(fmt.Sprintf("%s#s%d", name, i), cap+1)
		card := b.card()
		var f *factor
		if prev < 0 {
			// s_1 = up(x_1), deterministically.
			f = newFactor([]int{int(s), int(children[0])}, card)
			assign := make([]int, len(card))
			for x := 0; x < 2; x++ {
				assign[children[0]] = x
				assign[s] = x
				f.set(assign, card, 1)
			}
		} else {
			f = newFactor([]int{int(s), int(prev), int(children[i-1])}, card)
			assign := make([]int, len(card))
			for sp := 0; sp < card[prev]; sp++ {
				for x := 0; x < 2; x++ {
					v := sp + x
					if v > k {
						v = k
					}
					assign[prev] = sp
					assign[children[i-1]] = x
					assign[s] = v
					f.set(assign, card, 1)
				}
			}
		}
		b.factors = append(b.factors, f)
		prev = s
	}

	// Gate is up iff the final counter saturated at k.
	g := b.addVar(name, 2)
	card := b.card()
	f := newFactor([]int{int(g), int(prev)}, card)
	assign := make([]int, len(card))
	for sv := 0; sv < card[prev]; sv++ {
		up := 0
		if sv == k {
			up = 1
		}
		assign[prev] = sv
		assign[g] = up
		f.set(assign, card, 1)
	}
	b.factors = append(b.factors, f)
	return g
}

// NoisyOr adds a noisy-OR failure gate: each failed child independently
// transmits failure to the gate with probability weights[i], and the gate
// additionally fails spontaneously with probability leak. The gate is up
// iff no failure is transmitted and no leak fires, so
//
//	P(up | children) = (1 − leak) · ∏_{i: child i down} (1 − weights[i]).
//
// With all weights 1 and leak 0 this degenerates to And. Like KOfN, the
// CPT is decomposed into a chain — binary accumulators b_i = "no failure
// transmitted by x_1..x_i" — keeping the cost linear in the child count.
func (b *Builder) NoisyOr(name string, leak float64, children []Node, weights []float64) Node {
	if !b.checkChildren(name, children) {
		return b.addVar(name, 2)
	}
	if len(weights) != len(children) {
		b.errs = append(b.errs, fmt.Errorf("gate %q has %d children but %d weights: %w", name, len(children), len(weights), ErrBadNetwork))
		return b.addVar(name, 2)
	}
	bad := !(leak >= 0 && leak <= 1) || math.IsNaN(leak)
	for _, w := range weights {
		if !(w >= 0 && w <= 1) || math.IsNaN(w) {
			bad = true
		}
	}
	if bad {
		b.errs = append(b.errs, fmt.Errorf("gate %q leak/weights outside [0,1]: %w", name, ErrBadNetwork))
		return b.addVar(name, 2)
	}

	// Accumulator chain: b_i = 1 iff none of x_1..x_i transmitted failure.
	prev := Node(-1)
	for i, c := range children {
		a := b.addVar(fmt.Sprintf("%s#t%d", name, i+1), 2)
		card := b.card()
		var f *factor
		assign := make([]int, len(card))
		if prev < 0 {
			f = newFactor([]int{int(a), int(c)}, card)
			// x up: never transmits. x down: transmits w.p. weights[0].
			assign[c], assign[a] = 1, 1
			f.set(assign, card, 1)
			assign[c], assign[a] = 0, 1
			f.set(assign, card, 1-weights[0])
			assign[c], assign[a] = 0, 0
			f.set(assign, card, weights[0])
		} else {
			f = newFactor([]int{int(a), int(prev), int(c)}, card)
			// Once a failure is transmitted it stays transmitted.
			assign[prev] = 0
			for x := 0; x < 2; x++ {
				assign[c], assign[a] = x, 0
				f.set(assign, card, 1)
			}
			assign[prev] = 1
			assign[c], assign[a] = 1, 1
			f.set(assign, card, 1)
			assign[c], assign[a] = 0, 1
			f.set(assign, card, 1-weights[i])
			assign[c], assign[a] = 0, 0
			f.set(assign, card, weights[i])
		}
		b.factors = append(b.factors, f)
		prev = a
	}

	g := b.addVar(name, 2)
	card := b.card()
	f := newFactor([]int{int(g), int(prev)}, card)
	assign := make([]int, len(card))
	assign[prev], assign[g] = 1, 1
	f.set(assign, card, 1-leak)
	assign[prev], assign[g] = 1, 0
	f.set(assign, card, leak)
	assign[prev], assign[g] = 0, 0
	f.set(assign, card, 1)
	b.factors = append(b.factors, f)
	return g
}

// Build validates the network and returns it with root as the query
// variable (the system-up event).
func (b *Builder) Build(root Node) (*Network, error) {
	if int(root) < 0 || int(root) >= len(b.vars) {
		b.errs = append(b.errs, fmt.Errorf("root handle %d out of range: %w", root, ErrBadNetwork))
	} else if b.vars[root].card != 2 {
		b.errs = append(b.errs, fmt.Errorf("root %q is not a binary event: %w", b.vars[root].name, ErrBadNetwork))
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	return &Network{
		name:    b.name,
		vars:    append([]variable(nil), b.vars...),
		factors: append([]*factor(nil), b.factors...),
		card:    b.card(),
		root:    int(root),
	}, nil
}

// Network is an immutable Bayesian network over a redundancy structure.
// It implements backend.AvailabilityModel; Solve runs exact variable
// elimination and is safe for concurrent use.
type Network struct {
	name    string
	vars    []variable
	factors []*factor
	card    []int
	root    int
}

// Name returns the model's display name.
func (n *Network) Name() string { return n.name }

// Kind identifies the solving backend.
func (n *Network) Kind() backend.Kind { return backend.KindBayes }

// Variables returns the total variable count after gate decomposition —
// the BN analogue of the CTMC state count.
func (n *Network) Variables() int { return len(n.vars) }

// Inference metrics, reported to the default obs registry.
var (
	obsSolveSeconds = obs.H("bayes_solve_seconds", "variable-elimination solve wall time", obs.DurationBuckets)
	obsSolvesTotal  = obs.C("bayes_solves_total", "completed variable-elimination solves")
	obsSolveErrors  = obs.C("bayes_solve_errors_total", "variable-elimination solves that returned an error")
	obsLastVars     = obs.G("bayes_last_solve_variables", "variable count (after gate decomposition) of the most recent solve")
	obsLastWidth    = obs.G("bayes_last_solve_max_factor_entries", "largest intermediate factor of the most recent solve (treewidth proxy)")
	obsCancels      = obs.C("solver_cancellations_total",
		"engine runs aborted by context cancellation", `layer="bayes"`)
)

// Solve computes P(root = up) by variable elimination with a
// deterministic min-degree ordering and returns the backend-independent
// availability result.
func (n *Network) Solve(ctx context.Context) (*backend.Result, error) {
	timer := obs.StartTimer(obsSolveSeconds)
	span := trace.Default().Start("bayes.solve", nil,
		trace.String(trace.AttrTrack, "solver"),
		trace.Int("variables", int64(len(n.vars))))
	pUp, width, err := n.solve(ctx)
	timer.Stop()
	span.Attr(
		trace.Int("max_factor_entries", int64(width)),
		trace.Bool("error", err != nil))
	span.End()
	obsLastVars.Set(float64(len(n.vars)))
	obsLastWidth.Set(float64(width))
	if err != nil {
		obsSolveErrors.Inc()
		return nil, err
	}
	obsSolvesTotal.Inc()
	return &backend.Result{
		Backend:               backend.KindBayes,
		Name:                  n.name,
		Availability:          pUp,
		YearlyDowntimeMinutes: (1 - pUp) * backend.MinutesPerYear,
		Size:                  len(n.vars),
	}, nil
}

// Availability is a convenience wrapper returning only P(root = up).
func (n *Network) Availability(ctx context.Context) (float64, error) {
	res, err := n.Solve(ctx)
	if err != nil {
		return 0, err
	}
	return res.Availability, nil
}

// solve runs the elimination and returns P(up) plus the largest
// intermediate factor size seen (a treewidth proxy for diagnostics).
func (n *Network) solve(ctx context.Context) (float64, int, error) {
	if len(n.vars) == 0 {
		return 0, 0, fmt.Errorf("empty network: %w", ErrBadNetwork)
	}
	factors := append([]*factor(nil), n.factors...)
	order := n.eliminationOrder()
	maxEntries := 0
	for _, v := range order {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				obsCancels.Inc()
				return 0, maxEntries, fmt.Errorf("bayes solve canceled: %w", err)
			}
		}
		// Gather the factors mentioning v, multiply, marginalize v out.
		var joint *factor
		rest := factors[:0]
		size := 1
		for _, f := range factors {
			if !f.contains(v) {
				rest = append(rest, f)
				continue
			}
			if joint == nil {
				joint = f
				for _, fv := range f.vars {
					size *= n.card[fv]
				}
				continue
			}
			for _, fv := range f.vars {
				if !joint.contains(fv) {
					size *= n.card[fv]
				}
			}
			if size > maxFactorEntries {
				return 0, maxEntries, fmt.Errorf(
					"eliminating %q needs a %d-entry factor (cap %d): %w",
					n.vars[v].name, size, maxFactorEntries, ErrIntractable)
			}
			joint = product(joint, f, n.card)
		}
		factors = rest
		if joint == nil {
			continue // variable already marginalized away
		}
		if size > maxEntries {
			maxEntries = size
		}
		factors = append(factors, joint.sumOut(v, n.card))
	}

	// Multiply what remains — factors over the root only (and scalars).
	result := newFactor(nil, n.card)
	result.values[0] = 1
	for _, f := range factors {
		result = product(result, f, n.card)
	}
	var pDown, pUp float64
	switch len(result.vars) {
	case 1:
		pDown, pUp = result.values[0], result.values[1]
	default:
		return 0, maxEntries, fmt.Errorf("elimination left %d variables: %w", len(result.vars), ErrBadNetwork)
	}
	total := pDown + pUp
	if !(total > 0) || math.IsInf(total, 0) || math.IsNaN(total) {
		return 0, maxEntries, fmt.Errorf("degenerate network: total probability %g: %w", total, ErrBadNetwork)
	}
	return pUp / total, maxEntries, nil
}

// eliminationOrder returns every non-root variable in greedy min-degree
// order over the factor interaction graph, with ties broken by variable
// id so elimination — and therefore floating-point results — are
// bit-identical run to run.
func (n *Network) eliminationOrder() []int {
	nv := len(n.vars)
	adj := make([][]bool, nv)
	for i := range adj {
		adj[i] = make([]bool, nv)
	}
	for _, f := range n.factors {
		for _, a := range f.vars {
			for _, b := range f.vars {
				if a != b {
					adj[a][b] = true
				}
			}
		}
	}
	remaining := make([]bool, nv)
	for i := range remaining {
		remaining[i] = true
	}
	order := make([]int, 0, nv-1)
	for len(order) < nv-1 {
		best, bestDeg := -1, nv+1
		for v := 0; v < nv; v++ {
			if !remaining[v] || v == n.root {
				continue
			}
			deg := 0
			for u := 0; u < nv; u++ {
				if remaining[u] && adj[v][u] {
					deg++
				}
			}
			if deg < bestDeg {
				best, bestDeg = v, deg
			}
		}
		// Connect the eliminated variable's remaining neighbors (fill-in),
		// mirroring the factor that elimination will create.
		for a := 0; a < nv; a++ {
			if !remaining[a] || !adj[best][a] || a == best {
				continue
			}
			for b := a + 1; b < nv; b++ {
				if remaining[b] && adj[best][b] {
					adj[a][b], adj[b][a] = true, true
				}
			}
		}
		remaining[best] = false
		order = append(order, best)
	}
	return order
}
