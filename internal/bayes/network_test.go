package bayes

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/backend"
)

// bruteForce computes P(root = up) by full joint enumeration — the
// ground truth variable elimination must match.
func bruteForce(t *testing.T, n *Network) float64 {
	t.Helper()
	assign := make([]int, len(n.vars))
	var total, up float64
	var walk func(v int)
	walk = func(v int) {
		if v == len(n.vars) {
			p := 1.0
			for _, f := range n.factors {
				p *= f.at(assign, n.card)
			}
			total += p
			if assign[n.root] == 1 {
				up += p
			}
			return
		}
		for x := 0; x < n.card[v]; x++ {
			assign[v] = x
			walk(v + 1)
		}
	}
	walk(0)
	if total <= 0 {
		t.Fatalf("brute force: degenerate total %g", total)
	}
	return up / total
}

func solveP(t *testing.T, n *Network) float64 {
	t.Helper()
	res, err := n.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res.Availability
}

// binomialTail is the closed-form k-of-n availability with iid children.
func binomialTail(n, k int, p float64) float64 {
	sum := 0.0
	for j := k; j <= n; j++ {
		c := 1.0
		for i := 0; i < j; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		sum += c * math.Pow(p, float64(j)) * math.Pow(1-p, float64(n-j))
	}
	return sum
}

func TestGatesTruthTables(t *testing.T) {
	// With children pinned to 0/1 availabilities the gates must act as
	// deterministic boolean functions.
	cases := []struct {
		name string
		bits []float64
		k    int
		want float64
	}{
		{"and-all-up", []float64{1, 1, 1}, 3, 1},
		{"and-one-down", []float64{1, 0, 1}, 3, 0},
		{"or-one-up", []float64{0, 1, 0}, 1, 1},
		{"or-all-down", []float64{0, 0, 0}, 1, 0},
		{"2of3-two-up", []float64{1, 1, 0}, 2, 1},
		{"2of3-one-up", []float64{0, 1, 0}, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(tc.name)
			children := make([]Node, len(tc.bits))
			for i, p := range tc.bits {
				children[i] = b.Basic(string(rune('a'+i)), p)
			}
			root := b.KOfN("sys", tc.k, children...)
			net, err := b.Build(root)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if got := solveP(t, net); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("P(up) = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestKOfNMatchesBinomial(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		p    float64
	}{
		{1, 1, 0.9}, {3, 2, 0.99}, {5, 3, 0.95}, {8, 8, 0.999}, {8, 1, 0.7},
	} {
		b := NewBuilder("kofn")
		children := make([]Node, tc.n)
		for i := range children {
			children[i] = b.Basic(string(rune('a'+i)), tc.p)
		}
		net, err := b.Build(b.KOfN("sys", tc.k, children...))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		want := binomialTail(tc.n, tc.k, tc.p)
		if got := solveP(t, net); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%d-of-%d(p=%g): P(up) = %.15g, want %.15g", tc.k, tc.n, tc.p, got, want)
		}
	}
}

func TestNoisyOrClosedForm(t *testing.T) {
	// P(up) = (1-leak) · Σ over child states ∏ P(state) · ∏_{down i}(1-w_i).
	avails := []float64{0.9, 0.99, 0.95}
	weights := []float64{1, 0.5, 0.25}
	leak := 0.01
	b := NewBuilder("noisyor")
	children := make([]Node, len(avails))
	for i, p := range avails {
		children[i] = b.Basic(string(rune('a'+i)), p)
	}
	net, err := b.Build(b.NoisyOr("sys", leak, children, weights))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := 0.0
	for mask := 0; mask < 1<<len(avails); mask++ {
		p := 1.0
		for i := range avails {
			if mask&(1<<i) != 0 {
				p *= avails[i]
			} else {
				p *= (1 - avails[i]) * (1 - weights[i])
			}
		}
		want += p
	}
	want *= 1 - leak
	if got := solveP(t, net); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(up) = %.15g, want %.15g", got, want)
	}
	if bf := bruteForce(t, net); math.Abs(bf-want) > 1e-12 {
		t.Fatalf("brute force %.15g disagrees with closed form %.15g", bf, want)
	}
}

// TestEliminationMatchesEnumeration cross-checks variable elimination
// against full joint enumeration on randomized layered structures.
func TestEliminationMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder("rand")
		// Random leaves.
		nLeaves := 2 + rng.Intn(4)
		leaves := make([]Node, nLeaves)
		for i := range leaves {
			leaves[i] = b.Basic(string(rune('a'+i)), 0.5+rng.Float64()/2)
		}
		// Two random gates over subsets, then a root combining them.
		gate := func(name string, pool []Node) Node {
			sub := append([]Node(nil), pool...)
			rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
			sub = sub[:1+rng.Intn(len(sub))]
			switch rng.Intn(3) {
			case 0:
				return b.And(name, sub...)
			case 1:
				return b.Or(name, sub...)
			default:
				return b.KOfN(name, 1+rng.Intn(len(sub)), sub...)
			}
		}
		g1 := gate("g1", leaves)
		g2 := gate("g2", leaves)
		root := b.KOfN("sys", 1+rng.Intn(2), g1, g2)
		net, err := b.Build(root)
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		got := solveP(t, net)
		want := bruteForce(t, net)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("trial %d: elimination %.15g, enumeration %.15g", trial, got, want)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	build := func() *Network {
		b := NewBuilder("det")
		children := make([]Node, 12)
		for i := range children {
			children[i] = b.Basic(string(rune('a'+i)), 0.9+float64(i)*0.007)
		}
		net, err := b.Build(b.KOfN("sys", 7, children...))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return net
	}
	ref := solveP(t, build())
	for i := 0; i < 5; i++ {
		if got := solveP(t, build()); got != ref {
			t.Fatalf("run %d: %.17g != %.17g (solve not bit-deterministic)", i, got, ref)
		}
	}
}

func TestLargeClusterTractable(t *testing.T) {
	// 100-instance 90-of-100 quorum — the scenario the CTMC product
	// explodes on (3^100 states) — solves exactly and matches the
	// binomial closed form.
	const n, k = 100, 90
	const p = 0.995
	b := NewBuilder("cluster")
	children := make([]Node, n)
	for i := range children {
		children[i] = b.Basic(fmt100(i), p)
	}
	net, err := b.Build(b.KOfN("sys", k, children...))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := net.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := binomialTail(n, k, p)
	if math.Abs(res.Availability-want) > 1e-9 {
		t.Fatalf("P(up) = %.15g, want %.15g", res.Availability, want)
	}
	if res.Backend != backend.KindBayes || res.Size != net.Variables() {
		t.Fatalf("bad result metadata: %+v", res)
	}
}

func fmt100(i int) string { return "as" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestBuilderErrors(t *testing.T) {
	t.Run("bad-probability", func(t *testing.T) {
		for _, p := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1)} {
			b := NewBuilder("bad")
			root := b.Basic("x", p)
			if _, err := b.Build(root); !errors.Is(err, ErrBadNetwork) {
				t.Fatalf("p=%g: err = %v, want ErrBadNetwork", p, err)
			}
		}
	})
	t.Run("bad-k", func(t *testing.T) {
		for _, k := range []int{0, 3, -1} {
			b := NewBuilder("bad")
			x := b.Basic("x", 0.9)
			y := b.Basic("y", 0.9)
			if _, err := b.Build(b.KOfN("sys", k, x, y)); !errors.Is(err, ErrBadNetwork) {
				t.Fatalf("k=%d: err = %v, want ErrBadNetwork", k, err)
			}
		}
	})
	t.Run("no-children", func(t *testing.T) {
		b := NewBuilder("bad")
		if _, err := b.Build(b.Or("sys")); !errors.Is(err, ErrBadNetwork) {
			t.Fatalf("err = %v, want ErrBadNetwork", err)
		}
	})
	t.Run("duplicate-name", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Basic("x", 0.9)
		x2 := b.Basic("x", 0.8)
		if _, err := b.Build(x2); !errors.Is(err, ErrBadNetwork) {
			t.Fatalf("err = %v, want ErrBadNetwork", err)
		}
	})
	t.Run("foreign-child", func(t *testing.T) {
		b := NewBuilder("bad")
		x := b.Basic("x", 0.9)
		if _, err := b.Build(b.And("sys", x, Node(99))); !errors.Is(err, ErrBadNetwork) {
			t.Fatalf("err = %v, want ErrBadNetwork", err)
		}
	})
	t.Run("weight-mismatch", func(t *testing.T) {
		b := NewBuilder("bad")
		x := b.Basic("x", 0.9)
		if _, err := b.Build(b.NoisyOr("sys", 0, []Node{x}, nil)); !errors.Is(err, ErrBadNetwork) {
			t.Fatalf("err = %v, want ErrBadNetwork", err)
		}
	})
	t.Run("bad-leak", func(t *testing.T) {
		b := NewBuilder("bad")
		x := b.Basic("x", 0.9)
		if _, err := b.Build(b.NoisyOr("sys", math.NaN(), []Node{x}, []float64{1})); !errors.Is(err, ErrBadNetwork) {
			t.Fatalf("err = %v, want ErrBadNetwork", err)
		}
	})
}

func TestSolveCanceled(t *testing.T) {
	b := NewBuilder("cancel")
	children := make([]Node, 8)
	for i := range children {
		children[i] = b.Basic(string(rune('a'+i)), 0.9)
	}
	net, err := b.Build(b.KOfN("sys", 4, children...))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.Solve(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAndOrComposeLayered(t *testing.T) {
	// Host/VM layered composition: two hosts, each running two VMs in
	// series with the host; the service needs one working VM stack.
	hostA, vmA := 0.999, 0.99
	b := NewBuilder("layered")
	ha := b.Basic("hostA", hostA)
	hb := b.Basic("hostB", hostA)
	va := b.Basic("vmA", vmA)
	vb := b.Basic("vmB", vmA)
	stackA := b.And("stackA", ha, va)
	stackB := b.And("stackB", hb, vb)
	net, err := b.Build(b.Or("svc", stackA, stackB))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got := solveP(t, net)
	want := bruteForce(t, net)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("elimination %.15g, enumeration %.15g", got, want)
	}
	// Sanity: stacks are independent, so 1-(1-ab)^2 exactly.
	ab := hostA * vmA
	if closed := 1 - (1-ab)*(1-ab); math.Abs(got-closed) > 1e-12 {
		t.Fatalf("P(up) = %.15g, closed form %.15g", got, closed)
	}
}
