package httpapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// redundancyModel is a 2-of-3 AS cluster small enough for both backends:
// one repairable leaf replicated three times under a quorum gate.
const redundancyModel = `{
  "name": "as-cluster",
  "parameters": {"La": 0.005, "Mu": 2.0},
  "redundancy": {
    "root": "svc",
    "nodes": [
      {"name": "as", "lambda": "La", "mu": "Mu"},
      {"name": "svc", "gate": "kofn", "k": 2, "of": ["as"], "replicate": 3}
    ]
  }
}`

// bigRedundancyModel is the same structure at 100 replicas: 2^100 product
// states, far past hier.MaxProductStates — only the bayes backend solves it.
const bigRedundancyModel = `{
  "name": "as-cluster-100",
  "parameters": {"La": 0.005, "Mu": 2.0},
  "redundancy": {
    "root": "svc",
    "nodes": [
      {"name": "as", "lambda": "La", "mu": "Mu"},
      {"name": "svc", "gate": "kofn", "k": 90, "of": ["as"], "replicate": 100}
    ]
  }
}`

// decodeBackendSolve unmarshals a BackendSolveResponse body.
func decodeBackendSolve(t *testing.T, body []byte) BackendSolveResponse {
	t.Helper()
	var br BackendSolveResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	return br
}

// TestSolveRedundancyBothBackends posts a redundancy document to
// POST /v1/solve on each backend: both must answer 200 with the same
// availability, matching the 2-of-3 binomial closed form.
func TestSolveRedundancyBothBackends(t *testing.T) {
	t.Parallel()
	a := 2.0 / 2.005
	want := 3*a*a*(1-a) + a*a*a

	res, body := doRequest(t, http.MethodPost, "/v1/solve", redundancyModel)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("ctmc status = %d, body %s", res.StatusCode, body)
	}
	ctmcRes := decodeBackendSolve(t, body)
	if ctmcRes.Backend != "ctmc" || ctmcRes.Model != "as-cluster" {
		t.Errorf("ctmc meta wrong: %+v", ctmcRes)
	}
	if math.Abs(ctmcRes.Availability-want) > 1e-9 {
		t.Errorf("ctmc availability = %.12f, want %.12f", ctmcRes.Availability, want)
	}

	res, body = doRequest(t, http.MethodPost, "/v1/solve?backend=bayes", redundancyModel)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bayes status = %d, body %s", res.StatusCode, body)
	}
	bayesRes := decodeBackendSolve(t, body)
	if bayesRes.Backend != "bayes" {
		t.Errorf("bayes meta wrong: %+v", bayesRes)
	}
	if math.Abs(bayesRes.Availability-ctmcRes.Availability) > 1e-9 {
		t.Errorf("backends disagree: ctmc %.12f vs bayes %.12f",
			ctmcRes.Availability, bayesRes.Availability)
	}
}

// TestSolveRedundancyProductCapIs400 pins the satellite behavior: a
// replication count whose cross-product passes hier.MaxProductStates is a
// request defect on the ctmc backend — 400 with a body pointing at the
// bayes backend — while the identical document solves on ?backend=bayes.
func TestSolveRedundancyProductCapIs400(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodPost, "/v1/solve", bigRedundancyModel)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("ctmc status = %d, want 400 (body %s)", res.StatusCode, body)
	}
	if !strings.Contains(string(body), "bayes backend") {
		t.Errorf("400 body does not point at the bayes backend: %s", body)
	}

	res, body = doRequest(t, http.MethodPost, "/v1/solve?backend=bayes", bigRedundancyModel)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bayes status = %d, body %s", res.StatusCode, body)
	}
	br := decodeBackendSolve(t, body)
	if br.Size < 100 {
		t.Errorf("Size = %d, want ≥ 100 BN variables", br.Size)
	}
	if !(br.Availability > 0.999 && br.Availability <= 1) {
		t.Errorf("availability = %v, want near 1", br.Availability)
	}
}

// TestSolveBackendParamValidation: an unknown ?backend= is a 400 naming
// the supported kinds, and a Markov document cannot ride the bayes
// backend (it has no redundancy structure to compose).
func TestSolveBackendParamValidation(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodPost, "/v1/solve?backend=mystery", flatModel)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", res.StatusCode, body)
	}
	if !strings.Contains(string(body), "ctmc") {
		t.Errorf("400 body does not list the backends: %s", body)
	}
	res, body = doRequest(t, http.MethodPost, "/v1/solve?backend=bayes", flatModel)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("markov-on-bayes status = %d, want 400 (body %s)", res.StatusCode, body)
	}
}

// TestBayesJobKind runs the async path end to end: submit, wait, check
// the result matches the synchronous endpoint, and check a repeat
// submission is a byte-identical cache hit.
func TestBayesJobKind(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 2})
	first := postJob(t, srv, JobKindBayes, bigRedundancyModel)
	if first.Cached {
		t.Fatalf("first submission already cached")
	}
	done := waitJob(t, srv, eng, first.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job state = %s (%s)", done.State, done.Error)
	}
	br := decodeBackendSolve(t, done.Result)
	if br.Backend != "bayes" || br.Model != "as-cluster-100" || br.Size < 100 {
		t.Errorf("result meta wrong: %+v", br)
	}

	second := postJob(t, srv, JobKindBayes, bigRedundancyModel)
	if !second.Cached || second.State != jobs.StateDone {
		t.Fatalf("repeat submission not cached: %+v", second)
	}
	if second.Hash != first.Hash {
		t.Fatalf("identical requests hashed differently: %s vs %s", second.Hash, first.Hash)
	}
}

// TestBayesJobValidation: non-redundancy documents and invalid structures
// are rejected at submit time.
func TestBayesJobValidation(t *testing.T) {
	srv, _ := newJobServer(t, jobs.Config{Workers: 1})
	cases := []struct {
		name       string
		request    string
		wantInBody string
	}{
		{"flat markov doc", flatModel, "redundancy"},
		{"missing root", `{"name":"x","redundancy":{"root":"nope","nodes":[{"name":"a","availability":"0.9"}]}}`, "nope"},
		{"not json", `"hello"`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body := fmt.Sprintf(`{"kind":%q,"request":%s}`, JobKindBayes, c.request)
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var e errorResponse
			_ = json.NewDecoder(resp.Body).Decode(&e)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (error %q)", resp.StatusCode, e.Error)
			}
			if c.wantInBody != "" && !strings.Contains(e.Error, c.wantInBody) {
				t.Fatalf("400 error %q does not name %q", e.Error, c.wantInBody)
			}
		})
	}
}
