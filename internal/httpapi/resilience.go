// Resilience middleware for the HTTP API: panic containment, semaphore
// load shedding, and solve-error status mapping. The service must degrade
// the way the modeled application server does — one bad request costs
// that request, never the process, and overload sheds with an honest
// signal instead of queueing without bound.
package httpapi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/bayes"
	"repro/internal/ctmc"
	"repro/internal/hier"
	"repro/internal/obs"
	"repro/internal/spec"
)

// StatusClientClosedRequest is the nonstandard 499 status (nginx
// convention) recorded when a solve was aborted because the client went
// away: the failure is the caller's disconnect, not the server's — a 5xx
// here would page an operator for a client that hung up.
const StatusClientClosedRequest = 499

// Resilience metrics, reported to the default obs registry.
var (
	obsPanics = obs.C("httpapi_panics_total",
		"handler panics converted to 500 responses")
	obsRejected = obs.C("httpapi_requests_rejected_total",
		"requests shed with 429 because the solve queue was full")
	obsInflight = obs.G("httpapi_inflight_requests",
		"requests currently being served")
)

// recovered converts a handler panic into a 500 response plus a counter
// increment, keeping the process alive: one malformed model document (or
// engine bug) must cost one request, not the server. http.ErrAbortHandler
// is re-raised — it is net/http's own control flow for deliberately
// dropped connections, not a failure.
func recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			obsPanics.Inc()
			// Best-effort 500: once the handler has started the response
			// the status is already on the wire and cannot be replaced.
			if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", p))
			}
		}()
		h(w, r)
	}
}

// limiter returns a middleware bounding concurrent requests to max via a
// semaphore: requests beyond the cap are shed immediately with 429 and a
// Retry-After hint rather than queued (a queued solve still burns the
// CPU its client may no longer be waiting for). max <= 0 disables
// shedding. One limiter instance is shared by every route it wraps, so
// the cap is on the whole solve queue, not per route.
func limiter(max int) func(http.HandlerFunc) http.HandlerFunc {
	if max <= 0 {
		return func(h http.HandlerFunc) http.HandlerFunc { return h }
	}
	sem := make(chan struct{}, max)
	return func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				h(w, r)
			default:
				obsRejected.Inc()
				w.Header().Set("Retry-After", syncRetryAfter)
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("solve queue full (%d requests in flight); retry later", max))
			}
		}
	}
}

// syncRetryAfter is the constant Retry-After for the synchronous shed
// path: a shed sync request frees its slot as soon as any in-flight
// solve finishes, and the limiter has no service-time signal to do
// better — so it stays the fallback, not the job-queue answer.
const syncRetryAfter = "1"

// retryAfterValue renders a Retry-After header from an observed
// service-time hint (jobs.Engine.RetryAfter): whole seconds, rounded
// up, never below 1. A zero hint means no job has completed yet, so
// there is nothing better than the sync-path constant.
func retryAfterValue(hint time.Duration) string {
	if hint <= 0 {
		return syncRetryAfter
	}
	secs := int64(math.Ceil(hint.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// statusForSolveError maps solve failures onto the response taxonomy:
// client-abort (the request context was canceled) to 499, model-domain
// failures (well-formed but unsolvable documents) to 422, and everything
// else to 500.
func statusForSolveError(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest
	case errors.Is(err, ctmc.ErrNotIrreducible), errors.Is(err, ctmc.ErrBadModel),
		errors.Is(err, spec.ErrBadSpec), errors.Is(err, bayes.ErrIntractable),
		errors.Is(err, bayes.ErrBadNetwork), errors.Is(err, hier.ErrBadComponent):
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// bodyTooLarge reports whether err (however wrapped) came from
// http.MaxBytesReader tripping its limit, i.e. the request body
// overflowed and the right answer is 413 rather than a generic 400.
func bodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
