package httpapi

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doRequest(t *testing.T, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	h := NewHandler()
	var reader *strings.Reader
	if body == "" {
		reader = strings.NewReader("")
	} else {
		reader = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, reader)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	t.Cleanup(func() { _ = res.Body.Close() })
	return res, rec.Body.Bytes()
}

const flatModel = `{
  "name": "pair",
  "parameters": {"La": 0.001, "Mu": 2},
  "states": [{"name":"Up","reward":1},{"name":"Down","reward":0}],
  "transitions": [
    {"from":"Up","to":"Down","rate":"La"},
    {"from":"Down","to":"Up","rate":"Mu"}
  ]
}`

func TestHealthz(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodGet, "/healthz", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Errorf("body = %s", body)
	}
}

func TestSolveFlat(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodPost, "/v1/solve", flatModel)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", res.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := 2.0 / 2.001
	if math.Abs(sr.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", sr.Availability, want)
	}
	if sr.Model != "pair" || sr.States != 2 {
		t.Errorf("model meta wrong: %+v", sr)
	}
	if math.Abs(sr.Pi["Up"]+sr.Pi["Down"]-1) > 1e-12 {
		t.Errorf("pi does not sum to 1: %v", sr.Pi)
	}
	if res.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content type = %q", res.Header.Get("Content-Type"))
	}
}

func TestSolveRejectsBadDocument(t *testing.T) {
	t.Parallel()
	res, _ := doRequest(t, http.MethodPost, "/v1/solve", `{"name":"x"}`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.StatusCode)
	}
	res, _ = doRequest(t, http.MethodPost, "/v1/solve", "not json")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.StatusCode)
	}
}

func TestSolveUnsolvableModelIs422(t *testing.T) {
	t.Parallel()
	// Well-formed but reducible: no way back from Down.
	doc := `{
	  "name": "trap",
	  "states": [{"name":"Up","reward":1},{"name":"Down","reward":0}],
	  "transitions": [{"from":"Up","to":"Down","rate":"1"}]
	}`
	res, body := doRequest(t, http.MethodPost, "/v1/solve", doc)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", res.StatusCode, body)
	}
}

func TestSolveHierarchy(t *testing.T) {
	t.Parallel()
	doc := `{
	  "name": "h",
	  "root": "top",
	  "models": [
	    {"name":"leaf","parameters":{"La":0.01,"Mu":2},
	     "states":[{"name":"Up","reward":1},{"name":"Down","reward":0}],
	     "transitions":[{"from":"Up","to":"Down","rate":"La"},{"from":"Down","to":"Up","rate":"Mu"}]},
	    {"name":"top",
	     "states":[{"name":"Ok","reward":1},{"name":"Fail","reward":0}],
	     "transitions":[{"from":"Ok","to":"Fail","rate":"L"},{"from":"Fail","to":"Ok","rate":"M"}]}
	  ],
	  "bindings": [{"model":"top","child":"leaf","lambda_param":"L","mu_param":"M"}]
	}`
	res, body := doRequest(t, http.MethodPost, "/v1/solve-hierarchy", doc)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", res.StatusCode, body)
	}
	var hr HierSolveResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(hr.Children) != 1 || hr.Children[0].Name != "leaf" {
		t.Errorf("children = %+v", hr.Children)
	}
	want := 2.0 / 2.01
	if math.Abs(hr.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", hr.Availability, want)
	}
}

func TestSolveHierarchyRejectsBadDocument(t *testing.T) {
	t.Parallel()
	res, _ := doRequest(t, http.MethodPost, "/v1/solve-hierarchy", `{"name":"x"}`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.StatusCode)
	}
}

func TestJSASEndpoint(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodGet, "/v1/jsas?instances=2&pairs=2&spares=2", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", res.StatusCode, body)
	}
	var jr JSASResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if math.Abs(jr.YearlyDowntimeMinutes-3.49) > 0.15 {
		t.Errorf("YD = %v, want ~3.49 (Table 2)", jr.YearlyDowntimeMinutes)
	}
}

func TestJSASDefaults(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodGet, "/v1/jsas", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", res.StatusCode, body)
	}
	var jr JSASResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if jr.Instances != 2 || jr.Pairs != 2 {
		t.Errorf("defaults = %+v, want Config 1", jr)
	}
}

func TestJSASBadParams(t *testing.T) {
	t.Parallel()
	res, _ := doRequest(t, http.MethodGet, "/v1/jsas?instances=zero", "")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric: status = %d, want 400", res.StatusCode)
	}
	res, _ = doRequest(t, http.MethodGet, "/v1/jsas?instances=0", "")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero instances: status = %d, want 400", res.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	t.Parallel()
	res, _ := doRequest(t, http.MethodGet, "/v1/solve", "")
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status = %d, want 405", res.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	t.Parallel()
	// A syntactically plausible document whose one giant token forces the
	// decoder to read past the byte cap (pure garbage would fail JSON
	// syntax first and correctly yield 400, not 413).
	big := `{"name":"` + strings.Repeat("x", maxBodyBytes+1)
	for _, path := range []string{"/v1/solve", "/v1/solve-hierarchy"} {
		res, body := doRequest(t, http.MethodPost, path, big)
		if res.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status = %d, want 413", path, res.StatusCode)
		}
		if !strings.Contains(string(body), "exceeds") {
			t.Errorf("%s 413 body does not name the limit: %s", path, body)
		}
	}
}

func TestJSASUncertaintyEndpoint(t *testing.T) {
	t.Parallel()
	res, body := doRequest(t, http.MethodGet, "/v1/jsas/uncertainty?samples=200&seed=2004", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", res.StatusCode, body)
	}
	var ur UncertaintyResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ur.Samples != 200 {
		t.Errorf("samples = %d", ur.Samples)
	}
	if ur.MeanDowntimeMin < 2 || ur.MeanDowntimeMin > 6 {
		t.Errorf("mean = %v, want near the paper's 3.78", ur.MeanDowntimeMin)
	}
	if ur.CI80Low >= ur.CI80High || ur.CI90Low > ur.CI80Low || ur.CI90High < ur.CI80High {
		t.Errorf("inconsistent CIs: %+v", ur)
	}
	if ur.FractionFiveNines <= 0 || ur.FractionFiveNines > 1 {
		t.Errorf("fraction = %v", ur.FractionFiveNines)
	}
}

func TestJSASUncertaintyBadParams(t *testing.T) {
	t.Parallel()
	for _, q := range []string{
		"?samples=0", "?samples=999999", "?samples=abc", "?instances=0", "?seed=zz", "?pairs=x",
	} {
		res, _ := doRequest(t, http.MethodGet, "/v1/jsas/uncertainty"+q, "")
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, res.StatusCode)
		}
	}
}
