// Live telemetry endpoints: GET /v1/metrics/stream pushes the obs
// registry over Server-Sent Events (full snapshot first, then per-series
// deltas), and GET /v1/runs reports in-flight server work from the
// progress registry. Both are observability surfaces and therefore
// shed-exempt — an overloaded server must stay watchable, exactly like
// /metrics and /healthz.
package httpapi

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/progress"
)

// serverEpoch anchors the avail_server_uptime_seconds gauge: process
// start as far as this package can observe it.
var serverEpoch = time.Now()

// obsUptime is refreshed on every observability read (/healthz, /metrics,
// stream snapshots) rather than by a background goroutine — a process
// nobody scrapes spends nothing keeping the gauge warm.
var obsUptime = obs.G("avail_server_uptime_seconds",
	"seconds since the server process started (refreshed on scrape)")

// serverRuns tracks in-flight and recently finished tracked requests for
// GET /v1/runs. Handlers that drive bounded work (the uncertainty solve)
// register a run here and wire its Tracker into the driver.
var serverRuns = progress.NewRegistry(0)

// touchUptime refreshes the uptime gauge from the process epoch.
func touchUptime() {
	obsUptime.Set(time.Since(serverEpoch).Seconds())
}

// Stream pacing bounds: the interval is client-tunable but capped on both
// ends so one subscriber can neither busy-loop the registry nor hold a
// connection that never proves liveness.
const (
	streamMinInterval     = 10 * time.Millisecond
	streamMaxInterval     = time.Minute
	streamDefaultInterval = time.Second
	// streamWriteGrace is how far past the next tick a frame write may
	// lag before the connection is presumed dead.
	streamWriteGrace = 30 * time.Second
)

// streamInterval resolves the ?interval= duration parameter.
func streamInterval(r *http.Request) (time.Duration, error) {
	s := r.URL.Query().Get("interval")
	if s == "" {
		return streamDefaultInterval, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("interval: want a duration like 500ms, got %q", s)
	}
	if d < streamMinInterval || d > streamMaxInterval {
		return 0, fmt.Errorf("interval %s outside [%s, %s]", d, streamMinInterval, streamMaxInterval)
	}
	return d, nil
}

// streamFrame is the JSON payload of one SSE frame. The first frame
// (event: snapshot) carries every series; subsequent frames (event:
// delta) carry only series whose Value, Count, or Sum moved since the
// previous frame, so an idle registry costs a comment line per tick, not
// a full scrape.
type streamFrame struct {
	Seq       int64                `json:"seq"`
	ScrapedAt string               `json:"scrapedAt"`
	Series    []obs.SeriesSnapshot `json:"series"`
}

// seriesKey identifies a series across snapshots: name plus rendered
// label set, the same identity the registry itself uses.
type seriesKey struct{ name, labels string }

// seriesIndex keys a snapshot for delta comparison.
func seriesIndex(series []obs.SeriesSnapshot) map[seriesKey]obs.SeriesSnapshot {
	m := make(map[seriesKey]obs.SeriesSnapshot, len(series))
	for _, s := range series {
		m[seriesKey{s.Name, s.Labels}] = s
	}
	return m
}

// changedSeries returns the series (in snapshot order, which is sorted
// and therefore deterministic) that are new or whose observable state
// moved since prev.
func changedSeries(prev map[seriesKey]obs.SeriesSnapshot, cur []obs.SeriesSnapshot) []obs.SeriesSnapshot {
	var out []obs.SeriesSnapshot
	for _, s := range cur {
		p, ok := prev[seriesKey{s.Name, s.Labels}]
		if !ok || p.Value != s.Value || p.Count != s.Count || p.Sum != s.Sum {
			out = append(out, s)
		}
	}
	return out
}

// writeSSEFrame emits one metrics frame via the shared SSE writer.
func writeSSEFrame(w io.Writer, event string, frame streamFrame) error {
	return writeSSEEvent(w, event, frame)
}

// handleMetricsStream serves the obs registry as a Server-Sent Events
// stream: an immediate full snapshot, then one delta frame per interval
// tick while any series moved (a bare keepalive comment otherwise). The
// loop exits when the client disconnects — the request context is the
// only lifetime the stream has.
func handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	interval, err := streamInterval(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			errors.New("streaming unsupported: response writer cannot flush"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// The server's global WriteTimeout would sever a healthy stream after
	// its fixed budget; instead the deadline is pushed forward before
	// every frame, so only a stream whose client stops draining dies.
	// Unsupported writers (httptest recorders) just keep no deadline.
	rc := http.NewResponseController(w)
	extendDeadline := func() {
		_ = rc.SetWriteDeadline(time.Now().Add(interval + streamWriteGrace))
	}

	touchUptime()
	extendDeadline()
	snap := obs.Default().TimedSnapshot()
	if err := writeSSEFrame(w, "snapshot", streamFrame{
		Seq: 0, ScrapedAt: snap.ScrapedAt, Series: snap.Series,
	}); err != nil {
		return
	}
	fl.Flush()
	prev := seriesIndex(snap.Series)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for seq := int64(1); ; seq++ {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		extendDeadline()
		snap = obs.Default().TimedSnapshot()
		changed := changedSeries(prev, snap.Series)
		prev = seriesIndex(snap.Series)
		if len(changed) == 0 {
			// Keepalive comment: proves liveness to the client (and any
			// intermediary) without resending unchanged series.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		if err := writeSSEFrame(w, "delta", streamFrame{
			Seq: seq, ScrapedAt: snap.ScrapedAt, Series: changed,
		}); err != nil {
			return
		}
		fl.Flush()
	}
}

// handleRuns reports every run the progress registry retains, newest
// first: in-flight requests with live completion/ETA, then recently
// finished ones up to the retention cap.
func handleRuns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": serverRuns.Statuses()})
}

// healthzResponse is the /healthz body: liveness plus enough build
// identity to tell which binary answered.
type healthzResponse struct {
	Status        string  `json:"status"`
	GoVersion     string  `json:"goVersion"`
	Module        string  `json:"module,omitempty"`
	Version       string  `json:"version,omitempty"`
	Revision      string  `json:"revision,omitempty"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	touchUptime()
	resp := healthzResponse{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(serverEpoch).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Module = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			resp.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				resp.Revision = s.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
