package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsEndpointAfterSolve exercises a solve through the API and
// then scrapes GET /metrics, asserting that solver metrics (from the
// ctmc layer) and per-route request metrics appear in the Prometheus
// text exposition.
func TestMetricsEndpointAfterSolve(t *testing.T) {
	if res, body := doRequest(t, http.MethodPost, "/v1/solve", flatModel); res.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d, body %s", res.StatusCode, body)
	}
	res, body := doRequest(t, http.MethodGet, "/metrics", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE ctmc_solves_total counter",
		`ctmc_solves_total{method="dense"}`,
		"# TYPE ctmc_solve_seconds histogram",
		"ctmc_solve_seconds_count",
		"# TYPE httpapi_requests_total counter",
		`httpapi_requests_total{route="/v1/solve"}`,
		"# TYPE httpapi_request_seconds histogram",
		`httpapi_request_seconds_count{route="/v1/solve"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsEndpointUncertainty checks the Monte-Carlo metrics surface
// after a /v1/jsas/uncertainty request.
func TestMetricsEndpointUncertainty(t *testing.T) {
	before := obs.C("uncertainty_samples_solved_total", "").Value()
	if res, body := doRequest(t, http.MethodGet, "/v1/jsas/uncertainty?samples=5&seed=1", ""); res.StatusCode != http.StatusOK {
		t.Fatalf("uncertainty status = %d, body %s", res.StatusCode, body)
	}
	if got := obs.C("uncertainty_samples_solved_total", "").Value(); got != before+5 {
		t.Errorf("uncertainty_samples_solved_total advanced by %d, want 5", got-before)
	}
	_, body := doRequest(t, http.MethodGet, "/metrics", "")
	for _, want := range []string{
		"uncertainty_samples_solved_total",
		"uncertainty_sample_solve_seconds_count",
		"uncertainty_runs_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsJSONFormat checks the ?format=json snapshot parses and the
// error counter tracks failed requests.
func TestMetricsJSONFormat(t *testing.T) {
	errsBefore := obs.C("httpapi_errors_total", "", `route="/v1/solve"`).Value()
	if res, _ := doRequest(t, http.MethodPost, "/v1/solve", "{not json"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad document accepted: %d", res.StatusCode)
	}
	if got := obs.C("httpapi_errors_total", "", `route="/v1/solve"`).Value(); got != errsBefore+1 {
		t.Errorf("httpapi_errors_total advanced by %d, want 1", got-errsBefore)
	}
	res, body := doRequest(t, http.MethodGet, "/metrics?format=json", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics json status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var snaps []obs.SeriesSnapshot
	if err := json.Unmarshal(body, &snaps); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(snaps) == 0 {
		t.Error("metrics JSON snapshot is empty")
	}
}
