package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

// doRequestWith is doRequest with explicit handler options and headers.
func doRequestWith(t *testing.T, opts Options, method, path string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	h := NewHandler(opts)
	req := httptest.NewRequest(method, path, strings.NewReader(""))
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	t.Cleanup(func() { _ = res.Body.Close() })
	return res, rec.Body.Bytes()
}

// TestMetricsAcceptHeader covers content negotiation on /metrics: the
// Accept header selects JSON like ?format=json does, text/plain and
// wildcards keep the Prometheus exposition, and an unsatisfiable request
// gets a 406 with a body naming the supported formats.
func TestMetricsAcceptHeader(t *testing.T) {
	cases := []struct {
		name       string
		path       string
		accept     string
		wantStatus int
		wantCT     string
	}{
		{"json via accept", "/metrics", "application/json", http.StatusOK, "application/json"},
		{"json via query", "/metrics?format=json", "", http.StatusOK, "application/json"},
		{"query overrides accept", "/metrics?format=json", "text/plain", http.StatusOK, "application/json"},
		{"text via accept", "/metrics", "text/plain", http.StatusOK, "text/plain"},
		{"text preferred over json", "/metrics", "application/json, text/plain", http.StatusOK, "text/plain"},
		{"wildcard", "/metrics", "*/*", http.StatusOK, "text/plain"},
		{"no accept", "/metrics", "", http.StatusOK, "text/plain"},
		{"json with params", "/metrics", "application/json; q=0.9", http.StatusOK, "application/json"},
		{"unsupported accept", "/metrics", "application/xml", http.StatusNotAcceptable, "application/json"},
		{"unsupported format", "/metrics?format=xml", "", http.StatusNotAcceptable, "application/json"},
		{"unsupported format wins", "/metrics?format=xml", "application/json", http.StatusNotAcceptable, "application/json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			headers := map[string]string{}
			if c.accept != "" {
				headers["Accept"] = c.accept
			}
			res, body := doRequestWith(t, Options{}, http.MethodGet, c.path, headers)
			if res.StatusCode != c.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", res.StatusCode, c.wantStatus, body)
			}
			if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, c.wantCT) {
				t.Errorf("content type = %q, want prefix %q", ct, c.wantCT)
			}
			if c.wantStatus == http.StatusNotAcceptable {
				var resp errorResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("406 body is not the error envelope: %v (%s)", err, body)
				}
				for _, hint := range []string{"format=json", "application/json"} {
					if !strings.Contains(resp.Error, hint) {
						t.Errorf("406 body %q does not mention %q", resp.Error, hint)
					}
				}
			}
		})
	}
}

// TestPProfGating asserts the profiling endpoints are mounted only behind
// the explicit opt-in: the default handler 404s /debug/pprof/ while
// Options{PProf: true} serves the index.
func TestPProfGating(t *testing.T) {
	if res, _ := doRequestWith(t, Options{}, http.MethodGet, "/debug/pprof/", nil); res.StatusCode != http.StatusNotFound {
		t.Errorf("default handler serves /debug/pprof/: %d, want 404", res.StatusCode)
	}
	res, body := doRequestWith(t, Options{PProf: true}, http.MethodGet, "/debug/pprof/", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("-pprof handler /debug/pprof/ = %d, want 200", res.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%s", body)
	}
	if res, _ := doRequestWith(t, Options{PProf: true}, http.MethodGet, "/debug/pprof/cmdline", nil); res.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", res.StatusCode)
	}
}

// TestTraceEndpoints records a span tree into the process-wide flight
// recorder and reads it back through GET /v1/traces and
// GET /v1/traces/{id} in each export format.
func TestTraceEndpoints(t *testing.T) {
	// Not parallel: shares the default recorder with other tests.
	rec := trace.Default()
	root := rec.Start("httpapi-test-root", nil, trace.String(trace.AttrTrack, "test"))
	rec.Start("httpapi-test-child", root).End()
	root.End()
	id := root.TraceID()

	res, body := doRequest(t, http.MethodGet, "/v1/traces", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces = %d", res.StatusCode)
	}
	var list struct {
		Traces  []trace.SpanID `json:"traces"`
		Dropped uint64         `json:"dropped"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("trace list: %v (%s)", err, body)
	}
	var listed bool
	for _, got := range list.Traces {
		if got == id {
			listed = true
		}
	}
	if !listed {
		t.Fatalf("trace %d not in list %v", id, list.Traces)
	}

	res, body = doRequest(t, http.MethodGet, fmt.Sprintf("/v1/traces/%d", id), "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("trace get = %d", res.StatusCode)
	}
	var spans []trace.Span
	if err := json.Unmarshal(body, &spans); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(spans) != 2 {
		t.Errorf("trace has %d spans, want 2", len(spans))
	}

	res, body = doRequest(t, http.MethodGet, fmt.Sprintf("/v1/traces/%d?format=chrome", id), "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("chrome format = %d", res.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil || len(chrome.TraceEvents) == 0 {
		t.Errorf("chrome export invalid: %v (%s)", err, body)
	}

	if res, body = doRequest(t, http.MethodGet, fmt.Sprintf("/v1/traces/%d?format=timeline", id), ""); res.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), "httpapi-test-root") {
		t.Errorf("timeline format = %d, body %s", res.StatusCode, body)
	}
	if res, body = doRequest(t, http.MethodGet, fmt.Sprintf("/v1/traces/%d?format=jsonl", id), ""); res.StatusCode != http.StatusOK {
		t.Errorf("jsonl format = %d", res.StatusCode)
	} else if decoded, err := trace.ReadJSONL(strings.NewReader(string(body))); err != nil || len(decoded) != 2 {
		t.Errorf("jsonl round-trip: %d spans, err %v", len(decoded), err)
	}

	if res, _ = doRequest(t, http.MethodGet, fmt.Sprintf("/v1/traces/%d?format=bogus", id), ""); res.StatusCode != http.StatusNotAcceptable {
		t.Errorf("bogus format = %d, want 406", res.StatusCode)
	}
	if res, _ = doRequest(t, http.MethodGet, "/v1/traces/999999999", ""); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", res.StatusCode)
	}
	if res, _ = doRequest(t, http.MethodGet, "/v1/traces/not-a-number", ""); res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace id = %d, want 400", res.StatusCode)
	}
}
