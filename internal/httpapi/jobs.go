// Async job API: POST /v1/jobs canonicalizes a request to a stable
// content hash and submits it to the jobs engine; GET /v1/jobs/{id}
// polls status and result; GET /v1/jobs/{id}/stream pushes live status
// frames over Server-Sent Events. Every job kind mirrors a synchronous
// endpoint (plus "campaign", which has no sync form — a 100k-injection
// campaign does not belong in a request/response cycle), and because
// every kind is a deterministic function of its canonicalized request,
// a repeat submission is served from cache byte-identically to a fresh
// solve and identical concurrent submissions coalesce into one
// computation.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/backend"
	"repro/internal/ctmc"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/jsas"
	"repro/internal/progress"
	"repro/internal/spec"
	"repro/internal/testbed"
	"repro/internal/uncertainty"
)

// Job kinds accepted by POST /v1/jobs.
const (
	JobKindSolve          = "solve"
	JobKindSolveHierarchy = "solve-hierarchy"
	JobKindJSAS           = "jsas"
	JobKindUncertainty    = "uncertainty"
	JobKindCampaign       = "campaign"
	JobKindBayes          = "bayes"
)

// jobKindsHelp lists the valid kinds for 400 bodies.
const jobKindsHelp = "solve, solve-hierarchy, jsas, uncertainty, campaign, bayes"

// Campaign work bounds, in the same spirit as the sync-endpoint caps: an
// injection count is a CPU grant, so it is bounded well above the
// paper's 3,287-injection campaign but below open-ended.
const (
	maxCampaignInjections = 200000
	maxCampaignReplicas   = 64
)

// jobSubmitRequest is the POST /v1/jobs envelope.
type jobSubmitRequest struct {
	Kind string `json:"kind"`
	// Request is the kind-specific payload: a spec.Document for "solve",
	// a spec.HierDocument for "solve-hierarchy", parameter objects for
	// "jsas" / "uncertainty" / "campaign". Omitted = {} (kind defaults).
	Request json.RawMessage `json:"request"`
}

// CampaignResponse is the JSON result of a fault-injection campaign job.
type CampaignResponse struct {
	Instances   int     `json:"instances"`
	Pairs       int     `json:"pairs"`
	Spares      int     `json:"spares"`
	Injections  int     `json:"injections"`
	Replicas    int     `json:"replicas"`
	Seed        int64   `json:"seed"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"successRate"`
	// CoverageBounds are the Equation (1) coverage/FIR bounds over the
	// pooled injections at the default confidences.
	CoverageBounds []CoverageBoundResponse `json:"coverageBounds"`
	Availability   float64                 `json:"availability"`
	DowntimeMin    float64                 `json:"downtimeMinutes"`
	Outages        int                     `json:"outages"`

	// Correlated-campaign extensions, present only when the request set a
	// common-cause or partition fraction (omitted otherwise, keeping
	// independent-campaign responses byte-identical to earlier versions).
	CommonCauseFraction float64                       `json:"commonCauseFraction,omitempty"`
	PartitionFraction   float64                       `json:"partitionFraction,omitempty"`
	MeasuredBeta        float64                       `json:"measuredBeta,omitempty"`
	Partitions          int                           `json:"partitions,omitempty"`
	ByClass             map[string]ClassStatsResponse `json:"byClass,omitempty"`
}

// ClassStatsResponse decomposes a correlated campaign along one cause
// class.
type ClassStatsResponse struct {
	Injections        int     `json:"injections"`
	Successes         int     `json:"successes"`
	ComponentFailures int     `json:"componentFailures"`
	DowntimeMinutes   float64 `json:"downtimeMinutes"`
}

// CoverageBoundResponse is one Equation (1) bound.
type CoverageBoundResponse struct {
	Confidence         float64 `json:"confidence"`
	CoverageLowerBound float64 `json:"coverageLowerBound"`
	FIRUpperBound      float64 `json:"firUpperBound"`
}

// jobAPI binds the job handlers to an engine.
type jobAPI struct {
	engine *jobs.Engine
}

// RunRegistry returns the progress registry backing GET /v1/runs, so an
// externally constructed jobs engine (cmd/avail-server) can surface its
// jobs on the same runs listing as the synchronous handlers.
func RunRegistry() *progress.Registry { return serverRuns }

// handleJobSubmit validates and canonicalizes the request, submits it,
// and answers 202 with the observing job's status (result stripped: the
// result, cached or fresh, is served by GET /v1/jobs/{id}). A full queue
// answers 429 with a Retry-After derived from observed job service time.
func (a *jobAPI) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var env jobSubmitRequest
	if err := dec.Decode(&env); err != nil {
		if bodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("job request exceeds %d bytes", maxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("job envelope: %w", err))
		return
	}
	task, err := buildJobTask(env.Kind, env.Request)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := a.engine.Submit(task)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterValue(a.engine.RetryAfter()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("job queue full; retry later"))
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st.Result = nil
	w.Header().Set("Location", "/v1/jobs/"+strconv.FormatInt(st.ID, 10))
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobList reports every retained job, newest first, without
// result payloads.
func (a *jobAPI) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": a.engine.Statuses()})
}

// jobID parses the {id} path value.
func jobID(r *http.Request) (int64, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("job id: want an integer, got %q", r.PathValue("id"))
	}
	return id, nil
}

// handleJobGet polls one job: status, live progress, and — once done —
// the result, byte-identical whether computed or cached.
func (a *jobAPI) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := a.engine.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %d not found (never assigned, or GC'd)", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobStream follows one job over Server-Sent Events: an immediate
// status frame, one per ?interval= tick while the job runs (carrying
// tracker progress), and a final "done" frame with the result. Reuses
// the metrics-stream pacing and write-deadline machinery.
func (a *jobAPI) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	interval, err := streamInterval(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := a.engine.Status(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %d not found", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			errors.New("streaming unsupported: response writer cannot flush"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	extendDeadline := func() {
		_ = rc.SetWriteDeadline(time.Now().Add(interval + streamWriteGrace))
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		extendDeadline()
		st, ok := a.engine.Status(id)
		if !ok {
			// GC'd mid-stream (tiny retention): nothing left to follow.
			return
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			_ = writeSSEEvent(w, "done", st)
			fl.Flush()
			return
		}
		st.Result = nil
		if err := writeSSEEvent(w, "status", st); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// buildJobTask validates and canonicalizes one submission into an
// engine task. All errors are client errors (400): the payload failed
// to parse, validate, or stay within the work bounds.
func buildJobTask(kind string, raw json.RawMessage) (jobs.Task, error) {
	if len(raw) == 0 {
		raw = json.RawMessage("{}")
	}
	switch kind {
	case JobKindSolve:
		return buildSolveTask(raw)
	case JobKindSolveHierarchy:
		return buildSolveHierarchyTask(raw)
	case JobKindJSAS:
		return buildJSASTask(raw)
	case JobKindUncertainty:
		return buildUncertaintyTask(raw)
	case JobKindCampaign:
		return buildCampaignTask(raw)
	case JobKindBayes:
		return buildBayesTask(raw)
	case "":
		return jobs.Task{}, fmt.Errorf("job kind missing; want one of: %s", jobKindsHelp)
	default:
		return jobs.Task{}, fmt.Errorf("unknown job kind %q; want one of: %s", kind, jobKindsHelp)
	}
}

// buildSolveTask canonicalizes a flat model document. Parsing then
// re-marshaling the typed document is the canonicalization: field order
// normalizes to declaration order, parameter maps to sorted keys.
func buildSolveTask(raw json.RawMessage) (jobs.Task, error) {
	doc, err := spec.Parse(bytes.NewReader(raw))
	if err != nil {
		return jobs.Task{}, err
	}
	// Compile errors (unsolvable structure references) belong to the
	// submitter, so surface them at submit time rather than as a failed job.
	if _, err := doc.Compile(nil); err != nil {
		return jobs.Task{}, err
	}
	hash, err := jobs.CanonicalHash(JobKindSolve, doc)
	if err != nil {
		return jobs.Task{}, err
	}
	return jobs.Task{
		Kind:   JobKindSolve,
		Hash:   hash,
		Detail: fmt.Sprintf("model=%s states=%d", doc.Name, len(doc.States)),
		Total:  1,
		Run: func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			structure, err := doc.Compile(nil)
			if err != nil {
				return nil, err
			}
			res, err := structure.Solve(ctmc.SolveOptions{Ctx: ctx})
			if err != nil {
				return nil, err
			}
			tr.Done()
			return json.Marshal(solveResponse(doc.Name, structure, res))
		},
	}, nil
}

// buildBayesTask canonicalizes a redundancy-structure document for the
// Bayesian-network backend. Large replicated structures are exactly the
// workload the async path exists for: a 100-instance cluster solves in
// milliseconds, but layered noisy-OR stacks can run long enough that a
// request/response cycle is the wrong shape. Canonicalization is the
// same parse/re-marshal normalization as "solve"; the kind string keeps
// bayes hashes disjoint from ctmc solves of the same document.
func buildBayesTask(raw json.RawMessage) (jobs.Task, error) {
	doc, err := spec.Parse(bytes.NewReader(raw))
	if err != nil {
		return jobs.Task{}, err
	}
	if doc.Redundancy == nil {
		return jobs.Task{}, fmt.Errorf("bayes job wants a redundancy document (a flat state/transition model belongs to kind %q)", JobKindSolve)
	}
	// Model-construction errors (validation, unbuildable structure) belong
	// to the submitter, so surface them at submit time as a 400 rather
	// than as a failed job.
	if _, err := doc.Model(backend.KindBayes, nil); err != nil {
		return jobs.Task{}, err
	}
	hash, err := jobs.CanonicalHash(JobKindBayes, doc)
	if err != nil {
		return jobs.Task{}, err
	}
	return jobs.Task{
		Kind: JobKindBayes,
		Hash: hash,
		Detail: fmt.Sprintf("model=%s nodes=%d leaves=%d",
			doc.Name, len(doc.Redundancy.Nodes), doc.Redundancy.LeafCount()),
		Total: 1,
		Run: func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			res, err := doc.SolveBackend(ctx, backend.KindBayes, nil)
			if err != nil {
				return nil, err
			}
			tr.Done()
			return json.Marshal(backendSolveResponse(res))
		},
	}, nil
}

// buildSolveHierarchyTask canonicalizes a hierarchical document.
func buildSolveHierarchyTask(raw json.RawMessage) (jobs.Task, error) {
	doc, err := spec.ParseHier(bytes.NewReader(raw))
	if err != nil {
		return jobs.Task{}, err
	}
	if _, err := doc.Compile(nil); err != nil {
		return jobs.Task{}, err
	}
	hash, err := jobs.CanonicalHash(JobKindSolveHierarchy, doc)
	if err != nil {
		return jobs.Task{}, err
	}
	return jobs.Task{
		Kind:   JobKindSolveHierarchy,
		Hash:   hash,
		Detail: fmt.Sprintf("hierarchy=%s models=%d", doc.Name, len(doc.Models)),
		Total:  1,
		Run: func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			ev, err := doc.SolveCtx(ctx, nil)
			if err != nil {
				return nil, err
			}
			tr.Done()
			return json.Marshal(hierResponse(ev))
		},
	}, nil
}

// jsasJobRequest is the "jsas" payload; pointers distinguish omitted
// fields (kind defaults) from explicit values, so the canonical form
// normalizes {"instances":2} and {} to the same hash.
type jsasJobRequest struct {
	Instances *int `json:"instances"`
	Pairs     *int `json:"pairs"`
	Spares    *int `json:"spares"`
}

// jsasJobCanonical is the normalized "jsas" request the hash covers.
type jsasJobCanonical struct {
	Instances int `json:"instances"`
	Pairs     int `json:"pairs"`
	Spares    int `json:"spares"`
}

// decodeStrict unmarshals raw into v rejecting unknown fields.
func decodeStrict(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// boundedField applies the sync-endpoint bounds to an optional field.
func boundedField(name string, p *int, def, min, max int) (int, error) {
	v := def
	if p != nil {
		v = *p
	}
	if v < min || v > max {
		return 0, fmt.Errorf("%s %d outside [%d, %d]", name, v, min, max)
	}
	return v, nil
}

func buildJSASTask(raw json.RawMessage) (jobs.Task, error) {
	var req jsasJobRequest
	if err := decodeStrict(raw, &req); err != nil {
		return jobs.Task{}, fmt.Errorf("jsas request: %w", err)
	}
	var can jsasJobCanonical
	var err error
	if can.Instances, err = boundedField("instances", req.Instances, 2, 1, maxInstances); err != nil {
		return jobs.Task{}, err
	}
	if can.Pairs, err = boundedField("pairs", req.Pairs, 2, 0, maxPairs); err != nil {
		return jobs.Task{}, err
	}
	if can.Spares, err = boundedField("spares", req.Spares, 2, 0, maxSpares); err != nil {
		return jobs.Task{}, err
	}
	hash, err := jobs.CanonicalHash(JobKindJSAS, can)
	if err != nil {
		return jobs.Task{}, err
	}
	cfg := jsas.Config{ASInstances: can.Instances, HADBPairs: can.Pairs, HADBSpares: can.Spares}
	return jobs.Task{
		Kind:   JobKindJSAS,
		Hash:   hash,
		Detail: fmt.Sprintf("instances=%d pairs=%d spares=%d", can.Instances, can.Pairs, can.Spares),
		Total:  1,
		Run: func(_ context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			res, err := jsas.Solve(cfg, jsas.DefaultParams())
			if err != nil {
				return nil, err
			}
			tr.Done()
			return json.Marshal(JSASResponse{
				Instances:             cfg.ASInstances,
				Pairs:                 cfg.HADBPairs,
				Spares:                cfg.HADBSpares,
				Availability:          res.Availability,
				YearlyDowntimeMinutes: res.YearlyDowntimeMinutes,
				DowntimeASMinutes:     res.DowntimeASMinutes,
				DowntimeHADBMinutes:   res.DowntimeHADBMinutes,
				MTBFHours:             res.MTBFHours,
			})
		},
	}, nil
}

// uncertaintyJobRequest is the "uncertainty" payload.
type uncertaintyJobRequest struct {
	Instances *int   `json:"instances"`
	Pairs     *int   `json:"pairs"`
	Samples   *int   `json:"samples"`
	Seed      *int64 `json:"seed"`
}

// uncertaintyJobCanonical is the normalized form the hash covers. Spares
// are pinned to 2 exactly like the synchronous endpoint.
type uncertaintyJobCanonical struct {
	Instances int   `json:"instances"`
	Pairs     int   `json:"pairs"`
	Samples   int   `json:"samples"`
	Seed      int64 `json:"seed"`
}

func buildUncertaintyTask(raw json.RawMessage) (jobs.Task, error) {
	var req uncertaintyJobRequest
	if err := decodeStrict(raw, &req); err != nil {
		return jobs.Task{}, fmt.Errorf("uncertainty request: %w", err)
	}
	var can uncertaintyJobCanonical
	var err error
	if can.Instances, err = boundedField("instances", req.Instances, 2, 1, maxInstances); err != nil {
		return jobs.Task{}, err
	}
	if can.Pairs, err = boundedField("pairs", req.Pairs, 2, 0, maxPairs); err != nil {
		return jobs.Task{}, err
	}
	if can.Samples, err = boundedField("samples", req.Samples, 1000, 1, maxUncertaintySamples); err != nil {
		return jobs.Task{}, err
	}
	can.Seed = 2004
	if req.Seed != nil {
		can.Seed = *req.Seed
	}
	hash, err := jobs.CanonicalHash(JobKindUncertainty, can)
	if err != nil {
		return jobs.Task{}, err
	}
	cfg := jsas.Config{ASInstances: can.Instances, HADBPairs: can.Pairs, HADBSpares: 2}
	return jobs.Task{
		Kind: JobKindUncertainty,
		Hash: hash,
		Detail: fmt.Sprintf("instances=%d pairs=%d samples=%d seed=%d",
			can.Instances, can.Pairs, can.Samples, can.Seed),
		Total:       int64(can.Samples),
		TrackerOpts: []progress.Option{progress.WithUnit("samples"), progress.WithStat("downtimeMin")},
		Run: func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			res, err := uncertainty.RunCtx(ctx,
				jsas.PaperUncertaintyRanges(),
				jsas.UncertaintySolver(cfg, jsas.DefaultParams()),
				uncertainty.Options{Samples: can.Samples, Seed: can.Seed, Progress: tr},
			)
			if err != nil {
				return nil, err
			}
			return json.Marshal(uncertaintyResponse(cfg, res))
		},
	}, nil
}

// campaignJobRequest is the "campaign" payload: a replicated
// fault-injection campaign on the simulated testbed.
type campaignJobRequest struct {
	Instances  *int     `json:"instances"`
	Pairs      *int     `json:"pairs"`
	Spares     *int     `json:"spares"`
	Injections *int     `json:"injections"`
	Seed       *int64   `json:"seed"`
	Replicas   *int     `json:"replicas"`
	ASFraction *float64 `json:"asFraction"`
	MultiNode  *float64 `json:"multiNodeFraction"`
	// Correlated-fault extensions: domain declarations plus the fraction
	// of injections that are common-cause bursts / network partitions.
	CommonCause *float64          `json:"commonCauseFraction"`
	Partition   *float64          `json:"partitionFraction"`
	Domains     []spec.DomainSpec `json:"domains"`
}

// campaignJobCanonical is the normalized form the hash covers. Replicas
// are part of the identity (sharding changes the pooled statistics
// deterministically); parallelism is not a request knob at all — the
// merged report is independent of it.
type campaignJobCanonical struct {
	Instances  int     `json:"instances"`
	Pairs      int     `json:"pairs"`
	Spares     int     `json:"spares"`
	Injections int     `json:"injections"`
	Seed       int64   `json:"seed"`
	Replicas   int     `json:"replicas"`
	ASFraction float64 `json:"asFraction"`
	MultiNode  float64 `json:"multiNodeFraction"`
	// Correlated extensions are omitted from the canonical form when
	// unset, so independent-campaign hashes — and therefore their cache
	// entries — are unchanged from earlier versions.
	CommonCause float64           `json:"commonCauseFraction,omitempty"`
	Partition   float64           `json:"partitionFraction,omitempty"`
	Domains     []spec.DomainSpec `json:"domains,omitempty"`
}

func buildCampaignTask(raw json.RawMessage) (jobs.Task, error) {
	var req campaignJobRequest
	if err := decodeStrict(raw, &req); err != nil {
		return jobs.Task{}, fmt.Errorf("campaign request: %w", err)
	}
	var can campaignJobCanonical
	var err error
	if can.Instances, err = boundedField("instances", req.Instances, 2, 1, maxInstances); err != nil {
		return jobs.Task{}, err
	}
	if can.Pairs, err = boundedField("pairs", req.Pairs, 2, 0, maxPairs); err != nil {
		return jobs.Task{}, err
	}
	if can.Spares, err = boundedField("spares", req.Spares, 2, 0, maxSpares); err != nil {
		return jobs.Task{}, err
	}
	if can.Injections, err = boundedField("injections", req.Injections, 3287, 1, maxCampaignInjections); err != nil {
		return jobs.Task{}, err
	}
	if can.Replicas, err = boundedField("replicas", req.Replicas, 1, 1, maxCampaignReplicas); err != nil {
		return jobs.Task{}, err
	}
	can.Seed = 1
	if req.Seed != nil {
		can.Seed = *req.Seed
	}
	can.ASFraction = faultinject.DefaultASFraction
	if req.ASFraction != nil {
		can.ASFraction = *req.ASFraction
	}
	can.MultiNode = faultinject.DefaultMultiNodeFraction
	if req.MultiNode != nil {
		can.MultiNode = *req.MultiNode
	}
	if can.ASFraction < 0 || can.ASFraction > 1 {
		return jobs.Task{}, fmt.Errorf("asFraction %g outside [0, 1]", can.ASFraction)
	}
	if can.MultiNode < 0 || can.MultiNode > 1 {
		return jobs.Task{}, fmt.Errorf("multiNodeFraction %g outside [0, 1]", can.MultiNode)
	}
	if req.CommonCause != nil {
		can.CommonCause = *req.CommonCause
	}
	if req.Partition != nil {
		can.Partition = *req.Partition
	}
	can.Domains = req.Domains
	if can.CommonCause < 0 || can.CommonCause > 1 {
		return jobs.Task{}, fmt.Errorf("commonCauseFraction %g outside [0, 1]", can.CommonCause)
	}
	if can.Partition < 0 || can.Partition > 1 {
		return jobs.Task{}, fmt.Errorf("partitionFraction %g outside [0, 1]", can.Partition)
	}
	if can.CommonCause+can.Partition > 1 {
		return jobs.Task{}, fmt.Errorf("commonCauseFraction + partitionFraction = %g exceeds 1", can.CommonCause+can.Partition)
	}
	// Convert and structurally validate the domains at submit time so a
	// bad declaration is a 400, not a failed job.
	domains, err := spec.BuildDomains(can.Domains)
	if err != nil {
		return jobs.Task{}, err
	}
	if err := testbed.ValidateDomains(domains, can.Instances, can.Pairs); err != nil {
		return jobs.Task{}, err
	}
	if can.CommonCause > 0 && len(domains) == 0 {
		return jobs.Task{}, fmt.Errorf("commonCauseFraction %g requires domains", can.CommonCause)
	}
	hash, err := jobs.CanonicalHash(JobKindCampaign, can)
	if err != nil {
		return jobs.Task{}, err
	}
	cfg := jsas.Config{ASInstances: can.Instances, HADBPairs: can.Pairs, HADBSpares: can.Spares}
	correlated := can.CommonCause > 0 || can.Partition > 0
	return jobs.Task{
		Kind: JobKindCampaign,
		Hash: hash,
		Detail: fmt.Sprintf("instances=%d pairs=%d injections=%d seed=%d replicas=%d",
			can.Instances, can.Pairs, can.Injections, can.Seed, can.Replicas),
		Total:       int64(can.Injections),
		TrackerOpts: []progress.Option{progress.WithUnit("inj"), progress.WithStat("recovered")},
		Run: func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			fopts := faultinject.Options{
				Config:            cfg,
				Params:            jsas.DefaultParams(),
				Seed:              can.Seed,
				Injections:        can.Injections,
				ASFraction:        faultinject.Fraction(can.ASFraction),
				MultiNodeFraction: faultinject.Fraction(can.MultiNode),
				Progress:          tr,
				Domains:           domains,
			}
			// nil pointers when unset keep the campaign's RNG stream — and
			// so the response — byte-identical to earlier versions.
			if can.CommonCause > 0 {
				fopts.CommonCauseFraction = &can.CommonCause
			}
			if can.Partition > 0 {
				fopts.PartitionFraction = &can.Partition
			}
			rep, err := faultinject.RunReplicatedCtx(ctx, faultinject.ReplicatedOptions{
				Options:  fopts,
				Replicas: can.Replicas,
			})
			if err != nil {
				return nil, err
			}
			out := CampaignResponse{
				Instances:    cfg.ASInstances,
				Pairs:        cfg.HADBPairs,
				Spares:       cfg.HADBSpares,
				Injections:   len(rep.Injections),
				Replicas:     rep.Replicas,
				Seed:         can.Seed,
				Successes:    rep.Successes,
				SuccessRate:  rep.SuccessRate(),
				Availability: rep.Stats.Availability(),
				DowntimeMin:  rep.Stats.DownTime.Minutes(),
				Outages:      len(rep.Stats.Outages),
			}
			for _, b := range rep.CoverageBounds {
				out.CoverageBounds = append(out.CoverageBounds, CoverageBoundResponse{
					Confidence:         b.Confidence,
					CoverageLowerBound: b.Coverage,
					FIRUpperBound:      b.FIR,
				})
			}
			if correlated {
				out.CommonCauseFraction = can.CommonCause
				out.PartitionFraction = can.Partition
				out.MeasuredBeta = rep.MeasuredCommonCauseFraction()
				out.Partitions = rep.Stats.Partitions
				out.ByClass = make(map[string]ClassStatsResponse, len(rep.ByClass))
				for cl, cs := range rep.ByClass {
					out.ByClass[cl.String()] = ClassStatsResponse{
						Injections:        cs.Injections,
						Successes:         cs.Successes,
						ComponentFailures: cs.ComponentFailures,
						DowntimeMinutes:   cs.Downtime.Minutes(),
					}
				}
			}
			return json.Marshal(out)
		},
	}, nil
}

// writeSSEEvent emits one Server-Sent Events frame. The JSON payload is
// a single line (encoding/json never emits raw newlines), so one data:
// field suffices.
func writeSSEEvent(w io.Writer, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
