package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/progress"
)

// jobClock is a mutex-guarded manual time source for engine tests.
type jobClock struct {
	mu sync.Mutex
	t  time.Time
}

func newJobClock() *jobClock {
	return &jobClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *jobClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *jobClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newJobServer builds a handler around a test-owned engine so repeated
// requests hit the same cache, and returns both.
func newJobServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Engine) {
	t.Helper()
	eng := jobs.New(cfg)
	t.Cleanup(eng.Close)
	srv := httptest.NewServer(NewHandler(Options{Jobs: eng}))
	t.Cleanup(srv.Close)
	return srv, eng
}

// postJob submits one job and decodes the 202 status.
func postJob(t *testing.T, srv *httptest.Server, kind, request string) jobs.Status {
	t.Helper()
	body := fmt.Sprintf(`{"kind":%q,"request":%s}`, kind, request)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode 202 body: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s job: status = %d, want 202", kind, resp.StatusCode)
	}
	wantLoc := fmt.Sprintf("/v1/jobs/%d", st.ID)
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("Location = %q, want %q", loc, wantLoc)
	}
	if len(st.Result) != 0 {
		t.Fatalf("202 body carried a result payload: %s", st.Result)
	}
	return st
}

// getJob polls one job's status.
func getJob(t *testing.T, srv *httptest.Server, id int64) jobs.Status {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", srv.URL, id))
	if err != nil {
		t.Fatalf("GET /v1/jobs/%d: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%d: status = %d, want 200", id, resp.StatusCode)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job %d: %v", id, err)
	}
	return st
}

// waitJob blocks on the engine until the job finishes, then re-reads it
// over HTTP so assertions cover the served representation.
func waitJob(t *testing.T, srv *httptest.Server, eng *jobs.Engine, id int64) jobs.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := eng.Wait(ctx, id); err != nil {
		t.Fatalf("wait job %d: %v", id, err)
	}
	return getJob(t, srv, id)
}

const hierModel = `{
  "name": "h",
  "root": "top",
  "models": [
    {"name":"leaf","parameters":{"La":0.01,"Mu":2},
     "states":[{"name":"Up","reward":1},{"name":"Down","reward":0}],
     "transitions":[{"from":"Up","to":"Down","rate":"La"},{"from":"Down","to":"Up","rate":"Mu"}]},
    {"name":"top",
     "states":[{"name":"Ok","reward":1},{"name":"Fail","reward":0}],
     "transitions":[{"from":"Ok","to":"Fail","rate":"L"},{"from":"Fail","to":"Ok","rate":"M"}]}
  ],
  "bindings": [{"model":"top","child":"leaf","lambda_param":"L","mu_param":"M"}]
}`

// TestJobCacheHitIsByteIdenticalAcrossKinds submits every job kind
// twice: the repeat must come back Cached with result bytes identical to
// the fresh computation's, and must not re-run the work.
func TestJobCacheHitIsByteIdenticalAcrossKinds(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 2})
	cases := []struct {
		kind    string
		request string
	}{
		{JobKindSolve, flatModel},
		{JobKindSolveHierarchy, hierModel},
		{JobKindJSAS, `{"instances":2,"pairs":2,"spares":2}`},
		{JobKindUncertainty, `{"samples":50,"seed":2004}`},
		{JobKindCampaign, `{"injections":50,"seed":7,"replicas":2}`},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			first := postJob(t, srv, c.kind, c.request)
			if first.Cached {
				t.Fatalf("first submission already cached")
			}
			fresh := waitJob(t, srv, eng, first.ID)
			if fresh.State != jobs.StateDone {
				t.Fatalf("job state = %s (%s)", fresh.State, fresh.Error)
			}
			if len(fresh.Result) == 0 {
				t.Fatalf("done job has no result")
			}

			second := postJob(t, srv, c.kind, c.request)
			if !second.Cached || second.State != jobs.StateDone {
				t.Fatalf("repeat submission not cached: %+v", second)
			}
			if second.ID == first.ID {
				t.Fatalf("cache hit reused job ID %d", first.ID)
			}
			if second.Hash != first.Hash {
				t.Fatalf("identical requests hashed differently: %s vs %s", second.Hash, first.Hash)
			}
			hit := getJob(t, srv, second.ID)
			if !bytes.Equal(hit.Result, fresh.Result) {
				t.Fatalf("cache hit not byte-identical:\nfresh: %s\nhit:   %s", fresh.Result, hit.Result)
			}
		})
	}
}

// TestJobCanonicalHashNormalization: JSON field order and explicitly
// spelled defaults must not change a request's identity — all variants
// land on one hash, and every variant after the first is a cache hit.
func TestJobCanonicalHashNormalization(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 2})
	variants := []string{
		`{}`,
		`{"instances":2}`,
		`{"spares":2,"pairs":2,"instances":2}`,
		`{"pairs":2,"instances":2,"spares":2}`,
	}
	first := postJob(t, srv, JobKindJSAS, variants[0])
	waitJob(t, srv, eng, first.ID)
	for _, v := range variants[1:] {
		st := postJob(t, srv, JobKindJSAS, v)
		if st.Hash != first.Hash {
			t.Fatalf("request %s hashed to %s, want %s", v, st.Hash, first.Hash)
		}
		if !st.Cached {
			t.Fatalf("request %s missed the cache despite identical canonical form", v)
		}
	}
	// A materially different request must not collide.
	other := postJob(t, srv, JobKindJSAS, `{"pairs":4}`)
	if other.Hash == first.Hash {
		t.Fatalf("pairs=4 collided with the default request hash")
	}
}

// TestJobSubmitValidation: malformed envelopes and out-of-bounds
// requests are rejected at submit time with a 400 naming the problem.
func TestJobSubmitValidation(t *testing.T) {
	srv, _ := newJobServer(t, jobs.Config{Workers: 1})
	cases := []struct {
		name       string
		body       string
		wantInBody string
	}{
		{"bad envelope", `not json`, "envelope"},
		{"missing kind", `{"request":{}}`, "kind missing"},
		{"unknown kind", `{"kind":"frobnicate"}`, "unknown job kind"},
		{"unknown field", `{"kind":"jsas","request":{"instancez":2}}`, "instancez"},
		{"instances too large", `{"kind":"jsas","request":{"instances":65}}`, "instances"},
		{"injections zero", `{"kind":"campaign","request":{"injections":0}}`, "injections"},
		{"injections too large", `{"kind":"campaign","request":{"injections":200001}}`, "injections"},
		{"replicas too large", `{"kind":"campaign","request":{"replicas":65}}`, "replicas"},
		{"asFraction out of range", `{"kind":"campaign","request":{"asFraction":1.5}}`, "asFraction"},
		{"bad solve doc", `{"kind":"solve","request":{"name":"x"}}`, ""},
		{"samples too large", `{"kind":"uncertainty","request":{"samples":20001}}`, "samples"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, buf.String())
			}
			if c.wantInBody != "" && !strings.Contains(buf.String(), c.wantInBody) {
				t.Fatalf("400 body %q does not name %q", buf.String(), c.wantInBody)
			}
		})
	}
}

// TestJobQueueFullDerivesRetryAfter: when the queue rejects, the 429's
// Retry-After comes from observed job service time (30s EWMA / 1 worker
// here), not the sync path's constant "1".
func TestJobQueueFullDerivesRetryAfter(t *testing.T) {
	clock := newJobClock()
	srv, eng := newJobServer(t, jobs.Config{Workers: 1, QueueDepth: 1, Clock: clock.Now})

	// Teach the EWMA: one job that takes 30 simulated seconds.
	slow, err := eng.Submit(jobs.Task{
		Kind: "slow", Hash: "retry-after-slow",
		Run: func(context.Context, *progress.Tracker) (json.RawMessage, error) {
			clock.Advance(30 * time.Second)
			return json.RawMessage(`1`), nil
		},
	})
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := eng.Wait(ctx, slow.ID); err != nil {
		t.Fatalf("wait slow: %v", err)
	}

	// Saturate: one blocker occupying the worker, one job filling the
	// single queue slot.
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := eng.Submit(jobs.Task{
		Kind: "blocker", Hash: "retry-after-blocker",
		Run: func(ctx context.Context, _ *progress.Tracker) (json.RawMessage, error) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return json.RawMessage(`1`), nil
		},
	}); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	if _, err := eng.Submit(jobs.Task{
		Kind: "filler", Hash: "retry-after-filler",
		Run: func(context.Context, *progress.Tracker) (json.RawMessage, error) {
			return json.RawMessage(`1`), nil
		},
	}); err != nil {
		t.Fatalf("submit filler: %v", err)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"jsas"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want \"30\" (30s service EWMA / 1 worker)", got)
	}
	close(release)
}

// TestJobGetErrors: unknown IDs are 404, unparseable IDs are 400, and
// the stream endpoint agrees.
func TestJobGetErrors(t *testing.T) {
	srv, _ := newJobServer(t, jobs.Config{Workers: 1})
	cases := []struct {
		path string
		want int
	}{
		{"/v1/jobs/999999", http.StatusNotFound},
		{"/v1/jobs/notanumber", http.StatusBadRequest},
		{"/v1/jobs/999999/stream", http.StatusNotFound},
		{"/v1/jobs/notanumber/stream", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("GET %s: status = %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
}

// TestJobListNewestFirstWithoutResults: the listing orders jobs newest
// first and never carries result payloads.
func TestJobListNewestFirstWithoutResults(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 1})
	a := postJob(t, srv, JobKindJSAS, `{}`)
	waitJob(t, srv, eng, a.ID)
	b := postJob(t, srv, JobKindJSAS, `{"pairs":3}`)
	waitJob(t, srv, eng, b.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	if len(out.Jobs) != 2 {
		t.Fatalf("listing has %d jobs, want 2", len(out.Jobs))
	}
	if out.Jobs[0].ID != b.ID || out.Jobs[1].ID != a.ID {
		t.Fatalf("listing order = [%d, %d], want newest first [%d, %d]",
			out.Jobs[0].ID, out.Jobs[1].ID, b.ID, a.ID)
	}
	for _, j := range out.Jobs {
		if len(j.Result) != 0 {
			t.Fatalf("listing carried a result for job %d", j.ID)
		}
	}
}

// TestJobStreamFollowsToCompletion: the SSE endpoint emits status frames
// (with progress, without result) while the job runs and a final done
// frame carrying the result.
func TestJobStreamFollowsToCompletion(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 1})
	release := make(chan struct{})
	st, err := eng.Submit(jobs.Task{
		Kind: "stream-test", Hash: "stream-test", Total: 2,
		Run: func(ctx context.Context, tr *progress.Tracker) (json.RawMessage, error) {
			tr.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			tr.Add(1)
			return json.RawMessage(`{"answer":42}`), nil
		},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/stream?interval=20ms", srv.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	br := bufio.NewReader(resp.Body)
	event, data := readSSEEvent(t, br)
	if event != "status" {
		t.Fatalf("first event = %q, want status", event)
	}
	var frame jobs.Status
	if err := json.Unmarshal(data, &frame); err != nil {
		t.Fatalf("status frame: %v\n%s", err, data)
	}
	if frame.ID != st.ID || len(frame.Result) != 0 {
		t.Fatalf("status frame = %+v, want job %d without result", frame, st.ID)
	}

	close(release)
	for {
		event, data = readSSEEvent(t, br)
		if event == "status" {
			continue
		}
		if event != "done" {
			t.Fatalf("event = %q, want done", event)
		}
		break
	}
	if err := json.Unmarshal(data, &frame); err != nil {
		t.Fatalf("done frame: %v\n%s", err, data)
	}
	if frame.State != jobs.StateDone || string(frame.Result) != `{"answer":42}` {
		t.Fatalf("done frame = %+v, want done with the result", frame)
	}
	if frame.Progress == nil || frame.Progress.Completed != 2 {
		t.Fatalf("done frame progress = %+v, want 2/2", frame.Progress)
	}
}

// TestJobsVisibleInRuns: executed jobs register on the server run
// registry, so GET /v1/runs shows them alongside synchronous work.
func TestJobsVisibleInRuns(t *testing.T) {
	reg := progress.NewRegistry(8)
	eng := jobs.New(jobs.Config{Workers: 1, Registry: reg})
	t.Cleanup(eng.Close)
	srv := httptest.NewServer(NewHandler(Options{Jobs: eng}))
	t.Cleanup(srv.Close)

	st := postJob(t, srv, JobKindJSAS, `{}`)
	waitJob(t, srv, eng, st.ID)
	for _, r := range reg.Statuses() {
		if r.Kind == "job:jsas" {
			return
		}
	}
	t.Fatalf("no job:jsas run registered; runs: %+v", reg.Statuses())
}

// domainsJSON is the two-rack Config 1 site used by the correlated
// campaign job tests (same shape as models/domains-config1.json).
const domainsJSON = `[
  {"name": "site"},
  {"name": "rack-a", "parent": "site", "as": [0], "hadb": ["0/0", "1/0"]},
  {"name": "rack-b", "parent": "site", "as": [1], "hadb": ["0/1", "1/1"]}
]`

// TestCampaignJobCorrelated runs a correlated campaign through the job
// engine and checks the served per-class decomposition.
func TestCampaignJobCorrelated(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 1})
	st := postJob(t, srv, "campaign", `{
		"injections": 300, "seed": 9,
		"commonCauseFraction": 0.15, "partitionFraction": 0.1,
		"domains": `+domainsJSON+`
	}`)
	done := waitJob(t, srv, eng, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("state = %q, want done (error %q)", done.State, done.Error)
	}
	var out struct {
		Injections   int                           `json:"injections"`
		MeasuredBeta float64                       `json:"measuredBeta"`
		Partitions   int                           `json:"partitions"`
		ByClass      map[string]map[string]float64 `json:"byClass"`
	}
	if err := json.Unmarshal(done.Result, &out); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if out.Injections != 300 {
		t.Errorf("injections = %d, want 300", out.Injections)
	}
	if out.MeasuredBeta <= 0 || out.MeasuredBeta >= 1 {
		t.Errorf("measuredBeta = %v, want in (0,1)", out.MeasuredBeta)
	}
	if out.Partitions == 0 {
		t.Error("no partitions reported")
	}
	total := 0
	for _, cs := range out.ByClass {
		total += int(cs["injections"])
	}
	if total != 300 {
		t.Errorf("per-class injections sum to %d, want 300", total)
	}
	if cf := out.ByClass["partition"]["componentFailures"]; cf != 0 {
		t.Errorf("partition componentFailures = %v, want 0", cf)
	}
}

// TestCampaignJobIndependentOmitsCorrelatedFields pins response
// back-compat: without correlated options the response carries none of
// the new keys, byte-for-byte.
func TestCampaignJobIndependentOmitsCorrelatedFields(t *testing.T) {
	srv, eng := newJobServer(t, jobs.Config{Workers: 1})
	st := postJob(t, srv, "campaign", `{"injections": 100, "seed": 3}`)
	done := waitJob(t, srv, eng, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("state = %q, want done (error %q)", done.State, done.Error)
	}
	for _, key := range []string{"byClass", "measuredBeta", "commonCauseFraction", "partitionFraction", "partitions"} {
		if bytes.Contains(done.Result, []byte(key)) {
			t.Errorf("independent campaign response leaks %q: %s", key, done.Result)
		}
	}
}

func TestCampaignJobCorrelatedValidation(t *testing.T) {
	srv, _ := newJobServer(t, jobs.Config{Workers: 1})
	cases := []struct {
		name       string
		request    string
		wantInBody string
	}{
		{"ccf without domains", `{"injections":10,"commonCauseFraction":0.2}`, "domains"},
		{"ccf out of range", `{"injections":10,"commonCauseFraction":1.5,"domains":` + domainsJSON + `}`, "commonCauseFraction"},
		{"fractions sum above 1", `{"injections":10,"commonCauseFraction":0.6,"partitionFraction":0.6,"domains":` + domainsJSON + `}`, ""},
		{"negative partition", `{"injections":10,"partitionFraction":-0.1}`, "partitionFraction"},
		{"bad domain ref", `{"injections":10,"commonCauseFraction":0.2,"domains":[{"name":"a","hadb":["zz"]}]}`, ""},
		{"domain member out of range", `{"injections":10,"commonCauseFraction":0.2,"domains":[{"name":"a","as":[7]}]}`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body := `{"kind":"campaign","request":` + c.request + `}`
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, buf.String())
			}
			if c.wantInBody != "" && !strings.Contains(buf.String(), c.wantInBody) {
				t.Fatalf("400 body %q does not name %q", buf.String(), c.wantInBody)
			}
		})
	}
}
