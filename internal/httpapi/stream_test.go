package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// readSSEEvent reads one SSE event (event name + joined data payload)
// from the stream, skipping keepalive comment blocks.
func readSSEEvent(t *testing.T, br *bufio.Reader) (event string, data []byte) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if event != "" || data != nil {
				return event, data
			}
			// End of a comment-only (keepalive) block: keep reading.
		case strings.HasPrefix(line, ":"):
			// Comment field; ignored per the SSE spec.
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		}
	}
}

// TestMetricsStreamSSE drives /v1/metrics/stream end to end over a real
// HTTP connection: the first frame is a full snapshot, a counter bump
// between ticks shows up as a delta frame carrying (at least) the moved
// series, and canceling the request tears the stream down cleanly —
// the handler goroutine exits, observable as the inflight gauge
// returning to its pre-request value.
func TestMetricsStreamSSE(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	defer srv.Close()

	baseInflight := obsInflight.Value()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/v1/metrics/stream?interval=20ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	br := bufio.NewReader(resp.Body)
	event, data := readSSEEvent(t, br)
	if event != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", event)
	}
	var first streamFrame
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatalf("snapshot frame: %v\n%s", err, data)
	}
	if first.Seq != 0 || len(first.Series) == 0 {
		t.Fatalf("snapshot frame seq=%d series=%d, want seq 0 and a non-empty registry",
			first.Seq, len(first.Series))
	}
	if _, err := time.Parse(time.RFC3339Nano, first.ScrapedAt); err != nil {
		t.Fatalf("snapshot scrapedAt %q unparseable: %v", first.ScrapedAt, err)
	}

	// Move one series; the next data frame must be a delta containing it
	// (and not a full snapshot's worth of unchanged series).
	marker := obs.C("httpapi_stream_test_marker", "test counter for SSE delta frames")
	marker.Inc()
	event, data = readSSEEvent(t, br)
	if event != "delta" {
		t.Fatalf("second event = %q, want delta", event)
	}
	var delta streamFrame
	if err := json.Unmarshal(data, &delta); err != nil {
		t.Fatalf("delta frame: %v\n%s", err, data)
	}
	if delta.Seq < 1 {
		t.Fatalf("delta seq = %d, want ≥ 1", delta.Seq)
	}
	found := false
	for _, s := range delta.Series {
		if s.Name == "httpapi_stream_test_marker" {
			found = true
		}
	}
	if !found {
		t.Fatalf("delta frame missing the moved series: %s", data)
	}
	if len(delta.Series) >= len(first.Series) {
		t.Fatalf("delta carried %d series vs %d in the snapshot — not a delta",
			len(delta.Series), len(first.Series))
	}

	// Client abort: the handler must notice the canceled context and
	// return, releasing its inflight slot.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for obsInflight.Value() != baseInflight {
		if time.Now().After(deadline) {
			t.Fatalf("handler did not exit after client abort: inflight = %g, want %g",
				obsInflight.Value(), baseInflight)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsStreamShedExempt: with MaxInflight=1 and the solve slot
// held by a deliberately stalled request, solve routes shed with 429 but
// the metrics stream still answers — an overloaded server must stay
// watchable.
func TestMetricsStreamShedExempt(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{MaxInflight: 1}))
	defer srv.Close()

	// Hold the semaphore: POST /v1/solve with a body that never arrives
	// keeps its handler parked inside the read while owning the slot.
	pr, pw := io.Pipe()
	stallReq, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve", pr)
	if err != nil {
		t.Fatal(err)
	}
	stallDone := make(chan struct{})
	go func() {
		defer close(stallDone)
		resp, err := http.DefaultClient.Do(stallReq)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// The slot is held once a probe solve request sheds with 429.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jsas?instances=2&pairs=2")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("solve queue never saturated: last status %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The stream is exempt: it must deliver its snapshot frame while the
	// solve queue is full.
	streamCtx, streamCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer streamCancel()
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet,
		srv.URL+"/v1/metrics/stream?interval=50ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream while saturated: status = %d, want 200", resp.StatusCode)
	}
	event, _ := readSSEEvent(t, bufio.NewReader(resp.Body))
	if event != "snapshot" {
		t.Fatalf("stream while saturated: first event = %q, want snapshot", event)
	}
	streamCancel()

	// And /v1/runs is exempt too.
	runsResp, err := http.Get(srv.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	runsResp.Body.Close()
	if runsResp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/runs while saturated: status = %d, want 200", runsResp.StatusCode)
	}

	// Release the stalled solve: closing the pipe ends its body, the
	// handler fails the parse (a 400 we don't care about), and the slot
	// frees. A context cancel would not do — the transport's body read
	// on the pipe is not interruptible.
	pw.Close()
	<-stallDone
}

// TestStreamIntervalValidation: malformed or out-of-range intervals are
// rejected before any streaming starts.
func TestStreamIntervalValidation(t *testing.T) {
	t.Parallel()
	for _, q := range []string{"interval=bogus", "interval=1ms", "interval=2h"} {
		res, body := doRequestWith(t, Options{}, http.MethodGet, "/v1/metrics/stream?"+q, nil)
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: status = %d, want 400 (%s)", q, res.StatusCode, body)
		}
	}
}

// TestRunsReportsUncertaintySolve: a completed uncertainty request shows
// up in /v1/runs as a done run with full completion accounting from the
// tracker the handler wired through the driver.
func TestRunsReportsUncertaintySolve(t *testing.T) {
	const seed = 987654
	res, _ := doRequestWith(t, Options{}, http.MethodGet,
		fmt.Sprintf("/v1/jsas/uncertainty?samples=50&seed=%d", seed), nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("uncertainty solve: status = %d", res.StatusCode)
	}

	res, body := doRequestWith(t, Options{}, http.MethodGet, "/v1/runs", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/v1/runs: status = %d", res.StatusCode)
	}
	var out struct {
		Runs []struct {
			Kind      string  `json:"kind"`
			Detail    string  `json:"detail"`
			State     string  `json:"state"`
			Completed int64   `json:"completed"`
			Total     int64   `json:"total"`
			Fraction  float64 `json:"fraction"`
			StatName  string  `json:"statName"`
			StatN     int64   `json:"statN"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/v1/runs body: %v\n%s", err, body)
	}
	want := fmt.Sprintf("seed=%d", seed)
	for _, r := range out.Runs {
		if r.Kind != "uncertainty" || !strings.Contains(r.Detail, want) {
			continue
		}
		if r.State != "done" {
			t.Fatalf("run state = %q, want done", r.State)
		}
		if r.Completed != 50 || r.Total != 50 || r.Fraction != 1 {
			t.Fatalf("run accounting %d/%d (%.2f), want 50/50 (1.00)", r.Completed, r.Total, r.Fraction)
		}
		if r.StatName != "downtimeMin" || r.StatN != 50 {
			t.Fatalf("run stat %s n=%d, want downtimeMin n=50", r.StatName, r.StatN)
		}
		return
	}
	t.Fatalf("no uncertainty run with %q in /v1/runs:\n%s", want, body)
}

// TestHealthzCarriesBuildInfo: /healthz reports liveness plus build
// identity and uptime, and the uptime gauge is refreshed by the scrape.
func TestHealthzCarriesBuildInfo(t *testing.T) {
	res, body := doRequestWith(t, Options{}, http.MethodGet, "/healthz", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status = %d", res.StatusCode)
	}
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("/healthz body: %v\n%s", err, body)
	}
	if hz.Status != "ok" {
		t.Fatalf("status = %q, want ok", hz.Status)
	}
	if !strings.HasPrefix(hz.GoVersion, "go") {
		t.Fatalf("goVersion = %q, want a go version string", hz.GoVersion)
	}
	if hz.UptimeSeconds <= 0 {
		t.Fatalf("uptimeSeconds = %g, want > 0", hz.UptimeSeconds)
	}
	if got := obsUptime.Value(); got <= 0 {
		t.Fatalf("avail_server_uptime_seconds = %g after scrape, want > 0", got)
	}
}
