// Package httpapi exposes the modeling engine as a small JSON-over-HTTP
// service, so the solver can back dashboards and capacity planners without
// linking Go code: POST a model document, get availability measures back.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/ctmc"
	"repro/internal/jobs"
	"repro/internal/jsas"
	"repro/internal/obs"
	"repro/internal/progress"
	"repro/internal/reward"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/uncertainty"
)

// maxBodyBytes bounds accepted request bodies (model documents are small).
const maxBodyBytes = 1 << 20

// SolveResponse is the JSON result for a flat model solve.
type SolveResponse struct {
	Model                 string             `json:"model"`
	States                int                `json:"states"`
	Availability          float64            `json:"availability"`
	ExpectedReward        float64            `json:"expectedReward"`
	YearlyDowntimeMinutes float64            `json:"yearlyDowntimeMinutes"`
	MTBFHours             float64            `json:"mtbfHours,omitempty"`
	LambdaEq              float64            `json:"lambdaEqPerHour"`
	MuEq                  float64            `json:"muEqPerHour"`
	Pi                    map[string]float64 `json:"steadyState"`
}

// BackendSolveResponse is the JSON result for a multi-backend solve: a
// redundancy-structure document routed through the common
// backend.AvailabilityModel interface (?backend=ctmc|bayes on
// POST /v1/solve). Size counts CTMC states or BN variables depending on
// the backend that solved it.
type BackendSolveResponse struct {
	Model                 string  `json:"model"`
	Backend               string  `json:"backend"`
	Size                  int     `json:"size"`
	Availability          float64 `json:"availability"`
	YearlyDowntimeMinutes float64 `json:"yearlyDowntimeMinutes"`
}

// HierSolveResponse is the JSON result for a hierarchical solve.
type HierSolveResponse struct {
	Name                  string              `json:"name"`
	Availability          float64             `json:"availability"`
	YearlyDowntimeMinutes float64             `json:"yearlyDowntimeMinutes"`
	LambdaEq              float64             `json:"lambdaEqPerHour"`
	MuEq                  float64             `json:"muEqPerHour"`
	Children              []HierSolveResponse `json:"children,omitempty"`
}

// JSASResponse is the JSON result for a JSAS configuration solve.
type JSASResponse struct {
	Instances             int     `json:"instances"`
	Pairs                 int     `json:"pairs"`
	Spares                int     `json:"spares"`
	Availability          float64 `json:"availability"`
	YearlyDowntimeMinutes float64 `json:"yearlyDowntimeMinutes"`
	DowntimeASMinutes     float64 `json:"downtimeASMinutes"`
	DowntimeHADBMinutes   float64 `json:"downtimeHADBMinutes"`
	MTBFHours             float64 `json:"mtbfHours"`
}

// UncertaintyResponse is the JSON result for a JSAS uncertainty analysis.
type UncertaintyResponse struct {
	Instances       int     `json:"instances"`
	Pairs           int     `json:"pairs"`
	Samples         int     `json:"samples"`
	MeanDowntimeMin float64 `json:"meanDowntimeMinutes"`
	CI80Low         float64 `json:"ci80Low"`
	CI80High        float64 `json:"ci80High"`
	CI90Low         float64 `json:"ci90Low"`
	CI90High        float64 `json:"ci90High"`
	// FractionFiveNines is the share of sampled deployments above
	// 99.999% availability.
	FractionFiveNines float64 `json:"fractionFiveNines"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Options configures optional handler features.
type Options struct {
	// PProf mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/. Off by default: the profiler exposes stacks and heap
	// contents and belongs behind an explicit operator opt-in.
	PProf bool
	// MaxInflight caps how many solve requests (the /v1/* compute
	// endpoints) run concurrently; requests beyond the cap are shed with
	// 429 + Retry-After instead of queueing. 0 (the default) means
	// unlimited. Liveness and observability endpoints (/healthz,
	// /metrics, /v1/metrics/stream, /v1/runs, /v1/traces) are never shed
	// — an overloaded server must stay diagnosable.
	MaxInflight int
	// Jobs supplies the async engine behind the /v1/jobs endpoints. nil
	// builds one from JobConfig, registered on the server run registry,
	// whose workers live for the life of the process. Callers that need
	// to stop the workers (tests, cmd/avail-server's shutdown path)
	// construct their own engine and Close it themselves.
	Jobs *jobs.Engine
	// JobConfig tunes the handler-built engine when Jobs is nil.
	JobConfig jobs.Config
}

// NewHandler returns the service's HTTP handler:
//
//	GET  /healthz               liveness probe (build identity + uptime)
//	GET  /metrics               engine + request metrics (Prometheus text;
//	                            ?format=json or Accept: application/json
//	                            for the JSON snapshot)
//	GET  /v1/metrics/stream     metrics over Server-Sent Events: a full
//	                            snapshot frame, then per-series deltas
//	                            each ?interval= tick (default 1s)
//	GET  /v1/runs               in-flight and recent tracked requests
//	                            with completion, rate, and ETA
//	POST /v1/jobs               submit an async job ({"kind", "request"});
//	                            202 + job ID, deduplicated by canonical
//	                            request hash (cache + single-flight)
//	GET  /v1/jobs               retained jobs, newest first (no results)
//	GET  /v1/jobs/{id}          job status, progress, and result
//	GET  /v1/jobs/{id}/stream   job status over Server-Sent Events, one
//	                            frame per ?interval= tick until done
//	POST /v1/solve              flat spec.Document → SolveResponse;
//	                            redundancy documents (or ?backend=bayes)
//	                            → BackendSolveResponse via the selected
//	                            solver backend
//	POST /v1/solve-hierarchy    spec.HierDocument → HierSolveResponse
//	GET  /v1/jsas               ?instances=&pairs=&spares= → JSASResponse
//	GET  /v1/jsas/uncertainty   ?instances=&pairs=&samples=&seed= →
//	                            UncertaintyResponse
//	GET  /v1/traces             trace IDs retained by the flight recorder
//	GET  /v1/traces/{id}        one trace's spans (JSON; ?format=chrome
//	                            for Chrome trace_event, ?format=timeline
//	                            for plain text, ?format=jsonl)
//
// With Options.PProf the net/http/pprof endpoints are mounted at
// /debug/pprof/.
func NewHandler(opts ...Options) http.Handler {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	// Every route gets panic containment inside its instrumentation (so a
	// panic is counted both as a panic and as a 500); the compute routes
	// additionally share one load-shedding semaphore.
	shed := limiter(o.MaxInflight)
	eng := o.Jobs
	if eng == nil {
		jc := o.JobConfig
		if jc.Registry == nil {
			jc.Registry = serverRuns
		}
		eng = jobs.New(jc)
	}
	ja := &jobAPI{engine: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", instrument("/healthz", recovered(handleHealthz)))
	mux.HandleFunc("GET /metrics", instrument("/metrics", recovered(handleMetrics)))
	mux.HandleFunc("GET /v1/metrics/stream", instrument("/v1/metrics/stream", recovered(handleMetricsStream)))
	mux.HandleFunc("GET /v1/runs", instrument("/v1/runs", recovered(handleRuns)))
	// The job endpoints are not behind the sync-path semaphore: POST is
	// cheap validation + enqueue whose backpressure is the bounded job
	// queue itself (429 + service-time Retry-After when full), and the
	// GET surfaces are observability.
	mux.HandleFunc("POST /v1/jobs", instrument("/v1/jobs", recovered(ja.handleJobSubmit)))
	mux.HandleFunc("GET /v1/jobs", instrument("/v1/jobs", recovered(ja.handleJobList)))
	mux.HandleFunc("GET /v1/jobs/{id}", instrument("/v1/jobs/id", recovered(ja.handleJobGet)))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", instrument("/v1/jobs/id/stream", recovered(ja.handleJobStream)))
	mux.HandleFunc("POST /v1/solve", instrument("/v1/solve", recovered(shed(handleSolve))))
	mux.HandleFunc("POST /v1/solve-hierarchy", instrument("/v1/solve-hierarchy", recovered(shed(handleSolveHierarchy))))
	mux.HandleFunc("GET /v1/jsas", instrument("/v1/jsas", recovered(shed(handleJSAS))))
	mux.HandleFunc("GET /v1/jsas/uncertainty", instrument("/v1/jsas/uncertainty", recovered(shed(handleJSASUncertainty))))
	mux.HandleFunc("GET /v1/traces", instrument("/v1/traces", recovered(handleTraceList)))
	mux.HandleFunc("GET /v1/traces/{id}", instrument("/v1/traces/id", recovered(handleTraceGet)))
	if o.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response status for error accounting, and
// whether the response has started — the panic-recovery middleware can
// only substitute a 500 while nothing is on the wire yet.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.wrote = true
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true // implicit 200 on first write
	return r.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so streaming handlers (SSE)
// can push frames through the instrumentation wrapper; without this the
// wrapper would hide the http.Flusher and every frame would sit in the
// server's buffer until the handler returned.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers can extend the server's write deadline per frame
// instead of dying at the global WriteTimeout.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with per-route observability: request and
// error counters plus a latency histogram, all in the default registry
// (and therefore visible at GET /metrics).
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	label := fmt.Sprintf("route=%q", route)
	requests := obs.C("httpapi_requests_total", "requests served by route", label)
	errors4xx5xx := obs.C("httpapi_errors_total", "responses with status >= 400 by route", label)
	latency := obs.H("httpapi_request_seconds", "request latency by route", obs.DurationBuckets, label)
	return func(w http.ResponseWriter, r *http.Request) {
		defer obs.Since(latency)()
		obsInflight.Add(1)
		defer obsInflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		requests.Inc()
		if rec.status >= 400 {
			errors4xx5xx.Inc()
		}
	}
}

// metricsFormatHelp is the 406 body listing the supported representations.
const metricsFormatHelp = "unsupported metrics format; supported: Prometheus text " +
	"(default; Accept: text/plain) and JSON (?format=json or Accept: application/json)"

// metricsFormat resolves the requested /metrics representation from the
// ?format override and the Accept header. It returns "text", "json", or
// "" for an unsatisfiable request.
func metricsFormat(r *http.Request) string {
	switch r.URL.Query().Get("format") {
	case "json":
		return "json"
	case "text", "prometheus":
		return "text"
	case "":
	default:
		return ""
	}
	accept := r.Header.Get("Accept")
	if accept == "" {
		return "text"
	}
	jsonOK, textOK, wildcard := false, false, false
	for _, part := range strings.Split(accept, ",") {
		switch strings.TrimSpace(strings.SplitN(part, ";", 2)[0]) {
		case "application/json", "application/*":
			jsonOK = true
		case "text/plain", "text/*":
			textOK = true
		case "*/*", "":
			wildcard = true
		}
	}
	switch {
	case textOK, wildcard:
		return "text"
	case jsonOK:
		return "json"
	}
	return ""
}

// handleMetrics serves the default obs registry: Prometheus text
// exposition by default, the JSON snapshot for ?format=json or
// Accept: application/json, 406 for anything else.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	touchUptime()
	switch metricsFormat(r) {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.Default().WriteJSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default().WriteText(w)
	default:
		writeError(w, http.StatusNotAcceptable, errors.New(metricsFormatHelp))
	}
}

// handleTraceList reports the trace IDs currently retained by the
// process-wide flight recorder.
func handleTraceList(w http.ResponseWriter, _ *http.Request) {
	ids := trace.Default().TraceIDs()
	if ids == nil {
		ids = []trace.SpanID{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces":  ids,
		"dropped": trace.Default().Dropped(),
	})
}

// handleTraceGet serves one trace's spans: JSON array by default,
// Chrome trace_event with ?format=chrome, plain-text timeline with
// ?format=timeline, JSONL with ?format=jsonl.
func handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("trace id: want an integer, got %q", r.PathValue("id")))
		return
	}
	spans := trace.Default().TraceSpans(trace.SpanID(id))
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %d not found", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, spans)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChromeTrace(w, spans)
	case "timeline":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = trace.WriteTimeline(w, spans)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSONL(w, spans)
	default:
		writeError(w, http.StatusNotAcceptable,
			fmt.Errorf("unsupported trace format %q; supported: json, chrome, timeline, jsonl", format))
	}
}

func handleSolve(w http.ResponseWriter, r *http.Request) {
	doc, err := spec.Parse(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		if bodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("model document exceeds %d bytes", maxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind, err := backend.ParseKind(r.URL.Query().Get("backend"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Redundancy documents (and any explicit backend selection) route
	// through the multi-backend interface; the classic flat-CTMC path
	// below keeps its richer report (π vector, MTBF, equivalent rates).
	if doc.Redundancy != nil || kind != backend.KindCTMC {
		handleSolveBackend(w, r, doc, kind)
		return
	}
	structure, err := doc.Compile(nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The solve derives from the request context: a client that
	// disconnects mid-solve cancels the work instead of leaving it
	// running to completion for nobody.
	res, err := structure.Solve(ctmc.SolveOptions{Ctx: r.Context()})
	if err != nil {
		writeError(w, statusForSolveError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse(doc.Name, structure, res))
}

// handleSolveBackend solves a redundancy document on the selected
// backend. Model construction is the compile step of this path, so its
// failures — validation errors and the product state-space cap
// (hier.MaxProductStates, reached when a large replication count is sent
// to the ctmc backend) — are request defects and answer 400, exactly
// like Compile on the flat path.
func handleSolveBackend(w http.ResponseWriter, r *http.Request, doc *spec.Document, kind backend.Kind) {
	m, err := doc.Model(kind, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := m.Solve(r.Context())
	if err != nil {
		writeError(w, statusForSolveError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, backendSolveResponse(res))
}

// backendSolveResponse shapes a multi-backend result for both the sync
// endpoint and the async bayes job runner.
func backendSolveResponse(res *backend.Result) BackendSolveResponse {
	return BackendSolveResponse{
		Model:                 res.Name,
		Backend:               string(res.Backend),
		Size:                  res.Size,
		Availability:          res.Availability,
		YearlyDowntimeMinutes: res.YearlyDowntimeMinutes,
	}
}

func solveResponse(name string, s *reward.Structure, res *reward.Result) SolveResponse {
	m := s.Model()
	pi := make(map[string]float64, m.NumStates())
	for _, st := range m.States() {
		pi[m.Name(st)] = res.Pi[st]
	}
	return SolveResponse{
		Model:                 name,
		States:                m.NumStates(),
		Availability:          res.Availability,
		ExpectedReward:        res.ExpectedReward,
		YearlyDowntimeMinutes: res.YearlyDowntimeMinutes,
		MTBFHours:             res.MTBFHours,
		LambdaEq:              res.LambdaEq,
		MuEq:                  res.MuEq,
		Pi:                    pi,
	}
}

func handleSolveHierarchy(w http.ResponseWriter, r *http.Request) {
	doc, err := spec.ParseHier(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		if bodyTooLarge(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("hierarchy document exceeds %d bytes", maxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ev, err := doc.SolveCtx(r.Context(), nil)
	if err != nil {
		writeError(w, statusForSolveError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, hierResponse(ev))
}

func hierResponse(ev *spec.HierEvaluation) HierSolveResponse {
	out := HierSolveResponse{
		Name:                  ev.Name,
		Availability:          ev.Result.Availability,
		YearlyDowntimeMinutes: ev.Result.YearlyDowntimeMinutes,
		LambdaEq:              ev.Result.LambdaEq,
		MuEq:                  ev.Result.MuEq,
	}
	for _, c := range ev.Children {
		out.Children = append(out.Children, hierResponse(c))
	}
	return out
}

func handleJSAS(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg := jsas.Config{}
	var err error
	if cfg.ASInstances, err = boundedIntParam("instances", q.Get("instances"), 2, 1, maxInstances); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cfg.HADBPairs, err = boundedIntParam("pairs", q.Get("pairs"), 2, 0, maxPairs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cfg.HADBSpares, err = boundedIntParam("spares", q.Get("spares"), 2, 0, maxSpares); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := jsas.Solve(cfg, jsas.DefaultParams())
	if err != nil {
		if errors.Is(err, jsas.ErrBadConfig) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, JSASResponse{
		Instances:             cfg.ASInstances,
		Pairs:                 cfg.HADBPairs,
		Spares:                cfg.HADBSpares,
		Availability:          res.Availability,
		YearlyDowntimeMinutes: res.YearlyDowntimeMinutes,
		DowntimeASMinutes:     res.DowntimeASMinutes,
		DowntimeHADBMinutes:   res.DowntimeHADBMinutes,
		MTBFHours:             res.MTBFHours,
	})
}

// Work bounds on the parameterized endpoints: each unit expands the state
// space (instances/pairs/spares) or multiplies solves (samples), so an
// unbounded query parameter is an unbounded CPU grant to any client. The
// caps sit far above the paper's configurations (≤ 8 instances, ≤ 4
// pairs) while keeping worst-case requests small.
const (
	maxInstances          = 64
	maxPairs              = 64
	maxSpares             = 64
	maxUncertaintySamples = 20000
)

func handleJSASUncertainty(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cfg := jsas.Config{HADBSpares: 2}
	var err error
	if cfg.ASInstances, err = boundedIntParam("instances", q.Get("instances"), 2, 1, maxInstances); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cfg.HADBPairs, err = boundedIntParam("pairs", q.Get("pairs"), 2, 0, maxPairs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	samples, err := boundedIntParam("samples", q.Get("samples"), 1000, 1, maxUncertaintySamples)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seed64, err := intParam(q.Get("seed"), 2004)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("seed: %w", err))
		return
	}
	// The solve is registered as a tracked run so GET /v1/runs can show
	// its live completion count and ETA while it executes.
	run := serverRuns.Begin("uncertainty",
		fmt.Sprintf("instances=%d pairs=%d samples=%d seed=%d",
			cfg.ASInstances, cfg.HADBPairs, samples, seed64),
		int64(samples),
		progress.WithUnit("samples"), progress.WithStat("downtimeMin"))
	res, err := uncertainty.RunCtx(r.Context(),
		jsas.PaperUncertaintyRanges(),
		jsas.UncertaintySolver(cfg, jsas.DefaultParams()),
		uncertainty.Options{Samples: samples, Seed: int64(seed64), Progress: run.Tracker()},
	)
	run.Finish(err)
	if err != nil {
		if errors.Is(err, jsas.ErrBadConfig) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, statusForSolveError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, uncertaintyResponse(cfg, res))
}

// uncertaintyResponse shapes an analysis result for both the sync
// endpoint and the async job runner — one shape, one set of bytes.
func uncertaintyResponse(cfg jsas.Config, res *uncertainty.Result) UncertaintyResponse {
	ci80 := res.CIs[0.80]
	ci90 := res.CIs[0.90]
	return UncertaintyResponse{
		Instances:         cfg.ASInstances,
		Pairs:             cfg.HADBPairs,
		Samples:           res.Summary.N,
		MeanDowntimeMin:   res.Summary.Mean,
		CI80Low:           ci80.Low,
		CI80High:          ci80.High,
		CI90Low:           ci90.Low,
		CI90High:          ci90.High,
		FractionFiveNines: res.FractionBelow(5.25),
	}
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("want an integer, got %q", s)
	}
	return v, nil
}

// boundedIntParam parses a query parameter that sizes server-side work,
// rejecting values outside [min, max] so a single request cannot demand
// an arbitrarily large model or sample count.
func boundedIntParam(name, s string, def, min, max int) (int, error) {
	v, err := intParam(s, def)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("%s %d outside [%d, %d]", name, v, min, max)
	}
	return v, nil
}

// obsEncodeFailures counts responses whose JSON encoding failed after
// the header was on the wire. The status can no longer be corrected at
// that point (the client sees a truncated 200), so the failure must at
// least be observable: job results can be large, and a write error on a
// dying connection is the common cause.
var obsEncodeFailures = obs.C("httpapi_response_encode_failures_total",
	"responses whose JSON encoding failed after the header was written")

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obsEncodeFailures.Inc()
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
