package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bayes"
	"repro/internal/ctmc"
	"repro/internal/hier"
	"repro/internal/spec"
)

// TestStatusForSolveError pins the full error taxonomy: client aborts map
// to 499, model-domain failures to 422, everything else to 500 — wrapped
// or not.
func TestStatusForSolveError(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"canceled", context.Canceled, StatusClientClosedRequest},
		{"deadline", context.DeadlineExceeded, StatusClientClosedRequest},
		{"wrapped canceled", fmt.Errorf("solve: %w", context.Canceled), StatusClientClosedRequest},
		{"not irreducible", ctmc.ErrNotIrreducible, http.StatusUnprocessableEntity},
		{"bad model", ctmc.ErrBadModel, http.StatusUnprocessableEntity},
		{"bad spec", spec.ErrBadSpec, http.StatusUnprocessableEntity},
		{"bn intractable", bayes.ErrIntractable, http.StatusUnprocessableEntity},
		{"bad network", bayes.ErrBadNetwork, http.StatusUnprocessableEntity},
		{"bad component", hier.ErrBadComponent, http.StatusUnprocessableEntity},
		{"wrapped domain", fmt.Errorf("model %q: %w", "x", ctmc.ErrBadModel), http.StatusUnprocessableEntity},
		{"generic", errors.New("boom"), http.StatusInternalServerError},
		{"nil-ish wrapped", fmt.Errorf("outer: %w", errors.New("inner")), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusForSolveError(c.err); got != c.want {
			t.Errorf("%s: statusForSolveError = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestBoundedParams sweeps the work-sizing query parameters across their
// edges: in-range values solve, out-of-range values are rejected with a
// 400 naming the offending parameter.
func TestBoundedParams(t *testing.T) {
	t.Parallel()
	cases := []struct {
		query      string
		wantStatus int
		wantInBody string
	}{
		{"instances=3&pairs=2&spares=1", http.StatusOK, ""},
		{"instances=0", http.StatusBadRequest, "instances"},
		{"instances=-1", http.StatusBadRequest, "instances"},
		{fmt.Sprintf("instances=%d", maxInstances+1), http.StatusBadRequest, "instances"},
		{"pairs=-1", http.StatusBadRequest, "pairs"},
		{fmt.Sprintf("pairs=%d", maxPairs+1), http.StatusBadRequest, "pairs"},
		{"spares=-1", http.StatusBadRequest, "spares"},
		{fmt.Sprintf("spares=%d", maxSpares+1), http.StatusBadRequest, "spares"},
	}
	for _, c := range cases {
		res, body := doRequest(t, http.MethodGet, "/v1/jsas?"+c.query, "")
		if res.StatusCode != c.wantStatus {
			t.Errorf("/v1/jsas?%s: status = %d, want %d (body %s)", c.query, res.StatusCode, c.wantStatus, body)
			continue
		}
		if c.wantInBody != "" && !strings.Contains(string(body), c.wantInBody) {
			t.Errorf("/v1/jsas?%s: body %s does not name %q", c.query, body, c.wantInBody)
		}
	}
	// The uncertainty endpoint shares the caps for instances/pairs and
	// bounds samples.
	uncCases := []struct {
		query      string
		wantInBody string
	}{
		{fmt.Sprintf("instances=%d", maxInstances+1), "instances"},
		{fmt.Sprintf("pairs=%d", maxPairs+1), "pairs"},
		{"samples=0", "samples"},
		{fmt.Sprintf("samples=%d", maxUncertaintySamples+1), "samples"},
	}
	for _, c := range uncCases {
		res, body := doRequest(t, http.MethodGet, "/v1/jsas/uncertainty?"+c.query, "")
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("/v1/jsas/uncertainty?%s: status = %d, want 400", c.query, res.StatusCode)
			continue
		}
		if !strings.Contains(string(body), c.wantInBody) {
			t.Errorf("/v1/jsas/uncertainty?%s: body %s does not name %q", c.query, body, c.wantInBody)
		}
	}
}

// TestSolveCanceledRequestIs499: a request whose context is already
// canceled gets the 499 client-closed-request status, not a 5xx.
func TestSolveCanceledRequestIs499(t *testing.T) {
	t.Parallel()
	h := NewHandler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(flatModel)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled solve: status = %d, want %d (body %s)", rec.Code, StatusClientClosedRequest, rec.Body)
	}
}

// TestPanicRecovery: a panicking handler becomes a 500 with the error
// envelope, the process survives, and the panic counter moves.
func TestPanicRecovery(t *testing.T) {
	t.Parallel()
	before := obsPanics.Value()
	h := instrument("/panic-test", recovered(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/panic-test", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic response: status = %d, want 500", rec.Code)
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("panic body is not the error envelope: %v (%s)", err, rec.Body)
	}
	if !strings.Contains(resp.Error, "internal error") {
		t.Errorf("panic body = %q", resp.Error)
	}
	if got := obsPanics.Value(); got != before+1 {
		t.Errorf("httpapi_panics_total moved %v -> %v, want +1", before, got)
	}
}

// TestPanicAfterWriteDoesNotClobberResponse: once the handler has started
// the response, recovery must not attempt a second status line.
func TestPanicAfterWriteDoesNotClobberResponse(t *testing.T) {
	t.Parallel()
	h := instrument("/panic-late-test", recovered(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte("partial"))
		panic("late kaboom")
	}))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/panic-late-test", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("late panic rewrote the status: %d, want 202", rec.Code)
	}
	if got := rec.Body.String(); got != "partial" {
		t.Errorf("late panic altered the body: %q", got)
	}
}

// TestPanicAbortHandlerPropagates: http.ErrAbortHandler is net/http
// control flow and must pass through the recovery middleware untouched.
func TestPanicAbortHandlerPropagates(t *testing.T) {
	t.Parallel()
	h := recovered(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", p)
		}
	}()
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("handler did not re-panic")
}

// TestLimiterSheds: with MaxInflight=1 a second concurrent request is
// rejected with 429 + Retry-After while the first is still being served,
// and capacity is restored once it finishes.
func TestLimiterSheds(t *testing.T) {
	t.Parallel()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	shed := limiter(1)
	h := shed(func(w http.ResponseWriter, _ *http.Request) {
		// Only the first request blocks; later requests (after release)
		// complete immediately.
		once.Do(func() {
			close(entered)
			<-release
		})
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	wg.Add(1)
	first := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		h(first, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-entered

	second := httptest.NewRecorder()
	beforeRejected := obsRejected.Value()
	h(second, httptest.NewRequest(http.MethodGet, "/", nil))
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429", second.Code)
	}
	if second.Result().Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
	if got := obsRejected.Value(); got != beforeRejected+1 {
		t.Errorf("httpapi_requests_rejected_total moved %v -> %v, want +1", beforeRejected, got)
	}

	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", first.Code)
	}

	// Capacity restored: a fresh request is served, not shed.
	third := httptest.NewRecorder()
	h(third, httptest.NewRequest(http.MethodGet, "/", nil))
	if third.Code != http.StatusOK {
		t.Fatalf("third request after release: status = %d, want 200", third.Code)
	}
}

// TestLimiterDisabled: MaxInflight <= 0 means no shedding at all.
func TestLimiterDisabled(t *testing.T) {
	t.Parallel()
	shed := limiter(0)
	h := shed(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("limiter(0): status = %d, want 200", rec.Code)
	}
}

// TestRetryAfterValue: the job-queue 429 hint renders observed service
// time as whole seconds rounded up, never below 1, and falls back to the
// sync-path constant when no job has completed yet.
func TestRetryAfterValue(t *testing.T) {
	t.Parallel()
	cases := []struct {
		hint time.Duration
		want string
	}{
		{0, syncRetryAfter},
		{-time.Second, syncRetryAfter},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
		{59*time.Second + time.Millisecond, "60"},
	}
	for _, c := range cases {
		if got := retryAfterValue(c.hint); got != c.want {
			t.Errorf("retryAfterValue(%v) = %q, want %q", c.hint, got, c.want)
		}
	}
}

// TestWriteJSONCountsEncodeFailures: an encode failure after the header
// is on the wire cannot change the status anymore, but it must move the
// failure counter instead of disappearing.
func TestWriteJSONCountsEncodeFailures(t *testing.T) {
	before := obsEncodeFailures.Value()
	writeJSON(httptest.NewRecorder(), http.StatusOK, func() {}) // unencodable
	if got := obsEncodeFailures.Value(); got != before+1 {
		t.Fatalf("httpapi_response_encode_failures_total moved %d -> %d, want +1", before, got)
	}
	writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]int{"ok": 1})
	if got := obsEncodeFailures.Value(); got != before+1 {
		t.Fatalf("successful encode moved the failure counter to %d", got)
	}
}

// TestHandlerWithMaxInflightServesHealthz: an overloaded server must stay
// diagnosable — /healthz and /metrics are never behind the semaphore.
func TestHandlerWithMaxInflightServesHealthz(t *testing.T) {
	t.Parallel()
	res, _ := doRequestWith(t, Options{MaxInflight: 1}, http.MethodGet, "/healthz", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with MaxInflight: status = %d", res.StatusCode)
	}
	res, _ = doRequestWith(t, Options{MaxInflight: 1}, http.MethodGet, "/metrics", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics with MaxInflight: status = %d", res.StatusCode)
	}
}
