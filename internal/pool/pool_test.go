package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int64, n)
		err := Run(context.Background(), n, Options{Workers: workers}, func(_, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	t.Parallel()
	if err := Run(context.Background(), 0, Options{}, func(_, _ int) error { return errors.New("x") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := Run(context.Background(), 5, Options{}, nil); err != nil {
		t.Errorf("nil fn: %v", err)
	}
}

// TestRunReportsLowestIndexedError: regardless of which worker fails
// first, the error returned is the one from the lowest failing index.
func TestRunReportsLowestIndexedError(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 8} {
		err := Run(context.Background(), 50, Options{Workers: workers}, func(_, i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Errorf("workers=%d: err = %v, want the failure at index 3", workers, err)
		}
	}
}

// TestRunContinueOnErrorRunsEverything: with ContinueOnError every index
// still executes, and the lowest-indexed error is reported.
func TestRunContinueOnErrorRunsEverything(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		n := 40
		var ran atomic.Int64
		err := Run(context.Background(), n, Options{Workers: workers, ContinueOnError: true}, func(_, i int) error {
			ran.Add(1)
			if i == 5 || i == 20 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if got := ran.Load(); got != int64(n) {
			t.Errorf("workers=%d: ran %d of %d items", workers, got, n)
		}
		if err == nil || err.Error() != "item 5 failed" {
			t.Errorf("workers=%d: err = %v, want the failure at index 5", workers, err)
		}
	}
}

// TestRunSerialOrder: one worker visits indices in order, like a plain loop.
func TestRunSerialOrder(t *testing.T) {
	t.Parallel()
	var seen []int
	_ = Run(context.Background(), 20, Options{Workers: 1}, func(_, i int) error {
		seen = append(seen, i)
		return nil
	})
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial order violated at %d: %v", i, seen)
		}
	}
}

// TestRunWorkerConfinement: a worker id is never active twice at once, so
// per-worker scratch needs no locking.
func TestRunWorkerConfinement(t *testing.T) {
	t.Parallel()
	const workers = 4
	var mu sync.Mutex
	active := make(map[int]bool, workers)
	err := Run(context.Background(), 200, Options{Workers: workers}, func(w, _ int) error {
		mu.Lock()
		if active[w] {
			mu.Unlock()
			return fmt.Errorf("worker %d re-entered", w)
		}
		active[w] = true
		mu.Unlock()
		mu.Lock()
		active[w] = false
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunOnTaskDoneCountsAttemptedItems: the hook fires exactly once per
// attempted item — for successes and failures alike — at every
// parallelism level, and items skipped by the stop-after-failure drain
// do not fire it.
func TestRunOnTaskDoneCountsAttemptedItems(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 8} {
		n := 60
		var attempted atomic.Int64
		counts := make([]atomic.Int64, n)
		var hooked atomic.Int64
		perIndex := make([]atomic.Int64, n)
		err := Run(context.Background(), n, Options{
			Workers:         workers,
			ContinueOnError: true,
			OnTaskDone: func(i int) {
				hooked.Add(1)
				perIndex[i].Add(1)
			},
		}, func(_, i int) error {
			attempted.Add(1)
			counts[i].Add(1)
			if i%5 == 0 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 0 failed" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if got := hooked.Load(); got != attempted.Load() || got != int64(n) {
			t.Fatalf("workers=%d: hook fired %d times for %d attempts (n=%d)",
				workers, got, attempted.Load(), n)
		}
		for i := range perIndex {
			if got := perIndex[i].Load(); got != 1 {
				t.Fatalf("workers=%d: hook fired %d times for index %d", workers, got, i)
			}
		}
	}
}

// TestRunOnTaskDoneSkippedItemsDoNotFire: without ContinueOnError,
// serial runs stop after the first failure and the hook matches the
// attempted count, not n.
func TestRunOnTaskDoneSkippedItemsDoNotFire(t *testing.T) {
	t.Parallel()
	var attempted, hooked atomic.Int64
	err := Run(context.Background(), 50, Options{
		Workers:    1,
		OnTaskDone: func(int) { hooked.Add(1) },
	}, func(_, i int) error {
		attempted.Add(1)
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if attempted.Load() != 4 || hooked.Load() != 4 {
		t.Fatalf("attempted=%d hooked=%d, want 4/4", attempted.Load(), hooked.Load())
	}
}
