// Package pool provides the deterministic index-keyed worker pool shared
// by the engine's fan-out drivers: Monte-Carlo uncertainty runs, parametric
// sweeps, replicated fault-injection campaigns, and longevity series. Work
// items are identified by their index in [0, n); outputs are written by
// index by the caller's closure, so results are identical at any
// parallelism level, and the error ultimately reported is the one from the
// lowest-indexed failing item among those attempted — independent of
// goroutine scheduling.
//
// Every Run takes a context.Context and stops dispatching when it is
// canceled: items already handed to a worker finish (a worker is never
// interrupted mid-item), undispatched items never start, and Run returns
// ctx.Err() alongside whatever work completed. The pool is therefore the
// engine-wide cancellation choke point — a driver that writes outputs by
// index keeps every completed item's result after a cancellation.
package pool

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// obsCancellations counts Runs that stopped early because their context
// was canceled (shared engine-wide series; the label tells layers apart).
var obsCancellations = obs.C("solver_cancellations_total",
	"engine runs aborted by context cancellation", `layer="pool"`)

// Options tunes one Run.
type Options struct {
	// Workers is the number of worker goroutines (min 1; capped at the
	// item count).
	Workers int
	// ContinueOnError keeps dispatching every remaining index after a
	// failure. Replicated measurement wants this: each replica is an
	// independent experiment, so one stuck replica must not discard the
	// others. Off (the default), indices above the lowest known failing
	// index are skipped so the pool drains promptly — the solver-sweep
	// behavior, where a failure invalidates the whole result.
	// Cancellation is not an item failure and always stops dispatch,
	// ContinueOnError or not.
	ContinueOnError bool
	// OnTaskDone, when non-nil, is invoked with the item index after every
	// attempted item — succeeded or failed, but never for items skipped by
	// cancellation or the stop-after-failure drain. It runs on the worker
	// goroutine that executed the item, so it may be called concurrently
	// from different workers and must be safe for that (progress.Tracker's
	// atomic methods are). A nil hook costs the pooled path nothing and
	// the serial path one predictable branch.
	OnTaskDone func(index int)
}

// Run executes fn(worker, index) for every index in [0, n) across a fixed
// pool of workers. worker identifies the executing goroutine in
// [0, workers): callers use it to keep per-worker scratch (solver
// workspaces, latency accumulators) without locking, since one worker
// never runs two items concurrently.
//
// Run returns the error from the lowest-indexed failing item attempted
// (nil if every item succeeded). With Workers ≤ 1 items run serially in
// index order inline on the calling goroutine, so a one-worker Run is
// behaviorally identical to a plain loop and costs no synchronization.
//
// A canceled ctx stops dispatch promptly: in-flight items complete,
// remaining items are skipped, and — when no item itself failed — Run
// returns ctx.Err(), so callers can distinguish cancellation
// (context.Canceled / context.DeadlineExceeded) from item errors with
// errors.Is. A nil ctx is treated as context.Background().
func Run(ctx context.Context, n int, opts Options, fn func(worker, index int) error) error {
	if n <= 0 || fn == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// One worker is a plain loop; running it inline skips the
		// goroutine, channel dispatch, and atomics entirely. Semantics
		// match the pooled path exactly: index order, stop-after-failure
		// unless ContinueOnError, cancellation skips undispatched items,
		// lowest-index error reported.
		var firstErr error
		canceled := false
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				canceled = true
				break
			}
			err := fn(0, i)
			if opts.OnTaskDone != nil {
				opts.OnTaskDone(i)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				if !opts.ContinueOnError {
					break
				}
			}
		}
		if canceled || ctx.Err() != nil {
			obsCancellations.Inc()
		}
		if firstErr != nil {
			return firstErr
		}
		return ctx.Err()
	}

	// minFail is the lowest failing index observed so far (math.MaxInt64
	// while no failure); workers consult it to drain promptly unless
	// ContinueOnError. minErr (under mu) holds the matching error.
	var (
		minFail atomic.Int64
		mu      sync.Mutex
		minIdx  = -1
		minErr  error
	)
	minFail.Store(math.MaxInt64)
	recordFail := func(i int, err error) {
		mu.Lock()
		if minIdx == -1 || i < minIdx {
			minIdx, minErr = i, err
		}
		mu.Unlock()
		for {
			cur := minFail.Load()
			if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}

	done := ctx.Done()
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range indices {
				// A canceled context skips everything not yet started —
				// the dispatcher may have queued an index before noticing.
				if ctx.Err() != nil {
					continue
				}
				// Skip items above the lowest known failure: everything
				// below it still gets run, so the failure ultimately
				// reported is exactly the lowest-indexed one.
				if !opts.ContinueOnError && int64(i) > minFail.Load() {
					continue
				}
				err := fn(worker, i)
				if opts.OnTaskDone != nil {
					opts.OnTaskDone(i)
				}
				if err != nil {
					recordFail(i, err)
				}
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-done:
			break dispatch
		}
	}
	close(indices)
	wg.Wait()

	canceled := ctx.Err()
	if canceled != nil {
		obsCancellations.Inc()
	}
	if minIdx >= 0 {
		return minErr
	}
	return canceled
}
