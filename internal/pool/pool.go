// Package pool provides the deterministic index-keyed worker pool shared
// by the engine's fan-out drivers: Monte-Carlo uncertainty runs, parametric
// sweeps, replicated fault-injection campaigns, and longevity series. Work
// items are identified by their index in [0, n); outputs are written by
// index by the caller's closure, so results are identical at any
// parallelism level, and the error ultimately reported is the one from the
// lowest-indexed failing item among those attempted — independent of
// goroutine scheduling.
package pool

import (
	"math"
	"sync"
	"sync/atomic"
)

// Options tunes one Run.
type Options struct {
	// Workers is the number of worker goroutines (min 1; capped at the
	// item count).
	Workers int
	// ContinueOnError keeps dispatching every remaining index after a
	// failure. Replicated measurement wants this: each replica is an
	// independent experiment, so one stuck replica must not discard the
	// others. Off (the default), indices above the lowest known failing
	// index are skipped so the pool drains promptly — the solver-sweep
	// behavior, where a failure invalidates the whole result.
	ContinueOnError bool
}

// Run executes fn(worker, index) for every index in [0, n) across a fixed
// pool of workers. worker identifies the executing goroutine in
// [0, workers): callers use it to keep per-worker scratch (solver
// workspaces, latency accumulators) without locking, since one worker
// never runs two items concurrently.
//
// Run returns the error from the lowest-indexed failing item attempted
// (nil if every item succeeded). With Workers ≤ 1 items run serially in
// index order on a single worker goroutine, so a one-worker Run is
// behaviorally identical to a plain loop.
func Run(n int, opts Options, fn func(worker, index int) error) error {
	if n <= 0 || fn == nil {
		return nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// minFail is the lowest failing index observed so far (math.MaxInt64
	// while no failure); workers consult it to drain promptly unless
	// ContinueOnError. minErr (under mu) holds the matching error.
	var (
		minFail atomic.Int64
		mu      sync.Mutex
		minIdx  = -1
		minErr  error
	)
	minFail.Store(math.MaxInt64)
	recordFail := func(i int, err error) {
		mu.Lock()
		if minIdx == -1 || i < minIdx {
			minIdx, minErr = i, err
		}
		mu.Unlock()
		for {
			cur := minFail.Load()
			if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range indices {
				// Skip items above the lowest known failure: everything
				// below it still gets run, so the failure ultimately
				// reported is exactly the lowest-indexed one.
				if !opts.ContinueOnError && int64(i) > minFail.Load() {
					continue
				}
				if err := fn(worker, i); err != nil {
					recordFail(i, err)
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	if minIdx >= 0 {
		return minErr
	}
	return nil
}
