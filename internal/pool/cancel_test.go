package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCanceledBeforeStart: a pre-canceled context runs no items and
// reports the cancellation.
func TestRunCanceledBeforeStart(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Run(ctx, 100, Options{Workers: 4}, func(_, _ int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d items ran under a pre-canceled context", got)
	}
}

// TestRunCancelMidway: canceling from inside an item stops dispatch; the
// completed prefix stays completed and the error is the cancellation.
func TestRunCancelMidway(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1000
	var ran atomic.Int64
	err := Run(ctx, n, Options{Workers: 1}, func(_, i int) error {
		ran.Add(1)
		if i == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	got := ran.Load()
	if got < 11 || got >= n {
		t.Errorf("ran %d items; want the completed prefix (>= 11) and an early stop (< %d)", got, n)
	}
}

// TestRunItemErrorBeatsCancellation: when an item failed before the
// cancellation, the item error is reported (the more specific cause).
func TestRunItemErrorBeatsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := Run(ctx, 100, Options{Workers: 1}, func(_, i int) error {
		if i == 2 {
			return fmt.Errorf("item %d failed", i)
		}
		if i == 5 {
			cancel()
		}
		return nil
	})
	if err == nil || err.Error() != "item 2 failed" {
		t.Fatalf("err = %v, want the item-2 failure", err)
	}
}

// TestRunNilContext: a nil context is treated as background, matching the
// package's documented contract.
func TestRunNilContext(t *testing.T) {
	t.Parallel()
	var ran atomic.Int64
	//nolint:staticcheck // deliberately nil: the documented lenient path
	err := Run(nil, 10, Options{}, func(_, _ int) error {
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}

// TestRunCancellationStormNoGoroutineLeak hammers Run with concurrent
// cancellations (run under -race in CI) and then checks the process
// goroutine count returns to its baseline: canceled pools must not strand
// workers.
func TestRunCancellationStormNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	const storms = 30
	var wg sync.WaitGroup
	for s := 0; s < storms; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_ = Run(ctx, 500, Options{Workers: 8}, func(_, i int) error {
				if i == seed%97 {
					cancel()
				}
				return nil
			})
		}(s)
	}
	wg.Wait()
	// Give exiting workers a moment to unwind, then bound the leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: baseline %d, now %d — canceled pools leaked workers",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
