package sparse

// Workspace owns the scratch vectors the iterative steady-state solvers
// sweep over (the iterate, the previous iterate, the matrix-product
// scratch, and the diagonal cache). Passing one via
// SteadyStateOptions.Workspace lets repeated solves — parametric sweeps,
// Monte-Carlo sampling, hierarchical re-evaluation — reuse the buffers
// instead of allocating five vectors per solve.
//
// A Workspace is not safe for concurrent use: give each worker goroutine
// its own (see ctmc.Solver, which wraps one per solve context).
type Workspace struct {
	pi, next, prev, scratch, diag []float64
}

// grow sizes every buffer to n, reallocating only when capacity is
// exceeded. Contents are unspecified afterwards; the solvers overwrite
// each buffer before reading it.
func (w *Workspace) grow(n int) {
	w.pi = growVec(w.pi, n)
	w.next = growVec(w.next, n)
	w.prev = growVec(w.prev, n)
	w.scratch = growVec(w.scratch, n)
	w.diag = growVec(w.diag, n)
}

func growVec(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}
