package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSRBasic(t *testing.T) {
	t.Parallel()
	m, err := NewCSR(3, 3, []Entry{
		{0, 1, 2}, {1, 0, 3}, {2, 2, 4}, {0, 1, 1}, // duplicate (0,1) sums to 3
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 (duplicates coalesced)", m.NNZ())
	}
	if got := m.At(0, 1); got != 3 {
		t.Errorf("At(0,1) = %v, want 3", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0", got)
	}
}

func TestNewCSROutOfRange(t *testing.T) {
	t.Parallel()
	if _, err := NewCSR(2, 2, []Entry{{2, 0, 1}}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	if _, err := NewCSR(2, 2, []Entry{{0, -1, 1}}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestCSREmptyRows(t *testing.T) {
	t.Parallel()
	// Row 0 and row 2 empty.
	m, err := NewCSR(3, 3, []Entry{{1, 1, 5}})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if m.At(0, 0) != 0 || m.At(1, 1) != 5 || m.At(2, 2) != 0 {
		t.Error("empty-row handling wrong")
	}
	count := 0
	m.RangeRow(0, func(int, float64) { count++ })
	m.RangeRow(2, func(int, float64) { count++ })
	if count != 0 {
		t.Errorf("RangeRow over empty rows visited %d entries", count)
	}
}

func TestCSRMulVec(t *testing.T) {
	t.Parallel()
	m, _ := NewCSR(2, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	y, err := m.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Errorf("MulVec = %v, want [7 6]", y)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestCSRVecMul(t *testing.T) {
	t.Parallel()
	m, _ := NewCSR(2, 2, []Entry{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	y, err := m.VecMul([]float64{1, 10}, nil)
	if err != nil {
		t.Fatalf("VecMul: %v", err)
	}
	if y[0] != 31 || y[1] != 42 {
		t.Errorf("VecMul = %v, want [31 42]", y)
	}
	// Reuse of out buffer.
	y2, err := m.VecMul([]float64{1, 10}, y)
	if err != nil {
		t.Fatalf("VecMul(reuse): %v", err)
	}
	if y2[0] != 31 || y2[1] != 42 {
		t.Errorf("VecMul reuse = %v, want [31 42]", y2)
	}
}

func TestCSRTranspose(t *testing.T) {
	t.Parallel()
	m, _ := NewCSR(2, 3, []Entry{{0, 2, 7}, {1, 0, 5}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 0) != 7 || tr.At(0, 1) != 5 {
		t.Error("transpose values wrong")
	}
}

// birthDeathGenerator returns the generator of a birth-death chain with
// birth rate b and death rate d on n states, whose stationary distribution
// is geometric: pi_i ∝ (b/d)^i.
func birthDeathGenerator(t *testing.T, n int, b, d float64) *CSR {
	t.Helper()
	var entries []Entry
	for i := 0; i < n; i++ {
		var exit float64
		if i < n-1 {
			entries = append(entries, Entry{i, i + 1, b})
			exit += b
		}
		if i > 0 {
			entries = append(entries, Entry{i, i - 1, d})
			exit += d
		}
		entries = append(entries, Entry{i, i, -exit})
	}
	q, err := NewCSR(n, n, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return q
}

func geometricStationary(n int, rho float64) []float64 {
	pi := make([]float64, n)
	v, sum := 1.0, 0.0
	for i := 0; i < n; i++ {
		pi[i] = v
		sum += v
		v *= rho
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi
}

func TestSteadyStatePowerBirthDeath(t *testing.T) {
	t.Parallel()
	q := birthDeathGenerator(t, 6, 1, 2)
	pi, err := SteadyStatePower(q, SteadyStateOptions{})
	if err != nil {
		t.Fatalf("SteadyStatePower: %v", err)
	}
	want := geometricStationary(6, 0.5)
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-9 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], want[i])
		}
	}
}

func TestSteadyStateGaussSeidelBirthDeath(t *testing.T) {
	t.Parallel()
	q := birthDeathGenerator(t, 6, 1, 2)
	pi, err := SteadyStateGaussSeidel(q, SteadyStateOptions{})
	if err != nil {
		t.Fatalf("SteadyStateGaussSeidel: %v", err)
	}
	want := geometricStationary(6, 0.5)
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-9 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], want[i])
		}
	}
}

func TestSteadyStateAgreement(t *testing.T) {
	t.Parallel()
	// Random irreducible generators: both solvers must agree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		var entries []Entry
		diag := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				// Dense random rates keep the chain irreducible.
				v := 0.05 + r.Float64()
				entries = append(entries, Entry{i, j, v})
				diag[i] -= v
			}
		}
		for i := 0; i < n; i++ {
			entries = append(entries, Entry{i, i, diag[i]})
		}
		q, err := NewCSR(n, n, entries)
		if err != nil {
			return false
		}
		p1, err := SteadyStatePower(q, SteadyStateOptions{})
		if err != nil {
			return false
		}
		p2, err := SteadyStateGaussSeidel(q, SteadyStateOptions{})
		if err != nil {
			return false
		}
		var sum float64
		for i := range p1 {
			if math.Abs(p1[i]-p2[i]) > 1e-8 {
				return false
			}
			if p1[i] < 0 {
				return false
			}
			sum += p1[i]
		}
		return math.Abs(sum-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateNonSquare(t *testing.T) {
	t.Parallel()
	m, _ := NewCSR(2, 3, nil)
	if _, err := SteadyStatePower(m, SteadyStateOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("power: err = %v, want ErrShape", err)
	}
	if _, err := SteadyStateGaussSeidel(m, SteadyStateOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("gs: err = %v, want ErrShape", err)
	}
}

func TestSteadyStateZeroGenerator(t *testing.T) {
	t.Parallel()
	q, _ := NewCSR(3, 3, nil)
	pi, err := SteadyStatePower(q, SteadyStateOptions{})
	if err != nil {
		t.Fatalf("SteadyStatePower(zero): %v", err)
	}
	for _, p := range pi {
		if math.Abs(p-1.0/3) > 1e-15 {
			t.Errorf("pi = %v, want uniform", pi)
		}
	}
}

func TestSteadyStateIterationBudget(t *testing.T) {
	t.Parallel()
	q := birthDeathGenerator(t, 50, 1, 1.01)
	_, err := SteadyStatePower(q, SteadyStateOptions{MaxIter: 2, Tol: 1e-15})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestRangeRowVisitsEntries(t *testing.T) {
	t.Parallel()
	m, _ := NewCSR(2, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	var cols []int
	var vals []float64
	m.RangeRow(0, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[1] != 2 {
		t.Errorf("RangeRow = %v %v", cols, vals)
	}
}

func TestVecMulShapeError(t *testing.T) {
	t.Parallel()
	m, _ := NewCSR(2, 2, []Entry{{0, 1, 1}})
	if _, err := m.VecMul([]float64{1}, nil); !errors.Is(err, ErrShape) {
		t.Errorf("short x: err = %v", err)
	}
}

func TestNegativeDims(t *testing.T) {
	t.Parallel()
	if _, err := NewCSR(-1, 2, nil); !errors.Is(err, ErrShape) {
		t.Errorf("negative rows: err = %v", err)
	}
}
