package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is reported when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("sparse: iteration limit reached without convergence")

// ctxCheckInterval is how many sweeps an iterative solver runs between
// cancellation checks. Sweeps are cheap relative to a whole solve, so a
// stuck (slowly converging) Gauss–Seidel loop notices a canceled context
// within a bounded, small amount of extra work; checking every sweep
// would put a synchronized channel load in the hot loop for nothing.
const ctxCheckInterval = 64

// checkCtx reports the context's error when it is canceled. A nil context
// never cancels. The returned error wraps context.Canceled (or
// DeadlineExceeded), NOT ErrNoConvergence: a canceled solve says nothing
// about convergence, and callers (MethodAuto's dense fallback, the HTTP
// status mapper) must be able to tell the two apart with errors.Is.
func checkCtx(ctx context.Context, sweeps int) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sparse: solve canceled after %d sweeps: %w", sweeps, err)
	}
	return nil
}

// SteadyStateOptions tunes the iterative steady-state solvers.
type SteadyStateOptions struct {
	// Ctx, if non-nil, is checked every ctxCheckInterval sweeps: a
	// canceled context aborts the solve with an error wrapping ctx.Err()
	// (distinct from ErrNoConvergence), so a stuck iteration is
	// interruptible. nil means "never cancel".
	Ctx context.Context
	// Tol is the convergence tolerance on the max-norm change of the
	// *normalized* probability vector between sweeps: a solver reports
	// convergence only when max_i |π_k[i] − π_{k−1}[i]| < Tol with both
	// iterates normalized to sum 1. The change is measured after
	// normalization, so Tol bounds the sweep-to-sweep movement of the
	// distribution actually returned (not of an intermediate unnormalized
	// iterate). Defaults to 1e-12.
	Tol float64
	// ResidualTol is the acceptance tolerance on the relative residual
	// ‖πQ‖∞ / Λ, where Λ is the largest exit rate of the chain. The
	// sweep-to-sweep diff alone can pass while the iterate is still far
	// from stationarity (e.g. slowly-converging stiff chains, heavily
	// under-relaxed sweeps), so a solver accepts only when BOTH the diff
	// and the residual tests hold; otherwise it keeps sweeping and reports
	// ErrNoConvergence at the iteration limit. Defaults to 1e-8.
	ResidualTol float64
	// MaxIter bounds the number of sweeps. Defaults to 200000.
	MaxIter int
	// Relax is the SOR relaxation factor for Gauss–Seidel (1 = plain GS).
	// Defaults to 1.
	Relax float64
	// X0, if non-nil, seeds the iteration with a warm start (a normalized
	// copy is taken; the slice is not modified). An unusable seed — wrong
	// length, non-finite, or non-positive mass — silently falls back to
	// the uniform cold start. Stats.WarmStart records what happened.
	X0 []float64
	// Transposed, if non-nil, must be the transpose of the generator
	// passed to the solver; Gauss–Seidel then skips computing its own.
	// Callers solving one chain repeatedly (sweeps, Monte-Carlo) cache it
	// once (see ctmc.Model.SparseGeneratorTransposed).
	Transposed *CSR
	// Workspace, if non-nil, provides reusable scratch buffers so
	// repeated solves do not reallocate. Not safe for concurrent use.
	Workspace *Workspace
	// Stats, if non-nil, receives iteration diagnostics: the solvers
	// record the sweep count and final residual there on both success and
	// ErrNoConvergence exhaustion.
	Stats *IterStats
}

// IterStats reports how an iterative solve actually ran.
type IterStats struct {
	// Sweeps is the number of completed sweeps (matrix passes).
	Sweeps int
	// FinalDiff is the max-norm change of the normalized iterate over the
	// last sweep — the quantity compared against Tol.
	FinalDiff float64
	// Residual is the final ‖πQ‖∞ — the true balance-equation residual
	// verified against ResidualTol·Λ before a solve is accepted. It is
	// recorded on success and on ErrNoConvergence exhaustion.
	Residual float64
	// WarmStart reports whether the iteration was seeded from
	// SteadyStateOptions.X0 (false when no usable seed was supplied).
	WarmStart bool
}

func (o SteadyStateOptions) withDefaults() SteadyStateOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.ResidualTol <= 0 {
		o.ResidualTol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200000
	}
	if o.Relax <= 0 {
		o.Relax = 1
	}
	return o
}

// seedIterate fills pi with a normalized copy of x0 if usable (matching
// length, finite, positive mass after clamping round-off negatives) and
// reports whether it did; otherwise pi is left untouched.
func seedIterate(pi, x0 []float64) bool {
	if len(x0) != len(pi) {
		return false
	}
	var sum float64
	for _, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if v > 0 {
			sum += v
		}
	}
	if sum <= 0 {
		return false
	}
	inv := 1 / sum
	for i, v := range x0 {
		if v < 0 {
			v = 0
		}
		pi[i] = v * inv
	}
	return true
}

// uniformIterate fills pi with the uniform distribution.
func uniformIterate(pi []float64) {
	u := 1 / float64(len(pi))
	for i := range pi {
		pi[i] = u
	}
}

// residualInf computes the balance-equation residual ‖πQ‖∞ using scratch
// for the intermediate product.
func residualInf(q *CSR, pi, scratch []float64) float64 {
	out, err := q.VecMul(pi, scratch)
	if err != nil {
		// Unreachable: pi is sized to the (square) generator.
		panic(fmt.Sprintf("sparse: residual: %v", err))
	}
	var r float64
	for _, v := range out {
		if v < 0 {
			v = -v
		}
		if v > r {
			r = v
		}
	}
	return r
}

// SteadyStatePower computes the stationary distribution π of the CTMC with
// generator Q (π·Q = 0, Σπ = 1) by power iteration on the uniformized DTMC
// P = I + Q/Λ, where Λ exceeds the largest exit rate. Q must be a proper
// generator: nonnegative off-diagonals, rows summing to zero. The chain
// must be irreducible for the result to be the unique stationary vector.
func SteadyStatePower(q *CSR, opts SteadyStateOptions) ([]float64, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("generator is %dx%d, want square: %w", q.Rows(), q.Cols(), ErrShape)
	}
	o := opts.withDefaults()
	n := q.Rows()
	if n == 0 {
		return nil, fmt.Errorf("empty generator: %w", ErrShape)
	}
	ws := o.Workspace
	if ws == nil {
		ws = &Workspace{}
	}
	ws.grow(n)
	// Uniformization constant: strictly above the max exit rate so the DTMC
	// is aperiodic even for deterministic-looking structures.
	var maxExit float64
	for i := 0; i < n; i++ {
		d := -q.At(i, i)
		if d > maxExit {
			maxExit = d
		}
	}
	if maxExit == 0 {
		// No transitions at all: every distribution is stationary; return uniform.
		pi := make([]float64, n)
		uniformIterate(pi)
		if o.Stats != nil {
			*o.Stats = IterStats{}
		}
		return pi, nil
	}
	lambda := maxExit * 1.05
	pi, next, scratch := ws.pi, ws.next, ws.scratch
	warm := seedIterate(pi, o.X0)
	if !warm {
		uniformIterate(pi)
	}
	if o.Stats != nil {
		*o.Stats = IterStats{WarmStart: warm}
	}
	if err := checkCtx(o.Ctx, 0); err != nil {
		return nil, err
	}
	var resid float64
	for iter := 1; iter <= o.MaxIter; iter++ {
		if iter%ctxCheckInterval == 0 {
			if err := checkCtx(o.Ctx, iter-1); err != nil {
				return nil, err
			}
		}
		// next = pi·P = pi + (pi·Q)/Λ
		piQ, err := q.VecMul(pi, scratch)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v := pi[i] + piQ[i]/lambda
			if v < 0 {
				v = 0 // clamp tiny negative round-off
			}
			next[i] = v
		}
		// The convergence test compares normalized iterates: pi is already
		// normalized (from the previous sweep or the start), so diff
		// measures the movement of the returned distribution.
		normalizeInPlace(next)
		var diff float64
		for i := 0; i < n; i++ {
			if d := math.Abs(next[i] - pi[i]); d > diff {
				diff = d
			}
		}
		pi, next = next, pi
		if o.Stats != nil {
			o.Stats.Sweeps = iter
			o.Stats.FinalDiff = diff
		}
		if diff < o.Tol {
			// The diff alone can pass while the chain is still drifting;
			// accept only once the true residual confirms stationarity.
			resid = residualInf(q, pi, scratch)
			if o.Stats != nil {
				o.Stats.Residual = resid
			}
			if resid <= o.ResidualTol*maxExit {
				return append([]float64(nil), pi...), nil
			}
		}
	}
	resid = residualInf(q, pi, scratch)
	if o.Stats != nil {
		o.Stats.Residual = resid
	}
	return nil, fmt.Errorf("power iteration after %d sweeps (residual %.3g): %w", o.MaxIter, resid, ErrNoConvergence)
}

// SteadyStateGaussSeidel computes the stationary distribution of generator Q
// by Gauss–Seidel (optionally SOR) sweeps on the balance equations
// πQ = 0 rewritten per-state as π_j = Σ_{i≠j} π_i q_ij / (−q_jj).
// It operates on the transposed generator for column access; pass
// Options.Transposed to reuse a cached Qᵀ across repeated solves.
func SteadyStateGaussSeidel(q *CSR, opts SteadyStateOptions) ([]float64, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("generator is %dx%d, want square: %w", q.Rows(), q.Cols(), ErrShape)
	}
	o := opts.withDefaults()
	n := q.Rows()
	if n == 0 {
		return nil, fmt.Errorf("empty generator: %w", ErrShape)
	}
	qt := o.Transposed
	if qt == nil {
		qt = q.Transpose() // row j of qt holds incoming rates q_ij for state j
	} else if qt.Rows() != n || qt.Cols() != n {
		return nil, fmt.Errorf("transposed generator is %dx%d, want %dx%d: %w",
			qt.Rows(), qt.Cols(), n, n, ErrShape)
	}
	ws := o.Workspace
	if ws == nil {
		ws = &Workspace{}
	}
	ws.grow(n)
	diag := ws.diag
	var maxExit float64
	for j := 0; j < n; j++ {
		diag[j] = -q.At(j, j)
		if diag[j] > maxExit {
			maxExit = diag[j]
		}
	}
	pi, prev, scratch := ws.pi, ws.prev, ws.scratch
	warm := seedIterate(pi, o.X0)
	if !warm {
		uniformIterate(pi)
	}
	if o.Stats != nil {
		*o.Stats = IterStats{WarmStart: warm}
	}
	if err := checkCtx(o.Ctx, 0); err != nil {
		return nil, err
	}
	var resid float64
	for iter := 1; iter <= o.MaxIter; iter++ {
		if iter%ctxCheckInterval == 0 {
			if err := checkCtx(o.Ctx, iter-1); err != nil {
				return nil, err
			}
		}
		copy(prev, pi)
		for j := 0; j < n; j++ {
			if diag[j] == 0 {
				continue // absorbing or isolated state: leave as-is
			}
			var in float64
			lo, hi := qt.rowPtr[j], qt.rowPtr[j+1]
			for k := lo; k < hi; k++ {
				i := qt.colIdx[k]
				if i == j {
					continue
				}
				in += pi[i] * qt.vals[k]
			}
			v := in / diag[j]
			v = pi[j] + o.Relax*(v-pi[j])
			if v < 0 {
				v = 0
			}
			pi[j] = v
		}
		normalizeInPlace(pi)
		// Convergence is judged on the normalized iterates (prev was left
		// normalized by the previous sweep), so Tol bounds the change of
		// the distribution actually returned. Measuring the raw in-sweep
		// updates instead would apply Tol to an unnormalized vector whose
		// scale drifts with the chain's structure.
		var diff float64
		for i := 0; i < n; i++ {
			if d := math.Abs(pi[i] - prev[i]); d > diff {
				diff = d
			}
		}
		if o.Stats != nil {
			o.Stats.Sweeps = iter
			o.Stats.FinalDiff = diff
		}
		if diff < o.Tol {
			// The sweep-to-sweep diff is necessary but not sufficient: an
			// under-relaxed or slowly-converging sweep can move less than
			// Tol per sweep while ‖πQ‖∞ is still large. Accept only when
			// the true residual confirms the balance equations hold.
			resid = residualInf(q, pi, scratch)
			if o.Stats != nil {
				o.Stats.Residual = resid
			}
			if maxExit == 0 || resid <= o.ResidualTol*maxExit {
				return append([]float64(nil), pi...), nil
			}
		}
	}
	resid = residualInf(q, pi, scratch)
	if o.Stats != nil {
		o.Stats.Residual = resid
	}
	return nil, fmt.Errorf("gauss-seidel after %d sweeps (residual %.3g): %w", o.MaxIter, resid, ErrNoConvergence)
}

func normalizeInPlace(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	inv := 1 / s
	for i := range v {
		v[i] *= inv
	}
}
