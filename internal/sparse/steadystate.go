package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is reported when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("sparse: iteration limit reached without convergence")

// SteadyStateOptions tunes the iterative steady-state solvers.
type SteadyStateOptions struct {
	// Tol is the convergence tolerance on the max-norm change of the
	// *normalized* probability vector between sweeps: a solver reports
	// convergence only when max_i |π_k[i] − π_{k−1}[i]| < Tol with both
	// iterates normalized to sum 1. The change is measured after
	// normalization, so Tol bounds the sweep-to-sweep movement of the
	// distribution actually returned (not of an intermediate unnormalized
	// iterate). Defaults to 1e-12.
	Tol float64
	// MaxIter bounds the number of sweeps. Defaults to 200000.
	MaxIter int
	// Relax is the SOR relaxation factor for Gauss–Seidel (1 = plain GS).
	// Defaults to 1.
	Relax float64
	// Stats, if non-nil, receives iteration diagnostics: the solvers
	// record the sweep count and final residual there on both success and
	// ErrNoConvergence exhaustion.
	Stats *IterStats
}

// IterStats reports how an iterative solve actually ran.
type IterStats struct {
	// Sweeps is the number of completed sweeps (matrix passes).
	Sweeps int
	// FinalDiff is the max-norm change of the normalized iterate over the
	// last sweep — the quantity compared against Tol.
	FinalDiff float64
}

func (o SteadyStateOptions) withDefaults() SteadyStateOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200000
	}
	if o.Relax <= 0 {
		o.Relax = 1
	}
	return o
}

// SteadyStatePower computes the stationary distribution π of the CTMC with
// generator Q (π·Q = 0, Σπ = 1) by power iteration on the uniformized DTMC
// P = I + Q/Λ, where Λ exceeds the largest exit rate. Q must be a proper
// generator: nonnegative off-diagonals, rows summing to zero. The chain
// must be irreducible for the result to be the unique stationary vector.
func SteadyStatePower(q *CSR, opts SteadyStateOptions) ([]float64, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("generator is %dx%d, want square: %w", q.Rows(), q.Cols(), ErrShape)
	}
	o := opts.withDefaults()
	n := q.Rows()
	if n == 0 {
		return nil, fmt.Errorf("empty generator: %w", ErrShape)
	}
	// Uniformization constant: strictly above the max exit rate so the DTMC
	// is aperiodic even for deterministic-looking structures.
	var lambda float64
	for i := 0; i < n; i++ {
		d := -q.At(i, i)
		if d > lambda {
			lambda = d
		}
	}
	if lambda == 0 {
		// No transitions at all: every distribution is stationary; return uniform.
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
		return pi, nil
	}
	lambda *= 1.05
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	scratch := make([]float64, n)
	for iter := 1; iter <= o.MaxIter; iter++ {
		// next = pi·P = pi + (pi·Q)/Λ
		piQ, err := q.VecMul(pi, scratch)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v := pi[i] + piQ[i]/lambda
			if v < 0 {
				v = 0 // clamp tiny negative round-off
			}
			next[i] = v
		}
		// The convergence test compares normalized iterates: pi is already
		// normalized (from the previous sweep or the uniform start), so
		// diff measures the movement of the returned distribution.
		normalizeInPlace(next)
		var diff float64
		for i := 0; i < n; i++ {
			if d := math.Abs(next[i] - pi[i]); d > diff {
				diff = d
			}
		}
		pi, next = next, pi
		if o.Stats != nil {
			o.Stats.Sweeps = iter
			o.Stats.FinalDiff = diff
		}
		if diff < o.Tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("power iteration after %d sweeps: %w", o.MaxIter, ErrNoConvergence)
}

// SteadyStateGaussSeidel computes the stationary distribution of generator Q
// by Gauss–Seidel (optionally SOR) sweeps on the balance equations
// πQ = 0 rewritten per-state as π_j = Σ_{i≠j} π_i q_ij / (−q_jj).
// It operates on the transposed generator for column access.
func SteadyStateGaussSeidel(q *CSR, opts SteadyStateOptions) ([]float64, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("generator is %dx%d, want square: %w", q.Rows(), q.Cols(), ErrShape)
	}
	o := opts.withDefaults()
	n := q.Rows()
	if n == 0 {
		return nil, fmt.Errorf("empty generator: %w", ErrShape)
	}
	qt := q.Transpose() // row j of qt holds incoming rates q_ij for state j
	diag := make([]float64, n)
	for j := 0; j < n; j++ {
		diag[j] = -q.At(j, j)
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	prev := make([]float64, n)
	for iter := 1; iter <= o.MaxIter; iter++ {
		copy(prev, pi)
		for j := 0; j < n; j++ {
			if diag[j] == 0 {
				continue // absorbing or isolated state: leave as-is
			}
			var in float64
			lo, hi := qt.rowPtr[j], qt.rowPtr[j+1]
			for k := lo; k < hi; k++ {
				i := qt.colIdx[k]
				if i == j {
					continue
				}
				in += pi[i] * qt.vals[k]
			}
			v := in / diag[j]
			v = pi[j] + o.Relax*(v-pi[j])
			if v < 0 {
				v = 0
			}
			pi[j] = v
		}
		normalizeInPlace(pi)
		// Convergence is judged on the normalized iterates (prev was left
		// normalized by the previous sweep), so Tol bounds the change of
		// the distribution actually returned. Measuring the raw in-sweep
		// updates instead would apply Tol to an unnormalized vector whose
		// scale drifts with the chain's structure.
		var diff float64
		for i := 0; i < n; i++ {
			if d := math.Abs(pi[i] - prev[i]); d > diff {
				diff = d
			}
		}
		if o.Stats != nil {
			o.Stats.Sweeps = iter
			o.Stats.FinalDiff = diff
		}
		if diff < o.Tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("gauss-seidel after %d sweeps: %w", o.MaxIter, ErrNoConvergence)
}

func normalizeInPlace(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	inv := 1 / s
	for i := range v {
		v[i] *= inv
	}
}
