package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestResidualRejectsPrematureDiffConvergence is the regression test for
// the acceptance bug where the sweep-to-sweep diff alone decided
// convergence: with heavy under-relaxation every sweep moves the iterate
// by less than Tol long before the balance equations hold, so the old
// solver returned a far-from-stationary vector as "converged". The
// residual check must keep iterating and report ErrNoConvergence at the
// budget instead.
func TestResidualRejectsPrematureDiffConvergence(t *testing.T) {
	t.Parallel()
	q, _ := stiffChain(t)
	var st IterStats
	_, err := SteadyStateGaussSeidel(q, SteadyStateOptions{
		Tol:     5e-2, // loose: the crawling iterate passes this immediately
		Relax:   1e-6, // each sweep barely moves the iterate
		MaxIter: 50,
		Stats:   &st,
	})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence (diff test alone must not accept)", err)
	}
	if st.FinalDiff >= 5e-2 {
		t.Fatalf("final diff %g >= Tol; the premature-acceptance scenario did not materialize", st.FinalDiff)
	}
	if st.Residual <= 0 {
		t.Fatalf("stats = %+v, want a positive recorded residual", st)
	}
	if st.Sweeps != 50 {
		t.Fatalf("sweeps = %d, want the full budget of 50", st.Sweeps)
	}
}

// TestAcceptedSolveHasSmallResidual checks the complementary direction: a
// solve that is accepted must carry a verified residual within the
// acceptance bound relative to the chain's largest exit rate.
func TestAcceptedSolveHasSmallResidual(t *testing.T) {
	t.Parallel()
	q, _ := stiffChain(t)
	maxExit := 0.0
	for i := 0; i < q.Rows(); i++ {
		if d := -q.At(i, i); d > maxExit {
			maxExit = d
		}
	}
	for _, m := range []string{"gs", "power"} {
		var st IterStats
		var err error
		switch m {
		case "gs":
			_, err = SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Stats: &st})
		case "power":
			_, err = SteadyStatePower(q, SteadyStateOptions{Tol: 1e-13, MaxIter: 5_000_000, Stats: &st})
		}
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if st.Residual <= 0 || st.Residual > 1e-8*maxExit {
			t.Fatalf("%s: residual = %g, want in (0, %g]", m, st.Residual, 1e-8*maxExit)
		}
	}
}

// TestWarmStartConvergesFasterToSameAnswer seeds a second solve with the
// first solve's result and checks it (a) is flagged as warm, (b) needs
// strictly fewer sweeps, and (c) lands on the same distribution.
func TestWarmStartConvergesFasterToSameAnswer(t *testing.T) {
	t.Parallel()
	q, exact := stiffChain(t)
	var cold IterStats
	pi, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Stats: &cold})
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStart {
		t.Fatalf("cold solve flagged as warm: %+v", cold)
	}
	var warm IterStats
	pi2, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Stats: &warm, X0: pi})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStart {
		t.Fatalf("warm solve not flagged: %+v", warm)
	}
	if warm.Sweeps >= cold.Sweeps {
		t.Fatalf("warm start took %d sweeps, cold took %d — expected fewer", warm.Sweeps, cold.Sweeps)
	}
	for i := range pi2 {
		if d := math.Abs(pi2[i] - exact[i]); d > 1e-8 {
			t.Fatalf("warm pi[%d] = %g, exact %g (|Δ| = %g)", i, pi2[i], exact[i], d)
		}
	}
}

// TestWarmStartRejectsUnusableSeeds feeds each category of bad X0 and
// checks the solver falls back to the cold uniform start (and still
// converges to the right answer).
func TestWarmStartRejectsUnusableSeeds(t *testing.T) {
	t.Parallel()
	q, exact := stiffChain(t)
	n := q.Rows()
	bad := map[string][]float64{
		"wrong-length": make([]float64, n+1),
		"nan":          {math.NaN(), 1, 1, 1, 1},
		"inf":          {math.Inf(1), 1, 1, 1, 1},
		"zero-mass":    make([]float64, n),
		"negative":     {-1, -1, -1, -1, -1},
	}
	for name, x0 := range bad {
		var st IterStats
		pi, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Stats: &st, X0: x0})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.WarmStart {
			t.Fatalf("%s: unusable seed flagged as warm start", name)
		}
		for i := range pi {
			if d := math.Abs(pi[i] - exact[i]); d > 1e-8 {
				t.Fatalf("%s: pi[%d] off by %g", name, i, d)
			}
		}
	}
}

// TestTransposedOptionMatchesInternal verifies that supplying a cached Qᵀ
// yields the exact result of letting Gauss–Seidel transpose internally,
// and that a wrong-shaped transpose is rejected.
func TestTransposedOptionMatchesInternal(t *testing.T) {
	t.Parallel()
	q, _ := stiffChain(t)
	want, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Transposed: q.Transpose()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pi[%d]: cached-transpose %g != internal %g", i, got[i], want[i])
		}
	}
	wrong, err := NewCSR(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Transposed: wrong}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape for mismatched transpose", err)
	}
}

// TestWorkspaceReuseKeepsResultsIdentical drives repeated solves through
// one Workspace and checks each returns a fresh vector bit-identical to a
// workspace-free solve — i.e. the scratch reuse never leaks state between
// solves or aliases returned slices.
func TestWorkspaceReuseKeepsResultsIdentical(t *testing.T) {
	t.Parallel()
	var ws Workspace
	rng := rand.New(rand.NewSource(7))
	var prev []float64
	for round := 0; round < 5; round++ {
		birth := []float64{2e-5 * (1 + rng.Float64()), 1e-4, 3e-3, 0.5}
		death := []float64{4, 90 * (1 + rng.Float64()), 2, 600}
		q := birthDeath(t, birth, death)
		want, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12, Workspace: &ws})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: workspace solve differs at %d: %g != %g", round, i, got[i], want[i])
			}
		}
		if prev != nil && &prev[0] == &got[0] {
			t.Fatal("workspace solve returned an aliased result slice")
		}
		prev = got
	}
}
