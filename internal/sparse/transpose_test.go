package sparse

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTransposeEquivalence cross-checks the counting transpose against a
// brute-force element comparison on shapes that exercise its edge cases:
// duplicate triplets (coalesced upstream), empty rows and columns,
// non-square matrices, and the empty matrix.
func TestTransposeEquivalence(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name       string
		rows, cols int
		entries    []Entry
	}{
		{"empty", 3, 4, nil},
		{"single", 1, 1, []Entry{{0, 0, 2}}},
		{"duplicates", 3, 3, []Entry{{0, 1, 1}, {0, 1, 2}, {2, 0, 5}, {2, 0, -1}}},
		{"empty-rows-cols", 4, 5, []Entry{{1, 3, 7}, {3, 0, 2}}},
		{"wide", 2, 6, []Entry{{0, 5, 1}, {0, 0, 2}, {1, 3, 3}}},
		{"tall", 6, 2, []Entry{{5, 0, 1}, {0, 1, 2}, {3, 1, 3}}},
	}
	for _, tc := range cases {
		m, err := NewCSR(tc.rows, tc.cols, tc.entries)
		if err != nil {
			t.Fatalf("%s: NewCSR: %v", tc.name, err)
		}
		tr := m.Transpose()
		if tr.Rows() != tc.cols || tr.Cols() != tc.rows {
			t.Fatalf("%s: shape = %dx%d, want %dx%d", tc.name, tr.Rows(), tr.Cols(), tc.cols, tc.rows)
		}
		if tr.NNZ() != m.NNZ() {
			t.Fatalf("%s: NNZ = %d, want %d", tc.name, tr.NNZ(), m.NNZ())
		}
		for i := 0; i < tc.rows; i++ {
			for j := 0; j < tc.cols; j++ {
				if m.At(i, j) != tr.At(j, i) {
					t.Fatalf("%s: At(%d,%d) = %g, transpose At(%d,%d) = %g",
						tc.name, i, j, m.At(i, j), j, i, tr.At(j, i))
				}
			}
		}
		assertRowsSorted(t, tc.name, tr)
	}
}

// TestTransposeRandomRoundTrip fuzzes rectangular matrices and checks that
// transposing twice reproduces the original structure exactly and that the
// transposed rows stay column-sorted (At's binary search depends on it).
func TestTransposeRandomRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		nnz := rng.Intn(rows * cols * 2) // duplicates likely
		entries := make([]Entry, nnz)
		for k := range entries {
			entries[k] = Entry{rng.Intn(rows), rng.Intn(cols), 1 + rng.Float64()}
		}
		m, err := NewCSR(rows, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		tr := m.Transpose()
		assertRowsSorted(t, "transpose", tr)
		back := tr.Transpose()
		if back.Rows() != m.Rows() || back.Cols() != m.Cols() || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape/nnz: %dx%d/%d vs %dx%d/%d",
				back.Rows(), back.Cols(), back.NNZ(), m.Rows(), m.Cols(), m.NNZ())
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.At(i, j) != back.At(i, j) {
					t.Fatalf("round trip changed (%d,%d): %g vs %g", i, j, back.At(i, j), m.At(i, j))
				}
			}
		}
	}
}

func assertRowsSorted(t *testing.T, name string, m *CSR) {
	t.Helper()
	for i := 0; i < m.Rows(); i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		if !sort.IntsAreSorted(m.colIdx[lo:hi]) {
			t.Fatalf("%s: row %d columns not sorted: %v", name, i, m.colIdx[lo:hi])
		}
	}
}
