package sparse

import (
	"context"
	"errors"
	"testing"
)

// afterNCtx is a context whose Err flips to Canceled after a fixed number
// of Err() calls — a deterministic stand-in for "canceled mid-solve" that
// does not depend on iteration speed. The solvers are single-goroutine,
// so the plain counter is safe.
type afterNCtx struct {
	context.Context
	calls, after int
}

func (c *afterNCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestSteadyStateCanceledUpFront: a pre-canceled context aborts both
// iterative solvers before any sweeps, with an error wrapping
// context.Canceled — and NOT ErrNoConvergence, so auto-method fallbacks
// keyed on non-convergence never fire on a cancel.
func TestSteadyStateCanceledUpFront(t *testing.T) {
	t.Parallel()
	q, _ := stiffChain(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, solve := range map[string]func(*CSR, SteadyStateOptions) ([]float64, error){
		"power":        SteadyStatePower,
		"gauss-seidel": SteadyStateGaussSeidel,
	} {
		_, err := solve(q, SteadyStateOptions{Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if errors.Is(err, ErrNoConvergence) {
			t.Errorf("%s: cancellation reported as non-convergence", name)
		}
	}
}

// TestSteadyStateCanceledMidIteration: a context canceled during the
// sweep loop stops the solver at the next check, again distinct from
// non-convergence.
func TestSteadyStateCanceledMidIteration(t *testing.T) {
	t.Parallel()
	q, _ := stiffChain(t)
	for name, solve := range map[string]func(*CSR, SteadyStateOptions) ([]float64, error){
		"power":        SteadyStatePower,
		"gauss-seidel": SteadyStateGaussSeidel,
	} {
		// after=1: the pre-loop check passes, the first in-loop check
		// cancels. The unreachable tolerances keep the solver sweeping past
		// that check regardless of how fast the small chain converges.
		ctx := &afterNCtx{Context: context.Background(), after: 1}
		_, err := solve(q, SteadyStateOptions{Ctx: ctx, Tol: 1e-300, ResidualTol: 1e-300})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if errors.Is(err, ErrNoConvergence) {
			t.Errorf("%s: mid-iteration cancellation reported as non-convergence", name)
		}
	}
}

// TestSteadyStateNilCtx: no context means no cancellation checks and the
// solve completes as before.
func TestSteadyStateNilCtx(t *testing.T) {
	t.Parallel()
	q, want := stiffChain(t)
	pi, err := SteadyStateGaussSeidel(q, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if diff := pi[i] - want[i]; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("pi[%d] = %g, want %g", i, pi[i], want[i])
		}
	}
}
