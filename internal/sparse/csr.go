// Package sparse provides compressed sparse row (CSR) matrices and the
// iterative steady-state solvers (power iteration on the uniformized chain,
// Gauss–Seidel/SOR on the balance equations) used for CTMCs too large for
// the dense LU path.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// ErrShape is reported on incompatible operand dimensions.
var ErrShape = errors.New("sparse: incompatible shapes")

// Entry is a single (row, col, value) triplet used to build matrices.
type Entry struct {
	Row, Col int
	Val      float64
}

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewCSR builds a CSR matrix from triplets. Duplicate (row, col) entries are
// summed. Entries outside [0,rows)×[0,cols) yield an error.
func NewCSR(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("negative dimension %dx%d: %w", rows, cols, ErrShape)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("entry (%d,%d) outside %dx%d: %w", e.Row, e.Col, rows, cols, ErrShape)
		}
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Coalesce duplicates in place.
	coalesced := sorted[:0]
	for _, e := range sorted {
		if n := len(coalesced); n > 0 && coalesced[n-1].Row == e.Row && coalesced[n-1].Col == e.Col {
			coalesced[n-1].Val += e.Val
			continue
		}
		coalesced = append(coalesced, e)
	}
	m := &CSR{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, len(coalesced)),
		vals:   make([]float64, len(coalesced)),
	}
	for _, e := range coalesced {
		m.rowPtr[e.Row+1]++
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	for k, e := range coalesced {
		m.colIdx[k] = e.Col
		m.vals[k] = e.Val
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns element (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.colIdx[lo:hi], j)
	if lo+idx < hi && m.colIdx[lo+idx] == j {
		return m.vals[lo+idx]
	}
	return 0
}

// RangeRow calls fn(col, val) for every stored entry in row i.
func (m *CSR) RangeRow(i int, fn func(col int, val float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// MulVec computes y = m·x.
func (m *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("MulVec: vector length %d, cols %d: %w", len(x), m.cols, ErrShape)
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y, nil
}

// VecMul computes y = xᵀ·m into out (allocated if nil or wrong length) and
// returns it.
func (m *CSR) VecMul(x []float64, out []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("VecMul: vector length %d, rows %d: %w", len(x), m.rows, ErrShape)
	}
	if len(out) != m.cols {
		out = make([]float64, m.cols)
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[m.colIdx[k]] += xi * m.vals[k]
		}
	}
	return out, nil
}

// Transpose returns the transposed matrix. It runs in O(nnz + rows + cols)
// with a two-pass counting scheme: the source is already coalesced and
// sorted, so no re-sorting or revalidation is needed, and scattering the
// entries in row order leaves every transposed row sorted by column.
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, nnz),
		vals:   make([]float64, nnz),
	}
	// Pass 1: count the entries landing in each transposed row.
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for r := 0; r < t.rows; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	// Pass 2: scatter. next[c] is the write cursor into transposed row c.
	next := make([]int, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.colIdx[k]
			p := next[c]
			next[c]++
			t.colIdx[p] = i
			t.vals[p] = m.vals[k]
		}
	}
	return t
}
