package sparse

import (
	"errors"
	"math"
	"testing"
)

// birthDeath builds the generator of a birth–death chain with the given
// per-state birth (up) and death (down) rates. Its stationary vector has
// the closed form π_{i+1}/π_i = birth[i]/death[i].
func birthDeath(t *testing.T, birth, death []float64) *CSR {
	t.Helper()
	n := len(birth) + 1
	var entries []Entry
	for i := 0; i < n-1; i++ {
		entries = append(entries,
			Entry{Row: i, Col: i + 1, Val: birth[i]},
			Entry{Row: i, Col: i, Val: -birth[i]},
			Entry{Row: i + 1, Col: i, Val: death[i]},
			Entry{Row: i + 1, Col: i + 1, Val: -death[i]},
		)
	}
	q, err := NewCSR(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// birthDeathExact returns the analytic stationary vector of birthDeath.
func birthDeathExact(birth, death []float64) []float64 {
	n := len(birth) + 1
	pi := make([]float64, n)
	pi[0] = 1
	for i := 0; i < n-1; i++ {
		pi[i+1] = pi[i] * birth[i] / death[i]
	}
	normalizeInPlace(pi)
	return pi
}

// stiffChain is a birth–death chain with rates spanning seven orders of
// magnitude — the shape of availability models (failure rates ~1e-5/h,
// repair rates ~1e2/h) where the in-sweep Gauss–Seidel updates and the
// normalized iterate differ by a large, drifting scale factor.
func stiffChain(t *testing.T) (*CSR, []float64) {
	birth := []float64{2e-5, 1e-4, 3e-3, 0.5}
	death := []float64{4, 90, 2, 600}
	return birthDeath(t, birth, death), birthDeathExact(birth, death)
}

// TestGaussSeidelTolAppliesToNormalizedIterate is the regression test for
// the convergence bug where the tolerance was checked against the raw
// in-sweep updates before normalization: on a stiff chain the solver
// could report convergence while the normalized distribution was still
// moving. After the fix, a solve that reports success at tolerance Tol
// must return a vector within a small multiple of Tol of the exact
// stationary distribution, and the recorded final residual must honor
// Tol on the normalized iterates.
func TestGaussSeidelTolAppliesToNormalizedIterate(t *testing.T) {
	q, exact := stiffChain(t)
	var st IterStats
	const tol = 1e-10
	pi, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: tol, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("returned vector sums to %g, want 1", sum)
	}
	if st.Sweeps <= 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
	if st.FinalDiff >= tol {
		t.Fatalf("reported convergence with final diff %g >= tol %g", st.FinalDiff, tol)
	}
	for i := range pi {
		if d := math.Abs(pi[i] - exact[i]); d > 1e-8 {
			t.Fatalf("pi[%d] = %g, exact %g (|Δ| = %g)", i, pi[i], exact[i], d)
		}
	}
	// One extra sweep from the converged point must move the normalized
	// vector by less than tol — i.e. Tol measured what it claims to.
	prev := append([]float64(nil), pi...)
	var st2 IterStats
	pi2, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: tol, Stats: &st2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi2 {
		if d := math.Abs(pi2[i] - prev[i]); d > 10*tol {
			t.Fatalf("re-solve moved pi[%d] by %g, want < %g", i, d, 10*tol)
		}
	}
}

// TestPowerNormalizationDrift solves a chain whose uniformized iterates
// pick up round-off mass each sweep (rates of very different magnitude),
// verifying that power iteration's convergence test — which compares
// post-normalization iterates — converges to the analytic answer and
// records honest stats.
func TestPowerNormalizationDrift(t *testing.T) {
	birth := []float64{3e-4, 0.02}
	death := []float64{7, 150}
	q := birthDeath(t, birth, death)
	exact := birthDeathExact(birth, death)
	var st IterStats
	const tol = 1e-13
	pi, err := SteadyStatePower(q, SteadyStateOptions{Tol: tol, MaxIter: 5_000_000, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("returned vector sums to %g, want 1", sum)
	}
	if st.Sweeps <= 0 || st.FinalDiff >= tol {
		t.Fatalf("stats = %+v, want sweeps > 0 and final diff < %g", st, tol)
	}
	for i := range pi {
		if d := math.Abs(pi[i] - exact[i]); d > 1e-7 {
			t.Fatalf("pi[%d] = %g, exact %g (|Δ| = %g)", i, pi[i], exact[i], d)
		}
	}
}

// TestGaussSeidelMatchesPowerAndStats cross-checks the two iterative
// solvers against each other on the stiff chain.
func TestGaussSeidelMatchesPowerAndStats(t *testing.T) {
	q, _ := stiffChain(t)
	gs, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := SteadyStatePower(q, SteadyStateOptions{Tol: 1e-13, MaxIter: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if d := math.Abs(gs[i] - pw[i]); d > 1e-7 {
			t.Fatalf("solvers disagree at %d: GS %g vs power %g", i, gs[i], pw[i])
		}
	}
}

// TestNoConvergenceStillReportsStats exhausts the iteration budget and
// checks the exhausted-solve diagnostics are still recorded.
func TestNoConvergenceStillReportsStats(t *testing.T) {
	q, _ := stiffChain(t)
	var st IterStats
	_, err := SteadyStateGaussSeidel(q, SteadyStateOptions{Tol: 1e-30, MaxIter: 7, Stats: &st})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if st.Sweeps != 7 || st.FinalDiff <= 0 {
		t.Fatalf("stats = %+v, want 7 sweeps and a positive final diff", st)
	}
}
