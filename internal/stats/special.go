// Package stats implements the statistical machinery the paper's parameter
// estimation and uncertainty analysis rely on: log-gamma, regularized
// incomplete gamma and beta functions, χ²/F/normal distribution CDFs and
// quantiles, exact binomial confidence bounds, and sample statistics.
//
// Everything is implemented from scratch on the stdlib; accuracy targets
// (~1e-10 relative over the parameter ranges availability models use) are
// enforced by the test suite against reference values.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDomain is reported for arguments outside a function's domain.
var ErrDomain = errors.New("stats: argument out of domain")

// lanczosCoef are the Lanczos approximation coefficients (g=7, n=9).
var lanczosCoef = [...]float64{
	0.99999999999980993,
	676.5203681218851,
	-1259.1392167224028,
	771.32342877765313,
	-176.61502916214059,
	12.507343278686905,
	-0.13857109526572012,
	9.9843695780195716e-6,
	1.5056327351493116e-7,
}

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) (float64, error) {
	if x <= 0 {
		return 0, fmt.Errorf("LogGamma(%g): %w", x, ErrDomain)
	}
	if x < 0.5 {
		// Reflection: Γ(x)Γ(1−x) = π/sin(πx).
		lg, err := LogGamma(1 - x)
		if err != nil {
			return 0, err
		}
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - lg, nil
	}
	x--
	a := lanczosCoef[0]
	t := x + 7.5
	for i := 1; i < len(lanczosCoef); i++ {
		a += lanczosCoef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a), nil
}

// GammaP returns the regularized lower incomplete gamma function P(a, x)
// for a > 0, x ≥ 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 {
		return 0, fmt.Errorf("GammaP(%g, %g): %w", a, x, ErrDomain)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	q, err := gammaQContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// GammaQ returns the regularized upper incomplete gamma Q(a, x) = 1−P(a, x).
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 {
		return 0, fmt.Errorf("GammaQ(%g, %g): %w", a, x, ErrDomain)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) (float64, error) {
	lg, err := LogGamma(a)
	if err != nil {
		return 0, err
	}
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 1000; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("GammaP(%g, %g): series did not converge: %w", a, x, ErrDomain)
}

func gammaQContinuedFraction(a, x float64) (float64, error) {
	lg, err := LogGamma(a)
	if err != nil {
		return 0, err
	}
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("GammaQ(%g, %g): continued fraction did not converge: %w", a, x, ErrDomain)
}

// BetaInc returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x ∈ [0, 1].
func BetaInc(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 || x < 0 || x > 1 {
		return 0, fmt.Errorf("BetaInc(%g, %g, %g): %w", a, b, x, ErrDomain)
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	lga, err := LogGamma(a + b)
	if err != nil {
		return 0, err
	}
	lgb, err := LogGamma(a)
	if err != nil {
		return 0, err
	}
	lgc, err := LogGamma(b)
	if err != nil {
		return 0, err
	}
	front := math.Exp(lga - lgb - lgc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaCF evaluates the continued fraction for BetaInc (Lentz's method).
func betaCF(a, b, x float64) (float64, error) {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 1000; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			return h, nil
		}
	}
	return 0, fmt.Errorf("BetaInc continued fraction did not converge: %w", ErrDomain)
}
