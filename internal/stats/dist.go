package stats

import (
	"fmt"
	"math"
	"sync"
)

// quantileCache memoizes bisection-inverted quantiles. The χ² and F
// quantiles dominate the cost of the Equation (1)/(2) bounds, and their
// (p, dof) keys recur heavily — every longevity run of a series asks for
// the same confidences over a handful of failure counts. Cached values
// are the bisection results themselves, so a hit returns the bit the
// cold path would have computed. Bounded so adversarial key churn (e.g.
// a sweep over thousands of distinct dofs) cannot grow the map without
// limit; past the cap, misses simply stay uncached.
type quantileKey struct{ p, k1, k2 float64 }

var quantileCache = struct {
	sync.RWMutex
	m map[quantileKey]float64
}{m: make(map[quantileKey]float64)}

const quantileCacheCap = 4096

func quantileCached(key quantileKey, compute func() (float64, error)) (float64, error) {
	quantileCache.RLock()
	v, ok := quantileCache.m[key]
	quantileCache.RUnlock()
	if ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return 0, err
	}
	quantileCache.Lock()
	if len(quantileCache.m) < quantileCacheCap {
		quantileCache.m[key] = v
	}
	quantileCache.Unlock()
	return v, nil
}

// ChiSquareCDF returns P(X ≤ x) for X ~ χ²(k).
func ChiSquareCDF(x float64, k float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("ChiSquareCDF: dof %g: %w", k, ErrDomain)
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaP(k/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of χ²(k): the x with
// P(X ≤ x) = p. This is the χ²_{p;k} the paper's Equation (2) uses.
func ChiSquareQuantile(p float64, k float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("ChiSquareQuantile: p=%g: %w", p, ErrDomain)
	}
	if k <= 0 {
		return 0, fmt.Errorf("ChiSquareQuantile: dof %g: %w", k, ErrDomain)
	}
	if p == 0 {
		return 0, nil
	}
	return quantileCached(quantileKey{p: p, k1: k}, func() (float64, error) {
		cdf := func(x float64) (float64, error) { return ChiSquareCDF(x, k) }
		// Bracket: mean k, variance 2k — start at mean + 10 std dev.
		hi := k + 10*math.Sqrt(2*k) + 10
		return quantileBisect(cdf, p, 0, hi)
	})
}

// FCDF returns P(X ≤ x) for X ~ F(d1, d2).
func FCDF(x, d1, d2 float64) (float64, error) {
	if d1 <= 0 || d2 <= 0 {
		return 0, fmt.Errorf("FCDF: dof (%g, %g): %w", d1, d2, ErrDomain)
	}
	if x <= 0 {
		return 0, nil
	}
	return BetaInc(d1/2, d2/2, d1*x/(d1*x+d2))
}

// FQuantile returns the p-quantile of the F(d1, d2) distribution — the
// F_{p; d1; d2} value in the paper's Equation (1).
func FQuantile(p, d1, d2 float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("FQuantile: p=%g: %w", p, ErrDomain)
	}
	if d1 <= 0 || d2 <= 0 {
		return 0, fmt.Errorf("FQuantile: dof (%g, %g): %w", d1, d2, ErrDomain)
	}
	if p == 0 {
		return 0, nil
	}
	return quantileCached(quantileKey{p: p, k1: d1, k2: d2}, func() (float64, error) {
		cdf := func(x float64) (float64, error) { return FCDF(x, d1, d2) }
		// Grow the bracket until it covers p.
		hi := 1.0
		for i := 0; i < 200; i++ {
			c, err := cdf(hi)
			if err != nil {
				return 0, err
			}
			if c > p {
				break
			}
			hi *= 2
		}
		return quantileBisect(cdf, p, 0, hi)
	})
}

// NormalCDF returns Φ(x) for the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p ∈ (0, 1) using the Acklam rational
// approximation refined with one Halley step (absolute error < 1e-14).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("NormalQuantile: p=%g: %w", p, ErrDomain)
	}
	// Acklam coefficients.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// quantileBisect inverts a monotone CDF by bisection on [lo, hi].
func quantileBisect(cdf func(float64) (float64, error), p, lo, hi float64) (float64, error) {
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		c, err := cdf(mid)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return 0.5 * (lo + hi), nil
}
