package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 3 // exponential, mean 3
	}
	res, err := KolmogorovSmirnov(xs, ExponentialCDF(3))
	if err != nil {
		t.Fatalf("KolmogorovSmirnov: %v", err)
	}
	if res.PValue < 0.01 {
		t.Errorf("p = %v, matching distribution rejected", res.PValue)
	}
	if res.N != 2000 {
		t.Errorf("N = %d", res.N)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(12))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Float64() * 6 // uniform [0,6], mean 3
	}
	res, err := KolmogorovSmirnov(xs, ExponentialCDF(3))
	if err != nil {
		t.Fatalf("KolmogorovSmirnov: %v", err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("p = %v, wrong distribution accepted", res.PValue)
	}
}

func TestKSUniformCDF(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(13))
	xs := make([]float64, 1500)
	for i := range xs {
		xs[i] = 2 + 3*r.Float64()
	}
	res, err := KolmogorovSmirnov(xs, UniformCDF(2, 5))
	if err != nil {
		t.Fatalf("KolmogorovSmirnov: %v", err)
	}
	if res.PValue < 0.01 {
		t.Errorf("p = %v, uniform sample rejected against its own CDF", res.PValue)
	}
}

func TestKSErrors(t *testing.T) {
	t.Parallel()
	if _, err := KolmogorovSmirnov(nil, ExponentialCDF(1)); !errors.Is(err, ErrDomain) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); !errors.Is(err, ErrDomain) {
		t.Errorf("nil cdf: err = %v", err)
	}
	badCDF := func(float64) float64 { return 2 }
	if _, err := KolmogorovSmirnov([]float64{1}, badCDF); !errors.Is(err, ErrDomain) {
		t.Errorf("bad cdf: err = %v", err)
	}
}

func TestKSPValueMonotoneInStatistic(t *testing.T) {
	t.Parallel()
	prev := 1.0
	for d := 0.01; d < 0.2; d += 0.01 {
		p := ksPValue(d, 500)
		if p > prev+1e-12 {
			t.Errorf("p-value not monotone at D=%v", d)
		}
		prev = p
	}
	if p := ksPValue(0, 100); p != 1 {
		t.Errorf("ksPValue(0) = %v, want 1", p)
	}
}

func TestCDFHelpers(t *testing.T) {
	t.Parallel()
	e := ExponentialCDF(2)
	if e(-1) != 0 || e(0) != 0 {
		t.Error("ExponentialCDF at non-positive x")
	}
	if math.Abs(e(2)-(1-math.Exp(-1))) > 1e-15 {
		t.Error("ExponentialCDF value")
	}
	u := UniformCDF(1, 3)
	if u(0) != 0 || u(4) != 1 || u(2) != 0.5 {
		t.Error("UniformCDF values")
	}
	if UniformCDF(3, 1)(2) != 0 {
		t.Error("degenerate UniformCDF")
	}
}
