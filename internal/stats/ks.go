package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult is the outcome of a one-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// Statistic is D_n = sup |F_n(x) − F(x)|.
	Statistic float64
	// PValue is the asymptotic probability of observing a larger D under
	// the null hypothesis that the sample follows the reference CDF.
	PValue float64
	// N is the sample size.
	N int
}

// KolmogorovSmirnov runs a one-sample KS test of xs against the reference
// CDF. The sample is not modified. Used to validate the simulator's
// variate generators against their intended distributions.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(xs)
	if n == 0 {
		return KSResult{}, fmt.Errorf("KolmogorovSmirnov: empty sample: %w", ErrDomain)
	}
	if cdf == nil {
		return KSResult{}, fmt.Errorf("KolmogorovSmirnov: nil cdf: %w", ErrDomain)
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return KSResult{}, fmt.Errorf("KolmogorovSmirnov: cdf(%g) = %g outside [0,1]: %w", x, f, ErrDomain)
		}
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return KSResult{
		Statistic: d,
		PValue:    ksPValue(d, n),
		N:         n,
	}, nil
}

// ksPValue evaluates the asymptotic Kolmogorov distribution complement
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²} at λ = D(√n + 0.12 + 0.11/√n)
// (Stephens' small-sample correction).
func ksPValue(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	lambda := d * (sn + 0.12 + 0.11/sn)
	if lambda < 1e-6 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ExponentialCDF returns the CDF of an exponential distribution with the
// given mean, for use with KolmogorovSmirnov.
func ExponentialCDF(mean float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 || mean <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	}
}

// UniformCDF returns the CDF of a uniform distribution on [lo, hi].
func UniformCDF(lo, hi float64) func(float64) float64 {
	return func(x float64) float64 {
		switch {
		case hi <= lo, x <= lo:
			return 0
		case x >= hi:
			return 1
		default:
			return (x - lo) / (hi - lo)
		}
	}
}
