package stats

import (
	"fmt"
	"math"
)

// BinomialLowerBound returns the one-sided lower confidence bound on a
// binomial success probability (the "coverage" C in the paper), given s
// successes in n trials at the stated confidence level, via the
// F-distribution form the paper cites (Kececioglu; Eq. (1) in the paper):
//
//	C_low = s / (s + (n−s+1)·F_{conf; 2(n−s)+2; 2s})
//
// For s = n (no failures observed) the exact Clopper–Pearson zero-failure
// bound C_low = α^{1/n} is used, which the F form degenerates to.
func BinomialLowerBound(n, s int, confidence float64) (float64, error) {
	if n <= 0 || s < 0 || s > n {
		return 0, fmt.Errorf("BinomialLowerBound: n=%d s=%d: %w", n, s, ErrDomain)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("BinomialLowerBound: confidence %g: %w", confidence, ErrDomain)
	}
	alpha := 1 - confidence
	if s == 0 {
		return 0, nil
	}
	if s == n {
		// Zero failures: exact bound from (C_low)^n = α.
		return math.Pow(alpha, 1/float64(n)), nil
	}
	f, err := FQuantile(confidence, float64(2*(n-s)+2), float64(2*s))
	if err != nil {
		return 0, err
	}
	return float64(s) / (float64(s) + float64(n-s+1)*f), nil
}

// BinomialUpperBound returns the one-sided upper confidence bound on a
// binomial probability with s successes in n trials (Clopper–Pearson via
// the F distribution). Useful for bounding a failure fraction from above.
func BinomialUpperBound(n, s int, confidence float64) (float64, error) {
	if n <= 0 || s < 0 || s > n {
		return 0, fmt.Errorf("BinomialUpperBound: n=%d s=%d: %w", n, s, ErrDomain)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("BinomialUpperBound: confidence %g: %w", confidence, ErrDomain)
	}
	// Upper bound on p with s successes = 1 − (lower bound on q with n−s
	// successes), by symmetry.
	low, err := BinomialLowerBound(n, n-s, confidence)
	if err != nil {
		return 0, err
	}
	return 1 - low, nil
}

// PoissonRateUpperBound returns the one-sided upper confidence bound on an
// exponential failure rate given n observed failures over total exposure
// time T — the paper's Equation (2):
//
//	λ_max = χ²_{conf; 2n+2} / (2T)
//
// With n = 0 this is the standard zero-failure bound −ln(α)/T.
func PoissonRateUpperBound(totalTime float64, failures int, confidence float64) (float64, error) {
	if totalTime <= 0 {
		return 0, fmt.Errorf("PoissonRateUpperBound: T=%g: %w", totalTime, ErrDomain)
	}
	if failures < 0 {
		return 0, fmt.Errorf("PoissonRateUpperBound: n=%d: %w", failures, ErrDomain)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("PoissonRateUpperBound: confidence %g: %w", confidence, ErrDomain)
	}
	q, err := ChiSquareQuantile(confidence, float64(2*failures+2))
	if err != nil {
		return 0, err
	}
	return q / (2 * totalTime), nil
}
