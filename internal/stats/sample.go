package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64 // sample standard deviation (n−1 denominator)
	Min, Max float64
	Median   float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (p ∈ [0, 100]) of xs using linear
// interpolation between order statistics. The input is not modified.
// An empty sample returns NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Interval is a two-sided interval.
type Interval struct {
	Low, High float64
}

// PercentileCI returns the central confidence interval covering the given
// confidence mass (e.g. 0.80 → the (10th, 90th) percentile interval). This
// is the empirical interval the paper reports for its uncertainty analysis.
func PercentileCI(xs []float64, confidence float64) (Interval, error) {
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("PercentileCI: confidence %g: %w", confidence, ErrDomain)
	}
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("PercentileCI: empty sample: %w", ErrDomain)
	}
	tail := (1 - confidence) / 2 * 100
	return Interval{
		Low:  Percentile(xs, tail),
		High: Percentile(xs, 100-tail),
	}, nil
}

// FractionBelow returns the fraction of the sample strictly below x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, v := range xs {
		if v < x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// HistogramBin is one bin of a histogram.
type HistogramBin struct {
	Low, High float64
	Count     int
}

// Histogram bins xs into n equal-width bins spanning [min, max]. Values
// equal to max land in the last bin.
func Histogram(xs []float64, n int) []HistogramBin {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	if mx == mn {
		return []HistogramBin{{Low: mn, High: mx, Count: len(xs)}}
	}
	bins := make([]HistogramBin, n)
	width := (mx - mn) / float64(n)
	for i := range bins {
		bins[i].Low = mn + float64(i)*width
		bins[i].High = bins[i].Low + width
	}
	for _, x := range xs {
		idx := int((x - mn) / width)
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

// SpearmanRank returns the Spearman rank correlation coefficient between
// paired samples xs and ys (−1..1, 0 for independence). Ties receive
// average ranks. Returns NaN for fewer than 2 pairs or mismatched lengths.
func SpearmanRank(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return math.NaN()
	}
	rx := ranks(xs)
	ry := ranks(ys)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a := rx[i] - mx
		b := ry[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
