package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestLogGamma(t *testing.T) {
	t.Parallel()
	tests := []struct {
		x, want float64
	}{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{1.5, math.Log(math.Sqrt(math.Pi) / 2)},
		{10.5, 13.94062521940332}, // reference value
		{100, 359.1342053695754},
	}
	for _, tc := range tests {
		got, err := LogGamma(tc.x)
		if err != nil {
			t.Fatalf("LogGamma(%g): %v", tc.x, err)
		}
		wantClose(t, "LogGamma", got, tc.want, 1e-12)
	}
	if _, err := LogGamma(0); !errors.Is(err, ErrDomain) {
		t.Errorf("LogGamma(0): err = %v, want ErrDomain", err)
	}
	if _, err := LogGamma(-1); !errors.Is(err, ErrDomain) {
		t.Errorf("LogGamma(-1): err = %v, want ErrDomain", err)
	}
}

func TestGammaPExponential(t *testing.T) {
	t.Parallel()
	// P(1, x) = 1 − e^{-x}.
	for _, x := range []float64{0, 0.1, 1, 2, 5, 20} {
		got, err := GammaP(1, x)
		if err != nil {
			t.Fatalf("GammaP(1, %g): %v", x, err)
		}
		wantClose(t, "GammaP(1,x)", got, 1-math.Exp(-x), 1e-12)
	}
}

func TestGammaPQComplement(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.3 + 20*r.Float64()
		x := 30 * r.Float64()
		p, err1 := GammaP(a, x)
		q, err2 := GammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-10 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBetaIncReference(t *testing.T) {
	t.Parallel()
	// I_x(1, b) = 1 − (1−x)^b; I_x(a, 1) = x^a.
	for _, tc := range []struct{ a, b, x float64 }{
		{1, 3, 0.2}, {1, 1, 0.7}, {2, 1, 0.4}, {5, 1, 0.9},
	} {
		got, err := BetaInc(tc.a, tc.b, tc.x)
		if err != nil {
			t.Fatalf("BetaInc(%v,%v,%v): %v", tc.a, tc.b, tc.x, err)
		}
		var want float64
		if tc.a == 1 {
			want = 1 - math.Pow(1-tc.x, tc.b)
		} else {
			want = math.Pow(tc.x, tc.a)
		}
		wantClose(t, "BetaInc", got, want, 1e-12)
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	g1, _ := BetaInc(3.5, 2.25, 0.3)
	g2, _ := BetaInc(2.25, 3.5, 0.7)
	wantClose(t, "BetaInc symmetry", g1, 1-g2, 1e-12)
	// Edges.
	if v, _ := BetaInc(2, 3, 0); v != 0 {
		t.Errorf("BetaInc(.,.,0) = %v", v)
	}
	if v, _ := BetaInc(2, 3, 1); v != 1 {
		t.Errorf("BetaInc(.,.,1) = %v", v)
	}
	if _, err := BetaInc(0, 1, 0.5); !errors.Is(err, ErrDomain) {
		t.Errorf("BetaInc domain err = %v", err)
	}
}

func TestChiSquareQuantileReference(t *testing.T) {
	t.Parallel()
	// Reference values from standard χ² tables.
	tests := []struct {
		p, k, want float64
	}{
		{0.95, 2, 5.991464547},
		{0.995, 2, 10.59663473},
		{0.95, 1, 3.841458821},
		{0.99, 10, 23.20925116},
		{0.50, 4, 3.356694},
	}
	for _, tc := range tests {
		got, err := ChiSquareQuantile(tc.p, tc.k)
		if err != nil {
			t.Fatalf("ChiSquareQuantile(%v,%v): %v", tc.p, tc.k, err)
		}
		wantClose(t, "ChiSquareQuantile", got, tc.want, 1e-6)
	}
	if _, err := ChiSquareQuantile(1.5, 2); !errors.Is(err, ErrDomain) {
		t.Errorf("p>1: err = %v", err)
	}
	if _, err := ChiSquareQuantile(0.5, 0); !errors.Is(err, ErrDomain) {
		t.Errorf("k=0: err = %v", err)
	}
	if v, err := ChiSquareQuantile(0, 2); err != nil || v != 0 {
		t.Errorf("p=0: %v, %v", v, err)
	}
}

func TestChiSquareCDFQuantileRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + float64(r.Intn(30))
		p := 0.01 + 0.98*r.Float64()
		x, err := ChiSquareQuantile(p, k)
		if err != nil {
			return false
		}
		c, err := ChiSquareCDF(x, k)
		if err != nil {
			return false
		}
		return math.Abs(c-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFQuantileReference(t *testing.T) {
	t.Parallel()
	// Standard F-table values.
	tests := []struct {
		p, d1, d2, want float64
	}{
		{0.95, 2, 10, 4.102821},
		{0.95, 5, 5, 5.050329},
		{0.99, 3, 12, 5.952545},
		{0.95, 1, 1, 161.4476},
		{0.90, 10, 20, 1.936738},
	}
	for _, tc := range tests {
		got, err := FQuantile(tc.p, tc.d1, tc.d2)
		if err != nil {
			t.Fatalf("FQuantile: %v", err)
		}
		wantClose(t, "FQuantile", got, tc.want, 1e-5)
	}
	if _, err := FQuantile(0.95, 0, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("d1=0: err = %v", err)
	}
}

func TestFCDFQuantileRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := 1 + float64(r.Intn(40))
		d2 := 1 + float64(r.Intn(40))
		p := 0.05 + 0.9*r.Float64()
		x, err := FQuantile(p, d1, d2)
		if err != nil {
			return false
		}
		c, err := FCDF(x, d1, d2)
		if err != nil {
			return false
		}
		return math.Abs(c-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantile(t *testing.T) {
	t.Parallel()
	tests := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.995, 2.575829304},
		{0.841344746, 1.0},
		{0.05, -1.644853627},
		{1e-6, -4.753424309},
	}
	for _, tc := range tests {
		got, err := NormalQuantile(tc.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", tc.p, err)
		}
		if math.Abs(got-tc.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %.10f, want %.10f", tc.p, got, tc.want)
		}
	}
	if _, err := NormalQuantile(0); !errors.Is(err, ErrDomain) {
		t.Errorf("p=0: err = %v", err)
	}
	if _, err := NormalQuantile(1); !errors.Is(err, ErrDomain) {
		t.Errorf("p=1: err = %v", err)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	t.Parallel()
	for p := 0.001; p < 1; p += 0.013 {
		x, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", p, err)
		}
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("round trip p=%v: got %v", p, got)
		}
	}
}

// TestPaperEquation1 reproduces the paper's FIR bounds: with 3287
// fault injections and zero failures, FIR ≤ ~0.1% at 95% confidence and
// ≤ ~0.2% at 99.5% confidence.
func TestPaperEquation1(t *testing.T) {
	t.Parallel()
	c95, err := BinomialLowerBound(3287, 3287, 0.95)
	if err != nil {
		t.Fatalf("BinomialLowerBound: %v", err)
	}
	fir95 := 1 - c95
	if fir95 > 0.001 || fir95 < 0.0008 {
		t.Errorf("FIR at 95%% = %v, want ~0.00091 (below 0.1%%)", fir95)
	}
	c995, err := BinomialLowerBound(3287, 3287, 0.995)
	if err != nil {
		t.Fatalf("BinomialLowerBound: %v", err)
	}
	fir995 := 1 - c995
	if fir995 > 0.002 || fir995 < 0.0014 {
		t.Errorf("FIR at 99.5%% = %v, want ~0.0016 (below 0.2%%)", fir995)
	}
}

// TestPaperEquation2 reproduces the paper's AS failure-rate bounds: 24-day
// test on 2 instances (48 instance-days) with zero failures gives
// λ ≤ 1/16 per day at 95% and λ ≤ 1/9 per day at 99.5%.
func TestPaperEquation2(t *testing.T) {
	t.Parallel()
	const exposureDays = 48
	l95, err := PoissonRateUpperBound(exposureDays, 0, 0.95)
	if err != nil {
		t.Fatalf("PoissonRateUpperBound: %v", err)
	}
	if math.Abs(1/l95-16) > 0.1 {
		t.Errorf("95%% bound = 1/%.2f days, want ~1/16", 1/l95)
	}
	l995, err := PoissonRateUpperBound(exposureDays, 0, 0.995)
	if err != nil {
		t.Fatalf("PoissonRateUpperBound: %v", err)
	}
	if math.Abs(1/l995-9) > 0.1 {
		t.Errorf("99.5%% bound = 1/%.2f days, want ~1/9", 1/l995)
	}
}

func TestBinomialBoundsConsistency(t *testing.T) {
	t.Parallel()
	// F-form with s<n approaches the zero-failure bound as s→n, and the
	// bound tightens with more trials.
	b1, err := BinomialLowerBound(100, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BinomialLowerBound(1000, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b1 {
		t.Errorf("more trials should tighten bound: %v vs %v", b1, b2)
	}
	// With failures the bound drops.
	b3, err := BinomialLowerBound(1000, 990, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if b3 >= b2 {
		t.Errorf("failures should lower bound: %v vs %v", b3, b2)
	}
	// s=0 gives 0.
	if b, _ := BinomialLowerBound(10, 0, 0.95); b != 0 {
		t.Errorf("s=0 bound = %v, want 0", b)
	}
	// Monotone in confidence.
	lo90, _ := BinomialLowerBound(500, 495, 0.90)
	lo99, _ := BinomialLowerBound(500, 495, 0.99)
	if lo99 >= lo90 {
		t.Errorf("higher confidence should give lower bound: %v vs %v", lo99, lo90)
	}
	// Domain.
	if _, err := BinomialLowerBound(0, 0, 0.9); !errors.Is(err, ErrDomain) {
		t.Errorf("n=0: err = %v", err)
	}
	if _, err := BinomialLowerBound(5, 6, 0.9); !errors.Is(err, ErrDomain) {
		t.Errorf("s>n: err = %v", err)
	}
	if _, err := BinomialLowerBound(5, 5, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("conf=1: err = %v", err)
	}
}

func TestBinomialUpperBound(t *testing.T) {
	t.Parallel()
	// Upper bound on failure fraction with 0 failures in n trials equals
	// 1 − α^{1/n}.
	up, err := BinomialUpperBound(3287, 0, 0.95)
	if err != nil {
		t.Fatalf("BinomialUpperBound: %v", err)
	}
	want := 1 - math.Pow(0.05, 1.0/3287)
	wantClose(t, "BinomialUpperBound", up, want, 1e-12)
	if _, err := BinomialUpperBound(-1, 0, 0.9); !errors.Is(err, ErrDomain) {
		t.Errorf("n<0: err = %v", err)
	}
}

func TestPoissonRateUpperBoundWithFailures(t *testing.T) {
	t.Parallel()
	// n=1 failure in T=100 h at 90%: χ²_{0.9;4}/200.
	q, err := ChiSquareQuantile(0.90, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PoissonRateUpperBound(100, 1, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "PoissonRateUpperBound", got, q/200, 1e-12)
	if _, err := PoissonRateUpperBound(0, 0, 0.9); !errors.Is(err, ErrDomain) {
		t.Errorf("T=0: err = %v", err)
	}
	if _, err := PoissonRateUpperBound(1, -1, 0.9); !errors.Is(err, ErrDomain) {
		t.Errorf("n<0: err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	wantClose(t, "Mean", s.Mean, 5, 1e-12)
	wantClose(t, "StdDev", s.StdDev, math.Sqrt(32.0/7), 1e-12)
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	wantClose(t, "Median", s.Median, 4.5, 1e-12)
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Errorf("empty: %+v", zero)
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile(xs, 10); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("P10 = %v, want 1.4", got)
	}
	// Clamping and degenerate cases.
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("P(-5) = %v", got)
	}
	if got := Percentile([]float64{7}, 33); got != 7 {
		t.Errorf("single sample = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input untouched.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 {
		t.Error("Percentile sorted caller's slice")
	}
}

func TestPercentileCI(t *testing.T) {
	t.Parallel()
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i) // uniform 0..1000
	}
	ci, err := PercentileCI(xs, 0.80)
	if err != nil {
		t.Fatalf("PercentileCI: %v", err)
	}
	wantClose(t, "CI.Low", ci.Low, 100, 1e-9)
	wantClose(t, "CI.High", ci.High, 900, 1e-9)
	if _, err := PercentileCI(xs, 1.5); !errors.Is(err, ErrDomain) {
		t.Errorf("bad confidence: err = %v", err)
	}
	if _, err := PercentileCI(nil, 0.8); !errors.Is(err, ErrDomain) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestFractionBelow(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if !math.IsNaN(FractionBelow(nil, 1)) {
		t.Error("empty should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	bins := Histogram(xs, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Bins are half-open [low, high): 0.5 falls into the second bin.
	if bins[0].Count != 3 || bins[1].Count != 3 {
		t.Errorf("counts = %d,%d, want 3,3", bins[0].Count, bins[1].Count)
	}
	// Degenerate all-equal sample.
	one := Histogram([]float64{5, 5, 5}, 4)
	if len(one) != 1 || one[0].Count != 3 {
		t.Errorf("degenerate histogram = %+v", one)
	}
	if Histogram(nil, 3) != nil {
		t.Error("empty histogram should be nil")
	}
	if Histogram(xs, 0) != nil {
		t.Error("zero bins should be nil")
	}
}

func TestSpearmanRank(t *testing.T) {
	t.Parallel()
	// Perfect monotone relationships.
	xs := []float64{1, 2, 3, 4, 5}
	if got := SpearmanRank(xs, []float64{10, 20, 30, 40, 50}); math.Abs(got-1) > 1e-12 {
		t.Errorf("increasing: rho = %v, want 1", got)
	}
	if got := SpearmanRank(xs, []float64{5, 4, 3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Errorf("decreasing: rho = %v, want -1", got)
	}
	// Monotone nonlinear still gives 1 (rank-based).
	if got := SpearmanRank(xs, []float64{1, 8, 27, 64, 125}); math.Abs(got-1) > 1e-12 {
		t.Errorf("cubic: rho = %v, want 1", got)
	}
	// Independence ≈ 0 for a large random sample.
	r := rand.New(rand.NewSource(5))
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i], b[i] = r.Float64(), r.Float64()
	}
	if got := SpearmanRank(a, b); math.Abs(got) > 0.05 {
		t.Errorf("independent: rho = %v, want ~0", got)
	}
	// Ties and degenerate inputs.
	if got := SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant xs: rho = %v, want 0", got)
	}
	if !math.IsNaN(SpearmanRank([]float64{1}, []float64{2})) {
		t.Error("n=1 should be NaN")
	}
	if !math.IsNaN(SpearmanRank(xs, []float64{1})) {
		t.Error("length mismatch should be NaN")
	}
	// Tie handling: average ranks keep symmetry.
	got := SpearmanRank([]float64{1, 2, 2, 3}, []float64{1, 2, 2, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("tied identical: rho = %v, want 1", got)
	}
}

func TestDistributionDomainEdges(t *testing.T) {
	t.Parallel()
	// CDF edges and domain errors not covered by the quantile tests.
	if v, err := ChiSquareCDF(-1, 2); err != nil || v != 0 {
		t.Errorf("ChiSquareCDF(-1) = %v, %v", v, err)
	}
	if _, err := ChiSquareCDF(1, 0); !errors.Is(err, ErrDomain) {
		t.Errorf("ChiSquareCDF dof=0: %v", err)
	}
	if v, err := FCDF(-2, 1, 1); err != nil || v != 0 {
		t.Errorf("FCDF(-2) = %v, %v", v, err)
	}
	if _, err := FCDF(1, 0, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("FCDF d1=0: %v", err)
	}
	if _, err := FQuantile(0.5, 1, -1); !errors.Is(err, ErrDomain) {
		t.Errorf("FQuantile d2<0: %v", err)
	}
	if v, err := FQuantile(0, 2, 2); err != nil || v != 0 {
		t.Errorf("FQuantile(0) = %v, %v", v, err)
	}
	if _, err := FQuantile(-0.1, 2, 2); !errors.Is(err, ErrDomain) {
		t.Errorf("FQuantile p<0: %v", err)
	}
	// GammaP/Q domain and x=0 paths.
	if _, err := GammaP(0, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("GammaP a=0: %v", err)
	}
	if _, err := GammaQ(-1, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("GammaQ a<0: %v", err)
	}
	if v, _ := GammaP(2, 0); v != 0 {
		t.Errorf("GammaP(.,0) = %v", v)
	}
	if v, _ := GammaQ(2, 0); v != 1 {
		t.Errorf("GammaQ(.,0) = %v", v)
	}
	// Both evaluation regimes of GammaQ (series and continued fraction).
	qSeries, _ := GammaQ(5, 2) // x < a+1 → via series
	qCF, _ := GammaQ(2, 10)    // x ≥ a+1 → continued fraction
	pSeries, _ := GammaP(5, 2)
	pCF, _ := GammaP(2, 10)
	if math.Abs(qSeries+pSeries-1) > 1e-12 || math.Abs(qCF+pCF-1) > 1e-12 {
		t.Error("GammaP/GammaQ complements broken across regimes")
	}
	// BetaInc domain.
	if _, err := BetaInc(1, 1, -0.1); !errors.Is(err, ErrDomain) {
		t.Errorf("BetaInc x<0: %v", err)
	}
	if _, err := BetaInc(1, -1, 0.5); !errors.Is(err, ErrDomain) {
		t.Errorf("BetaInc b<0: %v", err)
	}
}

func TestBinomialUpperBoundWithSuccesses(t *testing.T) {
	t.Parallel()
	// Upper bound on failure probability with some observed failures: the
	// F-distribution branch of the underlying lower bound.
	up, err := BinomialUpperBound(1000, 5, 0.95)
	if err != nil {
		t.Fatalf("BinomialUpperBound: %v", err)
	}
	if up <= 5.0/1000 || up > 0.02 {
		t.Errorf("upper bound = %v, want slightly above the 0.005 point estimate", up)
	}
	if _, err := BinomialUpperBound(10, 5, 1.5); !errors.Is(err, ErrDomain) {
		t.Errorf("bad confidence: %v", err)
	}
	if _, err := PoissonRateUpperBound(10, 0, -1); !errors.Is(err, ErrDomain) {
		t.Errorf("bad confidence: %v", err)
	}
}
