package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewMatrixFrom(t *testing.T) {
	t.Parallel()
	m, err := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFrom: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestNewMatrixFromRagged(t *testing.T) {
	t.Parallel()
	_, err := NewMatrixFrom([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestNewMatrixFromEmpty(t *testing.T) {
	t.Parallel()
	m, err := NewMatrixFrom(nil)
	if err != nil {
		t.Fatalf("NewMatrixFrom(nil): %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("shape = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestIdentity(t *testing.T) {
	t.Parallel()
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I(3)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short vector: err = %v, want ErrShape", err)
	}
}

func TestVecMul(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	y, err := m.VecMul([]float64{1, 10})
	if err != nil {
		t.Fatalf("VecMul: %v", err)
	}
	if y[0] != 31 || y[1] != 42 {
		t.Errorf("VecMul = %v, want [31 42]", y)
	}
}

func TestMul(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{2, 1}, {4, 3}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d,%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch: err = %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("T[2,1] = %v, want 6", tr.At(2, 1))
	}
}

func TestCloneIndependent(t *testing.T) {
	t.Parallel()
	m := NewMatrix(2, 2)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestNorms(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, -2}, {-3, 0.5}})
	if got := m.MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v, want 3", got)
	}
	if got := m.NormInf(); got != 3.5 {
		t.Errorf("NormInf = %v, want 3.5", got)
	}
}

func TestLUSolveKnown(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor(singular) err = %v, want ErrSingular", err)
	}
	z, _ := NewMatrixFrom([][]float64{{0, 0}, {0, 1}})
	if _, err := Factor(z); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor(zero row) err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	t.Parallel()
	if _, err := Factor(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("Factor(2x3) err = %v, want ErrShape", err)
	}
}

func TestLUDet(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{{3, 8}, {4, 6}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if !almostEqual(f.Det(), -14, 1e-12) {
		t.Errorf("Det = %v, want -14", f.Det())
	}
}

func TestInverse(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	prod, _ := a.Mul(inv)
	id := Identity(2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(prod.At(i, j), id.At(i, j), 1e-12) {
				t.Errorf("A·A⁻¹[%d,%d] = %v, want %v", i, j, prod.At(i, j), id.At(i, j))
			}
		}
	}
}

// TestLUSolveProperty: for random well-conditioned matrices, solving then
// multiplying recovers the right-hand side.
func TestLUSolveProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			// Diagonal dominance guarantees nonsingularity.
			a.Add(i, i, float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		got, err := a.MulVec(x)
		if err != nil {
			return false
		}
		return MaxDiff(got, b) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestLUBadlyScaled exercises the scaled-pivoting path with rates spanning
// many orders of magnitude, as CTMC generators do.
func TestLUBadlyScaled(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{
		{1e-7, 1, 0},
		{1, 1e-7, 1},
		{0, 1, 60},
	})
	b := []float64{1, 2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	got, _ := a.MulVec(x)
	if MaxDiff(got, b) > 1e-9 {
		t.Errorf("residual = %v too large", MaxDiff(got, b))
	}
}

func TestVectorOps(t *testing.T) {
	t.Parallel()
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	v := Normalize([]float64{2, 2})
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Errorf("Normalize = %v, want [0.5 0.5]", v)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize(zero) = %v, want unchanged", z)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("AXPY = %v, want [3 5]", y)
	}
	if got := NormInfVec([]float64{-4, 2}); got != 4 {
		t.Errorf("NormInfVec = %v, want 4", got)
	}
	if got := Norm1Vec([]float64{-4, 2}); got != 6 {
		t.Errorf("Norm1Vec = %v, want 6", got)
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite(NaN) = true, want false")
	}
	if AllFinite([]float64{1, math.Inf(1)}) {
		t.Error("AllFinite(Inf) = true, want false")
	}
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("AllFinite(finite) = false, want true")
	}
}

func TestMaxDiff(t *testing.T) {
	t.Parallel()
	if got := MaxDiff([]float64{1, 2}, []float64{1.5, 2}); got != 0.5 {
		t.Errorf("MaxDiff = %v, want 0.5", got)
	}
}

func TestScaleMatrix(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, 2}})
	m.Scale(3)
	if m.At(0, 1) != 6 {
		t.Errorf("Scale: At(0,1) = %v, want 6", m.At(0, 1))
	}
}

func TestStringRendering(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	s := m.String()
	if s == "" || len(s) < 8 {
		t.Errorf("String() = %q", s)
	}
}

func TestNewMatrixNegativeDims(t *testing.T) {
	t.Parallel()
	m := NewMatrix(-3, 5)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("negative dims should give 0x0, got %dx%d", m.Rows(), m.Cols())
	}
}

func TestVecMulShapeError(t *testing.T) {
	t.Parallel()
	m, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if _, err := m.VecMul([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("VecMul short: err = %v", err)
	}
	// Zero elements skip the inner loop.
	y, err := m.VecMul([]float64{0, 1})
	if err != nil || y[0] != 3 || y[1] != 4 {
		t.Errorf("VecMul sparse-x = %v, %v", y, err)
	}
}

func TestAXPYLengthMismatch(t *testing.T) {
	t.Parallel()
	y := []float64{1}
	AXPY(2, []float64{1, 2, 3}, y) // clamps to common prefix
	if y[0] != 3 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestSolveLinearSingularPropagates(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{{1, 1}, {1, 1}})
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLUSolveShapeError(t *testing.T) {
	t.Parallel()
	a, _ := NewMatrixFrom([][]float64{{2, 0}, {0, 2}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if _, err := f.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short rhs: err = %v", err)
	}
}
