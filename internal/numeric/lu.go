package numeric

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored compactly in lu (unit lower triangle implicit).
type LU struct {
	lu    *Matrix
	pivot []int
	scale []float64
	sign  int // +1/-1, parity of the permutation; 0 if singular
}

// Factor computes the LU factorization of a (which is not modified).
// A numerically singular matrix yields ErrSingular.
func Factor(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := f.FactorFrom(a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorFrom computes the LU factorization of a into f, reusing f's
// existing storage when the capacity suffices. a is not modified. This is
// the allocation-free path for repeated dense solves of same-sized
// systems (sweeps, Monte-Carlo sampling): a zero LU works, and each call
// overwrites the previous factorization.
func (f *LU) FactorFrom(a *Matrix) error {
	if a.Rows() != a.Cols() {
		return fmt.Errorf("Factor: matrix is %dx%d, want square: %w", a.Rows(), a.Cols(), ErrShape)
	}
	n := a.Rows()
	if f.lu == nil {
		f.lu = NewMatrix(n, n)
	} else {
		f.lu.Reshape(n, n)
	}
	copy(f.lu.data, a.data)
	if cap(f.pivot) < n {
		f.pivot = make([]int, n)
	}
	f.pivot = f.pivot[:n]
	f.sign = 1
	if cap(f.scale) < n {
		f.scale = make([]float64, n)
	}
	f.scale = f.scale[:n]
	lu := f.lu
	for i := range f.pivot {
		f.pivot[i] = i
	}
	// Scaled partial pivoting keeps the factorization stable for the badly
	// scaled generators availability models produce (rates span 1e-7..1e2).
	scale := f.scale
	for i := 0; i < n; i++ {
		var mx float64
		for _, v := range lu.Row(i) {
			if av := math.Abs(v); av > mx {
				mx = av
			}
		}
		if mx == 0 {
			return fmt.Errorf("row %d is zero: %w", i, ErrSingular)
		}
		scale[i] = 1 / mx
	}
	for k := 0; k < n; k++ {
		// Select pivot row.
		p, best := -1, 0.0
		for i := k; i < n; i++ {
			v := math.Abs(lu.At(i, k)) * scale[i]
			if v > best {
				best, p = v, i
			}
		}
		if p < 0 || lu.At(p, k) == 0 {
			return fmt.Errorf("pivot %d: %w", k, ErrSingular)
		}
		if p != k {
			rp, rk := lu.Row(p), lu.Row(k)
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
			scale[p], scale[k] = scale[k], scale[p]
			f.pivot[p], f.pivot[k] = f.pivot[k], f.pivot[p]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b for x. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.Rows())
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into the caller-provided x (the allocation-free
// companion of Solve). x and b must both have length n; they may not alias.
func (f *LU) SolveInto(x, b []float64) error {
	n := f.lu.Rows()
	if len(b) != n {
		return fmt.Errorf("Solve: rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	if len(x) != n {
		return fmt.Errorf("Solve: solution length %d, want %d: %w", len(x), n, ErrShape)
	}
	// Apply permutation.
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear is a convenience wrapper: factor a and solve a·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse computes A⁻¹ column by column. Prefer Solve where possible; this
// exists for the fundamental-matrix computations in mean-time-to-absorption
// analysis where the full inverse is genuinely needed.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
