// Package numeric provides the dense linear-algebra kernel used by the
// CTMC solvers: matrices, vectors, LU factorization with partial pivoting,
// and the associated solve/refine routines.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS: availability models are dense but tiny (tens to a few
// thousand states), and the solvers above it (package ctmc) need exact
// control over pivoting and singularity reporting.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is reported when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("numeric: matrix is singular")

// ErrShape is reported when operand dimensions are incompatible.
var ErrShape = errors.New("numeric: incompatible shapes")

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have
// equal length. The data is copied.
func NewMatrixFrom(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d columns, want %d: %w", i, len(r), cols, ErrShape)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Reshape resizes m to rows×cols and zeroes every element, reusing the
// existing storage when its capacity suffices. It is the reuse path for
// workspaces that assemble a same-shaped system repeatedly.
func (m *Matrix) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = rows, cols
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Scale multiplies every element by s, in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// MulVec computes y = m·x. It returns an error if dimensions mismatch.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("MulVec: vector length %d, matrix cols %d: %w", len(x), m.cols, ErrShape)
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// VecMul computes y = xᵀ·m (row vector times matrix).
func (m *Matrix) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("VecMul: vector length %d, matrix rows %d: %w", len(x), m.rows, ErrShape)
	}
	y := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y, nil
}

// Mul computes the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("Mul: %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%12.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
