package numeric

import "math"

// Dot returns the inner product of a and b. Lengths must match; extra
// elements in the longer slice are ignored to keep the hot path branch-free
// — callers validate shapes at the boundary.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Scale multiplies v by s in place and returns v.
func Scale(v []float64, s float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Normalize scales v in place so its elements sum to 1 and returns v.
// A zero vector is returned unchanged.
func Normalize(v []float64) []float64 {
	s := Sum(v)
	if s == 0 {
		return v
	}
	return Scale(v, 1/s)
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		y[i] += a * x[i]
	}
}

// NormInfVec returns max|v_i|.
func NormInfVec(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm1Vec returns Σ|v_i|.
func Norm1Vec(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// MaxDiff returns max|a_i − b_i| over the common prefix.
func MaxDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var mx float64
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// AllFinite reports whether every element of v is finite (no NaN/Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
