package spec

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/uncertainty"
)

// multiRangeDoc declares several uncertain parameters — enough that Go's
// randomized map-iteration order would, before the ordering fix, almost
// surely permute the range list between runs.
const multiRangeDoc = `{
  "name": "pair",
  "parameters": {"La": 0.1, "Mu": 5, "Fir": 0.01, "Tr": 1, "Tb": 2, "Q": 3},
  "uncertain": {
    "La": {"low": 0.05, "high": 0.2},
    "Mu": {"low": 2, "high": 8},
    "Fir": {"low": 0.001, "high": 0.05},
    "Tr": {"low": 0.5, "high": 2},
    "Tb": {"low": 1, "high": 4},
    "Q": {"low": 1, "high": 5}
  },
  "states": [{"name": "Ok", "reward": 1}, {"name": "Down", "reward": 0}],
  "transitions": [
    {"from": "Ok", "to": "Down", "rate": "La*Fir*Q"},
    {"from": "Down", "to": "Ok", "rate": "Mu/(Tr*Tb)"}
  ]
}`

// TestRunUncertaintySameSeedDeterministic is the regression test for the
// map-iteration-order bug: uncertainty.RunCtx maps pre-drawn unit samples
// to parameters by range index, so uncertaintyRanges must emit a stable
// (sorted) order or same-seed runs disagree.
func TestRunUncertaintySameSeedDeterministic(t *testing.T) {
	run := func() []float64 {
		d, err := Parse(strings.NewReader(multiRangeDoc))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		res, err := d.RunUncertainty(uncertainty.Options{Samples: 50, Seed: 7})
		if err != nil {
			t.Fatalf("RunUncertainty: %v", err)
		}
		return res.Downtimes
	}
	ref := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d sample %d: downtime %.17g != %.17g — same-seed run not reproducible",
					trial, i, got[i], ref[i])
			}
		}
	}
}

func TestUncertaintyRangesSorted(t *testing.T) {
	ranges, err := uncertaintyRanges(map[string]UncertainRange{
		"zeta": {1, 2}, "alpha": {1, 2}, "mid": {1, 2},
	}, func(string) bool { return true })
	if err != nil {
		t.Fatalf("uncertaintyRanges: %v", err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, r := range ranges {
		if r.Name != want[i] {
			t.Fatalf("range %d = %q, want %q (ranges must be name-sorted)", i, r.Name, want[i])
		}
	}
}

func TestUncertaintyRangesRejectNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name      string
		low, high float64
	}{
		{"nan-low", nan, 1},
		{"nan-high", 0, nan},
		{"both-nan", nan, nan},
		{"inf-low", -inf, 1},
		{"inf-high", 0, inf},
		{"low-above-high", 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := uncertaintyRanges(map[string]UncertainRange{
				"p": {Low: tc.low, High: tc.high},
			}, func(string) bool { return true })
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("low=%g high=%g: err = %v, want ErrBadSpec", tc.low, tc.high, err)
			}
		})
	}
	if _, err := uncertaintyRanges(map[string]UncertainRange{
		"p": {Low: 1, High: 2},
	}, func(string) bool { return true }); err != nil {
		t.Fatalf("finite ordered range rejected: %v", err)
	}
}
