package spec

import (
	"context"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/hier"
)

// clusterDoc is a k-of-n replicated app-server cluster over two-state
// instances — solvable by both backends while small.
func clusterDoc(k, n int) string {
	return `{
	  "name": "as-cluster",
	  "parameters": {"La": 0.005, "Mu": 2.0},
	  "redundancy": {
	    "root": "svc",
	    "nodes": [
	      {"name": "as", "lambda": "La", "mu": "Mu"},
	      {"name": "svc", "gate": "kofn", "k": ` + itoa(k) + `, "of": ["as"], "replicate": ` + itoa(n) + `}
	    ]
	  }
	}`
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestRedundancyParseAndValidate(t *testing.T) {
	d, err := Parse(strings.NewReader(clusterDoc(3, 5)))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Redundancy == nil || d.Redundancy.Root != "svc" {
		t.Fatalf("redundancy block not parsed: %+v", d.Redundancy)
	}
	if got := d.Redundancy.LeafCount(); got != 5 {
		t.Fatalf("LeafCount = %d, want 5", got)
	}
}

func TestRedundancyBackendsAgree(t *testing.T) {
	// On independent two-state leaves the product CTMC's stationary
	// distribution factorizes, so both backends are exact and must agree
	// to solver tolerance.
	for _, cfg := range []struct{ k, n int }{{1, 2}, {2, 3}, {3, 5}, {5, 8}} {
		d, err := Parse(strings.NewReader(clusterDoc(cfg.k, cfg.n)))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		ctmcRes, err := d.SolveBackend(context.Background(), backend.KindCTMC, nil)
		if err != nil {
			t.Fatalf("%d-of-%d ctmc: %v", cfg.k, cfg.n, err)
		}
		bayesRes, err := d.SolveBackend(context.Background(), backend.KindBayes, nil)
		if err != nil {
			t.Fatalf("%d-of-%d bayes: %v", cfg.k, cfg.n, err)
		}
		if diff := math.Abs(ctmcRes.Availability - bayesRes.Availability); diff > 1e-9 {
			t.Fatalf("%d-of-%d: ctmc %.12f vs bayes %.12f (diff %g)",
				cfg.k, cfg.n, ctmcRes.Availability, bayesRes.Availability, diff)
		}
		if ctmcRes.Backend != backend.KindCTMC || bayesRes.Backend != backend.KindBayes {
			t.Fatalf("backend tags wrong: %v / %v", ctmcRes.Backend, bayesRes.Backend)
		}
	}
}

func TestRedundancyLargeClusterBayesOnly(t *testing.T) {
	// 100 instances: the CTMC product would need 2^100 states and must
	// refuse with the hier.ErrBadComponent cap; bayes solves it exactly.
	d, err := Parse(strings.NewReader(clusterDoc(90, 100)))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := d.SolveBackend(context.Background(), backend.KindCTMC, nil); !errors.Is(err, hier.ErrBadComponent) {
		t.Fatalf("ctmc err = %v, want ErrBadComponent (state-space cap)", err)
	}
	res, err := d.SolveBackend(context.Background(), backend.KindBayes, nil)
	if err != nil {
		t.Fatalf("bayes: %v", err)
	}
	// Closed form: availability p = Mu/(La+Mu), A = P(Bin(100,p) ≥ 90).
	p := 2.0 / (0.005 + 2.0)
	want := 0.0
	for j := 90; j <= 100; j++ {
		c := 1.0
		for i := 0; i < j; i++ {
			c = c * float64(100-i) / float64(i+1)
		}
		want += c * math.Pow(p, float64(j)) * math.Pow(1-p, float64(100-j))
	}
	if math.Abs(res.Availability-want) > 1e-9 {
		t.Fatalf("bayes availability %.12f, want %.12f", res.Availability, want)
	}
}

func TestRedundancyLayeredSharedChild(t *testing.T) {
	// Two stacks sharing one power feed: the shared leaf must stay
	// correlated (one BN node), which both backends agree on exactly.
	doc := `{
	  "name": "shared-feed",
	  "parameters": {"Lp": 0.001, "Mp": 1.0, "Ls": 0.01, "Ms": 2.0},
	  "redundancy": {
	    "root": "svc",
	    "nodes": [
	      {"name": "power", "lambda": "Lp", "mu": "Mp"},
	      {"name": "srvA", "lambda": "Ls", "mu": "Ms"},
	      {"name": "srvB", "lambda": "Ls", "mu": "Ms"},
	      {"name": "stackA", "gate": "and", "of": ["power", "srvA"]},
	      {"name": "stackB", "gate": "and", "of": ["power", "srvB"]},
	      {"name": "svc", "gate": "or", "of": ["stackA", "stackB"]}
	    ]
	  }
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ctmcRes, err := d.SolveBackend(context.Background(), backend.KindCTMC, nil)
	if err != nil {
		t.Fatalf("ctmc: %v", err)
	}
	bayesRes, err := d.SolveBackend(context.Background(), backend.KindBayes, nil)
	if err != nil {
		t.Fatalf("bayes: %v", err)
	}
	if diff := math.Abs(ctmcRes.Availability - bayesRes.Availability); diff > 1e-9 {
		t.Fatalf("ctmc %.12f vs bayes %.12f (diff %g)", ctmcRes.Availability, bayesRes.Availability, diff)
	}
	// Sanity: A = Ap·(1-(1-As)²) with shared power factored out.
	ap := 1.0 / (1 + 0.001/1.0)
	as := 2.0 / (0.01 + 2.0)
	want := ap * (1 - (1-as)*(1-as))
	if math.Abs(bayesRes.Availability-want) > 1e-9 {
		t.Fatalf("availability %.12f, want closed form %.12f", bayesRes.Availability, want)
	}
}

func TestRedundancyNoisyOrBayesOnly(t *testing.T) {
	doc := `{
	  "name": "noisy",
	  "parameters": {"W": 0.5},
	  "redundancy": {
	    "root": "svc",
	    "nodes": [
	      {"name": "a", "availability": "0.99"},
	      {"name": "b", "availability": "0.95"},
	      {"name": "svc", "gate": "noisyor", "of": ["a", "b"], "weights": ["1", "W"], "leak": "0.01"}
	    ]
	  }
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := d.SolveBackend(context.Background(), backend.KindCTMC, nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("ctmc err = %v, want ErrBadSpec (noisyor is bayes-only)", err)
	}
	res, err := d.SolveBackend(context.Background(), backend.KindBayes, nil)
	if err != nil {
		t.Fatalf("bayes: %v", err)
	}
	// (1-leak)·Σ_states P(state)·∏_{down}(1-w): a down transmits surely.
	want := (1 - 0.01) * (0.99*0.95 + 0.99*0.05*0.5)
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Fatalf("availability %.15f, want %.15f", res.Availability, want)
	}
}

func TestRedundancyOverrides(t *testing.T) {
	d, err := Parse(strings.NewReader(clusterDoc(2, 3)))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	base, err := d.SolveBackend(context.Background(), backend.KindBayes, nil)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	worse, err := d.SolveBackend(context.Background(), backend.KindBayes, map[string]float64{"La": 0.5})
	if err != nil {
		t.Fatalf("override: %v", err)
	}
	if !(worse.Availability < base.Availability) {
		t.Fatalf("raising La should lower availability: base %.9f, worse %.9f", base.Availability, worse.Availability)
	}
	if _, err := d.SolveBackend(context.Background(), backend.KindBayes, map[string]float64{"nope": 1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("undeclared override err = %v, want ErrBadSpec", err)
	}
}

func TestRedundancyValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"both-model-kinds", `{"name":"x","parameters":{"La":1},
			"states":[{"name":"Ok","reward":1}],
			"redundancy":{"root":"a","nodes":[{"name":"a","availability":"0.9"}]}}`},
		{"no-nodes", `{"name":"x","redundancy":{"root":"a","nodes":[]}}`},
		{"missing-root", `{"name":"x","redundancy":{"root":"zz","nodes":[{"name":"a","availability":"0.9"}]}}`},
		{"duplicate-node", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","availability":"0.9"},{"name":"a","availability":"0.9"}]}}`},
		{"unknown-child", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"g","gate":"and","of":["ghost"]}]}}`},
		{"cycle", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"g","gate":"and","of":["h"]},{"name":"h","gate":"or","of":["g"]}]}}`},
		{"leaf-both-forms", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","availability":"0.9","lambda":"1","mu":"2"}]}}`},
		{"leaf-missing-mu", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1"}]}}`},
		{"undefined-param", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","availability":"Missing"}]}}`},
		{"bad-gate-type", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"xor","of":["a"]}]}}`},
		{"kofn-k-too-big", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"kofn","k":3,"of":["a"],"replicate":2}]}}`},
		{"kofn-k-zero", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"kofn","of":["a"]}]}}`},
		{"and-with-k", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"and","k":1,"of":["a"]}]}}`},
		{"replicate-two-children", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"b","availability":"0.9"},
			{"name":"g","gate":"or","of":["a","b"],"replicate":3}]}}`},
		{"noisyor-weight-count", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"noisyor","of":["a"],"weights":["1","1"]}]}}`},
		{"noisyor-replicate", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"noisyor","of":["a"],"weights":["1"],"replicate":2}]}}`},
		{"weights-on-and", `{"name":"x","redundancy":{"root":"g","nodes":[
			{"name":"a","availability":"0.9"},{"name":"g","gate":"and","of":["a"],"weights":["1"]}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.doc)); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestRedundancyEvalErrors(t *testing.T) {
	// Validation passes (expressions are well-formed) but evaluation
	// yields out-of-domain values.
	for _, tc := range []struct {
		name string
		doc  string
	}{
		{"availability-above-one", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","availability":"1.5"}]}}`},
		{"zero-mu", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"0"}]}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(strings.NewReader(tc.doc))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if _, err := d.SolveBackend(context.Background(), backend.KindBayes, nil); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestMarkovDocumentThroughBackendInterface(t *testing.T) {
	doc := `{
	  "name": "pair",
	  "parameters": {"La": 0.1, "Mu": 5},
	  "states": [{"name": "Ok", "reward": 1}, {"name": "Down", "reward": 0}],
	  "transitions": [
	    {"from": "Ok", "to": "Down", "rate": "La"},
	    {"from": "Down", "to": "Ok", "rate": "Mu"}
	  ]
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := d.SolveBackend(context.Background(), backend.KindCTMC, nil)
	if err != nil {
		t.Fatalf("ctmc: %v", err)
	}
	want := 5.0 / 5.1
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Fatalf("availability %.12f, want %.12f", res.Availability, want)
	}
	if _, err := d.SolveBackend(context.Background(), backend.KindBayes, nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bayes on Markov doc err = %v, want ErrBadSpec", err)
	}
}
