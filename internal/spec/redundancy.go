package spec

import (
	"context"
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/bayes"
	"repro/internal/ctmc"
	"repro/internal/expr"
	"repro/internal/hier"
	"repro/internal/reward"
)

// Redundancy is a document's redundancy-structure block: a fault-tree
// style DAG of basic events (leaves) and gates describing how component
// availabilities compose into system availability. A document carries
// either a Markov model (states/transitions) or a redundancy structure,
// not both.
//
// The block is the multi-backend entry point: the bayes backend solves it
// by exact Bayesian-network inference at any replication count, while the
// ctmc backend cross-products the leaves into a flat chain (exact but
// capped at hier.MaxProductStates — about twenty 2-state leaves).
type Redundancy struct {
	// Root names the node whose up-probability is the system availability.
	Root string `json:"root"`
	// Nodes lists the structure's leaves and gates in any order.
	Nodes []RedundancyNode `json:"nodes"`
	// CommonCause, when set, layers a beta-factor common-cause failure
	// mode over the structure: a shared failure process with rate
	// lambda_cc = beta/(1−beta) · Σ leaf lambda (summed over leaf
	// instances after replication) and repair rate mu that takes the
	// system down regardless of component states. Requires rate-based
	// (lambda/mu) leaves when beta > 0; solved exactly and identically
	// by both backends (flat cross-product with an extra two-state
	// component vs. noisy-OR leak over the root).
	CommonCause *CommonCauseSpec `json:"common_cause,omitempty"`
}

// CommonCauseSpec is a redundancy block's beta-factor declaration. Both
// fields are expressions over the document parameters.
type CommonCauseSpec struct {
	// Beta is the common-cause fraction in [0,1); 0 disables the mode,
	// leaving the solved results bit-identical to a document without the
	// block. A correlated fault-injection campaign's measured fraction
	// (faultinject.Report.MeasuredCommonCauseFraction) plugs in directly.
	Beta string `json:"beta"`
	// Mu is the common-cause repair rate (per hour).
	Mu string `json:"mu"`
}

// RedundancyNode is one leaf or gate of a redundancy structure.
//
// A leaf (basic event) gives either a steady-state `availability`
// expression, or `lambda` and `mu` rate expressions (per hour) describing
// a two-state component — the latter is solvable by both backends, the
// former only by bayes.
//
// A gate gives `gate` ("and", "or", "kofn", "noisyor") over the children
// in `of`. kofn requires `k`. noisyor takes per-child transmission
// `weights` plus an optional `leak`, and is bayes-only (it is
// probabilistic, not a deterministic structure function). Setting
// `replicate: n` with a single child instantiates n independent copies
// of that child's subtree — the concise way to express an n-instance
// cluster.
type RedundancyNode struct {
	Name string `json:"name"`

	// Leaf fields (expressions over the document parameters).
	Availability string `json:"availability,omitempty"`
	Lambda       string `json:"lambda,omitempty"`
	Mu           string `json:"mu,omitempty"`

	// Gate fields.
	Gate      string   `json:"gate,omitempty"`
	K         int      `json:"k,omitempty"`
	Of        []string `json:"of,omitempty"`
	Replicate int      `json:"replicate,omitempty"`
	Leak      string   `json:"leak,omitempty"`
	Weights   []string `json:"weights,omitempty"`
}

// isLeaf reports whether the node is a basic event.
func (n *RedundancyNode) isLeaf() bool {
	return n.Gate == ""
}

// fanIn is the effective child count after replication.
func (n *RedundancyNode) fanIn() int {
	if n.Replicate > 0 {
		return n.Replicate
	}
	return len(n.Of)
}

// quorum is the gate's k-of-n threshold.
func (n *RedundancyNode) quorum() int {
	switch n.Gate {
	case "and":
		return n.fanIn()
	case "or":
		return 1
	default:
		return n.K
	}
}

// node returns the named node.
func (r *Redundancy) node(name string) (*RedundancyNode, bool) {
	for i := range r.Nodes {
		if r.Nodes[i].Name == name {
			return &r.Nodes[i], true
		}
	}
	return nil, false
}

// checkExpr parses an expression and verifies its variables are declared.
func (d *Document) checkExpr(what, src string, extraParams map[string]bool) error {
	e, err := expr.Parse(src)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	for _, v := range e.Vars() {
		if _, ok := d.Parameters[v]; !ok && !extraParams[v] {
			return fmt.Errorf("%s references undefined parameter %q: %w", what, v, ErrBadSpec)
		}
	}
	return nil
}

// validateRedundancy checks the structure block: unique named nodes, each
// a leaf xor a gate, parseable expressions over declared parameters,
// known gate types with sane arities, an existing root, and acyclicity.
func (d *Document) validateRedundancy(extraParams map[string]bool) error {
	r := d.Redundancy
	if len(d.States) > 0 || len(d.Transitions) > 0 {
		return fmt.Errorf("model %q declares both a redundancy structure and a Markov model: %w", d.Name, ErrBadSpec)
	}
	if len(r.Nodes) == 0 {
		return fmt.Errorf("redundancy structure has no nodes: %w", ErrBadSpec)
	}
	seen := make(map[string]bool, len(r.Nodes))
	for i := range r.Nodes {
		n := &r.Nodes[i]
		if n.Name == "" {
			return fmt.Errorf("redundancy node %d has no name: %w", i, ErrBadSpec)
		}
		if seen[n.Name] {
			return fmt.Errorf("duplicate redundancy node %q: %w", n.Name, ErrBadSpec)
		}
		seen[n.Name] = true
		if n.isLeaf() {
			if err := d.validateLeaf(n, extraParams); err != nil {
				return err
			}
			continue
		}
		if err := d.validateGate(n, extraParams); err != nil {
			return err
		}
	}
	for i := range r.Nodes {
		n := &r.Nodes[i]
		for _, c := range n.Of {
			if !seen[c] {
				return fmt.Errorf("gate %q references unknown node %q: %w", n.Name, c, ErrBadSpec)
			}
		}
	}
	if _, ok := r.node(r.Root); !ok {
		return fmt.Errorf("redundancy root %q not found: %w", r.Root, ErrBadSpec)
	}
	if cc := r.CommonCause; cc != nil {
		if cc.Beta == "" {
			return fmt.Errorf("common_cause block needs a beta expression: %w", ErrBadSpec)
		}
		if err := d.checkExpr("common_cause beta", cc.Beta, extraParams); err != nil {
			return err
		}
		if cc.Mu == "" {
			return fmt.Errorf("common_cause block needs a mu expression: %w", ErrBadSpec)
		}
		if err := d.checkExpr("common_cause mu", cc.Mu, extraParams); err != nil {
			return err
		}
	}
	return r.checkAcyclic()
}

// validateLeaf checks a basic event: availability xor lambda+mu, no gate
// fields.
func (d *Document) validateLeaf(n *RedundancyNode, extraParams map[string]bool) error {
	if len(n.Of) > 0 || n.K != 0 || n.Replicate != 0 || n.Leak != "" || len(n.Weights) > 0 {
		return fmt.Errorf("leaf %q carries gate fields: %w", n.Name, ErrBadSpec)
	}
	switch {
	case n.Availability != "":
		if n.Lambda != "" || n.Mu != "" {
			return fmt.Errorf("leaf %q gives both availability and rates: %w", n.Name, ErrBadSpec)
		}
		return d.checkExpr(fmt.Sprintf("leaf %q availability", n.Name), n.Availability, extraParams)
	case n.Lambda != "" && n.Mu != "":
		if err := d.checkExpr(fmt.Sprintf("leaf %q lambda", n.Name), n.Lambda, extraParams); err != nil {
			return err
		}
		return d.checkExpr(fmt.Sprintf("leaf %q mu", n.Name), n.Mu, extraParams)
	default:
		return fmt.Errorf("leaf %q needs an availability or a lambda/mu pair: %w", n.Name, ErrBadSpec)
	}
}

// validateGate checks a gate's type, arity, and expressions.
func (d *Document) validateGate(n *RedundancyNode, extraParams map[string]bool) error {
	if n.Availability != "" || n.Lambda != "" || n.Mu != "" {
		return fmt.Errorf("gate %q carries leaf fields: %w", n.Name, ErrBadSpec)
	}
	if len(n.Of) == 0 {
		return fmt.Errorf("gate %q has no children: %w", n.Name, ErrBadSpec)
	}
	if n.Replicate != 0 {
		if n.Replicate < 1 {
			return fmt.Errorf("gate %q: replicate %d < 1: %w", n.Name, n.Replicate, ErrBadSpec)
		}
		if len(n.Of) != 1 {
			return fmt.Errorf("gate %q: replicate requires exactly one child: %w", n.Name, ErrBadSpec)
		}
	}
	switch n.Gate {
	case "and", "or":
		if n.K != 0 {
			return fmt.Errorf("gate %q (%s): k is only valid for kofn: %w", n.Name, n.Gate, ErrBadSpec)
		}
	case "kofn":
		if n.K < 1 || n.K > n.fanIn() {
			return fmt.Errorf("gate %q requires %d of %d children: %w", n.Name, n.K, n.fanIn(), ErrBadSpec)
		}
	case "noisyor":
		if n.Replicate != 0 {
			return fmt.Errorf("gate %q: noisyor does not support replicate: %w", n.Name, ErrBadSpec)
		}
		if len(n.Weights) != len(n.Of) {
			return fmt.Errorf("gate %q has %d children but %d weights: %w", n.Name, len(n.Of), len(n.Weights), ErrBadSpec)
		}
		for i, w := range n.Weights {
			if err := d.checkExpr(fmt.Sprintf("gate %q weight %d", n.Name, i), w, extraParams); err != nil {
				return err
			}
		}
		if n.Leak != "" {
			if err := d.checkExpr(fmt.Sprintf("gate %q leak", n.Name), n.Leak, extraParams); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("gate %q has unknown type %q (want and, or, kofn, noisyor): %w", n.Name, n.Gate, ErrBadSpec)
	}
	if n.Gate != "noisyor" && (n.Leak != "" || len(n.Weights) > 0) {
		return fmt.Errorf("gate %q (%s): leak/weights are only valid for noisyor: %w", n.Name, n.Gate, ErrBadSpec)
	}
	return nil
}

// checkAcyclic rejects gate cycles via three-color DFS.
func (r *Redundancy) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(r.Nodes))
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("redundancy cycle through node %q: %w", name, ErrBadSpec)
		case black:
			return nil
		}
		color[name] = gray
		n, _ := r.node(name)
		for _, c := range n.Of {
			if err := visit(c); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for i := range r.Nodes {
		if err := visit(r.Nodes[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// env resolves the document parameters with overrides applied on top,
// rejecting overrides of undeclared parameters.
func (d *Document) env(overrides map[string]float64) (expr.MapEnv, error) {
	env := make(expr.MapEnv, len(d.Parameters)+len(overrides))
	for k, v := range d.Parameters {
		env[k] = v
	}
	for k, v := range overrides {
		if _, ok := d.Parameters[k]; !ok {
			return nil, fmt.Errorf("override %q is not a declared parameter: %w", k, ErrBadSpec)
		}
		env[k] = v
	}
	return env, nil
}

// evalIn evaluates a node expression in the resolved environment.
func evalIn(what, src string, env expr.Env) (float64, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	return v, nil
}

// leafAvailability evaluates a leaf's steady-state availability: the
// availability expression directly, or μ/(λ+μ) for a rate pair.
func leafAvailability(n *RedundancyNode, env expr.Env) (float64, error) {
	if n.Availability != "" {
		p, err := evalIn(fmt.Sprintf("leaf %q availability", n.Name), n.Availability, env)
		if err != nil {
			return 0, err
		}
		if !(p >= 0 && p <= 1) || math.IsNaN(p) {
			return 0, fmt.Errorf("leaf %q availability %g outside [0,1]: %w", n.Name, p, ErrBadSpec)
		}
		return p, nil
	}
	la, mu, err := leafRates(n, env)
	if err != nil {
		return 0, err
	}
	return mu / (la + mu), nil
}

// leafRates evaluates a leaf's two-state failure/recovery rates.
func leafRates(n *RedundancyNode, env expr.Env) (lambda, mu float64, err error) {
	if n.Lambda == "" {
		return 0, 0, fmt.Errorf("leaf %q has no lambda/mu rates (availability-only leaves need the bayes backend): %w",
			n.Name, ErrBadSpec)
	}
	lambda, err = evalIn(fmt.Sprintf("leaf %q lambda", n.Name), n.Lambda, env)
	if err != nil {
		return 0, 0, err
	}
	mu, err = evalIn(fmt.Sprintf("leaf %q mu", n.Name), n.Mu, env)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range []struct {
		what string
		v    float64
	}{{"lambda", lambda}, {"mu", mu}} {
		if !(r.v > 0) || math.IsInf(r.v, 0) {
			return 0, 0, fmt.Errorf("leaf %q %s = %g must be finite and positive: %w", n.Name, r.what, r.v, ErrBadSpec)
		}
	}
	return lambda, mu, nil
}

// totalLeafLambda sums the failure rates of every leaf component
// instance (after replication; shared children count once, matching the
// single component they compile to). This is the independent failure
// rate base the beta-factor mode scales from, so it requires rate-based
// leaves.
func (d *Document) totalLeafLambda(env expr.Env) (float64, error) {
	r := d.Redundancy
	seen := make(map[string]bool)
	total := 0.0
	var walk func(name, suffix string) error
	walk = func(name, suffix string) error {
		n, _ := r.node(name)
		key := name + suffix
		if n.isLeaf() {
			if seen[key] {
				return nil
			}
			seen[key] = true
			la, _, err := leafRates(n, env)
			if err != nil {
				return err
			}
			total += la
			return nil
		}
		if n.Replicate > 0 {
			for i := 1; i <= n.Replicate; i++ {
				if err := walk(n.Of[0], fmt.Sprintf("%s#%d", suffix, i)); err != nil {
					return err
				}
			}
			return nil
		}
		for _, c := range n.Of {
			if err := walk(c, suffix); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(r.Root, ""); err != nil {
		return 0, err
	}
	return total, nil
}

// commonCauseRates evaluates the common_cause block into concrete
// (lambda_cc, mu_cc) rates; (0, 0, nil) when beta evaluates to 0.
func (d *Document) commonCauseRates(env expr.Env) (lambdaCC, muCC float64, err error) {
	cc := d.Redundancy.CommonCause
	beta, err := evalIn("common_cause beta", cc.Beta, env)
	if err != nil {
		return 0, 0, err
	}
	if !(beta >= 0 && beta < 1) || math.IsNaN(beta) {
		return 0, 0, fmt.Errorf("common_cause beta %g outside [0,1): %w", beta, ErrBadSpec)
	}
	if beta == 0 {
		return 0, 0, nil
	}
	muCC, err = evalIn("common_cause mu", cc.Mu, env)
	if err != nil {
		return 0, 0, err
	}
	if !(muCC > 0) || math.IsInf(muCC, 0) {
		return 0, 0, fmt.Errorf("common_cause mu = %g must be finite and positive: %w", muCC, ErrBadSpec)
	}
	total, err := d.totalLeafLambda(env)
	if err != nil {
		return 0, 0, fmt.Errorf("common_cause: %w", err)
	}
	return beta / (1 - beta) * total, muCC, nil
}

// Model compiles the document for the requested backend, behind the
// common backend.AvailabilityModel interface:
//
//   - ctmc on a Markov document: the classic compile-and-solve path.
//   - ctmc on a redundancy document: flat cross-product of the two-state
//     leaves (hier.Product) with the structure function as the up
//     predicate — exact, but capped at hier.MaxProductStates.
//   - bayes on a redundancy document: exact Bayesian-network inference,
//     linear in replication count.
//   - bayes on a Markov document: rejected (a general CTMC has no
//     fault-tree decomposition).
func (d *Document) Model(kind backend.Kind, overrides map[string]float64) (backend.AvailabilityModel, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case backend.KindCTMC, "":
		if d.Redundancy == nil {
			s, err := d.Compile(overrides)
			if err != nil {
				return nil, err
			}
			return reward.AsModel(d.Name, s, ctmc.SolveOptions{}), nil
		}
		return d.productModel(overrides)
	case backend.KindBayes:
		if d.Redundancy == nil {
			return nil, fmt.Errorf("model %q: bayes backend requires a redundancy block (got a Markov model): %w",
				d.Name, ErrBadSpec)
		}
		return d.BayesModel(overrides)
	default:
		return nil, fmt.Errorf("model %q: unknown backend %q: %w", d.Name, kind, ErrBadSpec)
	}
}

// BayesModel compiles the redundancy structure into a Bayesian network.
// Replicated subtrees are instantiated as independent copies with
// "#i"-suffixed names; shared (non-replicated) children are shared BN
// nodes, preserving their correlation across gates.
func (d *Document) BayesModel(overrides map[string]float64) (*bayes.Network, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Redundancy == nil {
		return nil, fmt.Errorf("model %q has no redundancy block: %w", d.Name, ErrBadSpec)
	}
	env, err := d.env(overrides)
	if err != nil {
		return nil, err
	}
	b := bayes.NewBuilder(d.Name)
	memo := make(map[string]bayes.Node)
	var build func(name, suffix string) (bayes.Node, error)
	build = func(name, suffix string) (bayes.Node, error) {
		key := name + suffix
		if n, ok := memo[key]; ok {
			return n, nil
		}
		node, _ := d.Redundancy.node(name)
		var bn bayes.Node
		if node.isLeaf() {
			p, err := leafAvailability(node, env)
			if err != nil {
				return 0, err
			}
			bn = b.Basic(key, p)
		} else {
			var children []bayes.Node
			if node.Replicate > 0 {
				for i := 1; i <= node.Replicate; i++ {
					c, err := build(node.Of[0], fmt.Sprintf("%s#%d", suffix, i))
					if err != nil {
						return 0, err
					}
					children = append(children, c)
				}
			} else {
				for _, cn := range node.Of {
					c, err := build(cn, suffix)
					if err != nil {
						return 0, err
					}
					children = append(children, c)
				}
			}
			if node.Gate == "noisyor" {
				weights := make([]float64, len(node.Weights))
				for i, w := range node.Weights {
					v, err := evalIn(fmt.Sprintf("gate %q weight %d", name, i), w, env)
					if err != nil {
						return 0, err
					}
					weights[i] = v
				}
				leak := 0.0
				if node.Leak != "" {
					l, err := evalIn(fmt.Sprintf("gate %q leak", name), node.Leak, env)
					if err != nil {
						return 0, err
					}
					leak = l
				}
				bn = b.NoisyOr(key, leak, children, weights)
			} else {
				bn = b.KOfN(key, node.quorum(), children...)
			}
		}
		memo[key] = bn
		return bn, nil
	}
	root, err := build(d.Redundancy.Root, "")
	if err != nil {
		return nil, err
	}
	if d.Redundancy.CommonCause != nil {
		laCC, muCC, ccErr := d.commonCauseRates(env)
		if ccErr != nil {
			return nil, fmt.Errorf("model %q: %w", d.Name, ccErr)
		}
		if laCC > 0 {
			// Beta-factor as a noisy-OR leak: the shared mode is an
			// independent two-state process with availability A_cc, so
			// P(up) = A_cc · P(root) — exactly the factorization the
			// ctmc backend's extra common-cause component produces.
			aCC := muCC / (laCC + muCC)
			root = b.NoisyOr(d.Redundancy.Root+"+cc", 1-aCC, []bayes.Node{root}, []float64{1})
		}
	}
	net, err := b.Build(root)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", d.Name, err)
	}
	return net, nil
}

// productModel compiles the redundancy structure for the CTMC backend:
// every leaf instance becomes a two-state component, the flat
// cross-product is assembled by hier.Product, and the gate structure is
// evaluated as the up predicate. Exact, but the state space is 2^leaves —
// hier.MaxProductStates bounds it and large replications must use bayes.
func (d *Document) productModel(overrides map[string]float64) (backend.AvailabilityModel, error) {
	env, err := d.env(overrides)
	if err != nil {
		return nil, err
	}

	// Leaf instances in deterministic DFS order; shared children map to
	// one component, replicas to independent ones.
	leafIndex := make(map[string]int)
	var components []*reward.Structure
	var addLeaf func(n *RedundancyNode, key string) error
	addLeaf = func(n *RedundancyNode, key string) error {
		if _, ok := leafIndex[key]; ok {
			return nil
		}
		la, mu, err := leafRates(n, env)
		if err != nil {
			return err
		}
		b := ctmc.NewBuilder()
		up := b.State(key + ":Up")
		down := b.State(key + ":Down")
		b.Transition(up, down, la)
		b.Transition(down, up, mu)
		m, err := b.Build()
		if err != nil {
			return fmt.Errorf("leaf %q: %w", key, err)
		}
		s, err := reward.New(m, []float64{1, 0})
		if err != nil {
			return fmt.Errorf("leaf %q: %w", key, err)
		}
		leafIndex[key] = len(components)
		components = append(components, s)
		return nil
	}

	// eval builds, per node instance, a closure over the component-up
	// vector implementing the structure function.
	var compile func(name, suffix string) (func(up []bool) bool, error)
	compile = func(name, suffix string) (func(up []bool) bool, error) {
		node, _ := d.Redundancy.node(name)
		key := name + suffix
		if node.isLeaf() {
			if err := addLeaf(node, key); err != nil {
				return nil, err
			}
			i := leafIndex[key]
			return func(up []bool) bool { return up[i] }, nil
		}
		if node.Gate == "noisyor" {
			return nil, fmt.Errorf("gate %q: noisyor is probabilistic, not a structure function; use the bayes backend: %w",
				name, ErrBadSpec)
		}
		var children []func(up []bool) bool
		if node.Replicate > 0 {
			for i := 1; i <= node.Replicate; i++ {
				c, err := compile(node.Of[0], fmt.Sprintf("%s#%d", suffix, i))
				if err != nil {
					return nil, err
				}
				children = append(children, c)
			}
		} else {
			for _, cn := range node.Of {
				c, err := compile(cn, suffix)
				if err != nil {
					return nil, err
				}
				children = append(children, c)
			}
		}
		k := node.quorum()
		return func(up []bool) bool {
			got := 0
			for _, c := range children {
				if c(up) {
					got++
				}
			}
			return got >= k
		}, nil
	}

	pred, err := compile(d.Redundancy.Root, "")
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", d.Name, err)
	}
	var s *reward.Structure
	if d.Redundancy.CommonCause != nil {
		laCC, muCC, ccErr := d.commonCauseRates(env)
		if ccErr != nil {
			return nil, fmt.Errorf("model %q: %w", d.Name, ccErr)
		}
		if laCC > 0 {
			s, err = hier.ProductWithCommonCause(components, pred, laCC, muCC)
			if err != nil {
				return nil, fmt.Errorf("model %q: %w", d.Name, err)
			}
			return reward.AsModel(d.Name, s, ctmc.SolveOptions{}), nil
		}
	}
	s, err = hier.Product(components, pred)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", d.Name, err)
	}
	return reward.AsModel(d.Name, s, ctmc.SolveOptions{}), nil
}

// SolveBackend compiles and solves the document with the requested
// backend in one step — the CLI and HTTP entry point.
func (d *Document) SolveBackend(ctx context.Context, kind backend.Kind, overrides map[string]float64) (*backend.Result, error) {
	m, err := d.Model(kind, overrides)
	if err != nil {
		return nil, err
	}
	return m.Solve(ctx)
}

// LeafCount returns the number of leaf component instances after
// replication — the CTMC backend's 2^LeafCount state-space exponent.
func (r *Redundancy) LeafCount() int {
	seen := make(map[string]bool)
	var walk func(name, suffix string)
	walk = func(name, suffix string) {
		n, ok := r.node(name)
		if !ok {
			return
		}
		key := name + suffix
		if n.isLeaf() {
			seen[key] = true
			return
		}
		if n.Replicate > 0 {
			for i := 1; i <= n.Replicate; i++ {
				walk(n.Of[0], fmt.Sprintf("%s#%d", suffix, i))
			}
			return
		}
		for _, c := range n.Of {
			walk(c, suffix)
		}
	}
	walk(r.Root, "")
	return len(seen)
}
