package spec

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/testbed"
)

func TestParseDomains(t *testing.T) {
	doc := `{
	  "domains": [
	    {"name": "site"},
	    {"name": "rack-a", "parent": "site", "as": [0], "hadb": ["0/0", "1/0"]},
	    {"name": "rack-b", "parent": "site", "as": [1], "hadb": ["0/1", "1/1"]}
	  ]
	}`
	domains, err := ParseDomains(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseDomains: %v", err)
	}
	if len(domains) != 3 {
		t.Fatalf("got %d domains, want 3", len(domains))
	}
	want := testbed.Domain{
		Name: "rack-a", Parent: "site", AS: []int{0},
		HADB: []testbed.NodeRef{{Pair: 0, Slot: 0}, {Pair: 1, Slot: 0}},
	}
	got := domains[1]
	if got.Name != want.Name || got.Parent != want.Parent ||
		len(got.AS) != 1 || got.AS[0] != 0 ||
		len(got.HADB) != 2 || got.HADB[0] != want.HADB[0] || got.HADB[1] != want.HADB[1] {
		t.Errorf("rack-a = %+v, want %+v", got, want)
	}
	// The parsed tree passes structural validation for the paper's
	// two-instance, two-pair configuration.
	if err := testbed.ValidateDomains(domains, 2, 2); err != nil {
		t.Errorf("ValidateDomains: %v", err)
	}
}

func TestParseDomainsRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty-document", `{"domains": []}`},
		{"unknown-field", `{"domains": [{"name": "a", "rack": 3}]}`},
		{"not-a-ref", `{"domains": [{"name": "a", "hadb": ["01"]}]}`},
		{"bad-pair", `{"domains": [{"name": "a", "hadb": ["x/0"]}]}`},
		{"bad-slot", `{"domains": [{"name": "a", "hadb": ["0/y"]}]}`},
		{"not-json", `domains: []`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDomains(strings.NewReader(tc.doc)); err == nil {
				t.Fatal("accepted")
			}
		})
	}
	// Syntax errors in refs carry the sentinel for API callers.
	if _, err := ParseDomains(strings.NewReader(`{"domains": [{"name": "a", "hadb": ["oops"]}]}`)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec", err)
	}
}
