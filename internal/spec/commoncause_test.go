package spec

import (
	"context"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/backend"
)

// ccDoc is clusterDoc with a beta-factor common-cause block layered on
// top; Beta and MuCC are document parameters so overrides can sweep them.
func ccDoc(k, n int, beta string) string {
	return `{
	  "name": "as-cluster-cc",
	  "parameters": {"La": 0.005, "Mu": 2.0, "Beta": ` + beta + `, "MuCC": 4.0},
	  "redundancy": {
	    "root": "svc",
	    "nodes": [
	      {"name": "as", "lambda": "La", "mu": "Mu"},
	      {"name": "svc", "gate": "kofn", "k": ` + itoa(k) + `, "of": ["as"], "replicate": ` + itoa(n) + `}
	    ],
	    "common_cause": {"beta": "Beta", "mu": "MuCC"}
	  }
	}`
}

// TestCommonCauseDocBackendsAgree: for the flat product the beta-factor
// factorization A = A_cc · A_structure is exact in both backends (an
// extra independent two-state component vs. a noisy-OR leak), so they
// must agree to solver tolerance — and match the closed form.
func TestCommonCauseDocBackendsAgree(t *testing.T) {
	for _, beta := range []string{"0.05", "0.1", "0.3"} {
		d, err := Parse(strings.NewReader(ccDoc(2, 3, beta)))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		ctmcRes, err := d.SolveBackend(context.Background(), backend.KindCTMC, nil)
		if err != nil {
			t.Fatalf("beta=%s ctmc: %v", beta, err)
		}
		bayesRes, err := d.SolveBackend(context.Background(), backend.KindBayes, nil)
		if err != nil {
			t.Fatalf("beta=%s bayes: %v", beta, err)
		}
		if diff := math.Abs(ctmcRes.Availability - bayesRes.Availability); diff > 1e-9 {
			t.Errorf("beta=%s: ctmc %.12f vs bayes %.12f (diff %g)",
				beta, ctmcRes.Availability, bayesRes.Availability, diff)
		}
		// Closed form: lambda_cc = beta/(1-beta)·3·La, A_cc = MuCC/(la_cc+MuCC),
		// A_structure = P(Bin(3, Mu/(La+Mu)) ≥ 2).
		b := mustFloat(t, beta)
		laCC := b / (1 - b) * 3 * 0.005
		aCC := 4.0 / (laCC + 4.0)
		p := 2.0 / 2.005
		aStruct := 3*p*p*(1-p) + p*p*p
		want := aCC * aStruct
		if math.Abs(bayesRes.Availability-want) > 1e-9 {
			t.Errorf("beta=%s: availability %.12f, want closed form %.12f", beta, bayesRes.Availability, want)
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

// TestCommonCauseZeroBetaMatchesNoBlock pins back-compat: a block with
// beta = 0 must solve to exactly the availability of a document without
// the block, on both backends.
func TestCommonCauseZeroBetaMatchesNoBlock(t *testing.T) {
	plain, err := Parse(strings.NewReader(clusterDoc(2, 3)))
	if err != nil {
		t.Fatalf("Parse plain: %v", err)
	}
	blocked, err := Parse(strings.NewReader(ccDoc(2, 3, "0")))
	if err != nil {
		t.Fatalf("Parse cc: %v", err)
	}
	for _, kind := range []backend.Kind{backend.KindCTMC, backend.KindBayes} {
		a, err := plain.SolveBackend(context.Background(), kind, nil)
		if err != nil {
			t.Fatalf("%v plain: %v", kind, err)
		}
		b, err := blocked.SolveBackend(context.Background(), kind, nil)
		if err != nil {
			t.Fatalf("%v cc: %v", kind, err)
		}
		if a.Availability != b.Availability {
			t.Errorf("%v: beta=0 block changed availability: %.15f vs %.15f", kind, b.Availability, a.Availability)
		}
	}
}

// TestCommonCauseOverridesSweepBeta: raising beta via an override must
// monotonically lower availability.
func TestCommonCauseOverridesSweepBeta(t *testing.T) {
	d, err := Parse(strings.NewReader(ccDoc(2, 3, "0.05")))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prev := 2.0
	for _, beta := range []float64{0.01, 0.1, 0.3, 0.6} {
		res, err := d.SolveBackend(context.Background(), backend.KindBayes, map[string]float64{"Beta": beta})
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		if res.Availability >= prev {
			t.Errorf("beta=%v: availability %.12f did not drop below %.12f", beta, res.Availability, prev)
		}
		prev = res.Availability
	}
}

func TestCommonCauseValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"missing-beta", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"mu":"1"}}}`},
		{"missing-mu", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"0.1"}}}`},
		{"beta-undefined-param", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"Ghost","mu":"1"}}}`},
		{"mu-undefined-param", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"0.1","mu":"Ghost"}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.doc)); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
	// A malformed expression is rejected too (with the parser's own error).
	bad := `{"name":"x","redundancy":{"root":"a","nodes":[
		{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"0.1","mu":"1+"}}}`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("malformed mu expression accepted")
	}
}

func TestCommonCauseEvalErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"beta-at-one", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"1","mu":"1"}}}`},
		{"beta-negative", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"0-0.1","mu":"1"}}}`},
		{"zero-mu", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","lambda":"1","mu":"2"}],"common_cause":{"beta":"0.1","mu":"0"}}}`},
		// Beta > 0 needs an independent rate base: availability-only
		// leaves have no lambda to scale from.
		{"availability-leaf", `{"name":"x","redundancy":{"root":"a","nodes":[
			{"name":"a","availability":"0.99"}],"common_cause":{"beta":"0.1","mu":"1"}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(strings.NewReader(tc.doc))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			for _, kind := range []backend.Kind{backend.KindCTMC, backend.KindBayes} {
				if _, err := d.SolveBackend(context.Background(), kind, nil); !errors.Is(err, ErrBadSpec) {
					t.Errorf("%v: err = %v, want ErrBadSpec", kind, err)
				}
			}
		})
	}
}
