package spec

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/jsas"
	"repro/internal/reward"
)

// loadModel parses a shipped flat model document.
func loadModel(t *testing.T, name string) *Document {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "models", name))
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	d, err := Parse(f)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return d
}

func solveDoc(t *testing.T, d *Document) *reward.Result {
	t.Helper()
	s, err := d.Compile(nil)
	if err != nil {
		t.Fatalf("compile %s: %v", d.Name, err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("solve %s: %v", d.Name, err)
	}
	return res
}

// TestHADBPairDocumentMatchesBuilder: the shipped Figure 3 document and
// the programmatic builder agree exactly.
func TestHADBPairDocumentMatchesBuilder(t *testing.T) {
	t.Parallel()
	doc := solveDoc(t, loadModel(t, "hadb-pair.json"))
	prog, err := jsas.BuildHADBPair(jsas.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(doc.Availability-want.Availability) > 1e-14 {
		t.Errorf("availability: doc %.15f, builder %.15f", doc.Availability, want.Availability)
	}
	if math.Abs(doc.FailureFrequency-want.FailureFrequency) > 1e-18 {
		t.Errorf("failure frequency: doc %g, builder %g", doc.FailureFrequency, want.FailureFrequency)
	}
}

// TestAppServerDocumentMatchesBuilder: same for the Figure 4 document.
func TestAppServerDocumentMatchesBuilder(t *testing.T) {
	t.Parallel()
	doc := solveDoc(t, loadModel(t, "appserver-2.json"))
	prog, err := jsas.BuildAppServer(jsas.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(doc.Availability-want.Availability) > 1e-14 {
		t.Errorf("availability: doc %.15f, builder %.15f", doc.Availability, want.Availability)
	}
}

// TestShippedModelsRenderDOT: every shipped flat model renders to DOT.
func TestShippedModelsRenderDOT(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"hadb-pair.json", "appserver-2.json"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d := loadModel(t, name)
			s, err := d.Compile(nil)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var sink nullWriter
			if err := s.WriteDOT(&sink, d.Name); err != nil {
				t.Errorf("WriteDOT: %v", err)
			}
		})
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestThreeTierDocument: the shipped non-JSAS hierarchy loads, solves,
// and produces a sensible series-system availability.
func TestThreeTierDocument(t *testing.T) {
	t.Parallel()
	f, err := os.Open(filepath.Join("..", "..", "models", "three-tier.json"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	d, err := ParseHier(f)
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	ev, err := d.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if ev.Result.Availability < 0.999 || ev.Result.Availability >= 1 {
		t.Errorf("availability = %v, want high but < 1", ev.Result.Availability)
	}
	if len(ev.Children) != 3 {
		t.Errorf("children = %d, want 3 tiers", len(ev.Children))
	}
	// The series system is strictly worse than each tier alone.
	for _, tier := range ev.Children {
		if ev.Result.Availability > tier.Result.Availability {
			t.Errorf("service availability %v exceeds tier %s's %v",
				ev.Result.Availability, tier.Name, tier.Result.Availability)
		}
	}
}
