package spec

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ctmc"
)

const validDoc = `{
  "name": "pair",
  "description": "repairable pair",
  "parameters": {"La": 0.01, "Mu": 2.0},
  "states": [
    {"name": "Up", "reward": 1},
    {"name": "Down", "reward": 0}
  ],
  "transitions": [
    {"from": "Up", "to": "Down", "rate": "La"},
    {"from": "Down", "to": "Up", "rate": "Mu"}
  ]
}`

func TestParseAndCompile(t *testing.T) {
	t.Parallel()
	d, err := Parse(strings.NewReader(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Name != "pair" || len(d.States) != 2 {
		t.Fatalf("decoded doc wrong: %+v", d)
	}
	s, err := d.Compile(nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 2.0 / 2.01
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", res.Availability, want)
	}
}

func TestCompileWithOverrides(t *testing.T) {
	t.Parallel()
	d, err := Parse(strings.NewReader(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s, err := d.Compile(map[string]float64{"La": 0.5})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 2.0 / 2.5
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", res.Availability, want)
	}
	// Unknown override rejected.
	if _, err := d.Compile(map[string]float64{"Zz": 1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown override: err = %v", err)
	}
}

func TestParseRejectsBadDocs(t *testing.T) {
	t.Parallel()
	docs := map[string]string{
		"unknown field":      `{"name":"x","bogus":1,"states":[{"name":"A","reward":1}],"transitions":[]}`,
		"no name":            `{"states":[{"name":"A","reward":1}],"transitions":[]}`,
		"no states":          `{"name":"x","states":[],"transitions":[]}`,
		"dup state":          `{"name":"x","states":[{"name":"A","reward":1},{"name":"A","reward":0}],"transitions":[]}`,
		"unnamed state":      `{"name":"x","states":[{"name":"","reward":1}],"transitions":[]}`,
		"negative reward":    `{"name":"x","states":[{"name":"A","reward":-1}],"transitions":[]}`,
		"unknown from":       `{"name":"x","states":[{"name":"A","reward":1}],"transitions":[{"from":"B","to":"A","rate":"1"}]}`,
		"unknown to":         `{"name":"x","states":[{"name":"A","reward":1}],"transitions":[{"from":"A","to":"B","rate":"1"}]}`,
		"bad rate expr":      `{"name":"x","states":[{"name":"A","reward":1},{"name":"B","reward":0}],"transitions":[{"from":"A","to":"B","rate":"(("}]}`,
		"unbound rate param": `{"name":"x","states":[{"name":"A","reward":1},{"name":"B","reward":0}],"transitions":[{"from":"A","to":"B","rate":"La"}]}`,
		"not json":           `hello`,
	}
	for name, doc := range docs {
		name, doc := name, doc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := Parse(strings.NewReader(doc)); err == nil {
				t.Errorf("Parse accepted %s", name)
			}
		})
	}
}

func TestCompileEvalError(t *testing.T) {
	t.Parallel()
	doc := `{
	  "name": "x",
	  "parameters": {"T": 0},
	  "states": [{"name":"A","reward":1},{"name":"B","reward":0}],
	  "transitions": [
	    {"from":"A","to":"B","rate":"1/T"},
	    {"from":"B","to":"A","rate":"1"}
	  ]
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := d.Compile(nil); err == nil {
		t.Error("Compile should fail on division by zero")
	}
	// But a nonzero override fixes it.
	if _, err := d.Compile(map[string]float64{"T": 2}); err != nil {
		t.Errorf("Compile with fix: %v", err)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	t.Parallel()
	d, err := Parse(strings.NewReader(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Name != d.Name || len(d2.Transitions) != len(d.Transitions) {
		t.Error("round trip lost content")
	}
}

// TestRAScadStyleDollarParams: the $-prefixed parameter references from
// RAScad diagrams work in rate expressions.
func TestRAScadStyleDollarParams(t *testing.T) {
	t.Parallel()
	doc := `{
	  "name": "fig2",
	  "parameters": {"Lambda1": 0.001, "Mu1": 10, "N_pair": 2},
	  "states": [{"name":"Ok","reward":1},{"name":"HADB_Fail","reward":0}],
	  "transitions": [
	    {"from":"Ok","to":"HADB_Fail","rate":"$N_pair * $Lambda1"},
	    {"from":"HADB_Fail","to":"Ok","rate":"$Mu1"}
	  ]
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s, err := d.Compile(nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := s.Solve(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 10.0 / 10.002
	if math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", res.Availability, want)
	}
}
