// Package spec defines a declarative, JSON-serializable Markov reward
// model format and compiles it against the expression language (package
// expr) into solvable reward structures. It is the file format the
// avail-solve CLI consumes — the open equivalent of a RAScad diagram file.
//
// Example document:
//
//	{
//	  "name": "hadb-pair",
//	  "parameters": {"La": 0.000457, "FIR": 0.001, "Trestore": 1},
//	  "states": [
//	    {"name": "Ok", "reward": 1},
//	    {"name": "Down", "reward": 0}
//	  ],
//	  "transitions": [
//	    {"from": "Ok", "to": "Down", "rate": "2*La*FIR"},
//	    {"from": "Down", "to": "Ok", "rate": "1/Trestore"}
//	  ]
//	}
//
// Rates are expressions over the document's parameters; callers may
// override parameter values at compile time (for sweeps and uncertainty
// sampling).
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/ctmc"
	"repro/internal/expr"
	"repro/internal/reward"
)

// ErrBadSpec is reported for structurally invalid documents.
var ErrBadSpec = errors.New("spec: invalid model specification")

// State declares one model state and its reward rate.
type State struct {
	Name   string  `json:"name"`
	Reward float64 `json:"reward"`
}

// Transition declares a rate-labeled edge; Rate is an expression over the
// document parameters.
type Transition struct {
	From string `json:"from"`
	To   string `json:"to"`
	Rate string `json:"rate"`
}

// Document is a complete declarative model.
type Document struct {
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Parameters  map[string]float64 `json:"parameters,omitempty"`
	// Uncertain optionally declares ranges for parameters that vary
	// across deployments, enabling RunUncertainty on the document.
	Uncertain   map[string]UncertainRange `json:"uncertain,omitempty"`
	States      []State                   `json:"states,omitempty"`
	Transitions []Transition              `json:"transitions,omitempty"`
	// Redundancy, when set, replaces the Markov model with a
	// redundancy-structure block solvable by either backend (see Model).
	Redundancy *Redundancy `json:"redundancy,omitempty"`
}

// Parse decodes a JSON document.
func Parse(r io.Reader) (*Document, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks structural consistency: nonempty states, unique names,
// transitions referencing declared states, parseable rate expressions with
// no unbound parameters.
func (d *Document) Validate() error {
	return d.validate(nil)
}

// validate is Validate with an extra set of parameter names considered
// bound (the child-model bindings of a hierarchical document).
func (d *Document) validate(extraParams map[string]bool) error {
	if d.Name == "" {
		return fmt.Errorf("model has no name: %w", ErrBadSpec)
	}
	if d.Redundancy != nil {
		return d.validateRedundancy(extraParams)
	}
	if len(d.States) == 0 {
		return fmt.Errorf("model %q has no states: %w", d.Name, ErrBadSpec)
	}
	names := make(map[string]bool, len(d.States))
	for _, s := range d.States {
		if s.Name == "" {
			return fmt.Errorf("model %q has an unnamed state: %w", d.Name, ErrBadSpec)
		}
		if names[s.Name] {
			return fmt.Errorf("duplicate state %q: %w", s.Name, ErrBadSpec)
		}
		if s.Reward < 0 {
			return fmt.Errorf("state %q has negative reward %g: %w", s.Name, s.Reward, ErrBadSpec)
		}
		names[s.Name] = true
	}
	for i, tr := range d.Transitions {
		if !names[tr.From] {
			return fmt.Errorf("transition %d references unknown state %q: %w", i, tr.From, ErrBadSpec)
		}
		if !names[tr.To] {
			return fmt.Errorf("transition %d references unknown state %q: %w", i, tr.To, ErrBadSpec)
		}
		e, err := expr.Parse(tr.Rate)
		if err != nil {
			return fmt.Errorf("transition %d (%s→%s): %w", i, tr.From, tr.To, err)
		}
		for _, v := range e.Vars() {
			if _, ok := d.Parameters[v]; !ok && !extraParams[v] {
				return fmt.Errorf("transition %d (%s→%s) references undefined parameter %q: %w",
					i, tr.From, tr.To, v, ErrBadSpec)
			}
		}
	}
	return nil
}

// Compile evaluates all rate expressions against the document parameters
// (with overrides applied on top) and builds the reward structure.
func (d *Document) Compile(overrides map[string]float64) (*reward.Structure, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	env := make(expr.MapEnv, len(d.Parameters)+len(overrides))
	for k, v := range d.Parameters {
		env[k] = v
	}
	for k, v := range overrides {
		if _, ok := d.Parameters[k]; !ok {
			return nil, fmt.Errorf("override %q is not a declared parameter: %w", k, ErrBadSpec)
		}
		env[k] = v
	}
	return d.compileEnv(env)
}

// compileEnv builds the reward structure with a fully resolved parameter
// environment (used directly by hierarchical documents, where some
// parameters are bound from child models rather than declared).
func (d *Document) compileEnv(env expr.Env) (*reward.Structure, error) {
	if d.Redundancy != nil {
		return nil, fmt.Errorf("model %q is a redundancy structure, not a Markov model; compile it with Model: %w",
			d.Name, ErrBadSpec)
	}
	b := ctmc.NewBuilder()
	rates := make([]float64, 0, len(d.States))
	for _, s := range d.States {
		b.State(s.Name)
		rates = append(rates, s.Reward)
	}
	for i, tr := range d.Transitions {
		e, err := expr.Parse(tr.Rate)
		if err != nil {
			return nil, fmt.Errorf("transition %d: %w", i, err)
		}
		v, err := e.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("transition %d (%s→%s): %w", i, tr.From, tr.To, err)
		}
		from := b.State(tr.From)
		to := b.State(tr.To)
		b.Transition(from, to, v)
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", d.Name, err)
	}
	s, err := reward.New(m, rates)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", d.Name, err)
	}
	return s, nil
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("spec: encode: %w", err)
	}
	return nil
}
