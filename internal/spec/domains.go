package spec

// Fault-domain documents: a declarative, JSON-serializable description of
// the testbed's physical failure-correlation topology (sites, power
// domains, racks) for correlated fault-injection campaigns. A domains
// document is deliberately separate from a model document — it describes
// the rig, not the model — and compiles to []testbed.Domain for
// testbed.Options / faultinject.Options.
//
// Example document:
//
//	{
//	  "domains": [
//	    {"name": "site", "as": [], "hadb": []},
//	    {"name": "rack-a", "parent": "site", "as": [0, 1], "hadb": ["0/0", "1/0"]},
//	    {"name": "rack-b", "parent": "site", "as": [2, 3], "hadb": ["0/1", "1/1"]}
//	  ]
//	}
//
// HADB members are "pair/slot" references. Structural validation against
// a concrete cluster shape (member ranges, parent links, cycles) happens
// in testbed.ValidateDomains when the cluster is built; parsing only
// checks syntax.

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/testbed"
)

// DomainsDocument is a complete fault-domain declaration.
type DomainsDocument struct {
	Domains []DomainSpec `json:"domains"`
}

// DomainSpec declares one fault domain.
type DomainSpec struct {
	// Name identifies the domain (unique within the document).
	Name string `json:"name"`
	// Parent optionally names the enclosing domain (e.g. a rack inside a
	// site); injecting into a parent fails the members of every
	// transitive child too.
	Parent string `json:"parent,omitempty"`
	// AS lists member Application Server instance indices.
	AS []int `json:"as,omitempty"`
	// HADB lists member HADB nodes as "pair/slot" references
	// (e.g. "0/1" is pair 0, slot 1).
	HADB []string `json:"hadb,omitempty"`
}

// Domain converts the spec into a testbed domain, parsing the "pair/slot"
// HADB references.
func (s DomainSpec) Domain() (testbed.Domain, error) {
	d := testbed.Domain{Name: s.Name, Parent: s.Parent, AS: s.AS}
	for _, ref := range s.HADB {
		pairStr, slotStr, ok := strings.Cut(ref, "/")
		if !ok {
			return testbed.Domain{}, fmt.Errorf("domain %q: HADB member %q is not a pair/slot reference: %w",
				s.Name, ref, ErrBadSpec)
		}
		pair, err := strconv.Atoi(pairStr)
		if err != nil {
			return testbed.Domain{}, fmt.Errorf("domain %q: HADB member %q: bad pair: %w", s.Name, ref, ErrBadSpec)
		}
		slot, err := strconv.Atoi(slotStr)
		if err != nil {
			return testbed.Domain{}, fmt.Errorf("domain %q: HADB member %q: bad slot: %w", s.Name, ref, ErrBadSpec)
		}
		d.HADB = append(d.HADB, testbed.NodeRef{Pair: pair, Slot: slot})
	}
	return d, nil
}

// ParseDomains decodes a JSON fault-domain document into testbed domains.
func ParseDomains(r io.Reader) ([]testbed.Domain, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc DomainsDocument
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("spec: decode domains: %w", err)
	}
	if len(doc.Domains) == 0 {
		return nil, fmt.Errorf("domains document declares no domains: %w", ErrBadSpec)
	}
	return BuildDomains(doc.Domains)
}

// BuildDomains converts parsed domain specs into testbed domains — the
// shared conversion behind ParseDomains and the HTTP campaign job.
func BuildDomains(specs []DomainSpec) ([]testbed.Domain, error) {
	out := make([]testbed.Domain, len(specs))
	for i, ds := range specs {
		d, err := ds.Domain()
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}
