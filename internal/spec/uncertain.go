package spec

import (
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/uncertainty"
)

// UncertainRange declares, inside a model document, the interval a
// parameter may take across deployments — the document-level equivalent of
// the ranges the paper's §7 uncertainty analysis samples.
type UncertainRange struct {
	Low  float64 `json:"low"`
	High float64 `json:"high"`
}

// uncertaintyRanges converts a document's uncertain-parameter map after
// validating that each name is a declared parameter.
func uncertaintyRanges(uncertain map[string]UncertainRange, declared func(string) bool) ([]uncertainty.Range, error) {
	if len(uncertain) == 0 {
		return nil, fmt.Errorf("document declares no uncertain parameters: %w", ErrBadSpec)
	}
	out := make([]uncertainty.Range, 0, len(uncertain))
	for name, r := range uncertain {
		if !declared(name) {
			return nil, fmt.Errorf("uncertain parameter %q is not declared: %w", name, ErrBadSpec)
		}
		if r.Low > r.High {
			return nil, fmt.Errorf("uncertain parameter %q: low %g > high %g: %w", name, r.Low, r.High, ErrBadSpec)
		}
		out = append(out, uncertainty.Range{Name: name, Low: r.Low, High: r.High})
	}
	return out, nil
}

// RunUncertainty samples the document's uncertain parameters, re-solving
// the model per sample, and returns the downtime distribution — RAScad's
// uncertainty analysis for any user model.
func (d *Document) RunUncertainty(opts uncertainty.Options) (*uncertainty.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ranges, err := uncertaintyRanges(d.Uncertain, func(name string) bool {
		_, ok := d.Parameters[name]
		return ok
	})
	if err != nil {
		return nil, err
	}
	solver := func(assignment map[string]float64) (float64, error) {
		s, err := d.Compile(assignment)
		if err != nil {
			return 0, err
		}
		res, err := s.Solve(ctmc.SolveOptions{})
		if err != nil {
			return 0, err
		}
		return res.YearlyDowntimeMinutes, nil
	}
	return uncertainty.Run(ranges, solver, opts)
}

// RunUncertainty is the hierarchical variant: overrides are applied across
// globals and per-model parameters by name.
func (d *HierDocument) RunUncertainty(opts uncertainty.Options) (*uncertainty.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ranges, err := uncertaintyRanges(d.Uncertain, d.isDeclaredParam)
	if err != nil {
		return nil, err
	}
	solver := func(assignment map[string]float64) (float64, error) {
		ev, err := d.Solve(assignment)
		if err != nil {
			return 0, err
		}
		return ev.Result.YearlyDowntimeMinutes, nil
	}
	return uncertainty.Run(ranges, solver, opts)
}
