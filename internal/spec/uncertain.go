package spec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ctmc"
	"repro/internal/uncertainty"
)

// UncertainRange declares, inside a model document, the interval a
// parameter may take across deployments — the document-level equivalent of
// the ranges the paper's §7 uncertainty analysis samples.
type UncertainRange struct {
	Low  float64 `json:"low"`
	High float64 `json:"high"`
}

// uncertaintyRanges converts a document's uncertain-parameter map after
// validating that each name is a declared parameter with finite, ordered
// bounds.
//
// The ranges are emitted sorted by name: uncertainty.RunCtx maps its
// pre-drawn unit samples to parameters by range index, so emitting them
// in Go's randomized map-iteration order would make same-seed runs
// non-reproducible (and defeat the canonical-hash result cache).
func uncertaintyRanges(uncertain map[string]UncertainRange, declared func(string) bool) ([]uncertainty.Range, error) {
	if len(uncertain) == 0 {
		return nil, fmt.Errorf("document declares no uncertain parameters: %w", ErrBadSpec)
	}
	names := make([]string, 0, len(uncertain))
	for name := range uncertain {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]uncertainty.Range, 0, len(names))
	for _, name := range names {
		r := uncertain[name]
		if !declared(name) {
			return nil, fmt.Errorf("uncertain parameter %q is not declared: %w", name, ErrBadSpec)
		}
		// NaN compares false against everything, so the low > high check
		// alone would wave non-finite bounds through into the sampler.
		if math.IsNaN(r.Low) || math.IsInf(r.Low, 0) || math.IsNaN(r.High) || math.IsInf(r.High, 0) {
			return nil, fmt.Errorf("uncertain parameter %q: non-finite bounds [%g, %g]: %w", name, r.Low, r.High, ErrBadSpec)
		}
		if r.Low > r.High {
			return nil, fmt.Errorf("uncertain parameter %q: low %g > high %g: %w", name, r.Low, r.High, ErrBadSpec)
		}
		out = append(out, uncertainty.Range{Name: name, Low: r.Low, High: r.High})
	}
	return out, nil
}

// RunUncertainty samples the document's uncertain parameters, re-solving
// the model per sample, and returns the downtime distribution — RAScad's
// uncertainty analysis for any user model.
func (d *Document) RunUncertainty(opts uncertainty.Options) (*uncertainty.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ranges, err := uncertaintyRanges(d.Uncertain, func(name string) bool {
		_, ok := d.Parameters[name]
		return ok
	})
	if err != nil {
		return nil, err
	}
	solver := func(assignment map[string]float64) (float64, error) {
		s, err := d.Compile(assignment)
		if err != nil {
			return 0, err
		}
		res, err := s.Solve(ctmc.SolveOptions{})
		if err != nil {
			return 0, err
		}
		return res.YearlyDowntimeMinutes, nil
	}
	return uncertainty.Run(ranges, solver, opts)
}

// RunUncertainty is the hierarchical variant: overrides are applied across
// globals and per-model parameters by name.
func (d *HierDocument) RunUncertainty(opts uncertainty.Options) (*uncertainty.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ranges, err := uncertaintyRanges(d.Uncertain, d.isDeclaredParam)
	if err != nil {
		return nil, err
	}
	solver := func(assignment map[string]float64) (float64, error) {
		ev, err := d.Solve(assignment)
		if err != nil {
			return 0, err
		}
		return ev.Result.YearlyDowntimeMinutes, nil
	}
	return uncertainty.Run(ranges, solver, opts)
}
