package spec

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jsas"
	"repro/internal/uncertainty"
)

const hierDoc = `{
  "name": "series",
  "parameters": {"shared": 2},
  "root": "top",
  "models": [
    {
      "name": "leaf",
      "parameters": {"La": 0.01},
      "states": [{"name":"Up","reward":1},{"name":"Down","reward":0}],
      "transitions": [
        {"from":"Up","to":"Down","rate":"La"},
        {"from":"Down","to":"Up","rate":"shared"}
      ]
    },
    {
      "name": "top",
      "states": [{"name":"Ok","reward":1},{"name":"Fail","reward":0}],
      "transitions": [
        {"from":"Ok","to":"Fail","rate":"L1"},
        {"from":"Fail","to":"Ok","rate":"M1"}
      ]
    }
  ],
  "bindings": [
    {"model":"top","child":"leaf","lambda_param":"L1","mu_param":"M1"}
  ]
}`

func TestHierParseAndSolve(t *testing.T) {
	t.Parallel()
	d, err := ParseHier(strings.NewReader(hierDoc))
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	ev, err := d.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Two-state child bound into a two-state parent preserves availability.
	want := 2.0 / 2.01
	if math.Abs(ev.Result.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", ev.Result.Availability, want)
	}
	if ev.Find("leaf") == nil {
		t.Error("child evaluation missing")
	}
}

func TestHierSolveWithOverrides(t *testing.T) {
	t.Parallel()
	d, err := ParseHier(strings.NewReader(hierDoc))
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	// Override the child's failure rate and the shared repair rate.
	ev, err := d.Solve(map[string]float64{"La": 0.1, "shared": 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 1.0 / 1.1
	if math.Abs(ev.Result.Availability-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", ev.Result.Availability, want)
	}
	if _, err := d.Solve(map[string]float64{"nope": 1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown override: err = %v", err)
	}
}

func TestHierValidateRejects(t *testing.T) {
	t.Parallel()
	mutate := func(f func(d *HierDocument)) string {
		d, err := ParseHier(strings.NewReader(hierDoc))
		if err != nil {
			t.Fatalf("ParseHier: %v", err)
		}
		f(d)
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return buf.String()
	}
	cases := map[string]string{
		"no name":       mutate(func(d *HierDocument) { d.Name = "" }),
		"no models":     mutate(func(d *HierDocument) { d.Models = nil }),
		"bad root":      mutate(func(d *HierDocument) { d.Root = "zzz" }),
		"dup model":     mutate(func(d *HierDocument) { d.Models = append(d.Models, d.Models[0]) }),
		"unknown child": mutate(func(d *HierDocument) { d.Bindings[0].Child = "zzz" }),
		"unknown model": mutate(func(d *HierDocument) { d.Bindings[0].Model = "zzz" }),
		"no lambda":     mutate(func(d *HierDocument) { d.Bindings[0].LambdaParam = "" }),
		"self cycle": mutate(func(d *HierDocument) {
			d.Bindings = append(d.Bindings, Binding{Model: "leaf", Child: "top", LambdaParam: "x"})
			// Allow the unbound-var check to pass by wiring x nowhere.
		}),
	}
	for name, doc := range cases {
		name, doc := name, doc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := ParseHier(strings.NewReader(doc)); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestHierUnboundParentParam(t *testing.T) {
	t.Parallel()
	// Parent references M1 but the binding only provides L1.
	doc := strings.Replace(hierDoc, `"mu_param":"M1"`, `"mu_param":""`, 1)
	if _, err := ParseHier(strings.NewReader(doc)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec (M1 unbound)", err)
	}
}

// TestJSASConfig1Document: the shipped models/jsas-config1.json document
// must reproduce the programmatic Config 1 solution exactly.
func TestJSASConfig1Document(t *testing.T) {
	t.Parallel()
	f, err := os.Open(filepath.Join("..", "..", "models", "jsas-config1.json"))
	if err != nil {
		t.Fatalf("open document: %v", err)
	}
	defer f.Close()
	d, err := ParseHier(f)
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	ev, err := d.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := jsas.Solve(jsas.Config1, jsas.DefaultParams())
	if err != nil {
		t.Fatalf("jsas.Solve: %v", err)
	}
	if math.Abs(ev.Result.Availability-want.Availability) > 1e-12 {
		t.Errorf("document availability %.12f != programmatic %.12f",
			ev.Result.Availability, want.Availability)
	}
	if math.Abs(ev.Result.YearlyDowntimeMinutes-want.YearlyDowntimeMinutes) > 1e-6 {
		t.Errorf("document YD %.6f != programmatic %.6f",
			ev.Result.YearlyDowntimeMinutes, want.YearlyDowntimeMinutes)
	}
	// The document responds to overrides like the programmatic model: 4
	// pairs double the HADB downtime contribution.
	ev4, err := d.Solve(map[string]float64{"N_pair": 4})
	if err != nil {
		t.Fatalf("Solve(N_pair=4): %v", err)
	}
	if ev4.Result.Availability >= ev.Result.Availability {
		t.Error("more pairs should reduce availability")
	}
}

func TestHierEncodeRoundTrip(t *testing.T) {
	t.Parallel()
	d, err := ParseHier(strings.NewReader(hierDoc))
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d2, err := ParseHier(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	ev1, err := d.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := d2.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Result.Availability != ev2.Result.Availability {
		t.Error("round trip changed the solution")
	}
}

// TestDocumentUncertainty: the shipped JSAS document carries the paper's
// §7 uncertain ranges; sampling it reproduces the Figure 7 distribution.
func TestDocumentUncertainty(t *testing.T) {
	t.Parallel()
	f, err := os.Open(filepath.Join("..", "..", "models", "jsas-config1.json"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	d, err := ParseHier(f)
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	if len(d.Uncertain) != 6 {
		t.Fatalf("uncertain params = %d, want 6", len(d.Uncertain))
	}
	res, err := d.RunUncertainty(uncertainty.Options{Samples: 300, Seed: 2004})
	if err != nil {
		t.Fatalf("RunUncertainty: %v", err)
	}
	// Figure 7 regime: mean a few minutes per year.
	if res.Summary.Mean < 2.5 || res.Summary.Mean > 5.5 {
		t.Errorf("mean = %.2f min/yr, want Figure 7 regime (~3.8)", res.Summary.Mean)
	}
}

func TestDocumentUncertaintyValidation(t *testing.T) {
	t.Parallel()
	d, err := ParseHier(strings.NewReader(hierDoc))
	if err != nil {
		t.Fatalf("ParseHier: %v", err)
	}
	// No uncertain block declared.
	if _, err := d.RunUncertainty(uncertainty.Options{Samples: 5}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("no ranges: err = %v", err)
	}
	// Undeclared name.
	d.Uncertain = map[string]UncertainRange{"zzz": {Low: 0, High: 1}}
	if _, err := d.RunUncertainty(uncertainty.Options{Samples: 5}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("undeclared: err = %v", err)
	}
	// Inverted range.
	d.Uncertain = map[string]UncertainRange{"shared": {Low: 2, High: 1}}
	if _, err := d.RunUncertainty(uncertainty.Options{Samples: 5}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("inverted: err = %v", err)
	}
	// A valid range samples fine.
	d.Uncertain = map[string]UncertainRange{"shared": {Low: 1, High: 4}}
	res, err := d.RunUncertainty(uncertainty.Options{Samples: 20, Seed: 1})
	if err != nil {
		t.Fatalf("RunUncertainty: %v", err)
	}
	if res.Summary.N != 20 {
		t.Errorf("N = %d", res.Summary.N)
	}
}

// TestFlatDocumentUncertainty samples a flat document's declared ranges.
func TestFlatDocumentUncertainty(t *testing.T) {
	t.Parallel()
	doc := `{
	  "name": "pair",
	  "parameters": {"La": 0.001, "Mu": 2},
	  "uncertain": {"La": {"low": 0.0005, "high": 0.002}},
	  "states": [{"name":"Up","reward":1},{"name":"Down","reward":0}],
	  "transitions": [
	    {"from":"Up","to":"Down","rate":"La"},
	    {"from":"Down","to":"Up","rate":"Mu"}
	  ]
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := d.RunUncertainty(uncertainty.Options{Samples: 100, Seed: 3})
	if err != nil {
		t.Fatalf("RunUncertainty: %v", err)
	}
	// Downtime spans the range implied by La ∈ [0.0005, 0.002] at Mu=2:
	// U = La/(La+Mu) ∈ [2.5e-4, 1e-3] → YD ∈ [131, 525] min.
	if res.Summary.Min < 120 || res.Summary.Max > 540 {
		t.Errorf("downtime range = [%v, %v], want within [120, 540]", res.Summary.Min, res.Summary.Max)
	}
}
