package spec

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/expr"
	"repro/internal/hier"
	"repro/internal/reward"
)

// HierEvaluation is the solved hierarchy result tree (re-exported so spec
// consumers need not import the hier package directly).
type HierEvaluation = hier.Evaluation

// Binding wires a child model's solved equivalent rates into a parent
// model's parameter environment — the arrow between diagrams in a RAScad
// hierarchy (the paper's Figure 2 binds `$Lambda1`/`$Mu1` this way).
type Binding struct {
	// Model is the parent model's name.
	Model string `json:"model"`
	// Child is the child model's name.
	Child string `json:"child"`
	// LambdaParam/MuParam are the parameter names the child's equivalent
	// failure/recovery rates are bound to in the parent.
	LambdaParam string `json:"lambda_param"`
	MuParam     string `json:"mu_param,omitempty"`
}

// HierDocument is a complete hierarchical model: a set of named Markov
// reward models, a root, global parameters shared by all models, and the
// bindings between them.
type HierDocument struct {
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Parameters  map[string]float64 `json:"parameters,omitempty"`
	// Uncertain optionally declares deployment-variable parameter ranges
	// (global or per-model names), enabling RunUncertainty.
	Uncertain map[string]UncertainRange `json:"uncertain,omitempty"`
	Root      string                    `json:"root"`
	Models    []Document                `json:"models"`
	Bindings  []Binding                 `json:"bindings,omitempty"`
}

// ParseHier decodes a hierarchical JSON document.
func ParseHier(r io.Reader) (*HierDocument, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d HierDocument
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("spec: decode hierarchy: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Encode writes the document as indented JSON.
func (d *HierDocument) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("spec: encode hierarchy: %w", err)
	}
	return nil
}

// model returns the named submodel document.
func (d *HierDocument) model(name string) (*Document, bool) {
	for i := range d.Models {
		if d.Models[i].Name == name {
			return &d.Models[i], true
		}
	}
	return nil, false
}

// boundParams collects, per model, the parameter names provided by child
// bindings (plus the shared global parameters).
func (d *HierDocument) boundParams(model string) map[string]bool {
	out := make(map[string]bool, len(d.Parameters)+2)
	for name := range d.Parameters {
		out[name] = true
	}
	for _, b := range d.Bindings {
		if b.Model != model {
			continue
		}
		if b.LambdaParam != "" {
			out[b.LambdaParam] = true
		}
		if b.MuParam != "" {
			out[b.MuParam] = true
		}
	}
	return out
}

// Validate checks the hierarchy: a named root model, unique model names,
// bindings referencing declared models, acyclic dependencies, and every
// model valid given its global + bound parameters.
func (d *HierDocument) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("hierarchy has no name: %w", ErrBadSpec)
	}
	if len(d.Models) == 0 {
		return fmt.Errorf("hierarchy %q has no models: %w", d.Name, ErrBadSpec)
	}
	seen := make(map[string]bool, len(d.Models))
	for _, m := range d.Models {
		if seen[m.Name] {
			return fmt.Errorf("duplicate model %q: %w", m.Name, ErrBadSpec)
		}
		seen[m.Name] = true
	}
	if _, ok := d.model(d.Root); !ok {
		return fmt.Errorf("root model %q not found: %w", d.Root, ErrBadSpec)
	}
	children := make(map[string][]string)
	for i, b := range d.Bindings {
		if _, ok := d.model(b.Model); !ok {
			return fmt.Errorf("binding %d references unknown model %q: %w", i, b.Model, ErrBadSpec)
		}
		if _, ok := d.model(b.Child); !ok {
			return fmt.Errorf("binding %d references unknown child %q: %w", i, b.Child, ErrBadSpec)
		}
		if b.LambdaParam == "" {
			return fmt.Errorf("binding %d (%s→%s) has no lambda_param: %w", i, b.Model, b.Child, ErrBadSpec)
		}
		children[b.Model] = append(children[b.Model], b.Child)
	}
	if err := d.checkAcyclic(children); err != nil {
		return err
	}
	for i := range d.Models {
		m := &d.Models[i]
		if err := m.validate(d.boundParams(m.Name)); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
	}
	return nil
}

// checkAcyclic rejects binding cycles via three-color DFS.
func (d *HierDocument) checkAcyclic(children map[string][]string) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(d.Models))
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("binding cycle through model %q: %w", name, ErrBadSpec)
		case black:
			return nil
		}
		color[name] = gray
		for _, c := range children[name] {
			if err := visit(c); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for _, m := range d.Models {
		if err := visit(m.Name); err != nil {
			return err
		}
	}
	return nil
}

// Compile assembles the hierarchy into an evaluable component tree.
// Overrides replace global or per-model parameters by name (a name
// present in both a model and the globals overrides both).
func (d *HierDocument) Compile(overrides map[string]float64) (*hier.Component, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	for name := range overrides {
		if !d.isDeclaredParam(name) {
			return nil, fmt.Errorf("override %q is not a declared parameter: %w", name, ErrBadSpec)
		}
	}
	components := make(map[string]*hier.Component, len(d.Models))
	for i := range d.Models {
		m := &d.Models[i]
		components[m.Name] = hier.NewComponent(m.Name, d.buildFunc(m, overrides))
	}
	for _, b := range d.Bindings {
		components[b.Model].Use(components[b.Child], b.LambdaParam, b.MuParam)
	}
	return components[d.Root], nil
}

// isDeclaredParam reports whether name is a global or per-model parameter.
func (d *HierDocument) isDeclaredParam(name string) bool {
	if _, ok := d.Parameters[name]; ok {
		return true
	}
	for i := range d.Models {
		if _, ok := d.Models[i].Parameters[name]; ok {
			return true
		}
	}
	return false
}

// buildFunc closes over a submodel document: at evaluation time the
// environment is globals < model parameters < overrides < child bindings.
func (d *HierDocument) buildFunc(m *Document, overrides map[string]float64) hier.BuildFunc {
	return func(hp hier.Params) (*reward.Structure, error) {
		env := make(expr.MapEnv, len(d.Parameters)+len(m.Parameters)+len(hp))
		for k, v := range d.Parameters {
			env[k] = v
		}
		for k, v := range m.Parameters {
			env[k] = v
		}
		for k, v := range overrides {
			if _, ok := env[k]; ok {
				env[k] = v
			}
		}
		for k, v := range hp {
			env[k] = v
		}
		s, err := m.compileEnv(env)
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", m.Name, err)
		}
		return s, nil
	}
}

// Solve compiles and evaluates the hierarchy in one step. It is SolveCtx
// with a background context.
func (d *HierDocument) Solve(overrides map[string]float64) (*hier.Evaluation, error) {
	return d.SolveCtx(context.Background(), overrides)
}

// SolveCtx is Solve with cancellation: ctx is threaded through the
// hierarchy evaluation, aborting between components (and inside iterative
// submodel solves) when canceled.
func (d *HierDocument) SolveCtx(ctx context.Context, overrides map[string]float64) (*hier.Evaluation, error) {
	root, err := d.Compile(overrides)
	if err != nil {
		return nil, err
	}
	ev, err := hier.EvaluateCtx(ctx, root, nil, hier.Options{})
	if err != nil {
		return nil, fmt.Errorf("spec: solve %q: %w", d.Name, err)
	}
	return ev, nil
}
