package ctmc

import (
	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Solver is a reusable steady-state solve context: it owns the iterative
// solvers' scratch vectors (via sparse.Workspace), the dense solver's
// assembly matrix and LU factorization storage, and a warm-start cache of
// recently computed stationary distributions keyed by chain shape.
//
// Sweeps, Monte-Carlo sampling, and hierarchical composition solve the
// same chain topologies over and over at nearby rates; threading one
// Solver through those repeated solves (SolveOptions.Solver) removes the
// per-solve allocations and lets the iterative methods start from the
// previous point's π instead of the uniform vector, which typically cuts
// the sweep count by an order of magnitude once the sweep is underway.
//
// A Solver is NOT safe for concurrent use: give each worker goroutine its
// own (the jsas solvers maintain a pool; see also uncertainty.Run).
type Solver struct {
	ws sparse.Workspace

	// Dense-path scratch: the assembled system A = Qᵀ with the last row
	// replaced by ones, the rhs, the solution, and the factorization.
	denseA *numeric.Matrix
	denseB []float64
	denseX []float64
	lu     numeric.LU

	// warm caches the most recent stationary distribution per chain
	// shape. Rate changes between nearby sweep points do not change the
	// shape, so (states, transitions) identifies "the same topology" for
	// warm-start purposes; a stale or mismatched seed only costs extra
	// sweeps, never correctness, because it is just the iteration's
	// starting point.
	warm map[warmKey][]float64

	stats SolverStats
}

// warmKey identifies a chain topology for the warm-start cache.
type warmKey struct{ states, transitions int }

// maxWarmEntries bounds the warm cache. A solve context touches only a
// handful of distinct topologies (the submodels of one hierarchy), so the
// bound exists purely to keep a long-lived Solver from accumulating
// vectors for chains it will never see again.
const maxWarmEntries = 16

// SolverStats aggregates how a Solver's solves ran, separating warm- from
// cold-started iterative work so the benefit of warm starting is
// observable (cold solves start from the uniform vector).
type SolverStats struct {
	// Solves counts completed steady-state solves through this Solver.
	Solves int
	// WarmStarts counts iterative solves seeded from a cached π.
	WarmStarts int
	// ColdSweeps and WarmSweeps total the iterative sweep counts of
	// cold- and warm-started solves respectively.
	ColdSweeps int
	WarmSweeps int
}

// NewSolver returns an empty solve context.
func NewSolver() *Solver {
	return &Solver{warm: make(map[warmKey][]float64)}
}

// Stats returns the cumulative solve statistics.
func (s *Solver) Stats() SolverStats { return s.stats }

// SteadyState solves m's stationary distribution through this Solver's
// workspace — shorthand for m.SteadyState with opts.Solver set.
func (s *Solver) SteadyState(m *Model, opts SolveOptions) ([]float64, error) {
	opts.Solver = s
	return m.SteadyState(opts)
}

// warmStart returns the cached stationary distribution for m's topology,
// or nil when none is cached.
func (s *Solver) warmStart(m *Model) []float64 {
	if s == nil {
		return nil
	}
	return s.warm[warmKey{m.NumStates(), m.NumTransitions()}]
}

// noteSolve records a completed solve and caches its π for warm-starting
// the next solve of a same-shaped chain.
func (s *Solver) noteSolve(m *Model, pi []float64, iter sparse.IterStats) {
	if s == nil {
		return
	}
	s.stats.Solves++
	if iter.WarmStart {
		s.stats.WarmStarts++
		s.stats.WarmSweeps += iter.Sweeps
	} else {
		s.stats.ColdSweeps += iter.Sweeps
	}
	key := warmKey{m.NumStates(), m.NumTransitions()}
	dst, ok := s.warm[key]
	if !ok {
		if len(s.warm) >= maxWarmEntries {
			for k := range s.warm {
				delete(s.warm, k)
			}
		}
		dst = make([]float64, len(pi))
	}
	copy(dst, pi)
	s.warm[key] = dst
}

// denseScratch returns the Solver-owned (or, for a nil Solver, freshly
// allocated) dense assembly buffers sized for an n-state chain.
func (s *Solver) denseScratch(n int) (a *numeric.Matrix, b, x []float64, lu *numeric.LU) {
	if s == nil {
		return numeric.NewMatrix(n, n), make([]float64, n), make([]float64, n), &numeric.LU{}
	}
	if s.denseA == nil {
		s.denseA = numeric.NewMatrix(n, n)
	} else {
		s.denseA.Reshape(n, n)
	}
	if cap(s.denseB) < n {
		s.denseB = make([]float64, n)
		s.denseX = make([]float64, n)
	}
	s.denseB = s.denseB[:n]
	for i := range s.denseB {
		s.denseB[i] = 0
	}
	s.denseX = s.denseX[:n]
	return s.denseA, s.denseB, s.denseX, &s.lu
}

// workspace returns the sparse iteration workspace (nil for a nil Solver,
// which makes the sparse solvers allocate locally).
func (s *Solver) workspace() *sparse.Workspace {
	if s == nil {
		return nil
	}
	return &s.ws
}
