package ctmc

import (
	"strings"
	"testing"
)

func TestDiagnoseHealthyChain(t *testing.T) {
	t.Parallel()
	m, _, _ := twoState(t, 0.001, 60)
	d := m.Diagnose()
	if !d.Irreducible {
		t.Error("healthy chain reported reducible")
	}
	if len(d.Absorbing) != 0 || len(d.Unreachable) != 0 || len(d.CannotReturn) != 0 {
		t.Errorf("healthy chain reported defects: %+v", d)
	}
	if d.MaxExitRate != 60 || d.MinExitRate != 0.001 {
		t.Errorf("exit rates = [%v, %v]", d.MinExitRate, d.MaxExitRate)
	}
	if got := d.Stiffness(); got != 60000 {
		t.Errorf("Stiffness = %v, want 60000", got)
	}
	sum := d.Summary(m)
	if !strings.Contains(sum, "irreducible: yes") {
		t.Errorf("summary missing verdict:\n%s", sum)
	}
	if !strings.Contains(sum, "stiffness") {
		t.Errorf("summary missing stiffness:\n%s", sum)
	}
}

func TestDiagnoseDefectiveChain(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	a := b.State("A")
	trap := b.State("Trap")
	island := b.State("Island")
	c := b.State("C")
	b.Transition(a, c, 1)
	b.Transition(c, a, 2)
	b.Transition(a, trap, 0.5) // Trap has no way out
	b.Transition(island, a, 1) // Island is unreachable
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	d := m.Diagnose()
	if d.Irreducible {
		t.Error("defective chain reported irreducible")
	}
	if len(d.Absorbing) != 1 || m.Name(d.Absorbing[0]) != "Trap" {
		t.Errorf("absorbing = %v", d.Absorbing)
	}
	if len(d.Unreachable) != 1 || m.Name(d.Unreachable[0]) != "Island" {
		t.Errorf("unreachable = %v", d.Unreachable)
	}
	found := false
	for _, s := range d.CannotReturn {
		if m.Name(s) == "Trap" {
			found = true
		}
	}
	if !found {
		t.Errorf("CannotReturn missing Trap: %v", d.CannotReturn)
	}
	sum := d.Summary(m)
	for _, want := range []string{"irreducible: NO", "Trap", "Island"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestDiagnoseStiffnessEdgeCases(t *testing.T) {
	t.Parallel()
	// No transitions at all: stiffness undefined (0).
	b := NewBuilder()
	b.State("only")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d := m.Diagnose(); d.Stiffness() != 0 {
		t.Errorf("no-transition model stiffness = %v, want 0", d.Stiffness())
	}
	// Single nonzero exit rate: stiffness 1.
	b2 := NewBuilder()
	a := b2.State("A")
	c := b2.State("B")
	b2.Transition(a, c, 1)
	m2, err := b2.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d := m2.Diagnose(); d.Stiffness() != 1 {
		t.Errorf("single exit rate: stiffness = %v, want 1", d.Stiffness())
	}
}
