package ctmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomIrreducibleModel builds a random strongly connected chain: a
// directed ring guarantees irreducibility, extra random edges add
// structure.
func randomIrreducibleModel(r *rand.Rand) (*Model, error) {
	n := 2 + r.Intn(10)
	b := NewBuilder()
	states := make([]State, n)
	for i := 0; i < n; i++ {
		states[i] = b.State(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.Transition(states[i], states[(i+1)%n], 0.1+5*r.Float64())
		if r.Intn(2) == 0 {
			j := r.Intn(n)
			if j != i {
				b.Transition(states[i], states[j], 0.1+5*r.Float64())
			}
		}
	}
	return b.Build()
}

// TestSteadyStateGlobalBalance: at steady state, for every state the
// probability inflow equals the outflow (global balance), and π is a
// probability vector.
func TestSteadyStateGlobalBalance(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := randomIrreducibleModel(r)
		if err != nil {
			return false
		}
		pi, err := m.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// πQ = 0 componentwise.
		q := m.Generator()
		res, err := q.VecMul(pi)
		if err != nil {
			return false
		}
		for _, v := range res {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFlowBalanceAcrossEveryCut: for any subset of states, steady-state
// flow in equals flow out.
func TestFlowBalanceAcrossEveryCut(t *testing.T) {
	t.Parallel()
	f := func(seed int64, mask uint16) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := randomIrreducibleModel(r)
		if err != nil {
			return false
		}
		pi, err := m.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		cut := make(map[State]bool)
		for i := 0; i < m.NumStates(); i++ {
			if mask&(1<<uint(i)) != 0 {
				cut[State(i)] = true
			}
		}
		in := m.EntryFrequency(pi, cut)
		out := m.ExitFrequency(pi, cut)
		return math.Abs(in-out) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEquivalentRatesPreserveMeasures: the two-state reduction preserves
// both availability and failure frequency for arbitrary down sets.
func TestEquivalentRatesPreserveMeasures(t *testing.T) {
	t.Parallel()
	f := func(seed int64, mask uint16) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := randomIrreducibleModel(r)
		if err != nil {
			return false
		}
		pi, err := m.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		down := make(map[State]bool)
		for i := 0; i < m.NumStates(); i++ {
			if mask&(1<<uint(i)) != 0 {
				down[State(i)] = true
			}
		}
		// Need a proper bipartition.
		if len(down) == 0 || len(down) == m.NumStates() {
			return true
		}
		la, mu, err := m.EquivalentRates(pi, down)
		if err != nil {
			return false
		}
		var pDown float64
		for s := range down {
			pDown += pi[s]
		}
		if pDown == 0 {
			// Unreachable down set can't happen in an irreducible chain.
			return false
		}
		// Reduced chain availability: μ/(λ+μ) == 1 − pDown.
		if math.Abs(mu/(la+mu)-(1-pDown)) > 1e-9 {
			return false
		}
		// Reduced chain failure frequency: (1−pDown)·λ == entry frequency.
		freq := m.EntryFrequency(pi, down)
		return math.Abs((1-pDown)*la-freq) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTransientMatchesSteadyStateFrequencies: simulate-free sanity — the
// transient distribution at a long horizon reproduces every steady-state
// probability, not just availability.
func TestTransientMatchesSteadyStateEverywhere(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := randomIrreducibleModel(r)
		if err != nil {
			return false
		}
		pi, err := m.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		p0 := make([]float64, m.NumStates())
		p0[0] = 1
		pt, err := m.Transient(p0, 500, TransientOptions{})
		if err != nil {
			return false
		}
		for i := range pi {
			if math.Abs(pt[i]-pi[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIntervalAvailabilityBetweenInstantAndSteady: starting from an up
// state with 0/1 rewards, interval availability lies between the
// steady-state availability and 1, and is monotone nonincreasing in t.
func TestIntervalAvailabilityBetweenInstantAndSteady(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := randomIrreducibleModel(r)
		if err != nil {
			return false
		}
		pi, err := m.SteadyState(SolveOptions{})
		if err != nil {
			return false
		}
		n := m.NumStates()
		reward := make([]float64, n)
		reward[0] = 1 // state 0 is the only "up" state
		p0 := make([]float64, n)
		p0[0] = 1
		prev := 1.0
		for _, horizon := range []float64{0.1, 1, 10, 100} {
			ia, err := m.IntervalAvailability(p0, horizon, reward)
			if err != nil {
				return false
			}
			if ia > prev+1e-9 || ia < pi[0]-1e-9 {
				return false
			}
			prev = ia
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
