package ctmc

import (
	"fmt"
	"math"
)

// TransientOptions configures Transient.
type TransientOptions struct {
	// Epsilon bounds the truncation error of the uniformization series.
	// Defaults to 1e-12.
	Epsilon float64
	// MaxTerms caps the series length as a safety valve. Defaults to 10^7.
	MaxTerms int
}

// Transient computes the state-probability vector at time t given the
// initial distribution p0, using Jensen's uniformization method:
//
//	p(t) = Σ_k Poisson(Λt; k) · p0·P^k,  P = I + Q/Λ.
//
// The truncation point is chosen so the neglected Poisson tail mass is
// below Epsilon. Works for any finite CTMC (absorbing states allowed).
func (m *Model) Transient(p0 []float64, t float64, opts TransientOptions) ([]float64, error) {
	n := m.NumStates()
	if len(p0) != n {
		return nil, fmt.Errorf("initial vector has length %d, want %d: %w", len(p0), n, ErrBadModel)
	}
	if t < 0 {
		return nil, fmt.Errorf("negative time %g: %w", t, ErrBadModel)
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 1e-12
	}
	maxTerms := opts.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 10_000_000
	}
	out := make([]float64, n)
	if t == 0 {
		copy(out, p0)
		return out, nil
	}
	// Uniformization rate.
	var lambda float64
	for s := 0; s < n; s++ {
		if r := m.ExitRate(State(s)); r > lambda {
			lambda = r
		}
	}
	if lambda == 0 {
		copy(out, p0)
		return out, nil
	}
	lambda *= 1.02
	q, err := m.SparseGenerator()
	if err != nil {
		return nil, err
	}
	lt := lambda * t
	// Right truncation point: beyond Λt + c·√Λt the Poisson tail mass is
	// below eps (c = 10 covers eps ≈ 1e-20); the accumulated-mass check
	// alone is unreliable at large Λt, where summation round-off exceeds
	// any tight eps.
	truncation := int(lt + 10*math.Sqrt(lt+1) + 40)
	if truncation > maxTerms {
		truncation = maxTerms
	}
	// Poisson weights in log space to avoid overflow for large Λt.
	// w_k = e^{-Λt} (Λt)^k / k!
	cur := make([]float64, n)
	copy(cur, p0)
	next := make([]float64, n)
	scratch := make([]float64, n)
	logW := -lt // log w_0
	var accumulated float64
	for k := 0; k <= truncation; k++ {
		w := math.Exp(logW)
		if w > 0 {
			for i := 0; i < n; i++ {
				out[i] += w * cur[i]
			}
			accumulated += w
		}
		if accumulated >= 1-eps && float64(k) > lt {
			break
		}
		// cur ← cur·P = cur + (cur·Q)/Λ
		cq, err := q.VecMul(cur, scratch)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v := cur[i] + cq[i]/lambda
			if v < 0 {
				v = 0
			}
			next[i] = v
		}
		cur, next = next, cur
		logW += math.Log(lt) - math.Log(float64(k+1))
	}
	// The truncated tail mass (≤ eps) is redistributed by normalizing.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out, nil
}

// IntervalAvailability returns the expected time-average reward over
// [0, t] (for 0/1 rewards, the expected interval availability) starting
// from distribution p0. It uses the single-pass uniformization identity
//
//	(1/t)∫₀ᵗ p(s)·r ds = (1/(Λt)) Σ_k P(N_Λt > k) · (p0·Pᵏ)·r
//
// where P(N_Λt > k) is the Poisson tail, so the cost is one power-series
// sweep (O(Λt) matrix-vector products) regardless of the horizon.
func (m *Model) IntervalAvailability(p0 []float64, t float64, reward []float64) (float64, error) {
	n := m.NumStates()
	if len(p0) != n {
		return 0, fmt.Errorf("initial vector has length %d, want %d: %w", len(p0), n, ErrBadModel)
	}
	if t < 0 {
		return 0, fmt.Errorf("negative time %g: %w", t, ErrBadModel)
	}
	if t == 0 {
		return instantReward(p0, reward), nil
	}
	var lambda float64
	for s := 0; s < n; s++ {
		if r := m.ExitRate(State(s)); r > lambda {
			lambda = r
		}
	}
	if lambda == 0 {
		return instantReward(p0, reward), nil
	}
	lambda *= 1.02
	q, err := m.SparseGenerator()
	if err != nil {
		return 0, err
	}
	lt := lambda * t
	truncation := int(lt + 10*math.Sqrt(lt+1) + 40)
	cur := make([]float64, n)
	copy(cur, p0)
	next := make([]float64, n)
	scratch := make([]float64, n)
	logW := -lt
	cdf := 0.0
	var integral float64 // Σ tail_k · (v_k·r), in units of 1/Λ
	for k := 0; k <= truncation; k++ {
		w := math.Exp(logW)
		cdf += w
		tail := 1 - cdf
		if tail < 0 {
			tail = 0
		}
		integral += tail * instantReward(cur, reward)
		if tail == 0 && float64(k) > lt {
			break
		}
		cq, err := q.VecMul(cur, scratch)
		if err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			v := cur[i] + cq[i]/lambda
			if v < 0 {
				v = 0
			}
			next[i] = v
		}
		cur, next = next, cur
		logW += math.Log(lt) - math.Log(float64(k+1))
	}
	return integral / lt, nil
}

func instantReward(p, reward []float64) float64 {
	var s float64
	for i := range p {
		if i < len(reward) {
			s += p[i] * reward[i]
		}
	}
	return s
}
