package ctmc

import (
	"errors"
	"math"
	"testing"
)

// buildReplicatedPair constructs the product of two identical repairable
// components: states UU, UD, DU, DD.
func buildReplicatedPair(t *testing.T, la, mu float64) (*Model, []int) {
	t.Helper()
	b := NewBuilder()
	uu := b.State("UU")
	ud := b.State("UD")
	du := b.State("DU")
	dd := b.State("DD")
	b.Transition(uu, ud, la)
	b.Transition(uu, du, la)
	b.Transition(ud, uu, mu)
	b.Transition(du, uu, mu)
	b.Transition(ud, dd, la)
	b.Transition(du, dd, la)
	b.Transition(dd, ud, mu)
	b.Transition(dd, du, mu)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Initial partition by number of up components (the reward classes of
	// a 1-out-of-2 system with degraded state).
	return m, []int{2, 1, 1, 0}
}

func TestLumpReplicatedPair(t *testing.T) {
	t.Parallel()
	m, initial := buildReplicatedPair(t, 0.1, 2)
	q, block, err := m.Lump(initial)
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	if q.NumStates() != 3 {
		t.Fatalf("lumped states = %d, want 3 (UU, {UD+DU}, DD)", q.NumStates())
	}
	if block[1] != block[2] {
		t.Errorf("UD and DU not merged: %v", block)
	}
	if block[0] == block[1] || block[3] == block[1] {
		t.Errorf("distinct classes merged: %v", block)
	}
	// Exactness: quotient steady state equals member sums.
	pi, err := m.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	qpi, err := q.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("quotient SteadyState: %v", err)
	}
	sums := make([]float64, q.NumStates())
	for s, blk := range block {
		sums[blk] += pi[s]
	}
	for i := range sums {
		if math.Abs(sums[i]-qpi[i]) > 1e-12 {
			t.Errorf("block %d: member sum %.15f, quotient %.15f", i, sums[i], qpi[i])
		}
	}
	// Quotient transition rates: UU → merged block at 2λ.
	merged := State(block[1])
	if got := q.Rate(State(block[0]), merged); math.Abs(got-0.2) > 1e-15 {
		t.Errorf("UU→merged rate = %v, want 0.2", got)
	}
}

func TestLumpRespectsInitialPartition(t *testing.T) {
	t.Parallel()
	// Same chain, but UD and DU carry different labels (e.g. different
	// rewards): they must not merge even though their dynamics match.
	m, _ := buildReplicatedPair(t, 0.1, 2)
	q, _, err := m.Lump([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	if q.NumStates() != 4 {
		t.Errorf("lumped states = %d, want 4 (labels forbid merging)", q.NumStates())
	}
}

func TestLumpTrivialPartitionCollapses(t *testing.T) {
	t.Parallel()
	// With every state in one class, the whole chain is (degenerately)
	// lumpable into a single state — the coarsest refinement of the
	// trivial partition is the trivial partition.
	b := NewBuilder()
	a := b.State("A")
	c := b.State("C")
	d := b.State("D")
	b.Transition(a, c, 1)
	b.Transition(c, d, 2)
	b.Transition(d, a, 3)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	q, _, err := m.Lump([]int{0, 0, 0})
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	if q.NumStates() != 1 {
		t.Errorf("trivial partition lumped to %d states, want 1", q.NumStates())
	}
}

func TestLumpNoFalseMergeWithinClass(t *testing.T) {
	t.Parallel()
	// A and C share a class but have different dynamics toward D: the
	// refinement must split them rather than lump unsoundly.
	b := NewBuilder()
	a := b.State("A")
	c := b.State("C")
	d := b.State("D")
	b.Transition(a, c, 1)
	b.Transition(c, d, 2)
	b.Transition(d, a, 3)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	q, block, err := m.Lump([]int{0, 0, 1})
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	if q.NumStates() != 3 {
		t.Fatalf("lumped states = %d, want 3 (no sound merge exists)", q.NumStates())
	}
	if block[0] == block[1] {
		t.Error("A and C merged despite different rates into {D}")
	}
}

func TestLumpThreeReplicas(t *testing.T) {
	t.Parallel()
	// Three identical independent components; initial partition by up
	// count. 8 states must lump to 4 (binomial levels).
	const la, mu = 0.2, 3.0
	b := NewBuilder()
	states := make([]State, 8)
	upCount := make([]int, 8)
	for massk := 0; massk < 8; massk++ {
		name := ""
		ups := 0
		for c := 0; c < 3; c++ {
			if massk&(1<<c) == 0 {
				name += "U"
				ups++
			} else {
				name += "D"
			}
		}
		states[massk] = b.State(name)
		upCount[massk] = ups
	}
	for mask := 0; mask < 8; mask++ {
		for c := 0; c < 3; c++ {
			if mask&(1<<c) == 0 {
				b.Transition(states[mask], states[mask|1<<c], la)
			} else {
				b.Transition(states[mask], states[mask&^(1<<c)], mu)
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	q, block, err := m.Lump(upCount)
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	if q.NumStates() != 4 {
		t.Fatalf("lumped states = %d, want 4", q.NumStates())
	}
	// The quotient is the birth-death chain with binomial stationary law.
	qpi, err := q.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	pUp := mu / (la + mu)
	// P(k components up) = C(3,k) pUp^k (1-pUp)^{3-k}.
	choose := []float64{1, 3, 3, 1}
	for k := 0; k <= 3; k++ {
		// Find the block holding a state with k ups.
		var blk int
		for s, ups := range upCount {
			if ups == k {
				blk = block[s]
				break
			}
		}
		want := choose[k] * math.Pow(pUp, float64(k)) * math.Pow(1-pUp, float64(3-k))
		if math.Abs(qpi[blk]-want) > 1e-12 {
			t.Errorf("P(%d up) = %.12f, want %.12f", k, qpi[blk], want)
		}
	}
}

func TestLumpValidation(t *testing.T) {
	t.Parallel()
	m, _ := buildReplicatedPair(t, 1, 1)
	if _, _, err := m.Lump([]int{0}); !errors.Is(err, ErrBadModel) {
		t.Errorf("short partition: err = %v", err)
	}
}

func TestLumpedNamesDescriptive(t *testing.T) {
	t.Parallel()
	m, initial := buildReplicatedPair(t, 0.1, 2)
	q, _, err := m.Lump(initial)
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	found := false
	for _, s := range q.States() {
		if q.Name(s) == "{UD+DU}" {
			found = true
		}
	}
	if !found {
		t.Error("merged block not named {UD+DU}")
	}
}
