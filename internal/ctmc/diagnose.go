package ctmc

import (
	"fmt"
	"strings"
)

// Diagnosis reports structural and numerical properties of a model —
// the checks a modeler wants before trusting a steady-state solution.
type Diagnosis struct {
	NumStates      int
	NumTransitions int
	// Irreducible reports strong connectivity (steady state well-defined).
	Irreducible bool
	// Absorbing lists states with no outgoing transitions.
	Absorbing []State
	// Unreachable lists states not reachable from state 0.
	Unreachable []State
	// CannotReturn lists states from which state 0 is unreachable
	// (trap components).
	CannotReturn []State
	// MaxExitRate and MinExitRate bound the nonzero exit rates; their
	// ratio is the stiffness that slows iterative solvers.
	MaxExitRate, MinExitRate float64
}

// Stiffness returns the exit-rate ratio (0 when undefined).
func (d Diagnosis) Stiffness() float64 {
	if d.MinExitRate == 0 {
		return 0
	}
	return d.MaxExitRate / d.MinExitRate
}

// Summary renders a human-readable diagnosis with state names resolved
// through the model.
func (d Diagnosis) Summary(m *Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "states: %d, transitions: %d\n", d.NumStates, d.NumTransitions)
	if d.Irreducible {
		b.WriteString("irreducible: yes (steady state well-defined)\n")
	} else {
		b.WriteString("irreducible: NO — steady state undefined\n")
	}
	names := func(states []State) string {
		parts := make([]string, len(states))
		for i, s := range states {
			parts[i] = m.Name(s)
		}
		return strings.Join(parts, ", ")
	}
	if len(d.Absorbing) > 0 {
		fmt.Fprintf(&b, "absorbing states: %s\n", names(d.Absorbing))
	}
	if len(d.Unreachable) > 0 {
		fmt.Fprintf(&b, "unreachable from %s: %s\n", m.Name(0), names(d.Unreachable))
	}
	if len(d.CannotReturn) > 0 {
		fmt.Fprintf(&b, "cannot return to %s: %s\n", m.Name(0), names(d.CannotReturn))
	}
	if s := d.Stiffness(); s > 0 {
		fmt.Fprintf(&b, "exit rates: [%.4g, %.4g] (stiffness %.3g)\n", d.MinExitRate, d.MaxExitRate, s)
	}
	return b.String()
}

// Diagnose analyzes the model's structure.
func (m *Model) Diagnose() Diagnosis {
	d := Diagnosis{
		NumStates:      m.NumStates(),
		NumTransitions: m.NumTransitions(),
		Irreducible:    m.IsIrreducible(),
	}
	reach := m.Reachable(0)
	// Reverse reachability: which states can reach state 0.
	rev := NewBuilder()
	for _, name := range m.names {
		rev.State(name)
	}
	for _, tr := range m.transitions {
		rev.Transition(tr.To, tr.From, tr.Rate)
	}
	var canReach map[State]bool
	if rm, err := rev.Build(); err == nil {
		canReach = rm.Reachable(0)
	}
	for s := 0; s < m.NumStates(); s++ {
		st := State(s)
		exit := m.ExitRate(st)
		if exit == 0 {
			d.Absorbing = append(d.Absorbing, st)
		} else {
			if d.MaxExitRate == 0 || exit > d.MaxExitRate {
				d.MaxExitRate = exit
			}
			if d.MinExitRate == 0 || exit < d.MinExitRate {
				d.MinExitRate = exit
			}
		}
		if !reach[st] {
			d.Unreachable = append(d.Unreachable, st)
		}
		if canReach != nil && !canReach[st] {
			d.CannotReturn = append(d.CannotReturn, st)
		}
	}
	return d
}
