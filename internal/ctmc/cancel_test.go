package ctmc

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/sparse"
)

// afterNCtx cancels after a fixed number of Err() calls — deterministic
// mid-solve cancellation independent of convergence speed.
type afterNCtx struct {
	context.Context
	calls, after int
}

func (c *afterNCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// bigChain builds a birth–death chain wide enough that MethodAuto picks
// Gauss–Seidel (NumStates > denseThreshold), so the auto dense-fallback
// path is reachable.
func bigChain(t *testing.T, states int) *Model {
	t.Helper()
	b := NewBuilder()
	ids := make([]State, states)
	for i := range ids {
		ids[i] = b.State(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < states-1; i++ {
		b.Transition(ids[i], ids[i+1], 1e-4)
		b.Transition(ids[i+1], ids[i], 10)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSteadyStateCanceledUpFront: a pre-canceled context aborts the solve
// before any work and bumps the cancellation counter.
func TestSteadyStateCanceledUpFront(t *testing.T) {
	m := stiffModel(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := obsCancellations.Value()
	_, err := m.SteadyState(SolveOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := obsCancellations.Value(); got < before+1 {
		t.Errorf("solver_cancellations_total did not move: %d -> %d", before, got)
	}
}

// TestSteadyStateCancellationSkipsDenseFallback: MethodAuto's dense
// fallback is keyed on non-convergence; a solve canceled mid-iteration
// must surface the cancellation instead of silently retrying with the
// dense solver (which would turn a cheap abort into an expensive solve).
func TestSteadyStateCancellationSkipsDenseFallback(t *testing.T) {
	m := bigChain(t, denseThreshold+50)
	ctx := &afterNCtx{Context: context.Background(), after: 2}
	var d Diagnostics
	_, err := m.SteadyState(SolveOptions{Ctx: ctx, Diag: &d})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, sparse.ErrNoConvergence) {
		t.Error("cancellation reported as non-convergence")
	}
	if d.DenseFallback {
		t.Error("cancellation triggered the dense fallback")
	}
}

// TestSteadyStateCompletesWithLiveCtx: a context that stays live changes
// nothing about the result.
func TestSteadyStateCompletesWithLiveCtx(t *testing.T) {
	m := stiffModel(t, 1)
	want, err := m.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SteadyState(SolveOptions{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("pi[%d] differs with a live ctx: %g vs %g", i, got[i], want[i])
		}
	}
}
