package ctmc

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// stiffModel builds a birth–death availability-style chain with rates
// spanning several orders of magnitude, large enough that nothing about it
// is special-cased by the auto method selection.
func stiffModel(t *testing.T, scale float64) *Model {
	t.Helper()
	b := NewBuilder()
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	states := make([]State, len(names))
	for i, n := range names {
		states[i] = b.State(n)
	}
	birth := []float64{2e-5, 1e-4, 3e-3, 0.5}
	death := []float64{4, 90, 2, 600}
	for i := 0; i < len(names)-1; i++ {
		b.Transition(states[i], states[i+1], birth[i]*scale)
		b.Transition(states[i+1], states[i], death[i])
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSparseGeneratorCached checks the generator CSR and its transpose are
// assembled once and shared across calls on the immutable model.
func TestSparseGeneratorCached(t *testing.T) {
	m := stiffModel(t, 1)
	q1, err := m.SparseGenerator()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := m.SparseGenerator()
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("SparseGenerator returned distinct objects; want the cached instance")
	}
	qt1, err := m.SparseGeneratorTransposed()
	if err != nil {
		t.Fatal(err)
	}
	qt2, err := m.SparseGeneratorTransposed()
	if err != nil {
		t.Fatal(err)
	}
	if qt1 != qt2 {
		t.Error("SparseGeneratorTransposed returned distinct objects; want the cached instance")
	}
	// The cached transpose must actually be the transpose.
	n := m.NumStates()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if q1.At(i, j) != qt1.At(j, i) {
				t.Fatalf("cached transpose wrong at (%d,%d)", i, j)
			}
		}
	}
}

// TestWarmStartViaSolver solves the same-shaped chain repeatedly through
// one Solver and checks the later iterative solves are warm-started, take
// fewer sweeps, and agree with cold solves of the same models.
func TestWarmStartViaSolver(t *testing.T) {
	s := NewSolver()
	var coldSweeps, warmSweeps int
	for i := 0; i < 4; i++ {
		scale := 1 + 0.01*float64(i) // nearby sweep points: same topology
		m := stiffModel(t, scale)
		var d Diagnostics
		pi, err := s.SteadyState(m, SolveOptions{Method: MethodGaussSeidel, Diag: &d})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := stiffModel(t, scale).SteadyState(SolveOptions{Method: MethodGaussSeidel})
		if err != nil {
			t.Fatal(err)
		}
		for j := range pi {
			if diff := math.Abs(pi[j] - cold[j]); diff > 1e-10 {
				t.Fatalf("solve %d: warm path differs from cold at %d by %g", i, j, diff)
			}
		}
		if i == 0 {
			if d.WarmStart {
				t.Fatal("first solve through a fresh Solver flagged as warm")
			}
			coldSweeps = d.Iterations
		} else {
			if !d.WarmStart {
				t.Fatalf("solve %d not warm-started", i)
			}
			warmSweeps = d.Iterations
		}
		if d.Residual <= 0 {
			t.Fatalf("solve %d: no verified residual recorded: %+v", i, d)
		}
	}
	if warmSweeps >= coldSweeps {
		t.Errorf("warm solve took %d sweeps, cold took %d — expected fewer", warmSweeps, coldSweeps)
	}
	st := s.Stats()
	if st.Solves != 4 || st.WarmStarts != 3 {
		t.Errorf("solver stats = %+v, want 4 solves with 3 warm starts", st)
	}
}

// TestSolverDensePathMatchesOneShot runs repeated dense solves through one
// Solver (reusing assembly and factorization storage) and checks
// bit-identical agreement with the allocation-per-solve path.
func TestSolverDensePathMatchesOneShot(t *testing.T) {
	s := NewSolver()
	for i := 0; i < 3; i++ {
		scale := 1 + 0.5*float64(i)
		m := stiffModel(t, scale)
		got, err := s.SteadyState(m, SolveOptions{Method: MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		want, err := stiffModel(t, scale).SteadyState(SolveOptions{Method: MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("solve %d: dense reuse differs at %d: %g != %g", i, j, got[j], want[j])
			}
		}
	}
}

// TestResidualGaugeResetOnDense is the regression test for the stale-scrape
// bug: after an iterative solve set ctmc_last_solve_residual, a following
// dense solve must reset the gauge to 0 instead of leaving the previous
// iterative residual to be scraped alongside dense-solve diagnostics.
func TestResidualGaugeResetOnDense(t *testing.T) {
	gauge := obs.G("ctmc_last_solve_residual", "")
	m := stiffModel(t, 1)
	if _, err := m.SteadyState(SolveOptions{Method: MethodGaussSeidel}); err != nil {
		t.Fatal(err)
	}
	if gauge.Value() <= 0 {
		t.Fatalf("gauge = %g after iterative solve, want > 0", gauge.Value())
	}
	var d Diagnostics
	if _, err := m.SteadyState(SolveOptions{Method: MethodDense, Diag: &d}); err != nil {
		t.Fatal(err)
	}
	if gauge.Value() != 0 {
		t.Errorf("gauge = %g after dense solve, want 0 (stale residual)", gauge.Value())
	}
	if d.Residual != 0 {
		t.Errorf("dense diagnostics carry residual %g, want 0", d.Residual)
	}
}

// TestSolverPerWorkerConcurrency exercises one Solver per goroutine across
// overlapping solves — the documented concurrency contract — and is meant
// to run under -race. Shared state here is only the immutable models and
// their lazily cached generators.
func TestSolverPerWorkerConcurrency(t *testing.T) {
	models := []*Model{stiffModel(t, 1), stiffModel(t, 2), stiffModel(t, 3)}
	want := make([][]float64, len(models))
	for i, m := range models {
		pi, err := m.SteadyState(SolveOptions{Method: MethodGaussSeidel})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pi
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSolver()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(models)
				pi, err := s.SteadyState(models[i], SolveOptions{Method: MethodGaussSeidel})
				if err != nil {
					errs <- err
					return
				}
				for j := range pi {
					if diff := math.Abs(pi[j] - want[i][j]); diff > 1e-10 {
						t.Errorf("worker %d rep %d: pi[%d] off by %g", w, rep, j, diff)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
