// Package ctmc implements continuous-time Markov chains: model building,
// generator-matrix assembly, steady-state and transient solution, mean time
// to absorption, state-set entry frequencies, and the equivalent two-state
// (failure rate, recovery rate) abstraction that hierarchical availability
// models are built from.
//
// It is the computational core of the RAScad-equivalent modeling engine
// described in DESIGN.md.
package ctmc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Common errors reported by the package.
var (
	// ErrBadModel is reported by Validate for structurally invalid models
	// (negative rates, self loops, unknown states, no states).
	ErrBadModel = errors.New("ctmc: invalid model")
	// ErrNotIrreducible is reported when a solution method requires an
	// irreducible chain but the model has unreachable or non-communicating
	// states.
	ErrNotIrreducible = errors.New("ctmc: chain is not irreducible")
	// ErrNoSuchState is reported when a state name does not exist.
	ErrNoSuchState = errors.New("ctmc: no such state")
)

// State identifies a state by dense index within a Model.
type State int

// Transition is a rate-labeled directed edge between two states.
type Transition struct {
	From, To State
	Rate     float64
}

// Model is an immutable CTMC: a finite state space with exponential
// transition rates. Build one with a Builder.
//
// Immutability makes the derived structures below safe to compute once
// and share: the sparse generator (and its transpose) and the
// irreducibility verdict are cached on first use, so the repeated solves
// of parametric sweeps and Monte-Carlo sampling pay assembly cost once
// per model rather than once per solve.
type Model struct {
	names       []string
	index       map[string]State
	transitions []Transition
	// outgoing[s] lists indices into transitions, sorted by target.
	outgoing [][]int

	// Lazily cached derived structures (see SparseGenerator,
	// SparseGeneratorTransposed, IsIrreducible). The sync.Once guards make
	// concurrent first use safe; the cached values are immutable after.
	genOnce sync.Once
	genQ    *sparse.CSR
	genQT   *sparse.CSR
	genErr  error
	irrOnce sync.Once
	irr     bool
}

// Builder accumulates states and transitions and produces a validated Model.
// The zero value is ready to use.
type Builder struct {
	names       []string
	index       map[string]State
	transitions []Transition
	errs        []error
}

// NewBuilder returns an empty model builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]State)}
}

// State adds (or finds) a state with the given name and returns its handle.
func (b *Builder) State(name string) State {
	if b.index == nil {
		b.index = make(map[string]State)
	}
	if s, ok := b.index[name]; ok {
		return s
	}
	s := State(len(b.names))
	b.names = append(b.names, name)
	b.index[name] = s
	return s
}

// Transition adds a transition from → to with the given rate. Rates must be
// positive and from ≠ to; violations are collected and reported by Build.
// A zero rate is accepted and dropped (it arises naturally when a model
// parameter, e.g. a maintenance rate, is set to zero).
func (b *Builder) Transition(from, to State, rate float64) {
	if rate == 0 {
		return
	}
	if rate < 0 {
		b.errs = append(b.errs, fmt.Errorf("transition %d→%d has negative rate %g: %w", from, to, rate, ErrBadModel))
		return
	}
	if from == to {
		b.errs = append(b.errs, fmt.Errorf("self loop on state %d: %w", from, ErrBadModel))
		return
	}
	if int(from) < 0 || int(from) >= len(b.names) || int(to) < 0 || int(to) >= len(b.names) {
		b.errs = append(b.errs, fmt.Errorf("transition references unknown state (%d→%d): %w", from, to, ErrBadModel))
		return
	}
	b.transitions = append(b.transitions, Transition{From: from, To: to, Rate: rate})
}

// Build validates and returns the model. Parallel transitions between the
// same pair of states are merged by summing their rates.
func (b *Builder) Build() (*Model, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(b.names) == 0 {
		return nil, fmt.Errorf("model has no states: %w", ErrBadModel)
	}
	// Sort a copy of the transitions by (from, to) and merge adjacent
	// duplicates by summing rates. Sort-and-merge over a slice beats the
	// obvious map accumulation on the hot model-(re)build path that
	// sweeps and Monte-Carlo sampling exercise per evaluation.
	sorted := append([]Transition(nil), b.transitions...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].From != sorted[j].From {
			return sorted[i].From < sorted[j].From
		}
		return sorted[i].To < sorted[j].To
	})
	merged := sorted[:0]
	for _, tr := range sorted {
		if n := len(merged); n > 0 && merged[n-1].From == tr.From && merged[n-1].To == tr.To {
			merged[n-1].Rate += tr.Rate
			continue
		}
		merged = append(merged, tr)
	}
	m := &Model{
		names:       append([]string(nil), b.names...),
		index:       make(map[string]State, len(b.names)),
		transitions: merged,
		outgoing:    make([][]int, len(b.names)),
	}
	for name, s := range b.index {
		m.index[name] = s
	}
	// Count then fill: the outgoing index lists stay sorted by target
	// because the transitions themselves are.
	counts := make([]int, len(b.names))
	for _, tr := range m.transitions {
		counts[tr.From]++
	}
	idxBuf := make([]int, len(m.transitions))
	for s, c := range counts {
		if c == 0 {
			continue
		}
		m.outgoing[s] = idxBuf[:0:c]
		idxBuf = idxBuf[c:]
	}
	for idx, tr := range m.transitions {
		m.outgoing[tr.From] = append(m.outgoing[tr.From], idx)
	}
	return m, nil
}

// NumStates returns the size of the state space.
func (m *Model) NumStates() int { return len(m.names) }

// NumTransitions returns the number of (merged) transitions.
func (m *Model) NumTransitions() int { return len(m.transitions) }

// Name returns the name of state s.
func (m *Model) Name(s State) string {
	if int(s) < 0 || int(s) >= len(m.names) {
		return fmt.Sprintf("<state %d>", int(s))
	}
	return m.names[s]
}

// StateByName resolves a state name.
func (m *Model) StateByName(name string) (State, error) {
	s, ok := m.index[name]
	if !ok {
		return 0, fmt.Errorf("%q: %w", name, ErrNoSuchState)
	}
	return s, nil
}

// States returns all state handles in index order.
func (m *Model) States() []State {
	out := make([]State, len(m.names))
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// Transitions returns a copy of the merged transition list.
func (m *Model) Transitions() []Transition {
	return append([]Transition(nil), m.transitions...)
}

// ExitRate returns the total outgoing rate of state s.
func (m *Model) ExitRate(s State) float64 {
	var sum float64
	for _, idx := range m.outgoing[s] {
		sum += m.transitions[idx].Rate
	}
	return sum
}

// Rate returns the (merged) rate from → to, or 0 if absent.
func (m *Model) Rate(from, to State) float64 {
	for _, idx := range m.outgoing[from] {
		if m.transitions[idx].To == to {
			return m.transitions[idx].Rate
		}
	}
	return 0
}

// Generator assembles the dense infinitesimal generator matrix Q
// (off-diagonal q_ij = rate i→j, diagonal q_ii = −Σ_j q_ij).
func (m *Model) Generator() *numeric.Matrix {
	n := m.NumStates()
	q := numeric.NewMatrix(n, n)
	for _, tr := range m.transitions {
		q.Add(int(tr.From), int(tr.To), tr.Rate)
		q.Add(int(tr.From), int(tr.From), -tr.Rate)
	}
	return q
}

// SparseGenerator assembles Q in CSR form for the iterative solvers.
// The CSR (and its transpose) is assembled once and cached — the model is
// immutable — so repeated solves of the same chain skip reassembly.
// Callers must treat the returned matrix as shared and read-only.
func (m *Model) SparseGenerator() (*sparse.CSR, error) {
	m.genOnce.Do(m.assembleSparseGenerator)
	return m.genQ, m.genErr
}

// SparseGeneratorTransposed returns the cached transpose Qᵀ, which the
// Gauss–Seidel solver sweeps for column access. Like SparseGenerator, the
// result is shared and read-only.
func (m *Model) SparseGeneratorTransposed() (*sparse.CSR, error) {
	m.genOnce.Do(m.assembleSparseGenerator)
	return m.genQT, m.genErr
}

func (m *Model) assembleSparseGenerator() {
	n := m.NumStates()
	entries := make([]sparse.Entry, 0, len(m.transitions)+n)
	diag := make([]float64, n)
	for _, tr := range m.transitions {
		entries = append(entries, sparse.Entry{Row: int(tr.From), Col: int(tr.To), Val: tr.Rate})
		diag[tr.From] -= tr.Rate
	}
	for i, d := range diag {
		if d != 0 {
			entries = append(entries, sparse.Entry{Row: i, Col: i, Val: d})
		}
	}
	m.genQ, m.genErr = sparse.NewCSR(n, n, entries)
	if m.genErr == nil {
		m.genQT = m.genQ.Transpose()
	}
}

// Reachable returns the set of states reachable from start following
// transitions forward.
func (m *Model) Reachable(start State) map[State]bool {
	seen := map[State]bool{start: true}
	stack := []State{start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range m.outgoing[s] {
			t := m.transitions[idx].To
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// IsIrreducible reports whether every state can reach every other state.
// The verdict is computed once and cached (the model is immutable), so
// the per-solve irreducibility guard in SteadyState is free on repeated
// solves of the same chain.
func (m *Model) IsIrreducible() bool {
	m.irrOnce.Do(func() { m.irr = m.computeIrreducible() })
	return m.irr
}

// computeIrreducible checks strong connectivity via forward reachability
// from state 0 on G and on Gᵀ, walking the transition list directly — no
// intermediate reverse model is materialized.
func (m *Model) computeIrreducible() bool {
	n := m.NumStates()
	if n == 0 {
		return false
	}
	// Forward sweep over the existing outgoing adjacency.
	seen := make([]bool, n)
	stack := make([]State, 1, n)
	stack[0] = 0
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range m.outgoing[s] {
			if t := m.transitions[idx].To; !seen[t] {
				seen[t] = true
				count++
				stack = append(stack, t)
			}
		}
	}
	if count != n {
		return false
	}
	// Backward sweep over a flat reverse adjacency built by counting sort.
	counts := make([]int, n+1)
	for _, tr := range m.transitions {
		counts[tr.To+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	incoming := make([]State, len(m.transitions))
	cursor := append([]int(nil), counts[:n]...)
	for _, tr := range m.transitions {
		incoming[cursor[tr.To]] = tr.From
		cursor[tr.To]++
	}
	for i := range seen {
		seen[i] = false
	}
	stack = stack[:1]
	stack[0] = 0
	seen[0] = true
	count = 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for k := counts[s]; k < counts[s+1]; k++ {
			if t := incoming[k]; !seen[t] {
				seen[t] = true
				count++
				stack = append(stack, t)
			}
		}
	}
	return count == n
}
