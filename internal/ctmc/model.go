// Package ctmc implements continuous-time Markov chains: model building,
// generator-matrix assembly, steady-state and transient solution, mean time
// to absorption, state-set entry frequencies, and the equivalent two-state
// (failure rate, recovery rate) abstraction that hierarchical availability
// models are built from.
//
// It is the computational core of the RAScad-equivalent modeling engine
// described in DESIGN.md.
package ctmc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Common errors reported by the package.
var (
	// ErrBadModel is reported by Validate for structurally invalid models
	// (negative rates, self loops, unknown states, no states).
	ErrBadModel = errors.New("ctmc: invalid model")
	// ErrNotIrreducible is reported when a solution method requires an
	// irreducible chain but the model has unreachable or non-communicating
	// states.
	ErrNotIrreducible = errors.New("ctmc: chain is not irreducible")
	// ErrNoSuchState is reported when a state name does not exist.
	ErrNoSuchState = errors.New("ctmc: no such state")
)

// State identifies a state by dense index within a Model.
type State int

// Transition is a rate-labeled directed edge between two states.
type Transition struct {
	From, To State
	Rate     float64
}

// Model is an immutable CTMC: a finite state space with exponential
// transition rates. Build one with a Builder.
type Model struct {
	names       []string
	index       map[string]State
	transitions []Transition
	// outgoing[s] lists indices into transitions, sorted by target.
	outgoing [][]int
}

// Builder accumulates states and transitions and produces a validated Model.
// The zero value is ready to use.
type Builder struct {
	names       []string
	index       map[string]State
	transitions []Transition
	errs        []error
}

// NewBuilder returns an empty model builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]State)}
}

// State adds (or finds) a state with the given name and returns its handle.
func (b *Builder) State(name string) State {
	if b.index == nil {
		b.index = make(map[string]State)
	}
	if s, ok := b.index[name]; ok {
		return s
	}
	s := State(len(b.names))
	b.names = append(b.names, name)
	b.index[name] = s
	return s
}

// Transition adds a transition from → to with the given rate. Rates must be
// positive and from ≠ to; violations are collected and reported by Build.
// A zero rate is accepted and dropped (it arises naturally when a model
// parameter, e.g. a maintenance rate, is set to zero).
func (b *Builder) Transition(from, to State, rate float64) {
	if rate == 0 {
		return
	}
	if rate < 0 {
		b.errs = append(b.errs, fmt.Errorf("transition %d→%d has negative rate %g: %w", from, to, rate, ErrBadModel))
		return
	}
	if from == to {
		b.errs = append(b.errs, fmt.Errorf("self loop on state %d: %w", from, ErrBadModel))
		return
	}
	if int(from) < 0 || int(from) >= len(b.names) || int(to) < 0 || int(to) >= len(b.names) {
		b.errs = append(b.errs, fmt.Errorf("transition references unknown state (%d→%d): %w", from, to, ErrBadModel))
		return
	}
	b.transitions = append(b.transitions, Transition{From: from, To: to, Rate: rate})
}

// Build validates and returns the model. Parallel transitions between the
// same pair of states are merged by summing their rates.
func (b *Builder) Build() (*Model, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(b.names) == 0 {
		return nil, fmt.Errorf("model has no states: %w", ErrBadModel)
	}
	merged := make(map[[2]State]float64)
	for _, tr := range b.transitions {
		merged[[2]State{tr.From, tr.To}] += tr.Rate
	}
	m := &Model{
		names:       append([]string(nil), b.names...),
		index:       make(map[string]State, len(b.names)),
		transitions: make([]Transition, 0, len(merged)),
		outgoing:    make([][]int, len(b.names)),
	}
	for name, s := range b.index {
		m.index[name] = s
	}
	keys := make([][2]State, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		idx := len(m.transitions)
		m.transitions = append(m.transitions, Transition{From: k[0], To: k[1], Rate: merged[k]})
		m.outgoing[k[0]] = append(m.outgoing[k[0]], idx)
	}
	return m, nil
}

// NumStates returns the size of the state space.
func (m *Model) NumStates() int { return len(m.names) }

// NumTransitions returns the number of (merged) transitions.
func (m *Model) NumTransitions() int { return len(m.transitions) }

// Name returns the name of state s.
func (m *Model) Name(s State) string {
	if int(s) < 0 || int(s) >= len(m.names) {
		return fmt.Sprintf("<state %d>", int(s))
	}
	return m.names[s]
}

// StateByName resolves a state name.
func (m *Model) StateByName(name string) (State, error) {
	s, ok := m.index[name]
	if !ok {
		return 0, fmt.Errorf("%q: %w", name, ErrNoSuchState)
	}
	return s, nil
}

// States returns all state handles in index order.
func (m *Model) States() []State {
	out := make([]State, len(m.names))
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// Transitions returns a copy of the merged transition list.
func (m *Model) Transitions() []Transition {
	return append([]Transition(nil), m.transitions...)
}

// ExitRate returns the total outgoing rate of state s.
func (m *Model) ExitRate(s State) float64 {
	var sum float64
	for _, idx := range m.outgoing[s] {
		sum += m.transitions[idx].Rate
	}
	return sum
}

// Rate returns the (merged) rate from → to, or 0 if absent.
func (m *Model) Rate(from, to State) float64 {
	for _, idx := range m.outgoing[from] {
		if m.transitions[idx].To == to {
			return m.transitions[idx].Rate
		}
	}
	return 0
}

// Generator assembles the dense infinitesimal generator matrix Q
// (off-diagonal q_ij = rate i→j, diagonal q_ii = −Σ_j q_ij).
func (m *Model) Generator() *numeric.Matrix {
	n := m.NumStates()
	q := numeric.NewMatrix(n, n)
	for _, tr := range m.transitions {
		q.Add(int(tr.From), int(tr.To), tr.Rate)
		q.Add(int(tr.From), int(tr.From), -tr.Rate)
	}
	return q
}

// SparseGenerator assembles Q in CSR form for the iterative solvers.
func (m *Model) SparseGenerator() (*sparse.CSR, error) {
	n := m.NumStates()
	entries := make([]sparse.Entry, 0, len(m.transitions)+n)
	diag := make([]float64, n)
	for _, tr := range m.transitions {
		entries = append(entries, sparse.Entry{Row: int(tr.From), Col: int(tr.To), Val: tr.Rate})
		diag[tr.From] -= tr.Rate
	}
	for i, d := range diag {
		if d != 0 {
			entries = append(entries, sparse.Entry{Row: i, Col: i, Val: d})
		}
	}
	return sparse.NewCSR(n, n, entries)
}

// Reachable returns the set of states reachable from start following
// transitions forward.
func (m *Model) Reachable(start State) map[State]bool {
	seen := map[State]bool{start: true}
	stack := []State{start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range m.outgoing[s] {
			t := m.transitions[idx].To
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// IsIrreducible reports whether every state can reach every other state.
func (m *Model) IsIrreducible() bool {
	n := m.NumStates()
	if n == 0 {
		return false
	}
	// Strong connectivity via forward reachability from 0 on G and on Gᵀ.
	if len(m.Reachable(0)) != n {
		return false
	}
	rev := NewBuilder()
	for _, name := range m.names {
		rev.State(name)
	}
	for _, tr := range m.transitions {
		rev.Transition(tr.To, tr.From, tr.Rate)
	}
	rm, err := rev.Build()
	if err != nil {
		return false
	}
	return len(rm.Reachable(0)) == n
}
